//! The slice data structure: a constraint graph over a computation's events
//! whose consistent cuts form a sublattice of the computation's cut lattice.

use std::cell::RefCell;
use std::fmt;
use std::sync::Arc;

use slicing_computation::graph::{Digraph, SccScratch};
use slicing_computation::{Computation, Cut, CutPacking, CutSpace, EventId, ProcessId};

/// A node of the slice constraint graph: an event, or the virtual top ⊤.
///
/// The paper's model adds fictitious final events ⊤ᵢ so that "no consistent
/// cut of the slice contains event `e`" is expressible as the edge ⊤ → e.
/// We keep a single virtual ⊤ node instead of materializing per-process
/// final events; the semantics are identical because all final events
/// belong to one strongly connected component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Node {
    /// A real event.
    Event(EventId),
    /// The virtual final meta-event ⊤ (never inside a non-trivial cut).
    Top,
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Node::Event(e) => write!(f, "{e}"),
            Node::Top => f.write_str("⊤"),
        }
    }
}

/// A constraint edge `(u, v)`: any consistent cut containing `v` must also
/// contain `u`.
pub type Edge = (Node, Node);

/// Sentinel index: the event is in no non-trivial slice cut.
const NO_CUT: u32 = u32::MAX;

/// Within-cut successor dedup width: frontier processes whose next events
/// share a J index produce *identical* successors, so the first
/// `DEDUP_WIDTH` distinct indices of a call are tracked on the stack and
/// repeats skipped before any join or hash work happens. Calls that see
/// more distinct indices emit the (harmless, caller-deduped) extras.
const DEDUP_WIDTH: usize = 32;

/// The J tables behind a slice: one cut payload per live strongly connected
/// component, plus the per-event index into that pool.
///
/// This is the kernelized layout that replaced one `Option<Arc<Cut>>` per
/// event: events of an SCC share a dense `u32` index instead of an `Arc`,
/// the payloads live contiguously (inline in the `Cut` for ≤16 processes —
/// no heap indirection at all on the hot path), and cloning a slice bumps
/// one reference count on the whole table.
struct JTables {
    /// Distinct least-cut payloads, one per SCC that appears in some
    /// non-trivial slice cut.
    cuts: Vec<Cut>,
    /// Per event: index into `cuts`, or [`NO_CUT`].
    ix: Vec<u32>,
    /// Successor lookup table, flattened per process: entry
    /// `next_j[proc_off[p] + (count - 1)]` is the J index of the next
    /// event of process `p` at cut count `count` (the event at position
    /// `count`), or [`NO_CUT`] when the process is exhausted or the event
    /// forbidden. One load replaces the `event_at` → `ix` chain in the
    /// successor hot loop.
    next_j: Vec<u32>,
    /// Per-process offsets into `next_j` (`n + 1` entries).
    proc_off: Vec<u32>,
    /// Index of the least non-trivial slice cut, or [`NO_CUT`] if the
    /// slice is empty.
    bottom_ix: u32,
}

/// A slice of a computation: the computation's events plus *constraint
/// edges*, whose consistent cuts are exactly the non-trivial consistent
/// cuts of the computation that respect every edge.
///
/// For a predicate `b`, the slicing algorithms construct edges such that
/// the resulting cut set is the **smallest sublattice** of the cut lattice
/// containing every cut satisfying `b` (Definition 1 of the paper). For
/// regular predicates the slice is *lean*: it contains exactly the
/// satisfying cuts.
///
/// Internally a slice precomputes, for every event `e`, the least slice cut
/// `J(e)` containing `e` (or `None` if no slice cut contains `e`), by
/// condensing the constraint graph (base happened-before edges + constraint
/// edges + the initial-event cycle) and propagating join-irreducible
/// contributions in topological order. Searching the slice then advances
/// one process at a time and joins with `J(next event)` — each successor
/// step is `O(n)`.
///
/// Construction runs on a warm per-thread workspace (flat edge list, CSR
/// Tarjan via [`SccScratch`], one `u32` row per SCC): repeated slicing —
/// grafting, `detect_resilient`, the monitor — reuses every buffer and
/// performs no cut heap allocation for inline-width computations.
///
/// # Examples
///
/// ```
/// use slicing_computation::test_fixtures::figure1;
/// use slicing_computation::lattice::count_cuts;
/// use slicing_predicates::{Conjunctive, LocalPredicate};
/// use slicing_core::slice_conjunctive;
///
/// let comp = figure1();
/// let x1 = comp.var(comp.process(0), "x1").unwrap();
/// let x3 = comp.var(comp.process(2), "x3").unwrap();
/// let pred = Conjunctive::new(vec![
///     LocalPredicate::int(x1, "x1 > 1", |x| x > 1),
///     LocalPredicate::int(x3, "x3 <= 3", |x| x <= 3),
/// ]);
/// let slice = slice_conjunctive(&comp, &pred);
/// // 28 cuts in the computation, 6 in the slice (Figure 1).
/// assert_eq!(count_cuts(&comp, None).value(), 28);
/// assert_eq!(count_cuts(&slice, None).value(), 6);
/// ```
#[derive(Clone)]
pub struct Slice<'a> {
    comp: &'a Computation,
    edges: Vec<Edge>,
    /// Shared J tables: cloning a slice is one reference-count bump, never
    /// a cut copy.
    tables: Arc<JTables>,
    /// Lazily packed J-cut keys for the all-packed successor stream
    /// ([`CutSpace::for_each_successor_packed`]), built on first use.
    packed_j: std::sync::OnceLock<PackedJ>,
}

/// The packed twin of [`JTables::cuts`]: each J cut as a `u64` key under
/// the searcher's [`CutPacking`], plus the plan's lane geometry so a
/// mismatched plan is detected and refused.
#[derive(Debug, Clone)]
struct PackedJ {
    lane_bits: u32,
    rows: Vec<u64>,
}

impl<'a> Slice<'a> {
    /// Builds a slice from constraint edges.
    ///
    /// The base happened-before edges of the computation are always
    /// implied and need not be listed.
    pub fn new(comp: &'a Computation, edges: Vec<Edge>) -> Self {
        let tables = Arc::new(compute_j_table(comp, &edges));
        Slice {
            comp,
            edges,
            tables,
            packed_j: std::sync::OnceLock::new(),
        }
    }

    /// The slice with no extra constraints: its cuts are exactly the
    /// computation's non-trivial consistent cuts.
    pub fn full(comp: &'a Computation) -> Self {
        Slice::new(comp, Vec::new())
    }

    /// The empty slice: no non-trivial consistent cuts at all (the slice of
    /// an unsatisfiable predicate).
    pub fn empty(comp: &'a Computation) -> Self {
        let init = comp.event_at(ProcessId::new(0), 0);
        Slice::new(comp, vec![(Node::Top, Node::Event(init))])
    }

    /// The underlying computation.
    pub fn computation(&self) -> &'a Computation {
        self.comp
    }

    /// The constraint edges (excluding the implied base edges).
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// `true` if the slice has no non-trivial consistent cuts.
    pub fn is_empty_slice(&self) -> bool {
        self.tables.bottom_ix == NO_CUT
    }

    /// The least non-trivial consistent cut of the slice, if any.
    pub fn bottom_cut(&self) -> Option<&Cut> {
        self.cut_at(self.tables.bottom_ix)
    }

    /// The least slice cut containing event `e`, or `None` if no
    /// non-trivial slice cut contains `e` (the paper's `J_b(e) = E` case).
    pub fn least_cut(&self, e: EventId) -> Option<&Cut> {
        self.cut_at(self.tables.ix[e.as_usize()])
    }

    #[inline]
    fn cut_at(&self, ix: u32) -> Option<&Cut> {
        if ix == NO_CUT {
            None
        } else {
            Some(&self.tables.cuts[ix as usize])
        }
    }

    /// Number of distinct least-cut payloads (one per SCC that appears in
    /// some slice cut) — events of a meta-event share one payload.
    pub fn distinct_j_cuts(&self) -> usize {
        self.tables.cuts.len()
    }

    /// Checks whether `cut` is a consistent cut of the slice.
    pub fn contains_cut(&self, cut: &Cut) -> bool {
        if !self.comp.is_consistent(cut) {
            return false;
        }
        // Frontier events suffice: J is monotone along process order.
        self.comp.processes().all(|p| {
            let frontier = self.comp.frontier(cut, p);
            match self.least_cut(frontier) {
                Some(j) => j.leq(cut),
                None => false,
            }
        })
    }

    /// The meta-events of the slice: maximal sets of events that appear in
    /// slice cuts only together (strongly connected components of the
    /// constraint graph), restricted to events that appear in some slice
    /// cut. Returned in topological order of the condensation.
    pub fn meta_events(&self) -> Vec<Vec<EventId>> {
        let (graph, num_events) = build_graph(self.comp, &self.edges);
        let scc = graph.tarjan_scc();
        let mut metas = Vec::new();
        for cid in scc.topo_order() {
            let mut members: Vec<EventId> = scc
                .members(cid)
                .iter()
                .filter(|&&v| (v as usize) < num_events)
                .map(|&v| EventId::new(v as usize))
                .filter(|&e| self.tables.ix[e.as_usize()] != NO_CUT)
                .collect();
            if members.is_empty() {
                continue;
            }
            members.sort_unstable();
            metas.push(members);
        }
        metas
    }

    /// Count of non-trivial consistent cuts, stopping at `cap` (see
    /// [`count_cuts`](slicing_computation::lattice::count_cuts)).
    pub fn count_cuts(&self, cap: Option<u64>) -> slicing_computation::lattice::CutCount {
        slicing_computation::lattice::count_cuts(self, cap)
    }

    /// Estimated heap footprint of the slice's tables in bytes, used by the
    /// detection metrics (the paper reports memory for "computing and
    /// storing the slice").
    pub fn approx_bytes(&self) -> usize {
        let n = self.comp.num_processes();
        let cut_bytes = std::mem::size_of::<Cut>() + 4 * n;
        // Cut payloads are stored once per SCC; the per-event table holds
        // only 4-byte indices.
        self.edges.len() * std::mem::size_of::<Edge>()
            + (self.tables.ix.len() + self.tables.next_j.len() + self.tables.proc_off.len())
                * std::mem::size_of::<u32>()
            + self.tables.cuts.len() * cut_bytes
    }

    /// Calls `f` with the J index of each enabled next event of `cut`, in
    /// ascending process order, skipping (up to [`DEDUP_WIDTH`] distinct
    /// indices) repeats that would produce an identical successor.
    #[inline]
    fn for_each_enabled_j(&self, counts: &[u32], mut f: impl FnMut(u32)) {
        let next_j = &self.tables.next_j;
        let proc_off = &self.tables.proc_off;
        let mut seen = [NO_CUT; DEDUP_WIDTH];
        let mut seen_len = 0usize;
        for (p, &c) in counts.iter().enumerate() {
            // One load covers "process exhausted", "event forbidden", and
            // the J lookup: the table stores NO_CUT at the last count.
            let jx = next_j[(proc_off[p] + c - 1) as usize];
            if jx == NO_CUT {
                continue;
            }
            if seen_len < DEDUP_WIDTH {
                if seen[..seen_len].contains(&jx) {
                    // Same J index ⇒ byte-identical successor: the first
                    // occurrence already represented it.
                    continue;
                }
                seen[seen_len] = jx;
                seen_len += 1;
            }
            f(jx);
        }
    }
}

impl fmt::Debug for Slice<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Slice")
            .field("num_events", &self.comp.num_events())
            .field("num_constraint_edges", &self.edges.len())
            .field("is_empty", &self.is_empty_slice())
            .finish()
    }
}

impl CutSpace for Slice<'_> {
    fn num_processes(&self) -> usize {
        self.comp.num_processes()
    }

    fn bottom(&self) -> Option<Cut> {
        self.bottom_cut().cloned()
    }

    fn successors(&self, cut: &Cut, out: &mut Vec<Cut>) {
        self.for_each_successor(cut, &mut |next| out.push(next.clone()));
    }

    fn for_each_successor(&self, cut: &Cut, f: &mut dyn FnMut(&Cut)) {
        let cuts = &self.tables.cuts;
        let counts = cut.counts();
        let mut succ = cut.clone();
        self.for_each_enabled_j(counts, |jx| {
            // One fused pass writes max(cut, J) into the scratch (stack
            // copies for inline-width cuts) and lends it out — no
            // allocation, no per-successor clone.
            succ.assign_join_counts(counts, cuts[jx as usize].counts());
            f(&succ);
        });
    }

    fn count_successors(&self, cut: &Cut) -> usize {
        // Census without materializing: distinct J indices are counted
        // straight off the per-event table — no join, no hash, no clone.
        let mut n = 0usize;
        self.for_each_enabled_j(cut.counts(), |_| n += 1);
        n
    }

    fn for_each_successor_packed(
        &self,
        counts: &[u32],
        key: u64,
        packing: &CutPacking,
        f: &mut dyn FnMut(u64, u32),
    ) -> bool {
        let pj = self.packed_j.get_or_init(|| PackedJ {
            lane_bits: packing.lane_bits(),
            rows: self
                .tables
                .cuts
                .iter()
                .map(|c| packing.pack(c.counts()))
                .collect(),
        });
        if pj.lane_bits != packing.lane_bits() {
            // A different plan than the one the cache was built for —
            // refuse the fast path rather than emit garbage keys.
            return false;
        }
        let rows = &pj.rows;
        self.for_each_enabled_j(counts, |jx| {
            // The whole successor step stays in packed space: a SWAR join
            // of the parent key with the packed J row, and a one-multiply
            // size for band selection. No per-lane loop, no Cut.
            let succ = packing.join(key, rows[jx as usize]);
            f(succ, packing.size_of(succ));
        });
        true
    }
}

/// Builds the full constraint digraph: nodes are events plus ⊤ (index
/// `num_events`); edges point along the "required-by" direction (`u → v`
/// means `v ∈ C ⇒ u ∈ C`, i.e. happened-before order for base edges).
///
/// Cold-path variant kept for [`Slice::meta_events`]; the J-table builder
/// flattens the same edges into the warm workspace instead.
fn build_graph(comp: &Computation, edges: &[Edge]) -> (Digraph, usize) {
    let num_events = comp.num_events();
    let mut g = Digraph::new(num_events + 1);
    push_graph_edges(comp, edges, &mut |u, v| g.add_edge(u, v));
    // Predicate slicers routinely emit constraint edges that duplicate the
    // base happened-before edges (or each other); collapse them so the SCC
    // and condensation passes scale with distinct edges only.
    g.dedup_edges();
    (g, num_events)
}

/// Emits every edge of the constraint digraph (base process order,
/// messages, the initial-event cycle, then the constraint edges) through
/// `emit`, without building any graph structure.
fn push_graph_edges(comp: &Computation, edges: &[Edge], emit: &mut impl FnMut(u32, u32)) {
    let num_events = comp.num_events();
    let node_index = |n: Node| -> u32 {
        match n {
            Node::Event(e) => e.as_u32(),
            Node::Top => num_events as u32,
        }
    };

    // Process-order edges.
    for p in comp.processes() {
        for pos in 1..comp.len(p) {
            emit(
                comp.event_at(p, pos - 1).as_u32(),
                comp.event_at(p, pos).as_u32(),
            );
        }
    }
    // Message edges.
    for m in comp.messages() {
        emit(m.send.as_u32(), m.recv.as_u32());
    }
    // The initial-event cycle: all ⊥ᵢ form one meta-event.
    let n = comp.num_processes();
    if n > 1 {
        for i in 0..n {
            let a = comp.event_at(ProcessId::new(i), 0).as_u32();
            let b = comp.event_at(ProcessId::new((i + 1) % n), 0).as_u32();
            emit(a, b);
        }
    }
    // Constraint edges.
    for &(u, v) in edges {
        emit(node_index(u), node_index(v));
    }
}

/// Warm per-thread workspace for J-table construction: the flat edge list,
/// the CSR Tarjan scratch, and one `u32` count row per SCC. Every buffer
/// survives across builds, so repeated slicing is allocation-free once the
/// high-water marks are reached.
#[derive(Default)]
struct JWorkspace {
    graph_edges: Vec<(u32, u32)>,
    scc: SccScratch,
    /// `num_sccs × n` count rows: row `cid` is the running join of the
    /// component's own frontier contribution and everything pushed in from
    /// predecessors.
    rows: Vec<u32>,
    /// Component reaches ⊤ (its events are in no slice cut).
    poisoned: Vec<bool>,
    /// Per-target last-source stamp, deduplicating parallel condensation
    /// edges during propagation without building a condensation graph.
    stamp: Vec<u32>,
    /// SCC id → dense index into the live-cut pool.
    dense: Vec<u32>,
}

thread_local! {
    static J_WORKSPACE: RefCell<JWorkspace> = RefCell::new(JWorkspace::default());
}

/// Computes the `J` tables: for every event, the least slice cut containing
/// it ([`NO_CUT`] if unreachable without ⊤), storing one cut per live SCC.
/// Runs in `O(n·(|E| + |edges|))` on the warm workspace.
fn compute_j_table(comp: &Computation, edges: &[Edge]) -> JTables {
    let _span = slicing_observe::span("slice.j_table");
    let num_events = comp.num_events();
    let n = comp.num_processes();
    slicing_observe::counter("slice.j_table.builds", 1);

    J_WORKSPACE.with(|ws| {
        let ws = &mut *ws.borrow_mut();
        let JWorkspace {
            graph_edges,
            scc,
            rows,
            poisoned,
            stamp,
            dense,
        } = ws;

        graph_edges.clear();
        push_graph_edges(comp, edges, &mut |u, v| graph_edges.push((u, v)));
        {
            let _span = slicing_observe::span("slice.scc");
            scc.decompose(num_events + 1, graph_edges);
        }
        let nc = scc.num_components();
        slicing_observe::gauge("slice.constraint_edges", edges.len() as u64);
        slicing_observe::gauge("slice.scc_components", nc as u64);

        // Seed every row with the bottom cut joined with the component's
        // own contribution: the frontier positions of its member events.
        rows.clear();
        rows.resize(nc * n, 1);
        poisoned.clear();
        poisoned.resize(nc, false);
        let top_comp = scc.comp_of(num_events as u32);
        poisoned[top_comp as usize] = true;
        for e in 0..num_events {
            let ev = EventId::new(e);
            let cid = scc.comp_of(e as u32) as usize;
            let p = comp.process_of(ev).as_usize();
            let pos = comp.position_of(ev);
            let slot = &mut rows[cid * n + p];
            *slot = (*slot).max(pos + 1);
        }

        // Single push-forward pass in topological order: components are
        // numbered in reverse topological order, so every condensation
        // edge goes from a higher id to a lower one — iterating ids
        // downwards means a component's row is final when visited, and its
        // value (or poison) is pushed into each distinct successor once.
        stamp.clear();
        stamp.resize(nc, u32::MAX);
        let mut row_joins = 0u64;
        for cid in (0..nc as u32).rev() {
            let src_poisoned = poisoned[cid as usize];
            let (targets, src) = rows.split_at_mut(cid as usize * n);
            let src = &src[..n];
            for &v in scc.members(cid) {
                for &w in scc.neighbors(v) {
                    let cw = scc.comp_of(w);
                    if cw == cid || stamp[cw as usize] == cid {
                        continue;
                    }
                    stamp[cw as usize] = cid;
                    if src_poisoned {
                        poisoned[cw as usize] = true;
                    } else if !poisoned[cw as usize] {
                        let dst = &mut targets[cw as usize * n..cw as usize * n + n];
                        for (d, &s) in dst.iter_mut().zip(src) {
                            *d = (*d).max(s);
                        }
                        row_joins += 1;
                    }
                }
            }
        }
        slicing_observe::counter("slice.j_table.row_joins", row_joins);

        // Materialize one cut per live component; events index into the
        // dense pool (inline payloads for ≤16 processes — building the
        // table costs zero cut heap allocations).
        dense.clear();
        dense.resize(nc, NO_CUT);
        let mut cuts = Vec::new();
        for cid in 0..nc {
            if poisoned[cid] {
                continue;
            }
            dense[cid] = cuts.len() as u32;
            cuts.push(Cut::from_counts(&rows[cid * n..cid * n + n]));
        }
        slicing_observe::counter("slice.j_table.live_sccs", cuts.len() as u64);
        let ix: Vec<u32> = (0..num_events)
            .map(|e| dense[scc.comp_of(e as u32) as usize])
            .collect();
        // The least slice cut is J(⊥₀) — all initial events share its SCC.
        let init = comp.event_at(ProcessId::new(0), 0);
        let bottom_ix = ix[init.as_usize()];
        // Flatten the per-(process, count) successor lookup: counts run
        // 1..=len(p); the entry at count c is the J index of the event at
        // position c, with NO_CUT at c == len(p) (process exhausted).
        let mut proc_off = Vec::with_capacity(n + 1);
        let mut next_j = Vec::with_capacity(num_events + n);
        proc_off.push(0u32);
        for p in comp.processes() {
            let len = comp.len(p);
            for c in 1..len {
                next_j.push(ix[comp.event_at(p, c).as_usize()]);
            }
            next_j.push(NO_CUT);
            proc_off.push(next_j.len() as u32);
        }
        JTables {
            cuts,
            ix,
            next_j,
            proc_off,
            bottom_ix,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_computation::lattice::all_cuts;
    use slicing_computation::test_fixtures::{figure1, grid};

    #[test]
    fn full_slice_matches_computation_lattice() {
        let comp = figure1();
        let slice = Slice::full(&comp);
        assert!(!slice.is_empty_slice());
        let a = all_cuts(&comp);
        let b = all_cuts(&slice);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_slice_has_no_cuts() {
        let comp = grid(2, 2);
        let slice = Slice::empty(&comp);
        assert!(slice.is_empty_slice());
        assert_eq!(slice.bottom_cut(), None);
        assert_eq!(all_cuts(&slice).len(), 0);
        assert!(!slice.contains_cut(&Cut::bottom(2)));
    }

    #[test]
    fn least_cut_of_unconstrained_event_is_its_min_cut() {
        let comp = figure1();
        let slice = Slice::full(&comp);
        for e in comp.events() {
            let j = slice.least_cut(e).expect("full slice never forbids");
            assert_eq!(j, comp.min_cut(e), "event {}", comp.describe_event(e));
        }
    }

    #[test]
    fn constraint_edge_restricts_cuts() {
        // grid(1,1): cuts are (1,1),(2,1),(1,2),(2,2). Force: p1's event
        // requires p0's event.
        let comp = grid(1, 1);
        let e0 = comp.event_at(comp.process(0), 1);
        let e1 = comp.event_at(comp.process(1), 1);
        let slice = Slice::new(&comp, vec![(Node::Event(e0), Node::Event(e1))]);
        let cuts = all_cuts(&slice);
        assert_eq!(cuts.len(), 3);
        assert!(!cuts.contains(&Cut::from(vec![1, 2])));
        assert!(slice.contains_cut(&Cut::from(vec![2, 2])));
        assert!(!slice.contains_cut(&Cut::from(vec![1, 2])));
    }

    #[test]
    fn top_edge_forbids_event_and_successors() {
        let comp = grid(2, 1);
        let e01 = comp.event_at(comp.process(0), 1);
        let slice = Slice::new(&comp, vec![(Node::Top, Node::Event(e01))]);
        // p0 can never advance: cuts are (1,1) and (1,2).
        let cuts = all_cuts(&slice);
        assert_eq!(cuts.len(), 2);
        assert_eq!(slice.least_cut(e01), None);
        let e02 = comp.event_at(comp.process(0), 2);
        assert_eq!(slice.least_cut(e02), None, "successor of forbidden event");
    }

    #[test]
    fn required_event_via_initial_edge() {
        // Forcing e (p0 pos 1) into every cut: edge (e → ⊥₀).
        let comp = grid(1, 1);
        let e = comp.event_at(comp.process(0), 1);
        let init = comp.event_at(comp.process(0), 0);
        let slice = Slice::new(&comp, vec![(Node::Event(e), Node::Event(init))]);
        let cuts = all_cuts(&slice);
        assert_eq!(cuts.len(), 2); // (2,1) and (2,2)
        assert!(cuts.iter().all(|c| c.count(comp.process(0)) == 2));
        assert_eq!(slice.bottom_cut().unwrap(), &Cut::from(vec![2, 1]));
    }

    #[test]
    fn contradictory_constraints_empty_the_slice() {
        // Require e and forbid e simultaneously.
        let comp = grid(1, 1);
        let e = comp.event_at(comp.process(0), 1);
        let init = comp.event_at(comp.process(0), 0);
        let slice = Slice::new(
            &comp,
            vec![
                (Node::Event(e), Node::Event(init)),
                (Node::Top, Node::Event(e)),
            ],
        );
        assert!(slice.is_empty_slice());
    }

    #[test]
    fn meta_events_group_scc_members() {
        // Cycle e0 ↔ e1 via a constraint back-edge.
        let comp = grid(1, 1);
        let e0 = comp.event_at(comp.process(0), 1);
        let e1 = comp.event_at(comp.process(1), 1);
        let slice = Slice::new(
            &comp,
            vec![
                (Node::Event(e0), Node::Event(e1)),
                (Node::Event(e1), Node::Event(e0)),
            ],
        );
        let metas = slice.meta_events();
        // Initial meta-event {⊥0, ⊥1} first, then {e0, e1}.
        assert_eq!(metas.len(), 2);
        assert_eq!(metas[0].len(), 2);
        assert_eq!(metas[1], vec![e0, e1]);
        // Cuts: bottom and bottom+{e0,e1}.
        assert_eq!(all_cuts(&slice).len(), 2);
    }

    #[test]
    fn slice_cuts_are_a_sublattice() {
        let comp = figure1();
        let e0 = comp.event_by_label("b").unwrap();
        let e1 = comp.event_by_label("g").unwrap();
        let slice = Slice::new(&comp, vec![(Node::Event(e0), Node::Event(e1))]);
        let cuts: std::collections::BTreeSet<Cut> = all_cuts(&slice).into_iter().collect();
        assert!(slicing_computation::oracle::is_sublattice(&cuts));
        for c in &cuts {
            assert!(slice.contains_cut(c));
        }
    }

    #[test]
    fn j_table_shares_cuts_per_scc_without_deep_clones() {
        use slicing_computation::{cut_heap_allocs, ComputationBuilder};

        // 20 processes — past the inline width, so any cut copy would have
        // to touch the heap — with 3 real events each and no messages.
        let mut b = ComputationBuilder::new(20);
        for i in 0..20 {
            for _ in 0..3 {
                b.append_event(b.process(i));
            }
        }
        let comp = b.build().unwrap();
        let slice = Slice::full(&comp);

        // All initial events form one SCC and share one dense index; the
        // bottom cut is the same table entry, not a copy.
        let init0 = comp.event_at(ProcessId::new(0), 0);
        let init7 = comp.event_at(ProcessId::new(7), 0);
        let j0 = slice.tables.ix[init0.as_usize()];
        let j7 = slice.tables.ix[init7.as_usize()];
        assert_ne!(j0, NO_CUT);
        assert_eq!(j0, j7);
        assert_eq!(slice.tables.bottom_ix, j0);
        assert!(std::ptr::eq(
            slice.least_cut(init0).unwrap(),
            slice.bottom_cut().unwrap()
        ));
        // One payload per SCC with slice cuts: the initial meta-event plus
        // 20 × 3 singleton components (⊤'s component stores none).
        assert_eq!(slice.distinct_j_cuts(), 61);

        // Queries and whole-slice clones only bump the table's reference
        // count: zero cut heap allocations even though every payload is
        // spilled.
        let before = cut_heap_allocs();
        let dup = slice.clone();
        assert!(dup.bottom_cut().is_some());
        for e in comp.events() {
            let _ = slice.least_cut(e);
        }
        assert_eq!(cut_heap_allocs() - before, 0);
    }

    #[test]
    fn warm_rebuilds_do_not_allocate_cut_heap() {
        use slicing_computation::cut_heap_allocs;

        // Inline width (≤16 processes): after one warming build, repeated
        // slicing reuses the thread-local workspace and the inline cut
        // payloads — zero cut heap allocations.
        let comp = figure1();
        let e0 = comp.event_by_label("b").unwrap();
        let e1 = comp.event_by_label("g").unwrap();
        let edges = vec![(Node::Event(e0), Node::Event(e1))];
        let warm = Slice::new(&comp, edges.clone());
        let before = cut_heap_allocs();
        for _ in 0..10 {
            let s = Slice::new(&comp, edges.clone());
            assert_eq!(s.distinct_j_cuts(), warm.distinct_j_cuts());
        }
        assert_eq!(cut_heap_allocs() - before, 0);
    }

    #[test]
    fn count_successors_matches_materialized_stream() {
        let comp = figure1();
        let e0 = comp.event_by_label("b").unwrap();
        let e1 = comp.event_by_label("g").unwrap();
        let slice = Slice::new(&comp, vec![(Node::Event(e0), Node::Event(e1))]);
        for cut in all_cuts(&slice) {
            let mut succ = Vec::new();
            slice.successors(&cut, &mut succ);
            assert_eq!(slice.count_successors(&cut), succ.len(), "cut {cut:?}");
        }
    }

    #[test]
    fn successor_stream_has_no_same_index_duplicates() {
        // A meta-event spanning both processes is enabled from the bottom
        // cut on two frontier processes; the deduped stream emits the
        // successor once.
        let comp = grid(1, 1);
        let e0 = comp.event_at(comp.process(0), 1);
        let e1 = comp.event_at(comp.process(1), 1);
        let slice = Slice::new(
            &comp,
            vec![
                (Node::Event(e0), Node::Event(e1)),
                (Node::Event(e1), Node::Event(e0)),
            ],
        );
        let bottom = CutSpace::bottom(&slice).unwrap();
        let mut succ = Vec::new();
        slice.successors(&bottom, &mut succ);
        assert_eq!(succ, vec![Cut::from(vec![2, 2])]);
        assert_eq!(slice.count_successors(&bottom), 1);
    }

    #[test]
    fn debug_and_bytes() {
        let comp = grid(1, 1);
        let slice = Slice::full(&comp);
        assert!(format!("{slice:?}").contains("Slice"));
        assert!(slice.approx_bytes() > 0);
        assert_eq!(slice.count_cuts(None).value(), 4);
        assert_eq!(slice.computation().num_events(), comp.num_events());
        assert!(slice.edges().is_empty());
    }
}
