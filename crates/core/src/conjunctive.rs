//! Optimal `O(|E|)` slicing for conjunctive predicates.

use slicing_computation::Computation;
use slicing_predicates::Conjunctive;

use crate::slice::{Edge, Node, Slice};

/// Computes the (lean) slice of `comp` with respect to a conjunctive
/// predicate in optimal `O(|E|)` time plus the cost of evaluating the local
/// conjuncts once per event.
///
/// A consistent cut satisfies a conjunction of local predicates exactly
/// when every process's *frontier* event satisfies its process's conjuncts.
/// So for every event `e` at which some conjunct of its process is false,
/// no satisfying cut has `e` on the frontier, which is captured by a single
/// local edge:
///
/// - `succ(e) → e` ("if `e` is in the cut, so is its successor"), or
/// - `⊤ → e` when `e` is the last event of its process.
///
/// That is `O(1)` work per event, and the resulting cut set is exactly the
/// satisfying cuts (conjunctive predicates are regular) — this is the
/// optimal algorithm the paper's Section 4.2 invokes for each DNF clause.
pub fn slice_conjunctive<'a>(comp: &'a Computation, pred: &Conjunctive) -> Slice<'a> {
    let _span = slicing_observe::span("slice.conjunctive");
    let mut edges: Vec<Edge> = Vec::new();
    for p in comp.processes() {
        // Skip processes hosting no conjunct entirely.
        if pred.clauses_on(p).next().is_none() {
            continue;
        }
        let len = comp.len(p);
        for pos in 0..len {
            if pred.holds_at(comp, p, pos) {
                continue;
            }
            let e = comp.event_at(p, pos);
            if pos + 1 < len {
                edges.push((Node::Event(comp.event_at(p, pos + 1)), Node::Event(e)));
            } else {
                edges.push((Node::Top, Node::Event(e)));
            }
        }
    }
    Slice::new(comp, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_computation::lattice::all_cuts;
    use slicing_computation::oracle::expected_slice_cuts;
    use slicing_computation::test_fixtures::{figure1, random_computation, RandomConfig};
    use slicing_computation::{Cut, GlobalState};
    use slicing_predicates::{LocalPredicate, Predicate};
    use std::collections::BTreeSet;

    fn figure1_pred(comp: &Computation) -> Conjunctive {
        let x1 = comp.var(comp.process(0), "x1").unwrap();
        let x3 = comp.var(comp.process(2), "x3").unwrap();
        Conjunctive::new(vec![
            LocalPredicate::int(x1, "x1 > 1", |x| x > 1),
            LocalPredicate::int(x3, "x3 <= 3", |x| x <= 3),
        ])
    }

    #[test]
    fn figure1_slice_has_six_cuts() {
        let comp = figure1();
        let pred = figure1_pred(&comp);
        let slice = slice_conjunctive(&comp, &pred);
        let cuts = all_cuts(&slice);
        assert_eq!(cuts.len(), 6);
        for c in &cuts {
            assert!(pred.eval(&GlobalState::new(&comp, c)), "cut {c} not lean");
        }
        // The exact cut vectors from the reconstruction.
        let expect: Vec<Cut> = [
            vec![1, 2, 2],
            vec![1, 2, 3],
            vec![1, 3, 3],
            vec![2, 2, 2],
            vec![2, 2, 3],
            vec![2, 3, 3],
        ]
        .into_iter()
        .map(Cut::from)
        .collect();
        assert_eq!(cuts, expect);
    }

    #[test]
    fn edge_count_is_linear_in_events() {
        let comp = figure1();
        let pred = figure1_pred(&comp);
        let slice = slice_conjunctive(&comp, &pred);
        // At most one edge per event of a constrained process.
        assert!(slice.edges().len() <= comp.num_events());
    }

    #[test]
    fn agrees_with_linear_slicer_and_oracle_on_random_inputs() {
        let cfg = RandomConfig {
            processes: 3,
            events_per_process: 4,
            value_range: 3,
            ..RandomConfig::default()
        };
        for seed in 0..30 {
            let comp = random_computation(seed, &cfg);
            let clauses: Vec<LocalPredicate> = comp
                .processes()
                .map(|p| {
                    let x = comp.var(p, "x").unwrap();
                    let t = (seed % 3) as i64;
                    LocalPredicate::int(x, format!("x != {t}"), move |v| v != t)
                })
                .collect();
            let pred = Conjunctive::new(clauses);

            let fast: BTreeSet<Cut> = all_cuts(&slice_conjunctive(&comp, &pred))
                .into_iter()
                .collect();
            let general: BTreeSet<Cut> = all_cuts(&crate::linear::slice_linear(&comp, &pred))
                .into_iter()
                .collect();
            assert_eq!(fast, general, "seed {seed}: O(|E|) vs O(n²|E|) slicer");

            let (want, sat) = expected_slice_cuts(&comp, |st| pred.eval(st));
            assert_eq!(fast, want, "seed {seed}: oracle");
            // Lean: the closure added nothing.
            assert_eq!(want.len(), sat.len(), "seed {seed}: leanness");
        }
    }

    #[test]
    fn empty_conjunction_gives_full_lattice() {
        let comp = figure1();
        let slice = slice_conjunctive(&comp, &Conjunctive::new(vec![]));
        assert_eq!(all_cuts(&slice).len(), 28);
        assert!(slice.edges().is_empty());
    }

    #[test]
    fn false_final_event_forbidden_via_top() {
        let comp = figure1();
        // x1's last value is 0, so "x1 > 0 at the end" can't hold with d.
        let x1 = comp.var(comp.process(0), "x1").unwrap();
        let pred = Conjunctive::new(vec![LocalPredicate::int(x1, "x1 > 0", |x| x > 0)]);
        let slice = slice_conjunctive(&comp, &pred);
        let d = comp.event_by_label("d").unwrap();
        assert_eq!(slice.least_cut(d), None);
        // c (x1 = -1) is allowed only together with d... which is
        // forbidden, so c is effectively forbidden too.
        let c = comp.event_by_label("c").unwrap();
        assert_eq!(slice.least_cut(c), None);
    }

    #[test]
    fn unsatisfiable_conjunction_empties_slice() {
        let comp = figure1();
        let x2 = comp.var(comp.process(1), "x2").unwrap();
        let pred = Conjunctive::new(vec![LocalPredicate::int(x2, "x2 > 10", |x| x > 10)]);
        assert!(slice_conjunctive(&comp, &pred).is_empty_slice());
    }
}
