//! An op-based *PN-counter CRDT replication* protocol: every replica
//! generates increment/decrement operations, broadcasts them eagerly, and
//! applies remote operations in per-origin FIFO order, acking each one. A
//! bounded generation window (a replica stops generating once its oldest
//! unacked op is `WINDOW` behind) keeps replicas convergent.
//!
//! Operation deltas are a pure function of `(origin, seq)` — see
//! `op_delta` — so no op log needs to be recorded or restored: any state
//! is reconstructible from the monotone counters alone.
//!
//! Four invariants hold at **every** consistent cut of a fault-free (or
//! rolled-back-and-resumed) run:
//!
//! - **No phantom ops**: `seen_i[r] ≤ ops_r` — a replica never applies an
//!   op its origin has not generated. Both counters are monotone, so the
//!   violation is a *co-regular* leaf.
//! - **Eventual delivery** (bounded staleness): `ops_r − seen_i[r] ≤
//!   WINDOW` — the ack window throttles generation, so no replica falls
//!   more than a window behind any origin. Also co-regular.
//! - **Bounded divergence**: `|sum_i − sum_j| ≤ n·WINDOW` — summing the
//!   per-origin windows bounds how far two replicas' counter values can
//!   drift. `sum` is *not* monotone (deltas are ±1), so this is a 2-local
//!   leaf, not a counter clause.
//! - **Local consistency**: `sum_i` equals the delta-prefix sum implied by
//!   `(ops_i, seen_i[*])` — a 1-local clause that pins every replica's
//!   arithmetic.
//!
//! A global fault is a consistent cut violating any of the four.

use rand::rngs::StdRng;
use rand::RngExt;

use slicing_computation::{Computation, ComputationBuilder, ProcSet, Value, VarRef};
use slicing_core::PredicateSpec;
use slicing_predicates::{
    BoundedDifference, Conjunctive, FnPredicate, KLocalPredicate, LocalPredicate, MonotoneDominates,
};

use crate::runtime::{Actions, MsgPayload, Protocol};

const MSG_OP: u32 = 0;
const MSG_ACK: u32 = 1;

/// How many unacked ops a replica may have outstanding per peer before it
/// stops generating.
pub const WINDOW: i64 = 2;

/// The deterministic delta of op `seq` (1-based) from `origin`: every
/// fourth op of a replica (phase-shifted by its index) decrements, the
/// rest increment.
fn op_delta(origin: usize, seq: i64) -> i64 {
    if (seq + origin as i64) % 4 == 0 {
        -1
    } else {
        1
    }
}

/// Sum of [`op_delta`] over `origin`'s first `upto` ops.
fn delta_prefix(origin: usize, upto: i64) -> i64 {
    (1..=upto).map(|s| op_delta(origin, s)).sum()
}

/// The divergence bound `k = n·WINDOW` the protocol guarantees between any
/// two replicas' sums.
pub fn divergence_bound(n: usize) -> i64 {
    n as i64 * WINDOW
}

/// Variable handles of one replica: its own counters plus per-peer
/// `seen`/`ack` columns.
#[derive(Debug, Clone)]
struct Vars {
    ops: VarRef,
    sum: VarRef,
    /// `seen[r]` — how many of replica `r`'s ops we applied (unused slot
    /// at our own index).
    seen: Vec<Option<VarRef>>,
    /// `ack[r]` — how many of *our* ops replica `r` has acked.
    ack: Vec<Option<VarRef>>,
}

/// The CRDT replication protocol (see module docs).
#[derive(Debug)]
pub struct CrdtReplication {
    n: usize,
    vars: Vec<Option<Vars>>,
    // Mirrors of the exposed state, used by the state machine.
    ops: Vec<i64>,
    sum: Vec<i64>,
    seen: Vec<Vec<i64>>,
    ack_from: Vec<Vec<i64>>,
    /// Highest own op seq already sent to each peer; lags behind `ops`
    /// only after a rollback, which the catch-up path repairs.
    sent_to: Vec<Vec<i64>>,
    /// Probability (percent) that an idle step generates an op.
    gen_percent: u32,
}

impl CrdtReplication {
    /// Creates the protocol over `n ≥ 2` replicas.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "CRDT replication needs two replicas");
        CrdtReplication {
            n,
            vars: vec![None; n],
            ops: vec![0; n],
            sum: vec![0; n],
            seen: vec![vec![0; n]; n],
            ack_from: vec![vec![0; n]; n],
            sent_to: vec![vec![0; n]; n],
            gen_percent: 40,
        }
    }

    fn v(&self, p: usize) -> &Vars {
        self.vars[p].as_ref().expect("declare_vars ran")
    }

    fn peers(&self, p: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.n).filter(move |&q| q != p)
    }
}

impl Protocol for CrdtReplication {
    fn num_processes(&self) -> usize {
        self.n
    }

    fn declare_vars(&mut self, p: usize, b: &mut ComputationBuilder) {
        let pid = b.process(p);
        let mut vars = Vars {
            ops: b.declare_var(pid, "ops", Value::Int(0)),
            sum: b.declare_var(pid, "sum", Value::Int(0)),
            seen: vec![None; self.n],
            ack: vec![None; self.n],
        };
        for r in 0..self.n {
            if r != p {
                vars.seen[r] = Some(b.declare_var(pid, &format!("seen{r}"), Value::Int(0)));
                vars.ack[r] = Some(b.declare_var(pid, &format!("ack{r}"), Value::Int(0)));
            }
        }
        self.vars[p] = Some(vars);
    }

    fn step(&mut self, p: usize, rng: &mut StdRng, out: &mut Actions) {
        // Catch-up first: after a rollback `sent_to` restarts at the acked
        // frontier, so everything above it is re-broadcast. Peers that
        // already hold a resent op simply re-ack it, which is exactly what
        // un-wedges the generation window causally.
        let deficits: Vec<usize> = self
            .peers(p)
            .filter(|&q| self.sent_to[p][q] < self.ops[p])
            .collect();
        if !deficits.is_empty() {
            for q in deficits {
                for seq in self.sent_to[p][q] + 1..=self.ops[p] {
                    out.send(q, (MSG_OP, seq));
                }
                self.sent_to[p][q] = self.ops[p];
            }
            return;
        }
        let min_acked = self.peers(p).map(|q| self.ack_from[p][q]).min().unwrap();
        if self.ops[p] - min_acked < WINDOW && rng.random_range(0..100u32) < self.gen_percent {
            // Generate and eagerly broadcast one op.
            self.ops[p] += 1;
            self.sum[p] += op_delta(p, self.ops[p]);
            let vars = self.v(p);
            out.set(vars.ops, self.ops[p]);
            out.set(vars.sum, self.sum[p]);
            for q in self.peers(p) {
                out.send(q, (MSG_OP, self.ops[p]));
            }
            for q in 0..self.n {
                self.sent_to[p][q] = self.ops[p];
            }
        } else {
            out.internal();
        }
    }

    fn on_message(&mut self, p: usize, from: usize, payload: MsgPayload, out: &mut Actions) {
        match payload.0 {
            MSG_OP => {
                let seq = payload.1;
                if seq == self.seen[p][from] + 1 {
                    self.seen[p][from] = seq;
                    self.sum[p] += op_delta(from, seq);
                    let vars = self.v(p);
                    out.set(vars.seen[from].unwrap(), seq);
                    out.set(vars.sum, self.sum[p]);
                    out.send(from, (MSG_ACK, seq));
                } else {
                    // A duplicate from a post-rollback re-broadcast — or a
                    // gap when replaying from a cut of a structurally
                    // faulted run: re-ack our applied frontier so the
                    // sender's window reopens without applying out of order.
                    out.send(from, (MSG_ACK, self.seen[p][from]));
                }
            }
            MSG_ACK => {
                let seq = payload.1;
                if seq > self.ack_from[p][from] {
                    self.ack_from[p][from] = seq;
                    out.set(self.v(p).ack[from].unwrap(), seq);
                } else {
                    out.internal();
                }
            }
            other => panic!("unknown CRDT message tag {other}"),
        }
    }

    fn restore(&mut self, base: &Computation, line: &slicing_computation::Cut) {
        // Everything is rebuilt from each replica's *own* frontier: the
        // restored `ack` values were written by ack-receives in the
        // replica's local past, so the window bound stays causally
        // justified in the resumed run (reading a peer's frontier would
        // not be). Unacked ops are treated as unsent and re-broadcast.
        for p in base.processes() {
            let i = p.as_usize();
            let pos = line.frontier_pos(p);
            let h = resolved(base, p);
            self.ops[i] = base.value_at(h.ops, pos).expect_int();
            self.sum[i] = base.value_at(h.sum, pos).expect_int();
            for r in 0..self.n {
                if r == i {
                    continue;
                }
                self.seen[i][r] = base.value_at(h.seen[r].unwrap(), pos).expect_int();
                self.ack_from[i][r] = base.value_at(h.ack[r].unwrap(), pos).expect_int();
                self.sent_to[i][r] = self.ack_from[i][r];
            }
        }
    }
}

/// Variable handles resolved against a recorded computation.
fn resolved(comp: &Computation, p: slicing_computation::ProcessId) -> Vars {
    let n = comp.num_processes();
    let mut vars = Vars {
        ops: comp.var(p, "ops").expect("protocol variable"),
        sum: comp.var(p, "sum").expect("protocol variable"),
        seen: vec![None; n],
        ack: vec![None; n],
    };
    for r in 0..n {
        if r != p.as_usize() {
            vars.seen[r] = Some(comp.var(p, &format!("seen{r}")).expect("protocol variable"));
            vars.ack[r] = Some(comp.var(p, &format!("ack{r}")).expect("protocol variable"));
        }
    }
    vars
}

/// The invariant `I_crdt`: no phantom ops, delivery within the window,
/// divergence within `n·WINDOW`, and locally consistent sums.
pub fn invariant(comp: &Computation) -> FnPredicate {
    let n = comp.num_processes();
    let k = divergence_bound(n);
    let handles: Vec<_> = comp.processes().map(|p| resolved(comp, p)).collect();
    FnPredicate::new(ProcSet::all(n), "I_crdt", move |st| {
        for i in 0..n {
            let mut expected = delta_prefix(i, st.get(handles[i].ops).expect_int());
            for r in 0..n {
                if r == i {
                    continue;
                }
                let seen = st.get(handles[i].seen[r].unwrap()).expect_int();
                let ops_r = st.get(handles[r].ops).expect_int();
                if seen > ops_r || ops_r - seen > WINDOW {
                    return false;
                }
                if st.get(handles[i].ack[r].unwrap()).expect_int()
                    > st.get(handles[i].ops).expect_int()
                {
                    return false;
                }
                expected += delta_prefix(r, seen);
            }
            if st.get(handles[i].sum).expect_int() != expected {
                return false;
            }
            for j in i + 1..n {
                let si = st.get(handles[i].sum).expect_int();
                let sj = st.get(handles[j].sum).expect_int();
                if (si - sj).abs() > k {
                    return false;
                }
            }
        }
        true
    })
}

/// The global fault `¬I_crdt` as a sliceable specification — one leaf per
/// predicate class the protocol exercises:
///
/// - `seen_i[r] > ops_r` and `ops_r − seen_i[r] > WINDOW` as **co-regular**
///   leaves ([`MonotoneDominates`] / [`BoundedDifference`] complements —
///   sound exactly because both counters are monotone),
/// - `|sum_i − sum_j| > n·WINDOW` as **2-local** leaves (`sum` is not
///   monotone, so no counter clause applies),
/// - broken local arithmetic (`ack_i[r] > ops_i`, `sum_i ≠` its delta
///   prefix) as 1-local **conjunctive** clauses.
pub fn violation_spec(comp: &Computation) -> PredicateSpec {
    let n = comp.num_processes();
    let k = divergence_bound(n);
    let handles: Vec<_> = comp.processes().map(|p| resolved(comp, p)).collect();
    let mut clauses = Vec::new();
    for i in 0..n {
        for r in 0..n {
            if r == i {
                continue;
            }
            let seen = handles[i].seen[r].unwrap();
            clauses.push(PredicateSpec::not_regular(MonotoneDominates::new(
                seen,
                handles[r].ops,
            )));
            clauses.push(PredicateSpec::not_regular(BoundedDifference::new(
                seen,
                handles[r].ops,
                WINDOW,
            )));
            clauses.push(PredicateSpec::conjunctive(Conjunctive::new(vec![
                LocalPredicate::new(
                    vec![handles[i].ack[r].unwrap(), handles[i].ops],
                    format!("ack{r}_{i} > ops_{i}"),
                    |vals| vals[0].expect_int() > vals[1].expect_int(),
                ),
            ])));
        }
        // sum_i != delta_prefix(i, ops_i) + Σ_r delta_prefix(r, seen_i[r])
        let mut vars = vec![handles[i].ops, handles[i].sum];
        let peers: Vec<usize> = (0..n).filter(|&r| r != i).collect();
        vars.extend(peers.iter().map(|&r| handles[i].seen[r].unwrap()));
        let peers_for_eval = peers.clone();
        clauses.push(PredicateSpec::conjunctive(Conjunctive::new(vec![
            LocalPredicate::new(
                vars,
                format!("sum_{i} != delta prefix of (ops_{i}, seen_{i}[*])"),
                move |vals| {
                    let mut expected = delta_prefix(i, vals[0].expect_int());
                    for (slot, &r) in peers_for_eval.iter().enumerate() {
                        expected += delta_prefix(r, vals[2 + slot].expect_int());
                    }
                    vals[1].expect_int() != expected
                },
            ),
        ])));
        for j in i + 1..n {
            clauses.push(PredicateSpec::klocal(KLocalPredicate::new(
                vec![handles[i].sum, handles[j].sum],
                format!("|sum_{i} - sum_{j}| > {k}"),
                move |vals| (vals[0].expect_int() - vals[1].expect_int()).abs() > k,
            )));
        }
    }
    PredicateSpec::or(clauses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{run, SimConfig};
    use slicing_computation::lattice::for_each_cut;
    use slicing_computation::GlobalState;
    use slicing_predicates::Predicate;

    fn small_run(seed: u64, n: usize, events: u32) -> Computation {
        let cfg = SimConfig {
            seed,
            max_events_per_process: events,
            ..SimConfig::default()
        };
        run(&mut CrdtReplication::new(n), &cfg).expect("protocol run builds")
    }

    #[test]
    fn fault_free_runs_satisfy_the_invariant_at_every_cut() {
        for seed in 0..6 {
            let comp = small_run(seed, 4, 8);
            let inv = invariant(&comp);
            for_each_cut(&comp, |cut| {
                assert!(
                    inv.eval(&GlobalState::new(&comp, cut)),
                    "seed {seed} cut {cut}"
                );
                true
            });
        }
    }

    #[test]
    fn violation_spec_matches_negated_invariant() {
        for seed in 0..4 {
            let comp = small_run(seed, 3, 6);
            let inv = invariant(&comp);
            let spec = violation_spec(&comp);
            for_each_cut(&comp, |cut| {
                let st = GlobalState::new(&comp, cut);
                assert_eq!(spec.eval(&st), !inv.eval(&st), "seed {seed} cut {cut}");
                true
            });
        }
    }

    #[test]
    fn fault_free_slice_finds_no_violation() {
        for seed in 0..4 {
            let comp = small_run(seed, 3, 7);
            let spec = violation_spec(&comp);
            let slice = spec.slice(&comp);
            let mut found = false;
            for_each_cut(&slice, |cut| {
                if spec.eval(&GlobalState::new(&comp, cut)) {
                    found = true;
                    return false;
                }
                true
            });
            assert!(!found, "seed {seed}: fault detected in fault-free run");
        }
    }

    #[test]
    fn replicas_actually_converge_on_mixed_ops() {
        // Across a small seed family: ops flow, sums move both ways, and
        // acks come back (the window throttles single runs on some seeds).
        let mut any_negative_delta = false;
        let mut max_ops = 0;
        let mut max_ack = 0;
        for seed in 0..8 {
            let comp = small_run(seed, 3, 20);
            for p in comp.processes() {
                let h = resolved(&comp, p);
                for pos in 0..comp.len(p) {
                    max_ops = max_ops.max(comp.value_at(h.ops, pos).expect_int());
                    if pos > 0 {
                        let prev = comp.value_at(h.sum, pos - 1).expect_int();
                        any_negative_delta |= comp.value_at(h.sum, pos).expect_int() < prev;
                    }
                }
                for r in 0..comp.num_processes() {
                    if let Some(ack) = h.ack[r] {
                        max_ack = max_ack.max(comp.value_at(ack, comp.len(p) - 1).expect_int());
                    }
                }
            }
        }
        assert!(max_ops >= 4, "too few ops generated: {max_ops}");
        assert!(any_negative_delta, "no decrement op was ever applied");
        assert!(max_ack >= 1, "no op was ever acked");
    }

    #[test]
    fn restore_from_every_prefix_preserves_the_invariant() {
        use crate::runtime::resume;
        let cfg = SimConfig {
            seed: 7,
            max_events_per_process: 8,
            ..SimConfig::default()
        };
        let base = run(&mut CrdtReplication::new(3), &cfg).unwrap();
        // Roll back to the causal past of a mid-run event: in-flight ops
        // and acks are lost, the catch-up path must re-broadcast.
        let p1 = base.process(1);
        let line = base.min_cut(base.event_at(p1, base.len(p1) / 2)).clone();
        let mut fresh = CrdtReplication::new(3);
        let resumed = resume(&mut fresh, &base, &line, &cfg).unwrap();
        let inv = invariant(&resumed);
        for_each_cut(&resumed, |cut| {
            assert!(
                inv.eval(&GlobalState::new(&resumed, cut)),
                "invariant violated at {cut} after resume"
            );
            true
        });
    }

    #[test]
    #[should_panic(expected = "needs two replicas")]
    fn rejects_single_replica() {
        let _ = CrdtReplication::new(1);
    }
}
