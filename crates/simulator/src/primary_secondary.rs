//! The *primary–secondary* protocol of the paper's first experiment
//! (Section 5.1, after Stoller–Unnikrishnan–Liu).
//!
//! The system must always contain a pair of processes acting together as
//! primary and secondary: a process `i` that is primary and correctly
//! thinks `j` is its secondary, while `j` is secondary and correctly
//! thinks `i` is its primary. Both roles may migrate at any time; the
//! protocol coordinates migrations so that the invariant `I_ps` holds at
//! **every** consistent cut of a fault-free run. A global fault is a
//! consistent cut satisfying `¬I_ps`.

use rand::rngs::StdRng;
use rand::RngExt;

use slicing_computation::{Computation, ComputationBuilder, ProcSet, ProcessId, Value, VarRef};
use slicing_core::PredicateSpec;
use slicing_predicates::{Conjunctive, FnPredicate, LocalPredicate};

use crate::runtime::{Actions, MsgPayload, Protocol};

const MSG_BECOME_SECONDARY: u32 = 0;
const MSG_ACK_SECONDARY: u32 = 1;
const MSG_RELEASE: u32 = 2;
const MSG_TAKE_PRIMARY: u32 = 3;
const MSG_ACK_PRIMARY: u32 = 4;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Pending {
    None,
    /// Waiting for the candidate's `AckSecondary`; remembers the old
    /// secondary to release.
    SecondaryChange {
        old: usize,
    },
    /// Waiting for the secondary's `AckPrimary`.
    PrimaryHandoff,
}

/// Variable handles of one process.
#[derive(Debug, Clone, Copy)]
struct Vars {
    is_primary: VarRef,
    is_secondary: VarRef,
    primary: VarRef,
    secondary: VarRef,
    work: VarRef,
}

/// The primary–secondary protocol (see module docs). Process 0 starts as
/// primary with process 1 as its secondary.
#[derive(Debug)]
pub struct PrimarySecondary {
    n: usize,
    vars: Vec<Option<Vars>>,
    /// Mirror of the exposed state, used by the state machine.
    is_primary: Vec<bool>,
    secondary_of: Vec<usize>,
    pending: Vec<Pending>,
    work: Vec<i64>,
    /// Probability (percent) that an idle primary starts a migration on a
    /// spontaneous step.
    change_percent: u32,
}

impl PrimarySecondary {
    /// Creates the protocol over `n ≥ 2` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "the primary-secondary protocol needs two processes");
        PrimarySecondary {
            n,
            vars: vec![None; n],
            is_primary: (0..n).map(|i| i == 0).collect(),
            secondary_of: (0..n).map(|_| 1).collect(),
            pending: vec![Pending::None; n],
            work: vec![0; n],
            change_percent: 25,
        }
    }

    fn v(&self, p: usize) -> Vars {
        self.vars[p].expect("declare_vars ran for every process")
    }
}

impl Protocol for PrimarySecondary {
    fn num_processes(&self) -> usize {
        self.n
    }

    fn declare_vars(&mut self, p: usize, b: &mut ComputationBuilder) {
        let pid = b.process(p);
        let vars = Vars {
            is_primary: b.declare_var(pid, "isPrimary", Value::Bool(p == 0)),
            is_secondary: b.declare_var(pid, "isSecondary", Value::Bool(p == 1)),
            primary: b.declare_var(pid, "primary", Value::Pid(ProcessId::new(0))),
            secondary: b.declare_var(pid, "secondary", Value::Pid(ProcessId::new(1))),
            work: b.declare_var(pid, "work", Value::Int(0)),
        };
        self.vars[p] = Some(vars);
    }

    fn step(&mut self, p: usize, rng: &mut StdRng, out: &mut Actions) {
        let vars = self.v(p);
        // Primaries occasionally migrate a role; everyone does local work.
        if self.is_primary[p]
            && self.pending[p] == Pending::None
            && rng.random_range(0..100u32) < self.change_percent
        {
            let sec = self.secondary_of[p];
            if rng.random_bool(0.5) && self.n > 2 {
                // Secondary change: pick a fresh candidate.
                let mut q = rng.random_range(0..self.n);
                while q == p || q == sec {
                    q = rng.random_range(0..self.n);
                }
                self.pending[p] = Pending::SecondaryChange { old: sec };
                out.send(q, (MSG_BECOME_SECONDARY, 0));
            } else {
                // Primary handoff to the current secondary.
                self.pending[p] = Pending::PrimaryHandoff;
                out.send(sec, (MSG_TAKE_PRIMARY, 0));
            }
            return;
        }
        // A local work event.
        self.work[p] += 1;
        out.set(vars.work, self.work[p]);
    }

    fn on_message(&mut self, p: usize, from: usize, payload: MsgPayload, out: &mut Actions) {
        let vars = self.v(p);
        match payload.0 {
            MSG_BECOME_SECONDARY => {
                out.set(vars.is_secondary, true);
                out.set(vars.primary, Value::Pid(ProcessId::new(from)));
                out.send(from, (MSG_ACK_SECONDARY, 0));
            }
            MSG_ACK_SECONDARY => {
                // The candidate (sender) is in place; switch the pointer,
                // then release the old secondary.
                let Pending::SecondaryChange { old } = self.pending[p] else {
                    // Stale ack (role moved on); treat as internal.
                    out.internal();
                    return;
                };
                self.pending[p] = Pending::None;
                self.secondary_of[p] = from;
                out.set(vars.secondary, Value::Pid(ProcessId::new(from)));
                out.send(old, (MSG_RELEASE, 0));
            }
            MSG_RELEASE => {
                out.set(vars.is_secondary, false);
            }
            MSG_TAKE_PRIMARY => {
                // The old primary `from` becomes our secondary.
                self.is_primary[p] = true;
                self.secondary_of[p] = from;
                out.set(vars.is_primary, true);
                out.set(vars.secondary, Value::Pid(ProcessId::new(from)));
                out.send(from, (MSG_ACK_PRIMARY, 0));
            }
            MSG_ACK_PRIMARY => {
                // Stop being primary; become the new primary's secondary.
                self.is_primary[p] = false;
                self.pending[p] = Pending::None;
                out.set(vars.is_primary, false);
                out.set(vars.is_secondary, true);
                out.set(vars.primary, Value::Pid(ProcessId::new(from)));
            }
            other => panic!("unknown primary-secondary message tag {other}"),
        }
    }

    fn restore(&mut self, base: &Computation, line: &slicing_computation::Cut) {
        for p in base.processes() {
            let i = p.as_usize();
            let pos = line.frontier_pos(p);
            let (ip, _, _, sec) = resolved(base, p);
            let work = base.var(p, "work").expect("protocol variable");
            self.is_primary[i] = base.value_at(ip, pos).expect_bool();
            self.secondary_of[i] = base.value_at(sec, pos).expect_pid().as_usize();
            self.work[i] = base.value_at(work, pos).expect_int();
            // Any in-flight migration handshake was lost with the channel
            // contents; restart quiescent so a primary can initiate a
            // fresh migration instead of waiting forever for an ack.
            self.pending[i] = Pending::None;
        }
    }
}

/// Variable handles resolved against a recorded computation.
fn resolved(comp: &Computation, p: ProcessId) -> (VarRef, VarRef, VarRef, VarRef) {
    (
        comp.var(p, "isPrimary").expect("protocol variable"),
        comp.var(p, "isSecondary").expect("protocol variable"),
        comp.var(p, "primary").expect("protocol variable"),
        comp.var(p, "secondary").expect("protocol variable"),
    )
}

/// The invariant `I_ps`: some pair `(i, j)` forms a correct
/// primary–secondary pair.
pub fn invariant(comp: &Computation) -> FnPredicate {
    let n = comp.num_processes();
    let handles: Vec<_> = comp.processes().map(|p| resolved(comp, p)).collect();
    FnPredicate::new(ProcSet::all(n), "I_ps", move |st| {
        for i in 0..n {
            let (ip, _, _, sec_i) = handles[i];
            if !st.get(ip).expect_bool() {
                continue;
            }
            let j = st.get(sec_i).expect_pid().as_usize();
            if j == i || j >= n {
                continue;
            }
            let (_, js, j_primary, _) = handles[j];
            if st.get(js).expect_bool() && st.get(j_primary).expect_pid().as_usize() == i {
                return true;
            }
        }
        false
    })
}

/// The global fault `¬I_ps` as a sliceable specification: a conjunction
/// over ordered pairs `(i, j)` of clauses
/// `(¬isPrimary_i ∨ secondary_i ≠ j) ∨ (¬isSecondary_j ∨ primary_j ≠ i)`,
/// each a disjunction of two local predicates — exactly the CNF of
/// 2-local clauses described in Section 5.1, whose approximate slice is
/// computable in `O(n³|E|)`.
pub fn violation_spec(comp: &Computation) -> PredicateSpec {
    let mut clauses = Vec::new();
    for i in comp.processes() {
        for j in comp.processes() {
            if i == j {
                continue;
            }
            let (ip, _, _, sec_i) = resolved(comp, i);
            let (_, js, j_primary, _) = resolved(comp, j);
            let left = LocalPredicate::new(
                vec![ip, sec_i],
                format!("!isPrimary_{i} || secondary_{i} != {j}"),
                move |vals| !vals[0].expect_bool() || vals[1].expect_pid() != j,
            );
            let right = LocalPredicate::new(
                vec![js, j_primary],
                format!("!isSecondary_{j} || primary_{j} != {i}"),
                move |vals| !vals[0].expect_bool() || vals[1].expect_pid() != i,
            );
            clauses.push(PredicateSpec::or(vec![
                PredicateSpec::conjunctive(Conjunctive::new(vec![left])),
                PredicateSpec::conjunctive(Conjunctive::new(vec![right])),
            ]));
        }
    }
    PredicateSpec::and(clauses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{run, SimConfig};
    use slicing_computation::lattice::for_each_cut;
    use slicing_computation::GlobalState;
    use slicing_predicates::Predicate;

    fn small_run(seed: u64, n: usize, events: u32) -> Computation {
        let cfg = SimConfig {
            seed,
            max_events_per_process: events,
            ..SimConfig::default()
        };
        run(&mut PrimarySecondary::new(n), &cfg).expect("protocol run builds")
    }

    #[test]
    fn fault_free_runs_satisfy_the_invariant_at_every_cut() {
        for seed in 0..6 {
            let comp = small_run(seed, 4, 8);
            let inv = invariant(&comp);
            let mut violations = 0u32;
            for_each_cut(&comp, |cut| {
                if !inv.eval(&GlobalState::new(&comp, cut)) {
                    violations += 1;
                }
                true
            });
            assert_eq!(violations, 0, "seed {seed}");
        }
    }

    #[test]
    fn violation_spec_matches_negated_invariant() {
        for seed in 0..4 {
            let comp = small_run(seed, 3, 6);
            let inv = invariant(&comp);
            let spec = violation_spec(&comp);
            for_each_cut(&comp, |cut| {
                let st = GlobalState::new(&comp, cut);
                assert_eq!(spec.eval(&st), !inv.eval(&st), "seed {seed} cut {cut}");
                true
            });
        }
    }

    #[test]
    fn fault_free_slice_is_empty_or_fault_less() {
        // The approximate slice for ¬I_ps on a fault-free run: searching
        // it must find nothing (soundness lets us trust emptiness).
        for seed in 0..4 {
            let comp = small_run(seed, 3, 8);
            let spec = violation_spec(&comp);
            let slice = spec.slice(&comp);
            let mut found = false;
            for_each_cut(&slice, |cut| {
                if spec.eval(&GlobalState::new(&comp, cut)) {
                    found = true;
                    return false;
                }
                true
            });
            assert!(!found, "seed {seed}: fault detected in fault-free run");
        }
    }

    #[test]
    fn roles_migrate_over_time() {
        // In a long enough run someone other than p0 becomes primary, and
        // the secondary pointer moves.
        let comp = small_run(2, 4, 25);
        let mut primary_seen = std::collections::HashSet::new();
        for p in comp.processes() {
            let ip = comp.var(p, "isPrimary").unwrap();
            for pos in 0..comp.len(p) {
                if comp.value_at(ip, pos).expect_bool() {
                    primary_seen.insert(p.as_usize());
                }
            }
        }
        assert!(
            primary_seen.len() >= 2,
            "primary never migrated: {primary_seen:?}"
        );
    }

    #[test]
    #[should_panic(expected = "needs two processes")]
    fn rejects_single_process() {
        let _ = PrimarySecondary::new(1);
    }
}
