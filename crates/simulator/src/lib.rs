//! Protocol simulators and workload generators for the slicing
//! experiments.
//!
//! This crate replaces the Java simulator of Stoller, Unnikrishnan & Liu
//! that the paper's evaluation uses: a deterministic seeded message-passing
//! [`runtime`] records protocol executions as
//! [`Computation`](slicing_computation::Computation)s, and the two
//! protocols from the paper's experiments are implemented on top of it —
//! [`primary_secondary`] (a process pair must always act as primary and
//! secondary) and [`database`] (partition agreement while no change is in
//! progress) — plus a [`token_ring`] workload for the introduction's "no
//! process has the token" predicate and a scenario zoo of modern
//! protocols: [`leader_election`] (Raft-style terms, votes, and
//! heartbeats), [`crdt`] (op-based PN-counter replication with an ack
//! window), and [`work_queue`] (producer/broker/consumer shards with
//! at-most-once dequeue).
//!
//! Each protocol module exports its invariant and a *sliceable*
//! specification of the corresponding global fault (`violation_spec`);
//! [`fault`] perturbs fault-free runs the way the paper's faulty scenario
//! does.
//!
//! # Example
//!
//! ```
//! use slicing_sim::{run, SimConfig};
//! use slicing_sim::primary_secondary::{self, PrimarySecondary};
//!
//! let cfg = SimConfig { seed: 7, max_events_per_process: 10, ..SimConfig::default() };
//! let comp = run(&mut PrimarySecondary::new(4), &cfg)?;
//! let spec = primary_secondary::violation_spec(&comp);
//! let slice = spec.slice(&comp);
//! // Fault-free: searching the slice finds no violation.
//! # Ok::<(), slicing_computation::BuildError>(())
//! ```

#![warn(missing_docs)]

pub mod clock_sync;
pub mod crdt;
pub mod database;
pub mod fault;
pub mod leader_election;
pub mod mutex;
pub mod primary_secondary;
pub mod runtime;
pub mod token_ring;
pub mod work_queue;

pub use fault::{
    inject, inject_kind, inject_plan, sample_fault_plan, FaultError, FaultKind, FaultPlan,
    FaultSpec,
};
pub use runtime::{resume, run, Actions, MsgPayload, Protocol, SimConfig};
