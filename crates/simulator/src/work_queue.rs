//! A replicated *work-queue* protocol: producer shards push items to a
//! broker, which dispatches each item exactly once to a consumer shard;
//! consumers report completions back. Producers retransmit unacked items
//! after a rollback, and the broker discards duplicates, so the queue
//! provides *at-most-once dequeue* with no silently-lost items.
//!
//! Process 0 is the broker; processes `1..=P` (with `P = max(1, (n-1)/2)`)
//! produce; the rest consume. Everything the protocol promises is counter
//! dominance, so the invariants hold at **every** consistent cut:
//!
//! - `enq_i ≤ prod_i` — the broker never enqueues an item producer `i` has
//!   not produced (monotone pair ⇒ *co-regular* violation leaf);
//! - `cons_j ≤ hand_j` — consumer `j` never dequeues a task the broker has
//!   not handed it (co-regular; this **is** at-most-once dequeue);
//! - broker-local arithmetic — `hand ≤ enq`, `done ≤ hand`,
//!   `served_i ≤ enq_i`, `enq = Σ enq_i`, `hand = Σ hand_j` (1-local
//!   conjunctive clauses);
//! - producer-local `ack_i ≤ prod_i` — the broker cannot ack more items
//!   than exist (1-local).
//!
//! A global fault is a consistent cut violating any of them.

use rand::rngs::StdRng;
use rand::RngExt;

use slicing_computation::{Computation, ComputationBuilder, ProcSet, Value, VarRef};
use slicing_core::PredicateSpec;
use slicing_predicates::{Conjunctive, FnPredicate, LocalPredicate, MonotoneDominates};

use crate::runtime::{Actions, MsgPayload, Protocol};

const MSG_ITEM: u32 = 0;
const MSG_ITEM_ACK: u32 = 1;
const MSG_TASK: u32 = 2;
const MSG_DONE: u32 = 3;

/// How many unacked items a producer keeps outstanding before pausing.
const PRODUCER_WINDOW: i64 = 3;

/// The work-queue protocol (see module docs).
#[derive(Debug)]
pub struct WorkQueue {
    n: usize,
    /// Producers are `1..=producers`; consumers are `producers+1..n`.
    producers: usize,
    // Broker variable handles (all on process 0).
    enq_var: Option<VarRef>,
    hand_var: Option<VarRef>,
    done_var: Option<VarRef>,
    enq_by_var: Vec<Option<VarRef>>,
    served_by_var: Vec<Option<VarRef>>,
    hand_to_var: Vec<Option<VarRef>>,
    // Producer/consumer handles, indexed by process.
    prod_var: Vec<Option<VarRef>>,
    ack_var: Vec<Option<VarRef>>,
    cons_var: Vec<Option<VarRef>>,
    // Mirrors of the exposed state, used by the state machine.
    enq_by: Vec<i64>,
    served_by: Vec<i64>,
    hand_to: Vec<i64>,
    enq: i64,
    hand: i64,
    done: i64,
    prod: Vec<i64>,
    acked: Vec<i64>,
    /// Producer's high-water mark of items actually sent; lags `prod` only
    /// after a rollback, which the retransmit path repairs.
    sent: Vec<i64>,
    cons: Vec<i64>,
    /// Probability (percent) that an idle producer step produces.
    produce_percent: u32,
}

impl WorkQueue {
    /// Creates the protocol over `n ≥ 3` processes (broker, a producer,
    /// and a consumer).
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn new(n: usize) -> Self {
        assert!(
            n >= 3,
            "the work queue needs a broker, a producer, and a consumer"
        );
        WorkQueue {
            n,
            producers: 1.max((n - 1) / 2),
            enq_var: None,
            hand_var: None,
            done_var: None,
            enq_by_var: vec![None; n],
            served_by_var: vec![None; n],
            hand_to_var: vec![None; n],
            prod_var: vec![None; n],
            ack_var: vec![None; n],
            cons_var: vec![None; n],
            enq_by: vec![0; n],
            served_by: vec![0; n],
            hand_to: vec![0; n],
            enq: 0,
            hand: 0,
            done: 0,
            prod: vec![0; n],
            acked: vec![0; n],
            sent: vec![0; n],
            cons: vec![0; n],
            produce_percent: 40,
        }
    }

    fn is_producer(&self, p: usize) -> bool {
        (1..=self.producers).contains(&p)
    }

    fn consumers(&self) -> std::ops::Range<usize> {
        self.producers + 1..self.n
    }
}

impl Protocol for WorkQueue {
    fn num_processes(&self) -> usize {
        self.n
    }

    fn declare_vars(&mut self, p: usize, b: &mut ComputationBuilder) {
        let pid = b.process(p);
        if p == 0 {
            self.enq_var = Some(b.declare_var(pid, "enq", Value::Int(0)));
            self.hand_var = Some(b.declare_var(pid, "hand", Value::Int(0)));
            self.done_var = Some(b.declare_var(pid, "done", Value::Int(0)));
            for i in 1..=self.producers {
                self.enq_by_var[i] = Some(b.declare_var(pid, &format!("enq{i}"), Value::Int(0)));
                self.served_by_var[i] =
                    Some(b.declare_var(pid, &format!("served{i}"), Value::Int(0)));
            }
            for j in self.consumers() {
                self.hand_to_var[j] = Some(b.declare_var(pid, &format!("hand{j}"), Value::Int(0)));
            }
        } else if self.is_producer(p) {
            self.prod_var[p] = Some(b.declare_var(pid, "prod", Value::Int(0)));
            self.ack_var[p] = Some(b.declare_var(pid, "ackp", Value::Int(0)));
        } else {
            self.cons_var[p] = Some(b.declare_var(pid, "cons", Value::Int(0)));
        }
    }

    fn step(&mut self, p: usize, rng: &mut StdRng, out: &mut Actions) {
        if p == 0 {
            // Dispatch the oldest pending item of the lowest producer shard
            // to a random consumer.
            let Some(i) = (1..=self.producers).find(|&i| self.served_by[i] < self.enq_by[i]) else {
                out.internal();
                return;
            };
            self.served_by[i] += 1;
            self.hand += 1;
            let cons_idx = rng.random_range(0..self.consumers().len());
            let j = self.producers + 1 + cons_idx;
            self.hand_to[j] += 1;
            out.set(self.served_by_var[i].unwrap(), self.served_by[i]);
            out.set(self.hand_var.unwrap(), self.hand);
            out.set(self.hand_to_var[j].unwrap(), self.hand_to[j]);
            out.send(j, (MSG_TASK, self.hand));
            return;
        }
        if self.is_producer(p) {
            // Retransmit first: a rollback resets `sent` to the acked
            // frontier, and the broker's duplicate guard re-acks anything
            // it already holds.
            if self.sent[p] < self.prod[p] {
                for seq in self.sent[p] + 1..=self.prod[p] {
                    out.send(0, (MSG_ITEM, seq));
                }
                self.sent[p] = self.prod[p];
                return;
            }
            if self.prod[p] - self.acked[p] < PRODUCER_WINDOW
                && rng.random_range(0..100u32) < self.produce_percent
            {
                self.prod[p] += 1;
                self.sent[p] = self.prod[p];
                out.set(self.prod_var[p].unwrap(), self.prod[p]);
                out.send(0, (MSG_ITEM, self.prod[p]));
                return;
            }
        }
        // Consumers (and idle producers) only react.
        out.internal();
    }

    fn on_message(&mut self, p: usize, from: usize, payload: MsgPayload, out: &mut Actions) {
        match payload.0 {
            MSG_ITEM => {
                debug_assert_eq!(p, 0);
                let seq = payload.1;
                if seq == self.enq_by[from] + 1 {
                    self.enq_by[from] = seq;
                    self.enq += 1;
                    out.set(self.enq_by_var[from].unwrap(), self.enq_by[from]);
                    out.set(self.enq_var.unwrap(), self.enq);
                } else {
                    // A retransmitted duplicate — or, when replaying from a
                    // cut of a structurally faulted run, a gap the rolled-
                    // back broker cannot fill: either way, ack the current
                    // high-water mark without enqueueing — the at-most-once
                    // half of the queue's contract.
                }
                out.send(from, (MSG_ITEM_ACK, self.enq_by[from]));
            }
            MSG_ITEM_ACK => {
                let seq = payload.1;
                if seq > self.acked[p] {
                    self.acked[p] = seq;
                    out.set(self.ack_var[p].unwrap(), seq);
                } else {
                    out.internal();
                }
            }
            MSG_TASK => {
                self.cons[p] += 1;
                out.set(self.cons_var[p].unwrap(), self.cons[p]);
                out.send(from, (MSG_DONE, self.cons[p]));
            }
            MSG_DONE => {
                debug_assert_eq!(p, 0);
                self.done += 1;
                out.set(self.done_var.unwrap(), self.done);
            }
            other => panic!("unknown work-queue message tag {other}"),
        }
    }

    fn restore(&mut self, base: &Computation, line: &slicing_computation::Cut) {
        let p0 = base.process(0);
        let pos0 = line.frontier_pos(p0);
        let get = |name: &str| {
            base.value_at(base.var(p0, name).expect("protocol variable"), pos0)
                .expect_int()
        };
        self.enq = get("enq");
        self.hand = get("hand");
        self.done = get("done");
        for i in 1..=self.producers {
            self.enq_by[i] = get(&format!("enq{i}"));
            self.served_by[i] = get(&format!("served{i}"));
        }
        for j in self.consumers() {
            self.hand_to[j] = get(&format!("hand{j}"));
        }
        for p in base.processes().skip(1) {
            let i = p.as_usize();
            let pos = line.frontier_pos(p);
            if self.is_producer(i) {
                let prod = base.var(p, "prod").expect("protocol variable");
                let ack = base.var(p, "ackp").expect("protocol variable");
                self.prod[i] = base.value_at(prod, pos).expect_int();
                self.acked[i] = base.value_at(ack, pos).expect_int();
                // Items above the acked frontier may have been in flight at
                // the line; treat them as unsent so they are retransmitted.
                self.sent[i] = self.acked[i];
            } else {
                let cons = base.var(p, "cons").expect("protocol variable");
                self.cons[i] = base.value_at(cons, pos).expect_int();
            }
        }
        // Tasks and completions in flight at the line are gone for good:
        // at-most-once dequeue means the broker never re-dispatches, so
        // `hand` keeps counting them while `cons`/`done` never catch up —
        // which the ≤-shaped invariants all tolerate.
    }
}

/// Broker/producer/consumer variable handles resolved against a recording.
struct Handles {
    producers: usize,
    enq: VarRef,
    hand: VarRef,
    done: VarRef,
    enq_by: Vec<VarRef>,
    served_by: Vec<VarRef>,
    hand_to: Vec<VarRef>,
    prod: Vec<VarRef>,
    ack: Vec<VarRef>,
    cons: Vec<VarRef>,
}

fn resolved(comp: &Computation) -> Handles {
    let n = comp.num_processes();
    let producers = 1.max((n - 1) / 2);
    let p0 = comp.process(0);
    let v = |name: &str| comp.var(p0, name).expect("protocol variable");
    Handles {
        producers,
        enq: v("enq"),
        hand: v("hand"),
        done: v("done"),
        enq_by: (1..=producers).map(|i| v(&format!("enq{i}"))).collect(),
        served_by: (1..=producers).map(|i| v(&format!("served{i}"))).collect(),
        hand_to: (producers + 1..n).map(|j| v(&format!("hand{j}"))).collect(),
        prod: (1..=producers)
            .map(|i| {
                comp.var(comp.process(i), "prod")
                    .expect("protocol variable")
            })
            .collect(),
        ack: (1..=producers)
            .map(|i| {
                comp.var(comp.process(i), "ackp")
                    .expect("protocol variable")
            })
            .collect(),
        cons: (producers + 1..n)
            .map(|j| {
                comp.var(comp.process(j), "cons")
                    .expect("protocol variable")
            })
            .collect(),
    }
}

/// The invariant `I_wq`: every dominance and broker-arithmetic relation of
/// the module docs.
pub fn invariant(comp: &Computation) -> FnPredicate {
    let n = comp.num_processes();
    let h = resolved(comp);
    FnPredicate::new(ProcSet::all(n), "I_wq", move |st| {
        let enq = st.get(h.enq).expect_int();
        let hand = st.get(h.hand).expect_int();
        let done = st.get(h.done).expect_int();
        if hand > enq || done > hand {
            return false;
        }
        let mut enq_sum = 0;
        for (k, &e) in h.enq_by.iter().enumerate() {
            let e = st.get(e).expect_int();
            enq_sum += e;
            if st.get(h.served_by[k]).expect_int() > e || e > st.get(h.prod[k]).expect_int() {
                return false;
            }
            if st.get(h.ack[k]).expect_int() > st.get(h.prod[k]).expect_int() {
                return false;
            }
        }
        if enq_sum != enq {
            return false;
        }
        let mut hand_sum = 0;
        for (k, &hj) in h.hand_to.iter().enumerate() {
            let hj = st.get(hj).expect_int();
            hand_sum += hj;
            if st.get(h.cons[k]).expect_int() > hj {
                return false;
            }
        }
        hand_sum == hand
    })
}

/// The global fault `¬I_wq` as a sliceable specification: co-regular
/// dominance leaves for the cross-process counter pairs (`enq_i ≤ prod_i`,
/// `cons_j ≤ hand_j` — monotone on both sides, so the complements slice
/// exactly) plus 1-local conjunctive clauses for the broker's and
/// producers' own arithmetic.
pub fn violation_spec(comp: &Computation) -> PredicateSpec {
    let h = resolved(comp);
    let mut clauses = Vec::new();
    for k in 0..h.producers {
        clauses.push(PredicateSpec::not_regular(MonotoneDominates::new(
            h.enq_by[k],
            h.prod[k],
        )));
        let i = k + 1;
        clauses.push(PredicateSpec::conjunctive(Conjunctive::new(vec![
            LocalPredicate::new(
                vec![h.served_by[k], h.enq_by[k]],
                format!("served{i} > enq{i}"),
                |vals| vals[0].expect_int() > vals[1].expect_int(),
            ),
        ])));
        clauses.push(PredicateSpec::conjunctive(Conjunctive::new(vec![
            LocalPredicate::new(
                vec![h.ack[k], h.prod[k]],
                format!("ackp_{i} > prod_{i}"),
                |vals| vals[0].expect_int() > vals[1].expect_int(),
            ),
        ])));
    }
    for (k, &cons) in h.cons.iter().enumerate() {
        clauses.push(PredicateSpec::not_regular(MonotoneDominates::new(
            cons,
            h.hand_to[k],
        )));
    }
    clauses.push(PredicateSpec::conjunctive(Conjunctive::new(vec![
        LocalPredicate::new(vec![h.hand, h.enq], "hand > enq", |vals| {
            vals[0].expect_int() > vals[1].expect_int()
        }),
    ])));
    clauses.push(PredicateSpec::conjunctive(Conjunctive::new(vec![
        LocalPredicate::new(vec![h.done, h.hand], "done > hand", |vals| {
            vals[0].expect_int() > vals[1].expect_int()
        }),
    ])));
    let mut enq_vars = vec![h.enq];
    enq_vars.extend_from_slice(&h.enq_by);
    clauses.push(PredicateSpec::conjunctive(Conjunctive::new(vec![
        LocalPredicate::new(enq_vars, "enq != sum(enq_i)", |vals| {
            vals[0].expect_int() != vals[1..].iter().map(|v| v.expect_int()).sum::<i64>()
        }),
    ])));
    let mut hand_vars = vec![h.hand];
    hand_vars.extend_from_slice(&h.hand_to);
    clauses.push(PredicateSpec::conjunctive(Conjunctive::new(vec![
        LocalPredicate::new(hand_vars, "hand != sum(hand_j)", |vals| {
            vals[0].expect_int() != vals[1..].iter().map(|v| v.expect_int()).sum::<i64>()
        }),
    ])));
    PredicateSpec::or(clauses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{run, SimConfig};
    use slicing_computation::lattice::for_each_cut;
    use slicing_computation::GlobalState;
    use slicing_predicates::Predicate;

    fn small_run(seed: u64, n: usize, events: u32) -> Computation {
        let cfg = SimConfig {
            seed,
            max_events_per_process: events,
            ..SimConfig::default()
        };
        run(&mut WorkQueue::new(n), &cfg).expect("protocol run builds")
    }

    #[test]
    fn fault_free_runs_satisfy_the_invariant_at_every_cut() {
        for seed in 0..6 {
            let comp = small_run(seed, 4, 8);
            let inv = invariant(&comp);
            for_each_cut(&comp, |cut| {
                assert!(
                    inv.eval(&GlobalState::new(&comp, cut)),
                    "seed {seed} cut {cut}"
                );
                true
            });
        }
    }

    #[test]
    fn violation_spec_matches_negated_invariant() {
        for seed in 0..4 {
            let comp = small_run(seed, 3, 6);
            let inv = invariant(&comp);
            let spec = violation_spec(&comp);
            for_each_cut(&comp, |cut| {
                let st = GlobalState::new(&comp, cut);
                assert_eq!(spec.eval(&st), !inv.eval(&st), "seed {seed} cut {cut}");
                true
            });
        }
    }

    #[test]
    fn fault_free_slice_finds_no_violation() {
        for seed in 0..4 {
            let comp = small_run(seed, 4, 7);
            let spec = violation_spec(&comp);
            let slice = spec.slice(&comp);
            let mut found = false;
            for_each_cut(&slice, |cut| {
                if spec.eval(&GlobalState::new(&comp, cut)) {
                    found = true;
                    return false;
                }
                true
            });
            assert!(!found, "seed {seed}: fault detected in fault-free run");
        }
    }

    #[test]
    fn items_flow_through_the_whole_queue() {
        // Items get produced, enqueued, dispatched, consumed, and
        // completion-acked within a modest run.
        let comp = small_run(4, 4, 20);
        let h = resolved(&comp);
        let last = |v: VarRef| {
            let p = v.process();
            comp.value_at(v, comp.len(p) - 1).expect_int()
        };
        assert!(last(h.prod[0]) >= 2, "producer never produced");
        assert!(last(h.enq) >= 1, "broker never enqueued");
        assert!(last(h.hand) >= 1, "broker never dispatched");
        assert!(
            h.cons.iter().map(|&c| last(c)).sum::<i64>() >= 1,
            "no consumer ever dequeued"
        );
        assert!(last(h.done) >= 1, "no completion ever arrived");
    }

    #[test]
    fn restore_from_every_prefix_preserves_the_invariant() {
        use crate::runtime::resume;
        let cfg = SimConfig {
            seed: 6,
            max_events_per_process: 8,
            ..SimConfig::default()
        };
        let base = run(&mut WorkQueue::new(4), &cfg).unwrap();
        let p1 = base.process(1);
        let line = base.min_cut(base.event_at(p1, base.len(p1) / 2)).clone();
        let mut fresh = WorkQueue::new(4);
        let resumed = resume(&mut fresh, &base, &line, &cfg).unwrap();
        let inv = invariant(&resumed);
        for_each_cut(&resumed, |cut| {
            assert!(
                inv.eval(&GlobalState::new(&resumed, cut)),
                "invariant violated at {cut} after resume"
            );
            true
        });
    }

    #[test]
    #[should_panic(expected = "broker, a producer, and a consumer")]
    fn rejects_too_few_processes() {
        let _ = WorkQueue::new(2);
    }
}
