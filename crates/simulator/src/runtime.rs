//! A deterministic discrete-event message-passing simulator that records
//! its runs as [`Computation`]s (with vector-clock instrumentation and
//! per-event variable snapshots) — the substrate standing in for the Java
//! simulator of Stoller, Unnikrishnan & Liu that the paper's experiments
//! use.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use slicing_computation::{
    BuildError, Computation, ComputationBuilder, EventId, ProcessId, Value, VarRef,
};

/// Configuration of a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// RNG seed: equal seeds reproduce equal computations.
    pub seed: u64,
    /// Stop once some process has this many *real* events (the paper runs
    /// "until the number of events on some process reaches 90/80").
    pub max_events_per_process: u32,
    /// Relative weight of delivering a pending message vs. letting a
    /// process take a spontaneous step (out of 100).
    pub deliver_weight: u32,
    /// Safety valve: stop after this many scheduler iterations even if no
    /// process reached the bound (e.g. a quiescent protocol).
    pub max_iterations: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 1,
            max_events_per_process: 30,
            deliver_weight: 50,
            max_iterations: 1_000_000,
        }
    }
}

/// What a protocol may do during one event: write variables and send
/// messages. Every `step`/`on_message` invocation that acts produces
/// exactly one event carrying all of its writes and sends.
#[derive(Debug)]
pub struct Actions {
    pub(crate) writes: Vec<(VarRef, Value)>,
    pub(crate) sends: Vec<(usize, MsgPayload)>,
    pub(crate) acted: bool,
}

/// Opaque protocol message payload (a small integer tuple keeps the
/// runtime independent of protocol types).
pub type MsgPayload = (u32, i64);

impl Actions {
    fn new() -> Self {
        Actions {
            writes: Vec::new(),
            sends: Vec::new(),
            acted: false,
        }
    }

    /// Writes `value` to `var` (must belong to the acting process).
    pub fn set(&mut self, var: VarRef, value: impl Into<Value>) {
        self.writes.push((var, value.into()));
        self.acted = true;
    }

    /// Sends a message to process `to`.
    pub fn send(&mut self, to: usize, payload: MsgPayload) {
        self.sends.push((to, payload));
        self.acted = true;
    }

    /// Marks the step as an internal event even without writes or sends.
    pub fn internal(&mut self) {
        self.acted = true;
    }
}

/// A protocol driven by the simulator. Implementations own their
/// per-process state; the runtime owns scheduling, message delivery, and
/// trace recording.
pub trait Protocol {
    /// Number of processes.
    fn num_processes(&self) -> usize;

    /// Declares the variables of process `p` (called once per process
    /// before the run starts).
    fn declare_vars(&mut self, p: usize, builder: &mut ComputationBuilder);

    /// A spontaneous step of process `p`. Record writes/sends in `out`;
    /// leaving `out` untouched means the process has nothing to do.
    fn step(&mut self, p: usize, rng: &mut StdRng, out: &mut Actions);

    /// Delivery of a message to `p`. Must act (a receive is an event).
    fn on_message(&mut self, p: usize, from: usize, payload: MsgPayload, out: &mut Actions);
}

/// A message sitting in the simulated network.
#[derive(Debug, Clone)]
struct InFlight {
    from: usize,
    to: usize,
    payload: MsgPayload,
    send_event: EventId,
}

/// Runs `protocol` under `config` and records the resulting computation.
///
/// Channels are FIFO per ordered process pair. The scheduler repeatedly
/// either delivers a random pending message or lets a random process take
/// a spontaneous step, until some process accumulates
/// `max_events_per_process` real events.
///
/// # Errors
///
/// Propagates [`BuildError`]s; these indicate a protocol bug (e.g. writing
/// another process's variable).
pub fn run<P: Protocol>(protocol: &mut P, config: &SimConfig) -> Result<Computation, BuildError> {
    let _span = slicing_observe::span("sim.run");
    let n = protocol.num_processes();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut builder = ComputationBuilder::new(n);
    for p in 0..n {
        protocol.declare_vars(p, &mut builder);
    }

    let mut network: Vec<InFlight> = Vec::new();
    let mut events_on = vec![0u32; n];
    let mut iterations = 0u64;

    while events_on.iter().max().copied().unwrap_or(0) < config.max_events_per_process
        && iterations < config.max_iterations
    {
        iterations += 1;
        let deliver = !network.is_empty() && (rng.random_range(0..100u32) < config.deliver_weight);

        let mut actions = Actions::new();
        let (acting, received) = if deliver {
            // Pick a random channel's oldest message (FIFO per pair).
            let pick = rng.random_range(0..network.len());
            let (from, to) = (network[pick].from, network[pick].to);
            let oldest = network
                .iter()
                .position(|m| m.from == from && m.to == to)
                .expect("picked message exists");
            let msg = network.remove(oldest);
            protocol.on_message(msg.to, msg.from, msg.payload, &mut actions);
            assert!(actions.acted, "a message receive must be an event");
            (msg.to, Some(msg))
        } else {
            let p = rng.random_range(0..n);
            protocol.step(p, &mut rng, &mut actions);
            (p, None)
        };

        if !actions.acted {
            continue;
        }
        let pid = ProcessId::new(acting);
        let event = builder.append_event(pid);
        events_on[acting] += 1;
        slicing_observe::counter("sim.events", 1);
        for (var, value) in actions.writes.drain(..) {
            builder.assign(event, var, value)?;
        }
        if let Some(msg) = received {
            builder.message(msg.send_event, event)?;
        }
        for (to, payload) in actions.sends.drain(..) {
            network.push(InFlight {
                from: acting,
                to,
                payload,
                send_event: event,
            });
            slicing_observe::counter("sim.messages_sent", 1);
        }
        slicing_observe::gauge("sim.in_flight", network.len() as u64);
    }

    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every process counts its own steps and occasionally pings its right
    /// neighbour, which acknowledges by bumping a counter.
    struct PingCount {
        n: usize,
        count_vars: Vec<Option<VarRef>>,
        acks: Vec<Option<VarRef>>,
        counts: Vec<i64>,
    }

    impl PingCount {
        fn new(n: usize) -> Self {
            PingCount {
                n,
                count_vars: vec![None; n],
                acks: vec![None; n],
                counts: vec![0; n],
            }
        }
    }

    impl Protocol for PingCount {
        fn num_processes(&self) -> usize {
            self.n
        }

        fn declare_vars(&mut self, p: usize, b: &mut ComputationBuilder) {
            let pid = b.process(p);
            self.count_vars[p] = Some(b.declare_var(pid, "count", Value::Int(0)));
            self.acks[p] = Some(b.declare_var(pid, "acks", Value::Int(0)));
        }

        fn step(&mut self, p: usize, rng: &mut StdRng, out: &mut Actions) {
            self.counts[p] += 1;
            out.set(self.count_vars[p].unwrap(), self.counts[p]);
            if rng.random_range(0..100) < 30 {
                out.send((p + 1) % self.n, (0, self.counts[p]));
            }
        }

        fn on_message(&mut self, p: usize, _from: usize, payload: MsgPayload, out: &mut Actions) {
            out.set(self.acks[p].unwrap(), payload.1);
        }
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let cfg = SimConfig {
            seed: 7,
            max_events_per_process: 10,
            ..SimConfig::default()
        };
        let a = run(&mut PingCount::new(3), &cfg).unwrap();
        let b = run(&mut PingCount::new(3), &cfg).unwrap();
        assert_eq!(a.num_events(), b.num_events());
        assert_eq!(a.messages(), b.messages());
        let c = run(
            &mut PingCount::new(3),
            &SimConfig {
                seed: 8,
                ..cfg.clone()
            },
        )
        .unwrap();
        // Different seed, (almost surely) different schedule.
        assert!(a.num_events() != c.num_events() || a.messages() != c.messages());
    }

    #[test]
    fn stops_at_event_bound() {
        let cfg = SimConfig {
            seed: 3,
            max_events_per_process: 12,
            ..SimConfig::default()
        };
        let comp = run(&mut PingCount::new(4), &cfg).unwrap();
        let max = comp.processes().map(|p| comp.len(p) - 1).max().unwrap();
        assert_eq!(max, 12);
    }

    #[test]
    fn recorded_computation_is_causally_valid() {
        let cfg = SimConfig {
            seed: 11,
            max_events_per_process: 15,
            ..SimConfig::default()
        };
        let comp = run(&mut PingCount::new(3), &cfg).unwrap();
        // build() succeeded ⇒ acyclic; also every message respects
        // positions (send before receive causally).
        for m in comp.messages() {
            assert!(comp.happened_before(m.send, m.recv));
        }
        // Counters recorded monotonically.
        for p in comp.processes() {
            let var = comp.var(p, "count").unwrap();
            let mut last = -1;
            for pos in 0..comp.len(p) {
                let v = comp.value_at(var, pos).expect_int();
                assert!(v >= last);
                last = v;
            }
        }
    }

    #[test]
    fn quiescent_protocol_terminates_via_iteration_cap() {
        struct Idle;
        impl Protocol for Idle {
            fn num_processes(&self) -> usize {
                2
            }
            fn declare_vars(&mut self, _: usize, _: &mut ComputationBuilder) {}
            fn step(&mut self, _: usize, _: &mut StdRng, _out: &mut Actions) {
                // never acts
            }
            fn on_message(&mut self, _: usize, _: usize, _: MsgPayload, out: &mut Actions) {
                out.internal();
            }
        }
        let cfg = SimConfig {
            max_iterations: 500,
            ..SimConfig::default()
        };
        let comp = run(&mut Idle, &cfg).unwrap();
        assert!(comp.is_empty());
    }

    #[test]
    fn channels_are_fifo_per_pair() {
        // Messages from the same sender to the same receiver arrive in
        // send order: receive positions are ordered like send positions.
        let cfg = SimConfig {
            seed: 5,
            max_events_per_process: 25,
            deliver_weight: 30,
            ..SimConfig::default()
        };
        let comp = run(&mut PingCount::new(2), &cfg).unwrap();
        let mut pairs: Vec<(u32, u32)> = comp
            .messages()
            .iter()
            .filter(|m| comp.process_of(m.send).as_usize() == 0)
            .map(|m| (comp.position_of(m.send), comp.position_of(m.recv)))
            .collect();
        pairs.sort_unstable();
        for w in pairs.windows(2) {
            assert!(w[0].1 < w[1].1, "FIFO violated: {pairs:?}");
        }
    }
}
