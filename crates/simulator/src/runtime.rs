//! A deterministic discrete-event message-passing simulator that records
//! its runs as [`Computation`]s (with vector-clock instrumentation and
//! per-event variable snapshots) — the substrate standing in for the Java
//! simulator of Stoller, Unnikrishnan & Liu that the paper's experiments
//! use.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use slicing_computation::{
    BuildError, Computation, ComputationBuilder, Cut, EventId, ProcessId, Value, VarRef,
};

/// Configuration of a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// RNG seed: equal seeds reproduce equal computations.
    pub seed: u64,
    /// Stop once some process has this many *real* events (the paper runs
    /// "until the number of events on some process reaches 90/80").
    pub max_events_per_process: u32,
    /// Relative weight of delivering a pending message vs. letting a
    /// process take a spontaneous step (out of 100).
    pub deliver_weight: u32,
    /// Safety valve: stop after this many scheduler iterations even if no
    /// process reached the bound (e.g. a quiescent protocol).
    pub max_iterations: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 1,
            max_events_per_process: 30,
            deliver_weight: 50,
            max_iterations: 1_000_000,
        }
    }
}

/// What a protocol may do during one event: write variables and send
/// messages. Every `step`/`on_message` invocation that acts produces
/// exactly one event carrying all of its writes and sends.
#[derive(Debug)]
pub struct Actions {
    pub(crate) writes: Vec<(VarRef, Value)>,
    pub(crate) sends: Vec<(usize, MsgPayload)>,
    pub(crate) acted: bool,
}

/// Opaque protocol message payload (a small integer tuple keeps the
/// runtime independent of protocol types).
pub type MsgPayload = (u32, i64);

impl Actions {
    fn new() -> Self {
        Actions {
            writes: Vec::new(),
            sends: Vec::new(),
            acted: false,
        }
    }

    /// Writes `value` to `var` (must belong to the acting process).
    pub fn set(&mut self, var: VarRef, value: impl Into<Value>) {
        self.writes.push((var, value.into()));
        self.acted = true;
    }

    /// Sends a message to process `to`.
    pub fn send(&mut self, to: usize, payload: MsgPayload) {
        self.sends.push((to, payload));
        self.acted = true;
    }

    /// Marks the step as an internal event even without writes or sends.
    pub fn internal(&mut self) {
        self.acted = true;
    }
}

/// A protocol driven by the simulator. Implementations own their
/// per-process state; the runtime owns scheduling, message delivery, and
/// trace recording.
pub trait Protocol {
    /// Number of processes.
    fn num_processes(&self) -> usize;

    /// Declares the variables of process `p` (called once per process
    /// before the run starts).
    fn declare_vars(&mut self, p: usize, builder: &mut ComputationBuilder);

    /// A spontaneous step of process `p`. Record writes/sends in `out`;
    /// leaving `out` untouched means the process has nothing to do.
    fn step(&mut self, p: usize, rng: &mut StdRng, out: &mut Actions);

    /// Delivery of a message to `p`. Must act (a receive is an event).
    fn on_message(&mut self, p: usize, from: usize, payload: MsgPayload, out: &mut Actions);

    /// Re-initialises internal per-process state from the variable
    /// snapshots recorded in `base` at the consistent cut `line`, so the
    /// protocol can continue a run resumed by [`resume`] after a rollback.
    ///
    /// The default does nothing, which is only correct for protocols whose
    /// behaviour depends solely on what they observe after the restore
    /// point; protocols with internal state mirrored in their recorded
    /// variables must override it. Implementations should also re-derive
    /// any state that was carried by in-transit messages: rollback drops
    /// the channel contents.
    fn restore(&mut self, base: &Computation, line: &Cut) {
        let _ = (base, line);
    }
}

/// A message sitting in the simulated network.
#[derive(Debug, Clone)]
struct InFlight {
    from: usize,
    to: usize,
    payload: MsgPayload,
    send_event: EventId,
}

/// Runs `protocol` under `config` and records the resulting computation.
///
/// Channels are FIFO per ordered process pair. The scheduler repeatedly
/// either delivers a random pending message or lets a random process take
/// a spontaneous step, until some process accumulates
/// `max_events_per_process` real events.
///
/// # Errors
///
/// Propagates [`BuildError`]s; these indicate a protocol bug (e.g. writing
/// another process's variable).
pub fn run<P: Protocol>(protocol: &mut P, config: &SimConfig) -> Result<Computation, BuildError> {
    let _span = slicing_observe::span("sim.run");
    let n = protocol.num_processes();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut builder = ComputationBuilder::new(n);
    for p in 0..n {
        protocol.declare_vars(p, &mut builder);
    }
    drive(protocol, config, &mut rng, builder, vec![0u32; n])
}

/// Resumes a run from the consistent cut `line` of `base`: the events at
/// or below the line are copied into the new computation verbatim (same
/// snapshots, labels, and messages), the protocol's internal state is
/// re-initialised via [`Protocol::restore`], and the scheduler then
/// continues with a fresh RNG stream seeded from `config.seed` until the
/// usual event bound is reached.
///
/// Messages in transit *at the line* (sent inside, received outside) are
/// dropped, exactly as a crash-recovery rollback loses channel contents;
/// `restore` implementations must leave the protocol in a state that
/// tolerates this (e.g. no process blocked waiting for a rolled-back
/// reply). Initial variable values come from the protocol's own
/// `declare_vars`, so a corruption of an initial value in `base` is
/// repaired rather than replayed.
///
/// # Panics
///
/// Panics if `line` is not a consistent cut of `base` or the process
/// counts disagree — both indicate a caller bug, not a runtime condition.
///
/// # Errors
///
/// Propagates [`BuildError`]s from the replayed protocol.
pub fn resume<P: Protocol>(
    protocol: &mut P,
    base: &Computation,
    line: &Cut,
    config: &SimConfig,
) -> Result<Computation, BuildError> {
    let _span = slicing_observe::span("sim.resume");
    let n = protocol.num_processes();
    assert_eq!(
        n,
        base.num_processes(),
        "protocol and computation disagree on process count"
    );
    assert!(
        base.is_consistent(line),
        "recovery line {line} is not a consistent cut"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut builder = ComputationBuilder::new(n);
    for p in 0..n {
        protocol.declare_vars(p, &mut builder);
    }

    // Copy the safe prefix verbatim instead of re-simulating it: replaying
    // the scheduler against an edited computation would diverge (the RNG
    // stream is consumed in a different order), while a copy preserves the
    // exact states the recovery line was computed from.
    let mut events_on = vec![0u32; n];
    for p in base.processes() {
        let names: Vec<String> = base.var_names(p).map(str::to_owned).collect();
        for pos in 1..line.count(p) {
            let e = builder.append_event(p);
            for name in &names {
                let orig = base.var(p, name).expect("listed name resolves");
                let var = builder
                    .var(p, name)
                    .unwrap_or_else(|| panic!("protocol did not declare {name:?} on {p}"));
                builder.assign(e, var, base.value_at(orig, pos))?;
            }
            if let Some(l) = base.label(base.event_at(p, pos)) {
                let l = l.to_owned();
                builder.set_label(e, &l);
            }
        }
        events_on[p.as_usize()] = line.frontier_pos(p);
    }
    let mut dropped = 0u64;
    for m in base.messages() {
        let (sp, rp) = (base.process_of(m.send), base.process_of(m.recv));
        let inside = |e, p: ProcessId| base.position_of(e) < line.count(p);
        if inside(m.send, sp) && inside(m.recv, rp) {
            let send = builder.event_at(sp, base.position_of(m.send));
            let recv = builder.event_at(rp, base.position_of(m.recv));
            builder.message(send, recv)?;
        } else if inside(m.send, sp) {
            // In transit at the line: lost by the rollback.
            dropped += 1;
        }
    }
    if dropped > 0 {
        slicing_observe::counter("sim.resume.dropped_in_transit", dropped);
    }

    protocol.restore(base, line);
    drive(protocol, config, &mut rng, builder, events_on)
}

/// The scheduler shared by [`run`] and [`resume`]: drives `protocol` until
/// some process accumulates `max_events_per_process` real events, starting
/// from whatever `builder` already contains (with `events_on` counting the
/// pre-existing real events) and an empty network.
fn drive<P: Protocol>(
    protocol: &mut P,
    config: &SimConfig,
    rng: &mut StdRng,
    mut builder: ComputationBuilder,
    mut events_on: Vec<u32>,
) -> Result<Computation, BuildError> {
    let n = protocol.num_processes();
    let mut network: Vec<InFlight> = Vec::new();
    let mut iterations = 0u64;

    while events_on.iter().max().copied().unwrap_or(0) < config.max_events_per_process
        && iterations < config.max_iterations
    {
        iterations += 1;
        let deliver = !network.is_empty() && (rng.random_range(0..100u32) < config.deliver_weight);

        let mut actions = Actions::new();
        let (acting, received) = if deliver {
            // Pick a random channel's oldest message (FIFO per pair).
            let pick = rng.random_range(0..network.len());
            let (from, to) = (network[pick].from, network[pick].to);
            let oldest = network
                .iter()
                .position(|m| m.from == from && m.to == to)
                .expect("picked message exists");
            let msg = network.remove(oldest);
            protocol.on_message(msg.to, msg.from, msg.payload, &mut actions);
            assert!(actions.acted, "a message receive must be an event");
            (msg.to, Some(msg))
        } else {
            let p = rng.random_range(0..n);
            protocol.step(p, rng, &mut actions);
            (p, None)
        };

        if !actions.acted {
            continue;
        }
        let pid = ProcessId::new(acting);
        let event = builder.append_event(pid);
        events_on[acting] += 1;
        slicing_observe::counter("sim.events", 1);
        for (var, value) in actions.writes.drain(..) {
            builder.assign(event, var, value)?;
        }
        if let Some(msg) = received {
            builder.message(msg.send_event, event)?;
        }
        for (to, payload) in actions.sends.drain(..) {
            network.push(InFlight {
                from: acting,
                to,
                payload,
                send_event: event,
            });
            slicing_observe::counter("sim.messages_sent", 1);
        }
        slicing_observe::gauge("sim.in_flight", network.len() as u64);
    }

    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every process counts its own steps and occasionally pings its right
    /// neighbour, which acknowledges by bumping a counter.
    struct PingCount {
        n: usize,
        count_vars: Vec<Option<VarRef>>,
        acks: Vec<Option<VarRef>>,
        counts: Vec<i64>,
    }

    impl PingCount {
        fn new(n: usize) -> Self {
            PingCount {
                n,
                count_vars: vec![None; n],
                acks: vec![None; n],
                counts: vec![0; n],
            }
        }
    }

    impl Protocol for PingCount {
        fn num_processes(&self) -> usize {
            self.n
        }

        fn declare_vars(&mut self, p: usize, b: &mut ComputationBuilder) {
            let pid = b.process(p);
            self.count_vars[p] = Some(b.declare_var(pid, "count", Value::Int(0)));
            self.acks[p] = Some(b.declare_var(pid, "acks", Value::Int(0)));
        }

        fn step(&mut self, p: usize, rng: &mut StdRng, out: &mut Actions) {
            self.counts[p] += 1;
            out.set(self.count_vars[p].unwrap(), self.counts[p]);
            if rng.random_range(0..100) < 30 {
                out.send((p + 1) % self.n, (0, self.counts[p]));
            }
        }

        fn on_message(&mut self, p: usize, _from: usize, payload: MsgPayload, out: &mut Actions) {
            out.set(self.acks[p].unwrap(), payload.1);
        }
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let cfg = SimConfig {
            seed: 7,
            max_events_per_process: 10,
            ..SimConfig::default()
        };
        let a = run(&mut PingCount::new(3), &cfg).unwrap();
        let b = run(&mut PingCount::new(3), &cfg).unwrap();
        assert_eq!(a.num_events(), b.num_events());
        assert_eq!(a.messages(), b.messages());
        let c = run(
            &mut PingCount::new(3),
            &SimConfig {
                seed: 8,
                ..cfg.clone()
            },
        )
        .unwrap();
        // Different seed, (almost surely) different schedule.
        assert!(a.num_events() != c.num_events() || a.messages() != c.messages());
    }

    #[test]
    fn stops_at_event_bound() {
        let cfg = SimConfig {
            seed: 3,
            max_events_per_process: 12,
            ..SimConfig::default()
        };
        let comp = run(&mut PingCount::new(4), &cfg).unwrap();
        let max = comp.processes().map(|p| comp.len(p) - 1).max().unwrap();
        assert_eq!(max, 12);
    }

    #[test]
    fn recorded_computation_is_causally_valid() {
        let cfg = SimConfig {
            seed: 11,
            max_events_per_process: 15,
            ..SimConfig::default()
        };
        let comp = run(&mut PingCount::new(3), &cfg).unwrap();
        // build() succeeded ⇒ acyclic; also every message respects
        // positions (send before receive causally).
        for m in comp.messages() {
            assert!(comp.happened_before(m.send, m.recv));
        }
        // Counters recorded monotonically.
        for p in comp.processes() {
            let var = comp.var(p, "count").unwrap();
            let mut last = -1;
            for pos in 0..comp.len(p) {
                let v = comp.value_at(var, pos).expect_int();
                assert!(v >= last);
                last = v;
            }
        }
    }

    #[test]
    fn quiescent_protocol_terminates_via_iteration_cap() {
        struct Idle;
        impl Protocol for Idle {
            fn num_processes(&self) -> usize {
                2
            }
            fn declare_vars(&mut self, _: usize, _: &mut ComputationBuilder) {}
            fn step(&mut self, _: usize, _: &mut StdRng, _out: &mut Actions) {
                // never acts
            }
            fn on_message(&mut self, _: usize, _: usize, _: MsgPayload, out: &mut Actions) {
                out.internal();
            }
        }
        let cfg = SimConfig {
            max_iterations: 500,
            ..SimConfig::default()
        };
        let comp = run(&mut Idle, &cfg).unwrap();
        assert!(comp.is_empty());
    }

    #[test]
    fn resume_copies_the_prefix_verbatim_and_extends_it() {
        use crate::primary_secondary::{self, PrimarySecondary};
        let cfg = SimConfig {
            seed: 9,
            max_events_per_process: 10,
            ..SimConfig::default()
        };
        let base = run(&mut PrimarySecondary::new(3), &cfg).unwrap();
        // A non-trivial consistent cut: the causal past of a mid-run event.
        let p1 = base.process(1);
        let line = base.min_cut(base.event_at(p1, base.len(p1) / 2)).clone();
        let mut fresh = PrimarySecondary::new(3);
        let resumed = resume(&mut fresh, &base, &line, &cfg).unwrap();

        // The prefix matches event-for-event and value-for-value.
        for p in base.processes() {
            assert!(resumed.len(p) >= line.count(p));
            let names: Vec<String> = base.var_names(p).map(str::to_owned).collect();
            for name in &names {
                let old = base.var(p, name).unwrap();
                let new = resumed.var(p, name).unwrap();
                for pos in 1..line.count(p) {
                    assert_eq!(
                        base.value_at(old, pos),
                        resumed.value_at(new, pos),
                        "{name} of {p} at {pos}"
                    );
                }
            }
        }
        // The run continued past the line up to the configured bound.
        let max = resumed
            .processes()
            .map(|p| resumed.len(p) - 1)
            .max()
            .unwrap();
        assert_eq!(max, cfg.max_events_per_process);
        // Restoring from a fault-free prefix keeps the run fault-free.
        let inv = primary_secondary::invariant(&resumed);
        slicing_computation::lattice::for_each_cut(&resumed, |cut| {
            assert!(
                slicing_predicates::Predicate::eval(
                    &inv,
                    &slicing_computation::GlobalState::new(&resumed, cut)
                ),
                "invariant violated at {cut} after resume"
            );
            true
        });
    }

    #[test]
    fn resume_is_deterministic() {
        use crate::primary_secondary::PrimarySecondary;
        let cfg = SimConfig {
            seed: 4,
            max_events_per_process: 8,
            ..SimConfig::default()
        };
        let base = run(&mut PrimarySecondary::new(3), &cfg).unwrap();
        let line = Cut::bottom(3);
        let a = resume(&mut PrimarySecondary::new(3), &base, &line, &cfg).unwrap();
        let b = resume(&mut PrimarySecondary::new(3), &base, &line, &cfg).unwrap();
        assert_eq!(
            slicing_computation::trace::to_text(&a),
            slicing_computation::trace::to_text(&b)
        );
    }

    #[test]
    fn database_resume_reproposes_after_a_mid_proposal_rollback() {
        use crate::database::{self, DatabasePartitioning};
        // Find a run and a line that cuts through an active proposal (some
        // holder's change flag raised at its frontier).
        'seeds: for seed in 0..20u64 {
            let cfg = SimConfig {
                seed,
                max_events_per_process: 14,
                ..SimConfig::default()
            };
            let base = run(&mut DatabasePartitioning::new(4), &cfg).unwrap();
            for i in 1..4usize {
                let p = base.process(i);
                let change = base.var(p, "change").unwrap();
                for pos in 1..base.len(p) {
                    if !base.value_at(change, pos).expect_bool() {
                        continue;
                    }
                    let line = base.min_cut(base.event_at(p, pos)).clone();
                    let resumed =
                        resume(&mut DatabasePartitioning::new(4), &base, &line, &cfg).unwrap();
                    // The re-proposal path must keep the invariant intact
                    // at every cut of the resumed run.
                    let inv = database::invariant(&resumed);
                    slicing_computation::lattice::for_each_cut(&resumed, |cut| {
                        assert!(
                            slicing_predicates::Predicate::eval(
                                &inv,
                                &slicing_computation::GlobalState::new(&resumed, cut)
                            ),
                            "seed {seed}: invariant violated at {cut}"
                        );
                        true
                    });
                    // And the stuck flag must come down by the end.
                    let new_change = resumed.var(p, "change").unwrap();
                    assert!(
                        !resumed
                            .value_at(new_change, resumed.len(p) - 1)
                            .expect_bool(),
                        "seed {seed}: change flag never lowered after resume"
                    );
                    break 'seeds;
                }
            }
            if seed == 19 {
                panic!("no seed produced a mid-proposal cut");
            }
        }
    }

    #[test]
    fn channels_are_fifo_per_pair() {
        // Messages from the same sender to the same receiver arrive in
        // send order: receive positions are ordered like send positions.
        let cfg = SimConfig {
            seed: 5,
            max_events_per_process: 25,
            deliver_weight: 30,
            ..SimConfig::default()
        };
        let comp = run(&mut PingCount::new(2), &cfg).unwrap();
        let mut pairs: Vec<(u32, u32)> = comp
            .messages()
            .iter()
            .filter(|m| comp.process_of(m.send).as_usize() == 0)
            .map(|m| (comp.position_of(m.send), comp.position_of(m.recv)))
            .collect();
        pairs.sort_unstable();
        for w in pairs.windows(2) {
            assert!(w[0].1 < w[1].1, "FIFO violated: {pairs:?}");
        }
    }
}
