//! The *database partitioning* protocol of the paper's second experiment
//! (Section 5.1, after Stoller–Unnikrishnan–Liu).
//!
//! A database is partitioned among processes `p1..pn-1` while process `p0`
//! assigns tasks based on the current partition. Any holder may suggest a
//! new partition by raising its `change` flag and broadcasting the
//! proposal; the coordinator serializes proposals so that, in fault-free
//! runs, the invariant `I_db` — *if no process is changing the partition,
//! all processes agree on it* — holds at every consistent cut.

use rand::rngs::StdRng;
use rand::RngExt;

use slicing_computation::{Computation, ComputationBuilder, ProcSet, Value, VarRef};
use slicing_core::PredicateSpec;
use slicing_predicates::{Conjunctive, FnPredicate, LocalPredicate};

use crate::runtime::{Actions, MsgPayload, Protocol};

const MSG_REQUEST: u32 = 0;
const MSG_GRANT: u32 = 1;
const MSG_PROPOSE: u32 = 2;
const MSG_ADOPT_ACK: u32 = 3;
const MSG_DONE: u32 = 4;

#[derive(Debug, Clone, Copy, PartialEq)]
enum HolderState {
    Idle,
    Requested,
    /// Proposed a new partition; counting adoption acks.
    Proposing {
        acks_missing: u32,
    },
}

/// The database-partitioning protocol. Process 0 is the task-assigning
/// coordinator; processes `1..n` hold `partition` and `change` variables.
#[derive(Debug)]
pub struct DatabasePartitioning {
    n: usize,
    change_vars: Vec<Option<VarRef>>,
    partition_vars: Vec<Option<VarRef>>,
    tasks_var: Option<VarRef>,
    state: Vec<HolderState>,
    partition: Vec<i64>,
    next_value: i64,
    /// Holders whose `change` flag was raised at a rollback's recovery
    /// line: their proposal handshake was lost, so they re-request a grant
    /// on their next step, which re-runs the proposal to completion and
    /// lowers the flag through the normal protocol path.
    needs_repropose: Vec<bool>,
    /// Coordinator: queue of holders waiting for a grant, and whether a
    /// grant is outstanding.
    waiting: Vec<usize>,
    granted: bool,
    tasks: i64,
    /// Probability (percent) that an idle holder requests a change.
    change_percent: u32,
}

impl DatabasePartitioning {
    /// Creates the protocol over `n ≥ 3` processes (one coordinator, at
    /// least two partition holders).
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn new(n: usize) -> Self {
        assert!(
            n >= 3,
            "database partitioning needs a coordinator and two holders"
        );
        DatabasePartitioning {
            n,
            change_vars: vec![None; n],
            partition_vars: vec![None; n],
            tasks_var: None,
            state: vec![HolderState::Idle; n],
            partition: vec![0; n],
            next_value: 1,
            needs_repropose: vec![false; n],
            waiting: Vec::new(),
            granted: false,
            tasks: 0,
            change_percent: 20,
        }
    }

    /// Indices of the partition-holder processes.
    fn holders(&self) -> std::ops::Range<usize> {
        1..self.n
    }
}

impl Protocol for DatabasePartitioning {
    fn num_processes(&self) -> usize {
        self.n
    }

    fn declare_vars(&mut self, p: usize, b: &mut ComputationBuilder) {
        let pid = b.process(p);
        if p == 0 {
            self.tasks_var = Some(b.declare_var(pid, "tasks", Value::Int(0)));
        } else {
            self.change_vars[p] = Some(b.declare_var(pid, "change", Value::Bool(false)));
            self.partition_vars[p] = Some(b.declare_var(pid, "partition", Value::Int(0)));
        }
    }

    fn step(&mut self, p: usize, rng: &mut StdRng, out: &mut Actions) {
        if p == 0 {
            // The coordinator assigns a task (a work event).
            self.tasks += 1;
            out.set(self.tasks_var.unwrap(), self.tasks);
            return;
        }
        if self.needs_repropose[p] {
            self.needs_repropose[p] = false;
            self.state[p] = HolderState::Requested;
            out.send(0, (MSG_REQUEST, 0));
            return;
        }
        if self.state[p] == HolderState::Idle && rng.random_range(0..100u32) < self.change_percent {
            self.state[p] = HolderState::Requested;
            out.send(0, (MSG_REQUEST, 0));
        } else {
            // Holders do internal work too, so events accumulate on all
            // processes like in the paper's runs.
            out.internal();
        }
    }

    fn on_message(&mut self, p: usize, from: usize, payload: MsgPayload, out: &mut Actions) {
        match payload.0 {
            MSG_REQUEST => {
                debug_assert_eq!(p, 0);
                if self.granted {
                    self.waiting.push(from);
                    out.internal();
                } else {
                    self.granted = true;
                    out.send(from, (MSG_GRANT, 0));
                }
            }
            MSG_GRANT => {
                // Raise the flag, adopt locally, and broadcast.
                let v = self.next_value;
                self.next_value += 1;
                self.partition[p] = v;
                self.state[p] = HolderState::Proposing {
                    acks_missing: (self.n - 2) as u32,
                };
                out.set(self.change_vars[p].unwrap(), true);
                out.set(self.partition_vars[p].unwrap(), v);
                for q in self.holders() {
                    if q != p {
                        out.send(q, (MSG_PROPOSE, v));
                    }
                }
            }
            MSG_PROPOSE => {
                self.partition[p] = payload.1;
                out.set(self.partition_vars[p].unwrap(), payload.1);
                out.send(from, (MSG_ADOPT_ACK, 0));
            }
            MSG_ADOPT_ACK => {
                let HolderState::Proposing { acks_missing } = self.state[p] else {
                    panic!("unexpected adoption ack at holder {p}");
                };
                if acks_missing == 1 {
                    // Everyone adopted: lower the flag, tell the
                    // coordinator.
                    self.state[p] = HolderState::Idle;
                    out.set(self.change_vars[p].unwrap(), false);
                    out.send(0, (MSG_DONE, 0));
                } else {
                    self.state[p] = HolderState::Proposing {
                        acks_missing: acks_missing - 1,
                    };
                    out.internal();
                }
            }
            MSG_DONE => {
                debug_assert_eq!(p, 0);
                self.granted = false;
                if let Some(next) = if self.waiting.is_empty() {
                    None
                } else {
                    Some(self.waiting.remove(0))
                } {
                    self.granted = true;
                    out.send(next, (MSG_GRANT, 0));
                } else {
                    out.internal();
                }
            }
            other => panic!("unknown database-partitioning message tag {other}"),
        }
    }

    fn restore(&mut self, base: &Computation, line: &slicing_computation::Cut) {
        let p0 = base.process(0);
        let tasks = base.var(p0, "tasks").expect("protocol variable");
        self.tasks = base.value_at(tasks, line.frontier_pos(p0)).expect_int();
        // Any outstanding grant (and its queue) belongs to a proposal whose
        // messages were lost in the rollback; start from a free coordinator
        // and let stuck holders re-request.
        self.granted = false;
        self.waiting.clear();
        let mut max_partition = 0i64;
        for i in self.holders() {
            let p = base.process(i);
            let pos = line.frontier_pos(p);
            let change = base.var(p, "change").expect("protocol variable");
            let part = base.var(p, "partition").expect("protocol variable");
            let v = base.value_at(part, pos).expect_int();
            self.partition[i] = v;
            max_partition = max_partition.max(v);
            self.state[i] = HolderState::Idle;
            // A raised flag at the line means a half-done proposal. While
            // it stays raised `I_db` holds vacuously; re-proposing drives
            // every partition to one fresh value and lowers the flag via
            // the ordinary ack path.
            self.needs_repropose[i] = base.value_at(change, pos).expect_bool();
        }
        // Fresh proposals must not alias a value already in the prefix.
        self.next_value = max_partition + 1;
    }
}

/// The invariant `I_db`: if no holder's `change` flag is raised, all
/// partitions agree.
pub fn invariant(comp: &Computation) -> FnPredicate {
    let n = comp.num_processes();
    let handles: Vec<(VarRef, VarRef)> = (1..n)
        .map(|i| {
            let p = comp.process(i);
            (
                comp.var(p, "change").expect("protocol variable"),
                comp.var(p, "partition").expect("protocol variable"),
            )
        })
        .collect();
    FnPredicate::new(ProcSet::all(n), "I_db", move |st| {
        let changing = handles.iter().any(|&(c, _)| st.get(c).expect_bool());
        if changing {
            return true;
        }
        let first = st.get(handles[0].1).expect_int();
        handles
            .iter()
            .all(|&(_, v)| st.get(v).expect_int() == first)
    })
}

/// The global fault `¬I_db` as a sliceable specification:
///
/// ```text
/// ¬change_1 ∧ … ∧ ¬change_{n-1} ∧ (∨_{i≠j} partition_i ≠ partition_j)
/// ```
///
/// Following Section 5.1, the last clause is rewritten against the values
/// `V` that the *first holder's* partition takes in this computation:
/// `∨_{v ∈ V} ∨_{i>1} (partition_1 = v ∧ partition_i ≠ v)`, reducing the
/// clause count from `O(n|E|)` to `O(n|V|)`. Every disjunct is
/// conjunctive, so each slices in `O(|E|)`.
pub fn violation_spec(comp: &Computation) -> PredicateSpec {
    let n = comp.num_processes();
    let mut conjuncts: Vec<PredicateSpec> = Vec::new();
    // ¬change_i for every holder.
    for i in 1..n {
        let p = comp.process(i);
        let change = comp.var(p, "change").expect("protocol variable");
        conjuncts.push(PredicateSpec::conjunctive(Conjunctive::new(vec![
            LocalPredicate::new(vec![change], format!("!change_{i}"), |vals| {
                !vals[0].expect_bool()
            }),
        ])));
    }
    // The disagreement clause, pivoted on holder 1.
    let pivot = comp
        .var(comp.process(1), "partition")
        .expect("protocol variable");
    let values = comp.distinct_values(pivot);
    let mut disjuncts = Vec::new();
    for v in values {
        for i in 2..n {
            let part_i = comp
                .var(comp.process(i), "partition")
                .expect("protocol variable");
            disjuncts.push(PredicateSpec::conjunctive(Conjunctive::new(vec![
                LocalPredicate::equals(pivot, v),
                LocalPredicate::new(vec![part_i], format!("partition_{i} != {v}"), move |vals| {
                    vals[0] != v
                }),
            ])));
        }
    }
    conjuncts.push(PredicateSpec::or(disjuncts));
    PredicateSpec::and(conjuncts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{run, SimConfig};
    use slicing_computation::lattice::for_each_cut;
    use slicing_computation::GlobalState;
    use slicing_predicates::Predicate;

    fn small_run(seed: u64, n: usize, events: u32) -> Computation {
        let cfg = SimConfig {
            seed,
            max_events_per_process: events,
            ..SimConfig::default()
        };
        run(&mut DatabasePartitioning::new(n), &cfg).expect("protocol run builds")
    }

    #[test]
    fn fault_free_runs_satisfy_the_invariant_at_every_cut() {
        for seed in 0..6 {
            let comp = small_run(seed, 4, 8);
            let inv = invariant(&comp);
            for_each_cut(&comp, |cut| {
                assert!(
                    inv.eval(&GlobalState::new(&comp, cut)),
                    "seed {seed} cut {cut}"
                );
                true
            });
        }
    }

    #[test]
    fn violation_spec_matches_negated_invariant() {
        for seed in 0..4 {
            let comp = small_run(seed, 4, 7);
            let inv = invariant(&comp);
            let spec = violation_spec(&comp);
            for_each_cut(&comp, |cut| {
                let st = GlobalState::new(&comp, cut);
                assert_eq!(spec.eval(&st), !inv.eval(&st), "seed {seed} cut {cut}");
                true
            });
        }
    }

    #[test]
    fn partitions_actually_change() {
        let comp = small_run(9, 4, 20);
        let part = comp.var(comp.process(1), "partition").unwrap();
        assert!(
            comp.distinct_values(part).len() > 1,
            "no proposal ever completed"
        );
    }

    #[test]
    fn fault_free_slice_finds_no_violation() {
        for seed in 0..4 {
            let comp = small_run(seed, 4, 8);
            let spec = violation_spec(&comp);
            let slice = spec.slice(&comp);
            let mut found = false;
            for_each_cut(&slice, |cut| {
                if spec.eval(&GlobalState::new(&comp, cut)) {
                    found = true;
                    return false;
                }
                true
            });
            assert!(!found, "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "coordinator and two holders")]
    fn rejects_too_few_processes() {
        let _ = DatabasePartitioning::new(2);
    }
}
