//! A logical-clock synchronization protocol — the workload behind the
//! paper's Section 4.1 running example, "counters of all processes are
//! approximately synchronized" (`∀ i,j: |cᵢ − cⱼ| ≤ Δ`), the canonical
//! *decomposable regular predicate* (clause span k = 2, s = n clauses per
//! process).
//!
//! Every process ticks a monotonically non-decreasing counter and
//! gossips it; receivers fast-forward to any larger value they hear.
//! With gossip flowing the counters stay within a small drift.

use rand::rngs::StdRng;
use rand::RngExt;

use slicing_computation::{Computation, ComputationBuilder, Value, VarRef};
use slicing_core::PredicateSpec;
use slicing_predicates::{approximately_synchronized, BoundedDifference, KLocalPredicate};

use crate::runtime::{Actions, MsgPayload, Protocol};

const MSG_GOSSIP: u32 = 0;

/// The clock-synchronization protocol (see module docs).
#[derive(Debug)]
pub struct ClockSync {
    n: usize,
    clocks: Vec<i64>,
    vars: Vec<Option<VarRef>>,
    /// Probability (percent) that a tick also gossips.
    gossip_percent: u32,
}

impl ClockSync {
    /// Creates the protocol over `n ≥ 2` processes, all starting at 0.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "clock synchronization needs at least two processes");
        ClockSync {
            n,
            clocks: vec![0; n],
            vars: vec![None; n],
            gossip_percent: 40,
        }
    }
}

impl Protocol for ClockSync {
    fn num_processes(&self) -> usize {
        self.n
    }

    fn declare_vars(&mut self, p: usize, b: &mut ComputationBuilder) {
        let pid = b.process(p);
        self.vars[p] = Some(b.declare_var(pid, "c", Value::Int(0)));
    }

    fn step(&mut self, p: usize, rng: &mut StdRng, out: &mut Actions) {
        self.clocks[p] += 1;
        out.set(self.vars[p].expect("declared"), self.clocks[p]);
        if rng.random_range(0..100u32) < self.gossip_percent {
            let peer = {
                let mut q = rng.random_range(0..self.n);
                if q == p {
                    q = (q + 1) % self.n;
                }
                q
            };
            out.send(peer, (MSG_GOSSIP, self.clocks[p]));
        }
    }

    fn on_message(&mut self, p: usize, _from: usize, payload: MsgPayload, out: &mut Actions) {
        debug_assert_eq!(payload.0, MSG_GOSSIP);
        // Fast-forward, preserving monotonicity.
        if payload.1 > self.clocks[p] {
            self.clocks[p] = payload.1;
        }
        out.set(self.vars[p].expect("declared"), self.clocks[p]);
    }
}

/// The counter variables of a recorded run, in process order.
pub fn clock_vars(comp: &Computation) -> Vec<VarRef> {
    comp.processes()
        .map(|p| comp.var(p, "c").expect("protocol variable"))
        .collect()
}

/// The Section 4.1 predicate as decomposable clauses: `|cᵢ − cⱼ| ≤ delta`
/// for all pairs — feed to
/// [`slice_decomposable`](slicing_core::slice_decomposable).
pub fn synchronized_clauses(comp: &Computation, delta: i64) -> Vec<BoundedDifference> {
    approximately_synchronized(&clock_vars(comp), delta)
}

/// The *drift fault* `∃ i,j: |cᵢ − cⱼ| > delta` as a sliceable
/// specification: a disjunction of 2-local leaves.
pub fn drift_spec(comp: &Computation, delta: i64) -> PredicateSpec {
    let vars = clock_vars(comp);
    let mut disjuncts = Vec::new();
    for (i, &a) in vars.iter().enumerate() {
        for &b in &vars[i + 1..] {
            disjuncts.push(PredicateSpec::klocal(KLocalPredicate::new(
                vec![a, b],
                format!("|c{}-c{}| > {delta}", a.process(), b.process()),
                move |v| (v[0].expect_int() - v[1].expect_int()).abs() > delta,
            )));
        }
    }
    PredicateSpec::or(disjuncts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{run, SimConfig};
    use slicing_computation::lattice::for_each_cut;
    use slicing_computation::oracle::expected_slice_cuts;
    use slicing_computation::{Cut, GlobalState};
    use slicing_core::slice_decomposable;
    use slicing_predicates::Predicate;
    use std::collections::BTreeSet;

    fn small_run(seed: u64, n: usize, events: u32) -> Computation {
        let cfg = SimConfig {
            seed,
            max_events_per_process: events,
            ..SimConfig::default()
        };
        run(&mut ClockSync::new(n), &cfg).expect("protocol run builds")
    }

    #[test]
    fn clocks_are_monotone() {
        let comp = small_run(1, 3, 15);
        for p in comp.processes() {
            let c = comp.var(p, "c").unwrap();
            let mut last = -1;
            for pos in 0..comp.len(p) {
                let v = comp.value_at(c, pos).expect_int();
                assert!(v >= last, "{p} position {pos}");
                last = v;
            }
        }
    }

    #[test]
    fn decomposable_slice_matches_oracle_on_runs() {
        for seed in 0..5 {
            let comp = small_run(seed, 3, 5);
            let clauses = synchronized_clauses(&comp, 1);
            let slice = slice_decomposable(&comp, &clauses);
            let got: BTreeSet<Cut> = slicing_computation::lattice::all_cuts(&slice)
                .into_iter()
                .collect();
            let (want, sat) = expected_slice_cuts(&comp, |st| clauses.iter().all(|c| c.eval(st)));
            assert_eq!(got, want, "seed {seed}");
            assert_eq!(want.len(), sat.len(), "seed {seed}: leanness");
        }
    }

    #[test]
    fn drift_spec_matches_clause_negation() {
        let comp = small_run(4, 3, 6);
        let clauses = synchronized_clauses(&comp, 1);
        let drift = drift_spec(&comp, 1);
        for_each_cut(&comp, |cut| {
            let st = GlobalState::new(&comp, cut);
            let in_sync = clauses.iter().all(|c| c.eval(&st));
            assert_eq!(drift.eval(&st), !in_sync, "cut {cut}");
            true
        });
    }

    #[test]
    fn drift_detectable_without_gossip() {
        // Isolated clocks drift arbitrarily: a delta-0 drift fault must
        // appear as soon as one process ticks twice.
        let mut proto = ClockSync::new(2);
        proto.gossip_percent = 0;
        let cfg = SimConfig {
            seed: 2,
            max_events_per_process: 4,
            ..SimConfig::default()
        };
        let comp = run(&mut proto, &cfg).unwrap();
        let spec = drift_spec(&comp, 1);
        let slice = spec.slice(&comp);
        assert!(!slice.is_empty_slice());
        let mut found = false;
        for_each_cut(&slice, |cut| {
            if spec.eval(&GlobalState::new(&comp, cut)) {
                found = true;
                return false;
            }
            true
        });
        assert!(found, "isolated clocks must drift past Δ = 1");
    }

    #[test]
    #[should_panic(expected = "two processes")]
    fn rejects_single_process() {
        let _ = ClockSync::new(1);
    }
}
