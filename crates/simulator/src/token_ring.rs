//! A token-ring mutual-exclusion protocol — the workload behind the
//! paper's introductory predicate "no process has the token"
//! (`no_token_1 ∧ … ∧ no_token_n`), which is conjunctive and holds exactly
//! when the token is in transit.

use rand::rngs::StdRng;
use rand::RngExt;

use slicing_computation::{Computation, ComputationBuilder, Value, VarRef};
use slicing_core::PredicateSpec;
use slicing_predicates::{Conjunctive, LocalPredicate};

use crate::runtime::{Actions, MsgPayload, Protocol};

const MSG_TOKEN: u32 = 0;

/// The token-ring protocol: one token circulates; the holder performs some
/// critical-section work and passes the token to its right neighbour.
#[derive(Debug)]
pub struct TokenRing {
    n: usize,
    has_token: Vec<bool>,
    token_vars: Vec<Option<VarRef>>,
    work_vars: Vec<Option<VarRef>>,
    work: Vec<i64>,
    /// Probability (percent) that the holder passes the token on a step.
    pass_percent: u32,
}

impl TokenRing {
    /// Creates a ring of `n ≥ 2` processes; process 0 starts with the
    /// token.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "a token ring needs at least two processes");
        TokenRing {
            n,
            has_token: (0..n).map(|i| i == 0).collect(),
            token_vars: vec![None; n],
            work_vars: vec![None; n],
            work: vec![0; n],
            pass_percent: 40,
        }
    }
}

impl Protocol for TokenRing {
    fn num_processes(&self) -> usize {
        self.n
    }

    fn declare_vars(&mut self, p: usize, b: &mut ComputationBuilder) {
        let pid = b.process(p);
        self.token_vars[p] = Some(b.declare_var(pid, "has_token", Value::Bool(p == 0)));
        self.work_vars[p] = Some(b.declare_var(pid, "work", Value::Int(0)));
    }

    fn step(&mut self, p: usize, rng: &mut StdRng, out: &mut Actions) {
        if self.has_token[p] && rng.random_range(0..100u32) < self.pass_percent {
            self.has_token[p] = false;
            out.set(self.token_vars[p].unwrap(), false);
            out.send((p + 1) % self.n, (MSG_TOKEN, 0));
        } else {
            self.work[p] += 1;
            out.set(self.work_vars[p].unwrap(), self.work[p]);
        }
    }

    fn on_message(&mut self, p: usize, _from: usize, payload: MsgPayload, out: &mut Actions) {
        debug_assert_eq!(payload.0, MSG_TOKEN);
        self.has_token[p] = true;
        out.set(self.token_vars[p].unwrap(), true);
    }
}

/// The conjunctive predicate "no process has the token" — true exactly at
/// cuts where the token is in some channel.
pub fn no_token_spec(comp: &Computation) -> PredicateSpec {
    let clauses = comp
        .processes()
        .map(|p| {
            let var = comp.var(p, "has_token").expect("protocol variable");
            LocalPredicate::new(vec![var], format!("!has_token_{p}"), |vals| {
                !vals[0].expect_bool()
            })
        })
        .collect();
    PredicateSpec::conjunctive(Conjunctive::new(clauses))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{run, SimConfig};
    use slicing_computation::lattice::{count_cuts, for_each_cut};
    use slicing_computation::GlobalState;

    fn small_run(seed: u64, n: usize, events: u32) -> Computation {
        let cfg = SimConfig {
            seed,
            max_events_per_process: events,
            ..SimConfig::default()
        };
        run(&mut TokenRing::new(n), &cfg).expect("protocol run builds")
    }

    #[test]
    fn at_most_one_process_holds_the_token_at_every_cut() {
        for seed in 0..5 {
            let comp = small_run(seed, 3, 8);
            let vars: Vec<VarRef> = comp
                .processes()
                .map(|p| comp.var(p, "has_token").unwrap())
                .collect();
            for_each_cut(&comp, |cut| {
                let st = GlobalState::new(&comp, cut);
                let holders = vars.iter().filter(|&&v| st.get(v).expect_bool()).count();
                assert!(holders <= 1, "seed {seed} cut {cut}: {holders} holders");
                true
            });
        }
    }

    #[test]
    fn no_token_detectable_iff_token_in_transit() {
        let comp = small_run(2, 3, 10);
        let spec = no_token_spec(&comp);
        let slice = spec.slice(&comp);
        // The token was passed at least once in this run, so "no process
        // has the token" is detectable.
        assert!(!slice.is_empty_slice());
        // And the slice is lean (conjunctive): every cut satisfies it.
        for_each_cut(&slice, |cut| {
            assert!(spec.eval(&GlobalState::new(&comp, cut)));
            true
        });
        // Exponentially fewer cuts than the computation.
        assert!(
            slice.count_cuts(None).value() < count_cuts(&comp, None).value() / 2,
            "slice {} vs computation {}",
            slice.count_cuts(None).value(),
            count_cuts(&comp, None).value()
        );
    }
}
