//! A centralized mutual-exclusion protocol: a coordinator grants a single
//! lock; holders work in their critical section and release. The safety
//! property is classic — *at most one process is in its critical section
//! at any consistent cut* — and its violation
//! `∃ i<j: in_cs_i ∧ in_cs_j` is a disjunction of 2-local conjunctive
//! predicates, sliced exactly by the Section 4.2 machinery.

use rand::rngs::StdRng;
use rand::RngExt;

use slicing_computation::{Computation, ComputationBuilder, Value, VarRef};
use slicing_core::PredicateSpec;
use slicing_predicates::{Conjunctive, LocalPredicate};

use crate::runtime::{Actions, MsgPayload, Protocol};

const MSG_REQUEST: u32 = 0;
const MSG_GRANT: u32 = 1;
const MSG_RELEASE: u32 = 2;

#[derive(Debug, Clone, Copy, PartialEq)]
enum ClientState {
    Idle,
    Waiting,
    InCs { remaining_work: u32 },
}

/// The centralized-mutex protocol. Process 0 coordinates; processes
/// `1..n` compete for the critical section.
#[derive(Debug)]
pub struct CentralMutex {
    n: usize,
    state: Vec<ClientState>,
    cs_vars: Vec<Option<VarRef>>,
    /// Coordinator bookkeeping.
    queue: Vec<usize>,
    granted: bool,
    /// Probability (percent) that an idle client requests the lock.
    request_percent: u32,
}

impl CentralMutex {
    /// Creates the protocol over `n ≥ 3` processes (coordinator + two
    /// competitors).
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 3, "central mutex needs a coordinator and two clients");
        CentralMutex {
            n,
            state: vec![ClientState::Idle; n],
            cs_vars: vec![None; n],
            queue: Vec::new(),
            granted: false,
            request_percent: 30,
        }
    }
}

impl Protocol for CentralMutex {
    fn num_processes(&self) -> usize {
        self.n
    }

    fn declare_vars(&mut self, p: usize, b: &mut ComputationBuilder) {
        if p == 0 {
            return; // the coordinator exposes no monitored state
        }
        let pid = b.process(p);
        self.cs_vars[p] = Some(b.declare_var(pid, "in_cs", Value::Bool(false)));
    }

    fn step(&mut self, p: usize, rng: &mut StdRng, out: &mut Actions) {
        if p == 0 {
            return; // the coordinator only reacts
        }
        match self.state[p] {
            ClientState::Idle => {
                if rng.random_range(0..100u32) < self.request_percent {
                    self.state[p] = ClientState::Waiting;
                    out.send(0, (MSG_REQUEST, 0));
                }
            }
            ClientState::InCs { remaining_work } => {
                if remaining_work == 0 {
                    self.state[p] = ClientState::Idle;
                    out.set(self.cs_vars[p].expect("declared"), false);
                    out.send(0, (MSG_RELEASE, 0));
                } else {
                    self.state[p] = ClientState::InCs {
                        remaining_work: remaining_work - 1,
                    };
                    out.internal(); // critical-section work event
                }
            }
            ClientState::Waiting => {}
        }
    }

    fn on_message(&mut self, p: usize, from: usize, payload: MsgPayload, out: &mut Actions) {
        match (p, payload.0) {
            (0, MSG_REQUEST) => {
                if self.granted {
                    self.queue.push(from);
                    out.internal();
                } else {
                    self.granted = true;
                    out.send(from, (MSG_GRANT, 0));
                }
            }
            (0, MSG_RELEASE) => {
                if self.queue.is_empty() {
                    self.granted = false;
                    out.internal();
                } else {
                    let next = self.queue.remove(0);
                    out.send(next, (MSG_GRANT, 0));
                }
            }
            (_, MSG_GRANT) => {
                self.state[p] = ClientState::InCs { remaining_work: 2 };
                out.set(self.cs_vars[p].expect("declared"), true);
            }
            other => panic!("unexpected mutex message {other:?}"),
        }
    }
}

/// The safety violation `∃ i < j: in_cs_i ∧ in_cs_j` as a sliceable
/// specification — a disjunction of 2-local conjunctive clauses (each
/// clause is a conjunction of two booleans on different processes, so
/// every disjunct slices in `O(|E|)`).
pub fn violation_spec(comp: &Computation) -> PredicateSpec {
    let vars: Vec<VarRef> = comp
        .processes()
        .filter_map(|p| comp.var(p, "in_cs"))
        .collect();
    let mut disjuncts = Vec::new();
    for (i, &a) in vars.iter().enumerate() {
        for &b in &vars[i + 1..] {
            disjuncts.push(PredicateSpec::conjunctive(Conjunctive::new(vec![
                LocalPredicate::bool(a, format!("in_cs_{}", a.process())),
                LocalPredicate::bool(b, format!("in_cs_{}", b.process())),
            ])));
        }
    }
    PredicateSpec::or(disjuncts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{inject, FaultSpec};
    use crate::runtime::{run, SimConfig};
    use slicing_computation::lattice::for_each_cut;
    use slicing_computation::GlobalState;

    fn small_run(seed: u64, n: usize, events: u32) -> Computation {
        let cfg = SimConfig {
            seed,
            max_events_per_process: events,
            ..SimConfig::default()
        };
        run(&mut CentralMutex::new(n), &cfg).expect("protocol run builds")
    }

    #[test]
    fn mutual_exclusion_holds_at_every_cut() {
        for seed in 0..6 {
            let comp = small_run(seed, 4, 10);
            let spec = violation_spec(&comp);
            for_each_cut(&comp, |cut| {
                assert!(
                    !spec.eval(&GlobalState::new(&comp, cut)),
                    "seed {seed}: two holders at {cut}"
                );
                true
            });
        }
    }

    #[test]
    fn clients_actually_enter_the_critical_section() {
        let comp = small_run(1, 4, 15);
        let entered = comp
            .processes()
            .filter_map(|p| comp.var(p, "in_cs"))
            .filter(|&v| (0..comp.len(v.process())).any(|pos| comp.value_at(v, pos).expect_bool()))
            .count();
        assert!(entered >= 2, "only {entered} clients ever held the lock");
    }

    #[test]
    fn fault_free_slice_is_empty() {
        for seed in 0..5 {
            let comp = small_run(seed, 4, 10);
            let slice = violation_spec(&comp).slice(&comp);
            assert!(
                slice.is_empty_slice(),
                "seed {seed}: safety slice should be empty on correct runs"
            );
        }
    }

    #[test]
    fn injected_double_grant_is_detected() {
        // Force a second holder by flipping a waiting client's in_cs flag
        // while another client is inside.
        let comp = small_run(2, 4, 12);
        // Find a cut where someone is in the CS, then corrupt another
        // client at a concurrent position.
        let mut injected = None;
        'outer: for victim in 1..4usize {
            let p = comp.process(victim);
            let var = comp.var(p, "in_cs").unwrap();
            for pos in 1..comp.len(p) {
                if !comp.value_at(var, pos).expect_bool() {
                    let fault = FaultSpec {
                        process: p,
                        position: pos,
                        var_name: "in_cs".to_owned(),
                        value: Value::Bool(true),
                        transient: true,
                    };
                    let faulty = inject(&comp, &fault).unwrap();
                    let spec = violation_spec(&faulty);
                    let slice = spec.slice(&faulty);
                    let mut found = false;
                    for_each_cut(&slice, |cut| {
                        if spec.eval(&GlobalState::new(&faulty, cut)) {
                            found = true;
                            return false;
                        }
                        true
                    });
                    if found {
                        injected = Some(fault);
                        break 'outer;
                    }
                }
            }
        }
        assert!(
            injected.is_some(),
            "no injection position produced a detectable violation"
        );
    }

    #[test]
    #[should_panic(expected = "two clients")]
    fn rejects_too_few_processes() {
        let _ = CentralMutex::new(2);
    }
}
