//! A Raft-style *leader election* protocol: randomized timeouts promote
//! followers to candidates, candidates solicit term-stamped votes, and a
//! majority elects a leader that appends log entries via heartbeats.
//!
//! Two safety invariants hold at **every** consistent cut of a fault-free
//! run:
//!
//! - **Election safety** (`ES`): at most one process is leader of any
//!   given term. Guaranteed because `votedTerm` is *strictly* increasing
//!   (a vote is granted only for a term above it, and a timeout jumps past
//!   it), so each process votes at most once per term value, and two
//!   majorities must share a voter.
//! - **Log matching** (`LM`): a process following leader `L` has acked at
//!   most `L`'s log length — `leader_j = L ⇒ acked_j ≤ log_L`. Guaranteed
//!   because `acked_j` is copied from a heartbeat whose send (with
//!   `log_L ≥ acked_j`) is in every consistent cut containing the receive,
//!   and `log` is append-only.
//!
//! A global fault is a consistent cut violating either.

use rand::rngs::StdRng;
use rand::RngExt;

use slicing_computation::{Computation, ComputationBuilder, ProcSet, Value, VarRef};
use slicing_core::PredicateSpec;
use slicing_predicates::{Conjunctive, FnPredicate, LocalPredicate};

use crate::runtime::{Actions, MsgPayload, Protocol};

const MSG_REQUEST_VOTE: u32 = 0;
const MSG_VOTE: u32 = 1;
const MSG_HEARTBEAT: u32 = 2;

/// Heartbeats carry `(term, log)` packed into one payload integer.
const PACK: i64 = 1_000_000;

fn pack(term: i64, log: i64) -> i64 {
    debug_assert!((0..PACK).contains(&log));
    term * PACK + log
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Role {
    Follower,
    Candidate { votes: usize },
    Leader,
}

/// Variable handles of one process.
#[derive(Debug, Clone, Copy)]
struct Vars {
    term: VarRef,
    voted_term: VarRef,
    is_leader: VarRef,
    /// Known leader's process index, `-1` for none.
    leader: VarRef,
    log: VarRef,
    acked: VarRef,
}

/// The leader-election protocol (see module docs). Everyone starts as a
/// follower of no one at term 0.
#[derive(Debug)]
pub struct LeaderElection {
    n: usize,
    vars: Vec<Option<Vars>>,
    // Mirrors of the exposed state, used by the state machine.
    term: Vec<i64>,
    voted_term: Vec<i64>,
    role: Vec<Role>,
    leader: Vec<i64>,
    log: Vec<i64>,
    acked: Vec<i64>,
    /// Probability (percent) that a non-leader's spontaneous step is an
    /// election timeout.
    timeout_percent: u32,
}

impl LeaderElection {
    /// Creates the protocol over `n ≥ 3` processes (majorities must be
    /// able to exclude a faulty minority).
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 3, "leader election needs three processes");
        LeaderElection {
            n,
            vars: vec![None; n],
            term: vec![0; n],
            voted_term: vec![0; n],
            role: vec![Role::Follower; n],
            leader: vec![-1; n],
            log: vec![0; n],
            acked: vec![0; n],
            timeout_percent: 25,
        }
    }

    fn v(&self, p: usize) -> Vars {
        self.vars[p].expect("declare_vars ran for every process")
    }
}

impl Protocol for LeaderElection {
    fn num_processes(&self) -> usize {
        self.n
    }

    fn declare_vars(&mut self, p: usize, b: &mut ComputationBuilder) {
        let pid = b.process(p);
        let vars = Vars {
            term: b.declare_var(pid, "term", Value::Int(0)),
            voted_term: b.declare_var(pid, "votedTerm", Value::Int(0)),
            is_leader: b.declare_var(pid, "isLeader", Value::Bool(false)),
            leader: b.declare_var(pid, "leader", Value::Int(-1)),
            log: b.declare_var(pid, "log", Value::Int(0)),
            acked: b.declare_var(pid, "acked", Value::Int(0)),
        };
        self.vars[p] = Some(vars);
    }

    fn step(&mut self, p: usize, rng: &mut StdRng, out: &mut Actions) {
        let vars = self.v(p);
        if self.role[p] == Role::Leader {
            // A leader's step appends one entry and heartbeats it out.
            self.log[p] += 1;
            self.acked[p] = self.log[p];
            out.set(vars.log, self.log[p]);
            out.set(vars.acked, self.acked[p]);
            for q in 0..self.n {
                if q != p {
                    out.send(q, (MSG_HEARTBEAT, pack(self.term[p], self.log[p])));
                }
            }
            return;
        }
        if rng.random_range(0..100u32) < self.timeout_percent {
            // Election timeout: jump past every term we have seen *or voted
            // in*, so the self-vote below keeps `votedTerm` strictly
            // increasing (the election-safety linchpin).
            let new_term = self.term[p].max(self.voted_term[p]) + 1;
            self.term[p] = new_term;
            self.voted_term[p] = new_term;
            self.role[p] = Role::Candidate { votes: 1 };
            self.leader[p] = -1;
            out.set(vars.term, new_term);
            out.set(vars.voted_term, new_term);
            out.set(vars.leader, -1i64);
            for q in 0..self.n {
                if q != p {
                    out.send(q, (MSG_REQUEST_VOTE, new_term));
                }
            }
        } else {
            out.internal();
        }
    }

    fn on_message(&mut self, p: usize, from: usize, payload: MsgPayload, out: &mut Actions) {
        let vars = self.v(p);
        match payload.0 {
            MSG_REQUEST_VOTE => {
                let t = payload.1;
                // Grant iff the candidate's term is current-or-newer and we
                // have not voted at that term yet.
                if t >= self.term[p] && t > self.voted_term[p] {
                    if t > self.term[p] {
                        self.term[p] = t;
                        self.leader[p] = -1;
                        out.set(vars.term, t);
                        out.set(vars.leader, -1i64);
                        if self.role[p] == Role::Leader {
                            out.set(vars.is_leader, false);
                        }
                        self.role[p] = Role::Follower;
                    }
                    self.voted_term[p] = t;
                    out.set(vars.voted_term, t);
                    out.send(from, (MSG_VOTE, t));
                } else {
                    out.internal();
                }
            }
            MSG_VOTE => {
                let t = payload.1;
                let Role::Candidate { votes } = self.role[p] else {
                    out.internal();
                    return;
                };
                if t != self.term[p] {
                    // A vote from a campaign we already abandoned.
                    out.internal();
                    return;
                }
                let votes = votes + 1;
                if 2 * votes > self.n {
                    // Elected: take the leadership, append the term's first
                    // entry, and self-ack it so `acked ≤ log` keeps holding
                    // with `leader = self` (a stale ack from a *previous*
                    // reign could otherwise exceed the fresh log).
                    self.role[p] = Role::Leader;
                    self.leader[p] = p as i64;
                    self.log[p] += 1;
                    self.acked[p] = self.log[p];
                    out.set(vars.is_leader, true);
                    out.set(vars.leader, p as i64);
                    out.set(vars.log, self.log[p]);
                    out.set(vars.acked, self.acked[p]);
                    for q in 0..self.n {
                        if q != p {
                            out.send(q, (MSG_HEARTBEAT, pack(self.term[p], self.log[p])));
                        }
                    }
                } else {
                    self.role[p] = Role::Candidate { votes };
                    out.internal();
                }
            }
            MSG_HEARTBEAT => {
                let (t, lg) = (payload.1.div_euclid(PACK), payload.1.rem_euclid(PACK));
                if t > self.term[p] || (t == self.term[p] && self.role[p] != Role::Leader) {
                    // Follow the heartbeat's sender: adopt its term, step
                    // down from any candidacy (or stale reign), and ack its
                    // log length.
                    if self.role[p] == Role::Leader {
                        out.set(vars.is_leader, false);
                    }
                    self.role[p] = Role::Follower;
                    self.term[p] = t;
                    self.leader[p] = from as i64;
                    self.acked[p] = lg;
                    out.set(vars.term, t);
                    out.set(vars.leader, from as i64);
                    out.set(vars.acked, lg);
                } else {
                    // Stale heartbeat from a deposed leader.
                    out.internal();
                }
            }
            other => panic!("unknown leader-election message tag {other}"),
        }
    }

    fn restore(&mut self, base: &Computation, line: &slicing_computation::Cut) {
        for p in base.processes() {
            let i = p.as_usize();
            let pos = line.frontier_pos(p);
            let h = resolved(base, p);
            self.term[i] = base.value_at(h.term, pos).expect_int();
            self.voted_term[i] = base.value_at(h.voted_term, pos).expect_int();
            self.leader[i] = base.value_at(h.leader, pos).expect_int();
            self.log[i] = base.value_at(h.log, pos).expect_int();
            self.acked[i] = base.value_at(h.acked, pos).expect_int();
            // Candidacies are abandoned: the votes backing them (counted or
            // in flight) were lost with the channels, and the voters'
            // `votedTerm` writes stay behind the line only if the requests
            // did too. A restored candidate simply times out again later.
            self.role[i] = if base.value_at(h.is_leader, pos).expect_bool() {
                Role::Leader
            } else {
                Role::Follower
            };
        }
    }
}

/// Variable handles resolved against a recorded computation.
fn resolved(comp: &Computation, p: slicing_computation::ProcessId) -> Vars {
    Vars {
        term: comp.var(p, "term").expect("protocol variable"),
        voted_term: comp.var(p, "votedTerm").expect("protocol variable"),
        is_leader: comp.var(p, "isLeader").expect("protocol variable"),
        leader: comp.var(p, "leader").expect("protocol variable"),
        log: comp.var(p, "log").expect("protocol variable"),
        acked: comp.var(p, "acked").expect("protocol variable"),
    }
}

/// The invariant `I_le = ES ∧ LM`: no two leaders share a term, and every
/// process's ack stays within its leader's log.
pub fn invariant(comp: &Computation) -> FnPredicate {
    let n = comp.num_processes();
    let handles: Vec<_> = comp.processes().map(|p| resolved(comp, p)).collect();
    FnPredicate::new(ProcSet::all(n), "I_le", move |st| {
        for i in 0..n {
            if !st.get(handles[i].is_leader).expect_bool() {
                continue;
            }
            for j in i + 1..n {
                if st.get(handles[j].is_leader).expect_bool()
                    && st.get(handles[i].term).expect_int() == st.get(handles[j].term).expect_int()
                {
                    return false;
                }
            }
        }
        for j in 0..n {
            let l = st.get(handles[j].leader).expect_int();
            if l < 0 {
                continue;
            }
            let l = l as usize;
            if l < n && st.get(handles[j].acked).expect_int() > st.get(handles[l].log).expect_int()
            {
                return false;
            }
        }
        true
    })
}

/// The global fault `¬I_le` as a sliceable specification: a disjunction of
/// conjunctive clauses, pivoted on the values each process's variables
/// actually take in this computation.
///
/// - **ES clauses** — for each pair `i < j` and each term value `T` that
///   `term_i` records: `(isLeader_i ∧ term_i = T) ∧ (isLeader_j ∧
///   term_j = T)`.
/// - **LM clauses** — for each follower `j`, leader index `L ≠ j`, and
///   recorded ack value `v > 0`: `(leader_j = L ∧ acked_j = v) ∧
///   (log_L < v)`; plus the 1-local self-follow clause
///   `leader_j = j ∧ acked_j > log_j`.
///
/// `acked` is **not** monotone (a leader switch can lower it), so the LM
/// half cannot use a co-regular counter leaf soundly; value-pivoted
/// conjunctive clauses slice exactly instead, at `O(n²|V|)` clauses.
pub fn violation_spec(comp: &Computation) -> PredicateSpec {
    let n = comp.num_processes();
    let handles: Vec<_> = comp.processes().map(|p| resolved(comp, p)).collect();
    let mut clauses = Vec::new();
    // ES: two leaders of one term.
    for i in 0..n {
        for t in comp.distinct_values(handles[i].term) {
            if t.expect_int() < 1 {
                continue; // no leader at term 0
            }
            let leads_at = |k: usize, label: String| {
                LocalPredicate::new(
                    vec![handles[k].is_leader, handles[k].term],
                    label,
                    move |vals| vals[0].expect_bool() && vals[1] == t,
                )
            };
            for j in i + 1..n {
                clauses.push(PredicateSpec::conjunctive(Conjunctive::new(vec![
                    leads_at(i, format!("isLeader_{i} && term_{i} == {t}")),
                    leads_at(j, format!("isLeader_{j} && term_{j} == {t}")),
                ])));
            }
        }
    }
    // LM: an ack beyond the followed leader's log.
    for j in 0..n {
        for v in comp.distinct_values(handles[j].acked) {
            let v = v.expect_int();
            if v < 1 {
                continue; // log lengths are never negative
            }
            for l in 0..n {
                if l == j {
                    continue;
                }
                let follows = LocalPredicate::new(
                    vec![handles[j].leader, handles[j].acked],
                    format!("leader_{j} == {l} && acked_{j} == {v}"),
                    move |vals| vals[0].expect_int() == l as i64 && vals[1].expect_int() == v,
                );
                let behind = LocalPredicate::new(
                    vec![handles[l].log],
                    format!("log_{l} < {v}"),
                    move |vals| vals[0].expect_int() < v,
                );
                clauses.push(PredicateSpec::conjunctive(Conjunctive::new(vec![
                    follows, behind,
                ])));
            }
        }
        clauses.push(PredicateSpec::conjunctive(Conjunctive::new(vec![
            LocalPredicate::new(
                vec![handles[j].leader, handles[j].acked, handles[j].log],
                format!("leader_{j} == {j} && acked_{j} > log_{j}"),
                move |vals| {
                    vals[0].expect_int() == j as i64 && vals[1].expect_int() > vals[2].expect_int()
                },
            ),
        ])));
    }
    PredicateSpec::or(clauses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{run, SimConfig};
    use slicing_computation::lattice::for_each_cut;
    use slicing_computation::GlobalState;
    use slicing_predicates::Predicate;

    fn small_run(seed: u64, n: usize, events: u32) -> Computation {
        let cfg = SimConfig {
            seed,
            max_events_per_process: events,
            ..SimConfig::default()
        };
        run(&mut LeaderElection::new(n), &cfg).expect("protocol run builds")
    }

    #[test]
    fn fault_free_runs_satisfy_the_invariant_at_every_cut() {
        for seed in 0..6 {
            let comp = small_run(seed, 4, 8);
            let inv = invariant(&comp);
            for_each_cut(&comp, |cut| {
                assert!(
                    inv.eval(&GlobalState::new(&comp, cut)),
                    "seed {seed} cut {cut}"
                );
                true
            });
        }
    }

    #[test]
    fn violation_spec_matches_negated_invariant() {
        for seed in 0..4 {
            let comp = small_run(seed, 3, 6);
            let inv = invariant(&comp);
            let spec = violation_spec(&comp);
            for_each_cut(&comp, |cut| {
                let st = GlobalState::new(&comp, cut);
                assert_eq!(spec.eval(&st), !inv.eval(&st), "seed {seed} cut {cut}");
                true
            });
        }
    }

    #[test]
    fn fault_free_slice_finds_no_violation() {
        for seed in 0..4 {
            let comp = small_run(seed, 3, 7);
            let spec = violation_spec(&comp);
            let slice = spec.slice(&comp);
            let mut found = false;
            for_each_cut(&slice, |cut| {
                if spec.eval(&GlobalState::new(&comp, cut)) {
                    found = true;
                    return false;
                }
                true
            });
            assert!(!found, "seed {seed}: fault detected in fault-free run");
        }
    }

    #[test]
    fn elections_actually_complete() {
        // Somebody wins an election, and terms advance past the first.
        let comp = small_run(2, 4, 20);
        let mut led = false;
        let mut max_term = 0;
        for p in comp.processes() {
            let h = resolved(&comp, p);
            for pos in 0..comp.len(p) {
                led |= comp.value_at(h.is_leader, pos).expect_bool();
                max_term = max_term.max(comp.value_at(h.term, pos).expect_int());
            }
        }
        assert!(led, "no election ever completed");
        assert!(max_term >= 2, "terms never advanced: {max_term}");
    }

    #[test]
    fn restore_from_every_prefix_preserves_the_invariant() {
        use crate::runtime::resume;
        let cfg = SimConfig {
            seed: 5,
            max_events_per_process: 8,
            ..SimConfig::default()
        };
        let base = run(&mut LeaderElection::new(3), &cfg).unwrap();
        // Roll back to the causal past of a mid-run event and replay.
        let p1 = base.process(1);
        let line = base.min_cut(base.event_at(p1, base.len(p1) / 2)).clone();
        let mut fresh = LeaderElection::new(3);
        let resumed = resume(&mut fresh, &base, &line, &cfg).unwrap();
        let inv = invariant(&resumed);
        for_each_cut(&resumed, |cut| {
            assert!(
                inv.eval(&GlobalState::new(&resumed, cut)),
                "invariant violated at {cut} after resume"
            );
            true
        });
    }

    #[test]
    #[should_panic(expected = "needs three processes")]
    fn rejects_too_few_processes() {
        let _ = LeaderElection::new(2);
    }
}
