//! Fault injection: perturb a fault-free computation so that a global
//! fault (a consistent cut violating the invariant) may appear — the
//! paper's "faulty scenario" methodology.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use slicing_computation::{BuildError, Computation, ComputationBuilder, ProcessId, Value};

/// A single injected fault: variable `var_name` of `process` reads `value`
/// immediately after the event at `position`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// The faulty process.
    pub process: ProcessId,
    /// Event position at which the corruption takes effect (0 = initial).
    pub position: u32,
    /// Name of the corrupted variable.
    pub var_name: String,
    /// The corrupted value.
    pub value: Value,
    /// `true`: the original value is restored at the next event (a
    /// transient bit-flip); `false`: the corruption persists until the
    /// protocol's next write.
    pub transient: bool,
}

/// Rebuilds `comp` with `fault` applied.
///
/// The event structure (processes, positions, messages, labels) is
/// unchanged; only the recorded variable snapshots differ.
///
/// # Errors
///
/// Returns an error if the fault references an unknown variable or
/// out-of-range position.
pub fn inject(comp: &Computation, fault: &FaultSpec) -> Result<Computation, FaultError> {
    slicing_observe::counter("sim.faults_injected", 1);
    slicing_observe::message(slicing_observe::Level::Debug, || {
        format!(
            "fault: {} of process {} corrupted at position {} ({})",
            fault.var_name,
            fault.process.as_usize(),
            fault.position,
            if fault.transient {
                "transient"
            } else {
                "persistent"
            },
        )
    });
    comp.var(fault.process, &fault.var_name)
        .ok_or_else(|| FaultError::UnknownVariable {
            process: fault.process,
            name: fault.var_name.clone(),
        })?;
    if fault.position >= comp.len(fault.process) {
        return Err(FaultError::PositionOutOfRange {
            process: fault.process,
            position: fault.position,
        });
    }

    let n = comp.num_processes();
    let mut b = ComputationBuilder::new(n);

    // Re-declare all variables, applying the fault to initial values if it
    // targets position 0.
    for p in comp.processes() {
        let names: Vec<String> = comp.var_names(p).map(str::to_owned).collect();
        for name in names {
            let v = comp.var(p, &name).expect("listed name resolves");
            let mut initial = comp.value_at(v, 0);
            if p == fault.process && fault.position == 0 && name == fault.var_name {
                initial = fault.value;
            }
            b.try_declare_var(p, &name, initial)
                .map_err(FaultError::Build)?;
        }
    }

    // Replay events in original append order (event ids are dense in that
    // order), rewriting the affected snapshots.
    for e in comp.events() {
        if comp.is_initial(e) {
            continue;
        }
        let p = comp.process_of(e);
        let pos = comp.position_of(e);
        let ne = b.append_event(p);
        let names: Vec<String> = comp.var_names(p).map(str::to_owned).collect();
        for name in names {
            let orig_var = comp.var(p, &name).expect("listed name resolves");
            let new_var = b.var(p, &name).expect("declared above");
            let mut value = comp.value_at(orig_var, pos);
            if p == fault.process && name == fault.var_name {
                if pos == fault.position {
                    value = fault.value;
                } else if fault.transient && pos == fault.position + 1 {
                    // Restore explicitly: the carried-forward value would
                    // otherwise keep the corruption.
                    value = comp.value_at(orig_var, pos);
                } else if !fault.transient && pos > fault.position {
                    // Persist until the protocol writes a different value
                    // than it originally carried forward.
                    let orig_now = comp.value_at(orig_var, pos);
                    let orig_prev = comp.value_at(orig_var, pos - 1);
                    if orig_now == orig_prev {
                        value = fault.value;
                    }
                }
            }
            b.assign(ne, new_var, value).map_err(FaultError::Build)?;
        }
        if let Some(l) = comp.label(e) {
            let l = l.to_owned();
            b.set_label(ne, &l);
        }
    }

    for m in comp.messages() {
        let send = b.event_at(comp.process_of(m.send), comp.position_of(m.send));
        let recv = b.event_at(comp.process_of(m.recv), comp.position_of(m.recv));
        b.message(send, recv).map_err(FaultError::Build)?;
    }

    b.build().map_err(FaultError::Build)
}

/// Errors from [`inject`], [`inject_kind`] and [`inject_plan`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultError {
    /// The fault names a variable the process does not have.
    UnknownVariable {
        /// Target process.
        process: ProcessId,
        /// Unresolved name.
        name: String,
    },
    /// The fault position exceeds the process's event count.
    PositionOutOfRange {
        /// Target process.
        process: ProcessId,
        /// Offending position.
        position: u32,
    },
    /// A message fault indexes past the computation's message list.
    MessageOutOfRange {
        /// Offending index into [`Computation::messages`].
        index: usize,
        /// Number of messages in the computation.
        count: usize,
    },
    /// A delivery fault targets a message whose receive is already the
    /// last event of its process, so there is no later event to move or
    /// re-apply the delivery to.
    NoLaterDelivery {
        /// Offending index into [`Computation::messages`].
        index: usize,
    },
    /// Reconstruction failed (cannot happen for valid inputs).
    Build(BuildError),
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::UnknownVariable { process, name } => {
                write!(f, "process {process} has no variable {name:?}")
            }
            FaultError::PositionOutOfRange { process, position } => {
                write!(f, "position {position} out of range on {process}")
            }
            FaultError::MessageOutOfRange { index, count } => {
                write!(f, "message index {index} out of range ({count} messages)")
            }
            FaultError::NoLaterDelivery { index } => {
                write!(
                    f,
                    "message {index} is received at the last event of its process; \
                     delivery cannot be moved later"
                )
            }
            FaultError::Build(e) => write!(f, "fault injection rebuild failed: {e}"),
        }
    }
}

impl std::error::Error for FaultError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FaultError::Build(e) => Some(e),
            _ => None,
        }
    }
}

/// `?`-friendly conversion into the CLI's `String` error type, so
/// injection failures surface as exit codes instead of panics.
impl From<FaultError> for String {
    fn from(e: FaultError) -> String {
        e.to_string()
    }
}

/// One fault of any kind — the generalization of [`FaultSpec`] used by the
/// recovery loop, so rollback/replay is exercised against more than single
/// bit-flips.
///
/// Structural kinds (`DropMessage`, `DuplicateMessage`, `DelayDelivery`,
/// `CrashStop`) rebuild the computation by *delta re-application*: every
/// event's original writes (its variable changes relative to its
/// predecessor) are replayed on top of the edited event structure, so
/// suppressed or moved deliveries leave downstream state exactly as
/// corrupted as the lost or reordered messages imply.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// Variable corruption — the original [`FaultSpec`] semantics.
    Corrupt(FaultSpec),
    /// Message loss: the edge of message `msg_index` (an index into
    /// [`Computation::messages`]) is removed and the receive event's
    /// writes are suppressed; the receive degenerates to an internal
    /// event that never saw the payload.
    DropMessage {
        /// Index into [`Computation::messages`].
        msg_index: usize,
    },
    /// Message duplication: the receive's writes are re-applied (and a
    /// redundant delivery edge added) at the `after`-th later event of the
    /// receiving process, clamped to its last event. Models a retransmit
    /// arriving twice.
    DuplicateMessage {
        /// Index into [`Computation::messages`].
        msg_index: usize,
        /// How many events later the duplicate lands (≥ 1; clamped).
        after: u32,
    },
    /// Delayed delivery: the edge and the receive's writes move `by`
    /// events later on the receiving process (clamped to its last event),
    /// possibly overtaking other traffic on the channel.
    DelayDelivery {
        /// Index into [`Computation::messages`].
        msg_index: usize,
        /// How many events later the delivery lands (≥ 1; clamped).
        by: u32,
    },
    /// Crash-stop: `process` takes no actions after `position`. Its later
    /// writes vanish, messages it sent after the crash are lost (their
    /// receives are suppressed), and messages addressed to it after the
    /// crash disappear from the network.
    CrashStop {
        /// The crashing process.
        process: ProcessId,
        /// Last position at which the process still acted.
        position: u32,
    },
}

impl FaultKind {
    /// Short machine-readable name of the kind (used in reports and CI).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Corrupt(_) => "corrupt",
            FaultKind::DropMessage { .. } => "drop-message",
            FaultKind::DuplicateMessage { .. } => "duplicate-message",
            FaultKind::DelayDelivery { .. } => "delay-delivery",
            FaultKind::CrashStop { .. } => "crash-stop",
        }
    }
}

/// A burst of faults applied in order: each fault is injected into the
/// result of the previous one, so message indices and positions refer to
/// the computation as edited so far (structural kinds preserve the event
/// structure, so indices stay stable in practice).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The faults, applied first to last.
    pub faults: Vec<FaultKind>,
}

impl FaultPlan {
    /// A plan with a single fault.
    pub fn single(kind: FaultKind) -> Self {
        FaultPlan { faults: vec![kind] }
    }

    /// A plan applying `faults` in order.
    pub fn new(faults: Vec<FaultKind>) -> Self {
        FaultPlan { faults }
    }
}

/// Extra writes applied at event `(process, position)`.
type ExtraWrites = ((usize, u32), Vec<(String, Value)>);

/// Edits applied by the structural rebuild: suppressed events, extra
/// writes, and the replacement message list.
#[derive(Debug, Default)]
struct Edits {
    /// Events whose original writes are dropped, as `(process, position)`.
    suppress: Vec<(usize, u32)>,
    /// Writes applied (after any surviving original writes) at an event.
    extra: Vec<ExtraWrites>,
    /// The full message list of the rebuilt computation, as
    /// `(send_process, send_position, recv_process, recv_position)`.
    messages: Vec<(usize, u32, usize, u32)>,
}

/// The writes of event `(p, pos)`: variables whose recorded value differs
/// from the predecessor event's.
fn delta_writes(comp: &Computation, p: ProcessId, pos: u32) -> Vec<(String, Value)> {
    let mut writes = Vec::new();
    for name in comp.var_names(p) {
        let var = comp.var(p, name).expect("listed name resolves");
        let now = comp.value_at(var, pos);
        if now != comp.value_at(var, pos - 1) {
            writes.push((name.to_owned(), now));
        }
    }
    writes
}

/// Rebuilds `comp` with the given structural edits, re-applying each
/// surviving event's original writes on top of the carried-forward state.
fn rebuild(comp: &Computation, edits: &Edits) -> Result<Computation, FaultError> {
    let n = comp.num_processes();
    let mut b = ComputationBuilder::new(n);
    for p in comp.processes() {
        let names: Vec<String> = comp.var_names(p).map(str::to_owned).collect();
        for name in names {
            let v = comp.var(p, &name).expect("listed name resolves");
            b.try_declare_var(p, &name, comp.value_at(v, 0))
                .map_err(FaultError::Build)?;
        }
    }
    for e in comp.events() {
        if comp.is_initial(e) {
            continue;
        }
        let p = comp.process_of(e);
        let pos = comp.position_of(e);
        let key = (p.as_usize(), pos);
        let ne = b.append_event(p);
        if !edits.suppress.contains(&key) {
            for (name, value) in delta_writes(comp, p, pos) {
                let var = b.var(p, &name).expect("declared above");
                b.assign(ne, var, value).map_err(FaultError::Build)?;
            }
        }
        for (k, writes) in &edits.extra {
            if *k == key {
                for (name, value) in writes {
                    let var = b.var(p, name).expect("declared above");
                    b.assign(ne, var, *value).map_err(FaultError::Build)?;
                }
            }
        }
        if let Some(l) = comp.label(e) {
            let l = l.to_owned();
            b.set_label(ne, &l);
        }
    }
    for &(sp, spos, rp, rpos) in &edits.messages {
        let send = b.event_at(ProcessId::new(sp), spos);
        let recv = b.event_at(ProcessId::new(rp), rpos);
        b.message(send, recv).map_err(FaultError::Build)?;
    }
    b.build().map_err(FaultError::Build)
}

/// The unedited message list of `comp` in [`Edits`] form.
fn message_list(comp: &Computation) -> Vec<(usize, u32, usize, u32)> {
    comp.messages()
        .iter()
        .map(|m| {
            (
                comp.process_of(m.send).as_usize(),
                comp.position_of(m.send),
                comp.process_of(m.recv).as_usize(),
                comp.position_of(m.recv),
            )
        })
        .collect()
}

fn check_msg_index(comp: &Computation, index: usize) -> Result<(), FaultError> {
    let count = comp.messages().len();
    if index >= count {
        return Err(FaultError::MessageOutOfRange { index, count });
    }
    Ok(())
}

/// Rebuilds `comp` with one fault of any [`FaultKind`] applied.
///
/// # Errors
///
/// Returns an error when the fault references an unknown variable, an
/// out-of-range position or message index, or a delivery that cannot be
/// moved later.
pub fn inject_kind(comp: &Computation, kind: &FaultKind) -> Result<Computation, FaultError> {
    if let FaultKind::Corrupt(spec) = kind {
        return inject(comp, spec);
    }
    slicing_observe::counter("sim.faults_injected", 1);
    slicing_observe::message(slicing_observe::Level::Debug, || format!("fault: {kind:?}"));
    let mut edits = Edits {
        messages: message_list(comp),
        ..Edits::default()
    };
    match *kind {
        FaultKind::Corrupt(_) => unreachable!("handled above"),
        FaultKind::DropMessage { msg_index } => {
            check_msg_index(comp, msg_index)?;
            let (_, _, rp, rpos) = edits.messages.remove(msg_index);
            edits.suppress.push((rp, rpos));
        }
        FaultKind::DuplicateMessage { msg_index, after } => {
            check_msg_index(comp, msg_index)?;
            let (sp, spos, rp, rpos) = edits.messages[msg_index];
            let last = comp.len(ProcessId::new(rp)) - 1;
            if rpos >= last {
                return Err(FaultError::NoLaterDelivery { index: msg_index });
            }
            let target = (rpos + after.max(1)).min(last);
            edits
                .extra
                .push(((rp, target), delta_writes(comp, ProcessId::new(rp), rpos)));
            edits.messages.push((sp, spos, rp, target));
        }
        FaultKind::DelayDelivery { msg_index, by } => {
            check_msg_index(comp, msg_index)?;
            let (sp, spos, rp, rpos) = edits.messages[msg_index];
            let last = comp.len(ProcessId::new(rp)) - 1;
            if rpos >= last {
                return Err(FaultError::NoLaterDelivery { index: msg_index });
            }
            let target = (rpos + by.max(1)).min(last);
            edits.messages[msg_index] = (sp, spos, rp, target);
            edits.suppress.push((rp, rpos));
            edits
                .extra
                .push(((rp, target), delta_writes(comp, ProcessId::new(rp), rpos)));
        }
        FaultKind::CrashStop { process, position } => {
            if position >= comp.len(process) {
                return Err(FaultError::PositionOutOfRange { process, position });
            }
            let p = process.as_usize();
            for pos in (position + 1)..comp.len(process) {
                edits.suppress.push((p, pos));
            }
            let mut kept = Vec::with_capacity(edits.messages.len());
            for &(sp, spos, rp, rpos) in &edits.messages {
                if sp == p && spos > position {
                    // A post-crash send never happened: its delivery is
                    // suppressed on the receiver.
                    edits.suppress.push((rp, rpos));
                    continue;
                }
                if rp == p && rpos > position {
                    // Deliveries to a crashed process vanish.
                    continue;
                }
                kept.push((sp, spos, rp, rpos));
            }
            edits.messages = kept;
        }
    }
    rebuild(comp, &edits)
}

/// Applies every fault of `plan` in order (a multi-fault burst).
///
/// # Errors
///
/// Fails on the first fault that does not apply; the error identifies the
/// same conditions as [`inject_kind`].
pub fn inject_plan(comp: &Computation, plan: &FaultPlan) -> Result<Computation, FaultError> {
    let mut current = comp.clone();
    for kind in &plan.faults {
        current = inject_kind(&current, kind)?;
    }
    Ok(current)
}

/// Injects a transient "secondary dropped its role" fault into a
/// primary–secondary run: at a random event where some process is acting
/// as secondary, its `isSecondary` flag reads `false` — the classic bug
/// the paper's first experiment hunts.
///
/// Returns the faulty computation and the chosen fault, or `None` if the
/// run has no event at which any process is a secondary.
pub fn inject_primary_secondary_fault(
    comp: &Computation,
    seed: u64,
) -> Option<(Computation, FaultSpec)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut candidates: Vec<(ProcessId, u32)> = Vec::new();
    for p in comp.processes() {
        let Some(var) = comp.var(p, "isSecondary") else {
            continue;
        };
        for pos in 1..comp.len(p) {
            if comp.value_at(var, pos).expect_bool() {
                candidates.push((p, pos));
            }
        }
    }
    if candidates.is_empty() {
        return None;
    }
    let (process, position) = candidates[rng.random_range(0..candidates.len())];
    let fault = FaultSpec {
        process,
        position,
        var_name: "isSecondary".to_owned(),
        value: Value::Bool(false),
        transient: true,
    };
    let faulty = inject(comp, &fault).expect("candidate positions are valid");
    Some((faulty, fault))
}

/// Injects a transient partition corruption into a database-partitioning
/// run: at a random event of a random holder, its `partition` variable
/// reads a value nobody proposed.
///
/// Returns `None` if the computation has no holder events.
pub fn inject_database_fault(comp: &Computation, seed: u64) -> Option<(Computation, FaultSpec)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut candidates: Vec<(ProcessId, u32)> = Vec::new();
    for p in comp.processes() {
        if comp.var(p, "partition").is_none() {
            continue;
        }
        for pos in 1..comp.len(p) {
            candidates.push((p, pos));
        }
    }
    if candidates.is_empty() {
        return None;
    }
    let (process, position) = candidates[rng.random_range(0..candidates.len())];
    let fault = FaultSpec {
        process,
        position,
        var_name: "partition".to_owned(),
        value: Value::Int(-1),
        transient: true,
    };
    let faulty = inject(comp, &fault).expect("candidate positions are valid");
    Some((faulty, fault))
}

/// Injects a transient over-acknowledgement into a leader-election run: at
/// a random event where some process knows a leader, its `acked` log count
/// reads an impossible value — a log-matching violation against any
/// leader's actual log.
///
/// Returns `None` if no process ever follows a leader.
pub fn inject_leader_election_fault(
    comp: &Computation,
    seed: u64,
) -> Option<(Computation, FaultSpec)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut candidates: Vec<(ProcessId, u32)> = Vec::new();
    for p in comp.processes() {
        let (Some(leader), Some(_)) = (comp.var(p, "leader"), comp.var(p, "acked")) else {
            continue;
        };
        for pos in 1..comp.len(p) {
            if comp.value_at(leader, pos).expect_int() >= 0 {
                candidates.push((p, pos));
            }
        }
    }
    if candidates.is_empty() {
        return None;
    }
    let (process, position) = candidates[rng.random_range(0..candidates.len())];
    let fault = FaultSpec {
        process,
        position,
        var_name: "acked".to_owned(),
        value: Value::Int(999),
        transient: true,
    };
    let faulty = inject(comp, &fault).expect("candidate positions are valid");
    Some((faulty, fault))
}

/// Injects a transient sum corruption into a CRDT-replication run: at a
/// random event of a random replica, its `sum` reads a value no op
/// sequence could produce — breaking both the divergence bound and the
/// replica's local delta arithmetic.
///
/// Returns `None` if no replica has events.
pub fn inject_crdt_fault(comp: &Computation, seed: u64) -> Option<(Computation, FaultSpec)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut candidates: Vec<(ProcessId, u32)> = Vec::new();
    for p in comp.processes() {
        if comp.var(p, "sum").is_none() || comp.var(p, "ops").is_none() {
            continue;
        }
        for pos in 1..comp.len(p) {
            candidates.push((p, pos));
        }
    }
    if candidates.is_empty() {
        return None;
    }
    let (process, position) = candidates[rng.random_range(0..candidates.len())];
    let fault = FaultSpec {
        process,
        position,
        var_name: "sum".to_owned(),
        value: Value::Int(999),
        transient: true,
    };
    let faulty = inject(comp, &fault).expect("candidate positions are valid");
    Some((faulty, fault))
}

/// Injects a transient enqueue-counter corruption into a work-queue run:
/// at a random broker event, the broker's total `enq` reads `-1`, which no
/// dominance relation survives (`hand ≥ 0 > enq` and `enq ≠ Σ enq_i`).
///
/// Note the *monotone* per-producer and per-consumer counters are left
/// untouched: the co-regular leaves of the violation spec stay sound on
/// the corrupted run.
///
/// Returns `None` if the run is not a work-queue run or the broker never
/// acted.
pub fn inject_work_queue_fault(comp: &Computation, seed: u64) -> Option<(Computation, FaultSpec)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let broker = comp.processes().next()?;
    comp.var(broker, "enq")?;
    comp.var(broker, "hand")?;
    if comp.len(broker) < 2 {
        return None;
    }
    let position = rng.random_range(1..comp.len(broker));
    let fault = FaultSpec {
        process: broker,
        position,
        var_name: "enq".to_owned(),
        value: Value::Int(-1),
        transient: true,
    };
    let faulty = inject(comp, &fault).expect("broker positions are valid");
    Some((faulty, fault))
}

/// Picks a representative injectable fault of the named `kind`
/// (`corrupt`, `drop-message`, `duplicate-message`, `delay-delivery`,
/// `crash-stop`, or `burst` for a corrupt+drop pair) for a recorded
/// protocol run. Coordinates are derived from `seed`, so equal inputs
/// yield equal plans. Returns `None` when the run offers no injection
/// site of that kind (e.g. a message fault on a message-free run) or the
/// kind is unknown.
///
/// Used by the `slicing recover` CLI, the `table_recovery` bench, and the
/// CI recovery soak, which all need "some fault of kind K that this run
/// can absorb" without hand-picking coordinates.
pub fn sample_fault_plan(comp: &Computation, kind: &str, seed: u64) -> Option<FaultPlan> {
    let corrupt = |seed| {
        inject_primary_secondary_fault(comp, seed)
            .or_else(|| inject_database_fault(comp, seed))
            .or_else(|| inject_leader_election_fault(comp, seed))
            .or_else(|| inject_crdt_fault(comp, seed))
            .or_else(|| inject_work_queue_fault(comp, seed))
            .map(|(_, spec)| FaultKind::Corrupt(spec))
    };
    let msg_index = |seed: u64| {
        let count = comp.messages().len();
        (count > 0).then(|| (seed as usize) % count)
    };
    let kinds = match kind {
        "corrupt" => vec![corrupt(seed)?],
        "drop-message" => vec![FaultKind::DropMessage {
            msg_index: msg_index(seed)?,
        }],
        "duplicate-message" => vec![FaultKind::DuplicateMessage {
            msg_index: msg_index(seed)?,
            after: 1 + (seed % 3) as u32,
        }],
        "delay-delivery" => vec![FaultKind::DelayDelivery {
            msg_index: msg_index(seed)?,
            by: 1 + (seed % 3) as u32,
        }],
        "crash-stop" => {
            let candidates: Vec<ProcessId> =
                comp.processes().filter(|&p| comp.len(p) >= 3).collect();
            let process = *candidates.get(seed as usize % candidates.len().max(1))?;
            vec![FaultKind::CrashStop {
                process,
                position: comp.len(process) / 2,
            }]
        }
        "burst" => {
            let mut faults = vec![corrupt(seed)?];
            if let Some(msg_index) = msg_index(seed.wrapping_add(1)) {
                faults.push(FaultKind::DropMessage { msg_index });
            }
            faults
        }
        _ => return None,
    };
    Some(FaultPlan::new(kinds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primary_secondary::{self, PrimarySecondary};
    use crate::runtime::{run, SimConfig};
    use slicing_computation::lattice::for_each_cut;
    use slicing_computation::GlobalState;
    use slicing_predicates::Predicate;

    fn ps_run(seed: u64) -> Computation {
        let cfg = SimConfig {
            seed,
            max_events_per_process: 8,
            ..SimConfig::default()
        };
        run(&mut PrimarySecondary::new(3), &cfg).unwrap()
    }

    #[test]
    fn transient_fault_changes_exactly_one_snapshot() {
        let comp = ps_run(1);
        let p = comp.process(1);
        let fault = FaultSpec {
            process: p,
            position: 2,
            var_name: "work".to_owned(),
            value: Value::Int(999),
            transient: true,
        };
        let faulty = inject(&comp, &fault).unwrap();
        let orig = comp.var(p, "work").unwrap();
        let new = faulty.var(p, "work").unwrap();
        for pos in 0..comp.len(p) {
            let want = if pos == 2 {
                Value::Int(999)
            } else {
                comp.value_at(orig, pos)
            };
            assert_eq!(faulty.value_at(new, pos), want, "pos {pos}");
        }
        // Structure unchanged.
        assert_eq!(faulty.num_events(), comp.num_events());
        assert_eq!(faulty.messages(), comp.messages());
    }

    #[test]
    fn persistent_fault_sticks_until_next_write() {
        let comp = ps_run(2);
        let p = comp.process(2);
        let orig = comp.var(p, "work").unwrap();
        // `work` increments on every work event, so a persistent fault is
        // overwritten at the next work event; `isSecondary` is rarely
        // written, so corrupt that instead.
        let var = comp.var(p, "isSecondary").unwrap();
        let fault = FaultSpec {
            process: p,
            position: 1,
            var_name: "isSecondary".to_owned(),
            value: Value::Bool(true),
            transient: false,
        };
        let faulty = inject(&comp, &fault).unwrap();
        let fvar = faulty.var(p, "isSecondary").unwrap();
        // Corruption persists while the original carried the value
        // forward.
        let mut pos = 1;
        while pos < comp.len(p)
            && (pos == 1 || comp.value_at(var, pos) == comp.value_at(var, pos - 1))
        {
            assert_eq!(faulty.value_at(fvar, pos), Value::Bool(true), "pos {pos}");
            pos += 1;
        }
        let _ = orig;
    }

    #[test]
    fn ps_fault_creates_detectable_violation_for_some_seed() {
        // Random injection does not guarantee a violating cut, but across
        // a handful of seeds at least one must appear.
        let comp = ps_run(3);
        let mut any = false;
        for fseed in 0..10 {
            let Some((faulty, _)) = inject_primary_secondary_fault(&comp, fseed) else {
                continue;
            };
            let inv = primary_secondary::invariant(&faulty);
            let mut violated = false;
            for_each_cut(&faulty, |cut| {
                if !inv.eval(&GlobalState::new(&faulty, cut)) {
                    violated = true;
                    return false;
                }
                true
            });
            if violated {
                any = true;
                break;
            }
        }
        assert!(any, "no fault seed produced a violating cut");
    }

    #[test]
    fn database_fault_injects() {
        use crate::database::DatabasePartitioning;
        let cfg = SimConfig {
            seed: 4,
            max_events_per_process: 8,
            ..SimConfig::default()
        };
        let comp = run(&mut DatabasePartitioning::new(4), &cfg).unwrap();
        let (faulty, fault) = inject_database_fault(&comp, 1).unwrap();
        assert_eq!(fault.var_name, "partition");
        assert_eq!(faulty.num_events(), comp.num_events());
    }

    /// First seed whose run records at least one message.
    fn ps_run_with_messages(from_seed: u64) -> Computation {
        (from_seed..from_seed + 20)
            .map(ps_run)
            .find(|c| !c.messages().is_empty())
            .expect("some seed produces messages")
    }

    #[test]
    fn drop_message_suppresses_the_receive_writes() {
        let comp = ps_run_with_messages(1);
        let idx = 0;
        let m = comp.messages()[idx];
        let (rp, rpos) = (comp.process_of(m.recv), comp.position_of(m.recv));
        let faulty = inject_kind(&comp, &FaultKind::DropMessage { msg_index: idx }).unwrap();
        assert_eq!(faulty.messages().len(), comp.messages().len() - 1);
        assert_eq!(faulty.num_events(), comp.num_events());
        // The receive event carries its predecessor's values now.
        for name in comp.var_names(rp) {
            let var = faulty.var(rp, name).unwrap();
            assert_eq!(
                faulty.value_at(var, rpos),
                faulty.value_at(var, rpos - 1),
                "{name} written at a dropped delivery"
            );
        }
    }

    #[test]
    fn duplicate_message_reapplies_writes_later() {
        let comp = ps_run_with_messages(2);
        // Find a message whose receive has a later event and real writes.
        let idx = (0..comp.messages().len())
            .find(|&i| {
                let m = comp.messages()[i];
                let rp = comp.process_of(m.recv);
                let rpos = comp.position_of(m.recv);
                rpos + 1 < comp.len(rp) && !delta_writes(&comp, rp, rpos).is_empty()
            })
            .expect("some deliverable message exists");
        let m = comp.messages()[idx];
        let (rp, rpos) = (comp.process_of(m.recv), comp.position_of(m.recv));
        let faulty = inject_kind(
            &comp,
            &FaultKind::DuplicateMessage {
                msg_index: idx,
                after: 1,
            },
        )
        .unwrap();
        assert_eq!(faulty.messages().len(), comp.messages().len() + 1);
        // The duplicate's writes landed at the next event.
        let (name, value) = delta_writes(&comp, rp, rpos)[0].clone();
        let var = faulty.var(rp, &name).unwrap();
        assert_eq!(faulty.value_at(var, rpos + 1), value);
    }

    #[test]
    fn delay_delivery_moves_edge_and_writes() {
        let comp = ps_run_with_messages(3);
        let idx = (0..comp.messages().len())
            .find(|&i| {
                let m = comp.messages()[i];
                comp.position_of(m.recv) + 1 < comp.len(comp.process_of(m.recv))
            })
            .expect("some delayable message exists");
        let m = comp.messages()[idx];
        let (rp, rpos) = (comp.process_of(m.recv), comp.position_of(m.recv));
        let faulty = inject_kind(
            &comp,
            &FaultKind::DelayDelivery {
                msg_index: idx,
                by: 1,
            },
        )
        .unwrap();
        assert_eq!(faulty.messages().len(), comp.messages().len());
        // The moved edge now targets a strictly later position on rp.
        let moved = faulty
            .messages()
            .iter()
            .find(|fm| faulty.process_of(fm.recv) == rp && faulty.position_of(fm.recv) == rpos + 1)
            .expect("delayed delivery edge present");
        assert_eq!(faulty.process_of(moved.send), comp.process_of(m.send));
    }

    #[test]
    fn crash_stop_silences_the_process() {
        let comp = ps_run(4);
        let p = comp.process(1);
        let crash_at = 2;
        assert!(comp.len(p) > crash_at + 1, "run long enough to crash");
        let faulty = inject_kind(
            &comp,
            &FaultKind::CrashStop {
                process: p,
                position: crash_at,
            },
        )
        .unwrap();
        // No variable of p changes after the crash.
        for name in comp.var_names(p) {
            let var = faulty.var(p, name).unwrap();
            for pos in (crash_at + 1)..faulty.len(p) {
                assert_eq!(
                    faulty.value_at(var, pos),
                    faulty.value_at(var, crash_at),
                    "{name} changed after crash"
                );
            }
        }
        // No message endpoint touches p after the crash.
        for fm in faulty.messages() {
            for (e, _) in [(fm.send, "send"), (fm.recv, "recv")] {
                if faulty.process_of(e) == p {
                    assert!(faulty.position_of(e) <= crash_at);
                }
            }
        }
    }

    #[test]
    fn fault_plan_applies_in_order_and_is_deterministic() {
        let comp = ps_run_with_messages(5);
        let plan = FaultPlan::new(vec![
            FaultKind::DropMessage { msg_index: 0 },
            FaultKind::Corrupt(FaultSpec {
                process: comp.process(1),
                position: 1,
                var_name: "work".to_owned(),
                value: Value::Int(77),
                transient: true,
            }),
        ]);
        let a = inject_plan(&comp, &plan).unwrap();
        let b = inject_plan(&comp, &plan).unwrap();
        assert_eq!(
            slicing_computation::trace::to_text(&a),
            slicing_computation::trace::to_text(&b)
        );
        let var = a.var(comp.process(1), "work").unwrap();
        assert_eq!(a.value_at(var, 1), Value::Int(77));
        assert_eq!(a.messages().len(), comp.messages().len() - 1);
    }

    #[test]
    fn kind_errors_are_reported_not_panicked() {
        let comp = ps_run(6);
        let count = comp.messages().len();
        let err = inject_kind(&comp, &FaultKind::DropMessage { msg_index: count }).unwrap_err();
        assert!(matches!(err, FaultError::MessageOutOfRange { .. }));
        assert!(err.to_string().contains("out of range"));
        let err: String = inject_kind(
            &comp,
            &FaultKind::CrashStop {
                process: comp.process(0),
                position: 10_000,
            },
        )
        .unwrap_err()
        .into();
        assert!(err.contains("out of range"));
    }

    #[test]
    fn errors_on_bad_fault_specs() {
        let comp = ps_run(5);
        let bad_var = FaultSpec {
            process: comp.process(0),
            position: 1,
            var_name: "nope".to_owned(),
            value: Value::Int(0),
            transient: true,
        };
        assert!(matches!(
            inject(&comp, &bad_var),
            Err(FaultError::UnknownVariable { .. })
        ));
        let bad_pos = FaultSpec {
            process: comp.process(0),
            position: 10_000,
            var_name: "work".to_owned(),
            value: Value::Int(0),
            transient: true,
        };
        let err = inject(&comp, &bad_pos).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }
}
