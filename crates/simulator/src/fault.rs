//! Fault injection: perturb a fault-free computation so that a global
//! fault (a consistent cut violating the invariant) may appear — the
//! paper's "faulty scenario" methodology.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use slicing_computation::{BuildError, Computation, ComputationBuilder, ProcessId, Value};

/// A single injected fault: variable `var_name` of `process` reads `value`
/// immediately after the event at `position`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// The faulty process.
    pub process: ProcessId,
    /// Event position at which the corruption takes effect (0 = initial).
    pub position: u32,
    /// Name of the corrupted variable.
    pub var_name: String,
    /// The corrupted value.
    pub value: Value,
    /// `true`: the original value is restored at the next event (a
    /// transient bit-flip); `false`: the corruption persists until the
    /// protocol's next write.
    pub transient: bool,
}

/// Rebuilds `comp` with `fault` applied.
///
/// The event structure (processes, positions, messages, labels) is
/// unchanged; only the recorded variable snapshots differ.
///
/// # Errors
///
/// Returns an error if the fault references an unknown variable or
/// out-of-range position.
pub fn inject(comp: &Computation, fault: &FaultSpec) -> Result<Computation, FaultError> {
    slicing_observe::counter("sim.faults_injected", 1);
    slicing_observe::message(slicing_observe::Level::Debug, || {
        format!(
            "fault: {} of process {} corrupted at position {} ({})",
            fault.var_name,
            fault.process.as_usize(),
            fault.position,
            if fault.transient {
                "transient"
            } else {
                "persistent"
            },
        )
    });
    comp.var(fault.process, &fault.var_name)
        .ok_or_else(|| FaultError::UnknownVariable {
            process: fault.process,
            name: fault.var_name.clone(),
        })?;
    if fault.position >= comp.len(fault.process) {
        return Err(FaultError::PositionOutOfRange {
            process: fault.process,
            position: fault.position,
        });
    }

    let n = comp.num_processes();
    let mut b = ComputationBuilder::new(n);

    // Re-declare all variables, applying the fault to initial values if it
    // targets position 0.
    for p in comp.processes() {
        let names: Vec<String> = comp.var_names(p).map(str::to_owned).collect();
        for name in names {
            let v = comp.var(p, &name).expect("listed name resolves");
            let mut initial = comp.value_at(v, 0);
            if p == fault.process && fault.position == 0 && name == fault.var_name {
                initial = fault.value;
            }
            b.try_declare_var(p, &name, initial)
                .map_err(FaultError::Build)?;
        }
    }

    // Replay events in original append order (event ids are dense in that
    // order), rewriting the affected snapshots.
    for e in comp.events() {
        if comp.is_initial(e) {
            continue;
        }
        let p = comp.process_of(e);
        let pos = comp.position_of(e);
        let ne = b.append_event(p);
        let names: Vec<String> = comp.var_names(p).map(str::to_owned).collect();
        for name in names {
            let orig_var = comp.var(p, &name).expect("listed name resolves");
            let new_var = b.var(p, &name).expect("declared above");
            let mut value = comp.value_at(orig_var, pos);
            if p == fault.process && name == fault.var_name {
                if pos == fault.position {
                    value = fault.value;
                } else if fault.transient && pos == fault.position + 1 {
                    // Restore explicitly: the carried-forward value would
                    // otherwise keep the corruption.
                    value = comp.value_at(orig_var, pos);
                } else if !fault.transient && pos > fault.position {
                    // Persist until the protocol writes a different value
                    // than it originally carried forward.
                    let orig_now = comp.value_at(orig_var, pos);
                    let orig_prev = comp.value_at(orig_var, pos - 1);
                    if orig_now == orig_prev {
                        value = fault.value;
                    }
                }
            }
            b.assign(ne, new_var, value).map_err(FaultError::Build)?;
        }
        if let Some(l) = comp.label(e) {
            let l = l.to_owned();
            b.set_label(ne, &l);
        }
    }

    for m in comp.messages() {
        let send = b.event_at(comp.process_of(m.send), comp.position_of(m.send));
        let recv = b.event_at(comp.process_of(m.recv), comp.position_of(m.recv));
        b.message(send, recv).map_err(FaultError::Build)?;
    }

    b.build().map_err(FaultError::Build)
}

/// Errors from [`inject`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultError {
    /// The fault names a variable the process does not have.
    UnknownVariable {
        /// Target process.
        process: ProcessId,
        /// Unresolved name.
        name: String,
    },
    /// The fault position exceeds the process's event count.
    PositionOutOfRange {
        /// Target process.
        process: ProcessId,
        /// Offending position.
        position: u32,
    },
    /// Reconstruction failed (cannot happen for valid inputs).
    Build(BuildError),
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::UnknownVariable { process, name } => {
                write!(f, "process {process} has no variable {name:?}")
            }
            FaultError::PositionOutOfRange { process, position } => {
                write!(f, "position {position} out of range on {process}")
            }
            FaultError::Build(e) => write!(f, "fault injection rebuild failed: {e}"),
        }
    }
}

impl std::error::Error for FaultError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FaultError::Build(e) => Some(e),
            _ => None,
        }
    }
}

/// Injects a transient "secondary dropped its role" fault into a
/// primary–secondary run: at a random event where some process is acting
/// as secondary, its `isSecondary` flag reads `false` — the classic bug
/// the paper's first experiment hunts.
///
/// Returns the faulty computation and the chosen fault, or `None` if the
/// run has no event at which any process is a secondary.
pub fn inject_primary_secondary_fault(
    comp: &Computation,
    seed: u64,
) -> Option<(Computation, FaultSpec)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut candidates: Vec<(ProcessId, u32)> = Vec::new();
    for p in comp.processes() {
        let Some(var) = comp.var(p, "isSecondary") else {
            continue;
        };
        for pos in 1..comp.len(p) {
            if comp.value_at(var, pos).expect_bool() {
                candidates.push((p, pos));
            }
        }
    }
    if candidates.is_empty() {
        return None;
    }
    let (process, position) = candidates[rng.random_range(0..candidates.len())];
    let fault = FaultSpec {
        process,
        position,
        var_name: "isSecondary".to_owned(),
        value: Value::Bool(false),
        transient: true,
    };
    let faulty = inject(comp, &fault).expect("candidate positions are valid");
    Some((faulty, fault))
}

/// Injects a transient partition corruption into a database-partitioning
/// run: at a random event of a random holder, its `partition` variable
/// reads a value nobody proposed.
///
/// Returns `None` if the computation has no holder events.
pub fn inject_database_fault(comp: &Computation, seed: u64) -> Option<(Computation, FaultSpec)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut candidates: Vec<(ProcessId, u32)> = Vec::new();
    for p in comp.processes() {
        if comp.var(p, "partition").is_none() {
            continue;
        }
        for pos in 1..comp.len(p) {
            candidates.push((p, pos));
        }
    }
    if candidates.is_empty() {
        return None;
    }
    let (process, position) = candidates[rng.random_range(0..candidates.len())];
    let fault = FaultSpec {
        process,
        position,
        var_name: "partition".to_owned(),
        value: Value::Int(-1),
        transient: true,
    };
    let faulty = inject(comp, &fault).expect("candidate positions are valid");
    Some((faulty, fault))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primary_secondary::{self, PrimarySecondary};
    use crate::runtime::{run, SimConfig};
    use slicing_computation::lattice::for_each_cut;
    use slicing_computation::GlobalState;
    use slicing_predicates::Predicate;

    fn ps_run(seed: u64) -> Computation {
        let cfg = SimConfig {
            seed,
            max_events_per_process: 8,
            ..SimConfig::default()
        };
        run(&mut PrimarySecondary::new(3), &cfg).unwrap()
    }

    #[test]
    fn transient_fault_changes_exactly_one_snapshot() {
        let comp = ps_run(1);
        let p = comp.process(1);
        let fault = FaultSpec {
            process: p,
            position: 2,
            var_name: "work".to_owned(),
            value: Value::Int(999),
            transient: true,
        };
        let faulty = inject(&comp, &fault).unwrap();
        let orig = comp.var(p, "work").unwrap();
        let new = faulty.var(p, "work").unwrap();
        for pos in 0..comp.len(p) {
            let want = if pos == 2 {
                Value::Int(999)
            } else {
                comp.value_at(orig, pos)
            };
            assert_eq!(faulty.value_at(new, pos), want, "pos {pos}");
        }
        // Structure unchanged.
        assert_eq!(faulty.num_events(), comp.num_events());
        assert_eq!(faulty.messages(), comp.messages());
    }

    #[test]
    fn persistent_fault_sticks_until_next_write() {
        let comp = ps_run(2);
        let p = comp.process(2);
        let orig = comp.var(p, "work").unwrap();
        // `work` increments on every work event, so a persistent fault is
        // overwritten at the next work event; `isSecondary` is rarely
        // written, so corrupt that instead.
        let var = comp.var(p, "isSecondary").unwrap();
        let fault = FaultSpec {
            process: p,
            position: 1,
            var_name: "isSecondary".to_owned(),
            value: Value::Bool(true),
            transient: false,
        };
        let faulty = inject(&comp, &fault).unwrap();
        let fvar = faulty.var(p, "isSecondary").unwrap();
        // Corruption persists while the original carried the value
        // forward.
        let mut pos = 1;
        while pos < comp.len(p)
            && (pos == 1 || comp.value_at(var, pos) == comp.value_at(var, pos - 1))
        {
            assert_eq!(faulty.value_at(fvar, pos), Value::Bool(true), "pos {pos}");
            pos += 1;
        }
        let _ = orig;
    }

    #[test]
    fn ps_fault_creates_detectable_violation_for_some_seed() {
        // Random injection does not guarantee a violating cut, but across
        // a handful of seeds at least one must appear.
        let comp = ps_run(3);
        let mut any = false;
        for fseed in 0..10 {
            let Some((faulty, _)) = inject_primary_secondary_fault(&comp, fseed) else {
                continue;
            };
            let inv = primary_secondary::invariant(&faulty);
            let mut violated = false;
            for_each_cut(&faulty, |cut| {
                if !inv.eval(&GlobalState::new(&faulty, cut)) {
                    violated = true;
                    return false;
                }
                true
            });
            if violated {
                any = true;
                break;
            }
        }
        assert!(any, "no fault seed produced a violating cut");
    }

    #[test]
    fn database_fault_injects() {
        use crate::database::DatabasePartitioning;
        let cfg = SimConfig {
            seed: 4,
            max_events_per_process: 8,
            ..SimConfig::default()
        };
        let comp = run(&mut DatabasePartitioning::new(4), &cfg).unwrap();
        let (faulty, fault) = inject_database_fault(&comp, 1).unwrap();
        assert_eq!(fault.var_name, "partition");
        assert_eq!(faulty.num_events(), comp.num_events());
    }

    #[test]
    fn errors_on_bad_fault_specs() {
        let comp = ps_run(5);
        let bad_var = FaultSpec {
            process: comp.process(0),
            position: 1,
            var_name: "nope".to_owned(),
            value: Value::Int(0),
            transient: true,
        };
        assert!(matches!(
            inject(&comp, &bad_var),
            Err(FaultError::UnknownVariable { .. })
        ));
        let bad_pos = FaultSpec {
            process: comp.process(0),
            position: 10_000,
            var_name: "work".to_owned(),
            value: Value::Int(0),
            transient: true,
        };
        let err = inject(&comp, &bad_pos).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }
}
