//! k-local predicates and the Stoller–Schneider DNF transform.

use std::fmt;
use std::sync::Arc;

use slicing_computation::{Computation, GlobalState, ProcSet, ProcessId, Value, VarRef};

use crate::conjunctive::Conjunctive;
use crate::local::LocalPredicate;
use crate::predicate::Predicate;

type TupleFn = dyn Fn(&[Value]) -> bool + Send + Sync;

/// A predicate over the variables of at most `k` processes, with no other
/// structure assumed (it need not be regular or linear) — Section 4.2.
///
/// Using Stoller and Schneider's technique, a k-local predicate can be
/// rewritten, *for a given computation*, into a disjunction of at most
/// `m^(k-1)` conjunctive predicates (`m` = events per process): fix the
/// observed value tuples of `k-1` of the processes and fold them into a
/// residual local predicate on the remaining process. Each disjunct is
/// conjunctive, hence sliceable in `O(|E|)`; grafting the disjuncts back
/// together yields the exact slice.
///
/// # Examples
///
/// ```
/// use slicing_computation::{ComputationBuilder, Value};
/// use slicing_predicates::KLocalPredicate;
///
/// let mut b = ComputationBuilder::new(2);
/// let x = b.declare_var(b.process(0), "x", Value::Int(0));
/// let y = b.declare_var(b.process(1), "y", Value::Int(0));
/// b.step(b.process(0), &[(x, Value::Int(1))]);
/// b.step(b.process(1), &[(y, Value::Int(1))]);
/// let comp = b.build()?;
///
/// // The paper's example: x ≠ y.
/// let pred = KLocalPredicate::new(vec![x, y], "x != y", |v| v[0] != v[1]);
/// let dnf = pred.to_dnf(&comp);
/// assert!(!dnf.is_empty());
/// # Ok::<(), slicing_computation::BuildError>(())
/// ```
#[derive(Clone)]
pub struct KLocalPredicate {
    vars: Vec<VarRef>,
    label: String,
    f: Arc<TupleFn>,
}

impl KLocalPredicate {
    /// Creates a k-local predicate reading `vars` (in order) and evaluated
    /// by `f` on the corresponding values.
    ///
    /// # Panics
    ///
    /// Panics if `vars` is empty.
    pub fn new(
        vars: impl Into<Vec<VarRef>>,
        label: impl Into<String>,
        f: impl Fn(&[Value]) -> bool + Send + Sync + 'static,
    ) -> Self {
        let vars: Vec<VarRef> = vars.into();
        assert!(
            !vars.is_empty(),
            "a k-local predicate reads at least one variable"
        );
        KLocalPredicate {
            vars,
            label: label.into(),
            f: Arc::new(f),
        }
    }

    /// The variables read, in evaluation order.
    pub fn vars(&self) -> &[VarRef] {
        &self.vars
    }

    /// The human-readable label used in `Debug` output.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// `k`: the number of distinct processes read.
    pub fn locality(&self) -> usize {
        self.support().len()
    }

    /// Distinct value snapshots (tuples of `vars`) observed on process `p`
    /// across its event positions.
    fn distinct_snapshots(&self, comp: &Computation, p: ProcessId) -> Vec<Vec<Value>> {
        let pvars: Vec<VarRef> = self
            .vars
            .iter()
            .copied()
            .filter(|v| v.process() == p)
            .collect();
        let mut seen: Vec<Vec<Value>> = Vec::new();
        for pos in 0..comp.len(p) {
            let snap: Vec<Value> = pvars.iter().map(|&v| comp.value_at(v, pos)).collect();
            if !seen.contains(&snap) {
                seen.push(snap);
            }
        }
        seen
    }

    /// Upper bound on the number of DNF clauses [`to_dnf`](Self::to_dnf)
    /// will produce for `comp` (the product of distinct-snapshot counts of
    /// all non-pivot processes).
    pub fn dnf_size(&self, comp: &Computation) -> u64 {
        let procs: Vec<ProcessId> = self.support().iter().collect();
        if procs.len() <= 1 {
            return 1;
        }
        let mut counts: Vec<u64> = procs
            .iter()
            .map(|&p| self.distinct_snapshots(comp, p).len() as u64)
            .collect();
        // The pivot (largest count) is excluded from the product.
        counts.sort_unstable();
        counts.pop();
        counts.iter().product()
    }

    /// Rewrites the predicate into an equivalent (for `comp`) disjunction
    /// of conjunctive predicates, per Stoller–Schneider.
    ///
    /// The pivot process — the one whose values stay symbolic — is chosen
    /// as the process with the most distinct snapshots, which minimizes the
    /// clause count (the paper's Section 5.1 applies the same idea to
    /// shrink `¬I_db`'s clause set by a factor of `n`). Clauses whose
    /// residual pivot predicate never holds anywhere in `comp` are pruned.
    pub fn to_dnf(&self, comp: &Computation) -> Vec<Conjunctive> {
        let procs: Vec<ProcessId> = self.support().iter().collect();
        if procs.len() == 1 {
            // Already local: one clause with a single local conjunct.
            let vars = self.vars.clone();
            let f = Arc::clone(&self.f);
            let local = LocalPredicate::new(vars, self.label.clone(), move |vals| f(vals));
            return vec![Conjunctive::new(vec![local])];
        }

        // Pick the pivot: most distinct snapshots.
        let snapshots: Vec<Vec<Vec<Value>>> = procs
            .iter()
            .map(|&p| self.distinct_snapshots(comp, p))
            .collect();
        let pivot_idx = (0..procs.len())
            .max_by_key(|&i| snapshots[i].len())
            .expect("at least two processes");
        let pivot = procs[pivot_idx];
        let pivot_vars: Vec<VarRef> = self
            .vars
            .iter()
            .copied()
            .filter(|v| v.process() == pivot)
            .collect();

        let others: Vec<usize> = (0..procs.len()).filter(|&i| i != pivot_idx).collect();

        // Enumerate the cartesian product of the other processes' distinct
        // snapshots with a positional odometer.
        let mut clauses = Vec::new();
        let mut odometer = vec![0usize; others.len()];
        loop {
            // Fixed values for this combination, aligned with self.vars.
            let mut fixed: Vec<Option<Value>> = vec![None; self.vars.len()];
            let mut locals = Vec::with_capacity(others.len() + 1);
            for (slot, &oi) in others.iter().enumerate() {
                let p = procs[oi];
                let snap = &snapshots[oi][odometer[slot]];
                let pvars: Vec<VarRef> = self
                    .vars
                    .iter()
                    .copied()
                    .filter(|v| v.process() == p)
                    .collect();
                for (vi, &var) in self.vars.iter().enumerate() {
                    if var.process() == p {
                        let k = pvars.iter().position(|&v| v == var).expect("var listed");
                        fixed[vi] = Some(snap[k]);
                    }
                }
                locals.push(LocalPredicate::equals_all(pvars, snap.clone()));
            }

            // Residual predicate on the pivot.
            let f = Arc::clone(&self.f);
            let vars_order = self.vars.clone();
            let pivot_vars_c = pivot_vars.clone();
            let fixed_c = fixed.clone();
            let residual = LocalPredicate::new(
                pivot_vars.clone(),
                format!("{} | fixed", self.label),
                move |pivot_vals| {
                    let mut full = Vec::with_capacity(vars_order.len());
                    for (vi, var) in vars_order.iter().enumerate() {
                        match fixed_c[vi] {
                            Some(v) => full.push(v),
                            None => {
                                let k = pivot_vars_c
                                    .iter()
                                    .position(|v| v == var)
                                    .expect("pivot var listed");
                                full.push(pivot_vals[k]);
                            }
                        }
                    }
                    f(&full)
                },
            );

            // Prune clauses whose residual never holds on the pivot.
            let feasible = (0..comp.len(pivot)).any(|pos| residual.holds_at(comp, pos));
            if feasible {
                locals.push(residual);
                clauses.push(Conjunctive::new(locals));
            }

            // Advance the odometer.
            let mut slot = 0;
            loop {
                if slot == others.len() {
                    return clauses;
                }
                odometer[slot] += 1;
                if odometer[slot] < snapshots[others[slot]].len() {
                    break;
                }
                odometer[slot] = 0;
                slot += 1;
            }
        }
    }
}

impl fmt::Debug for KLocalPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KLocal({}, k={})", self.label, self.locality())
    }
}

impl Predicate for KLocalPredicate {
    fn support(&self) -> ProcSet {
        self.vars.iter().map(|v| v.process()).collect()
    }

    fn eval(&self, state: &GlobalState<'_>) -> bool {
        let vals: Vec<Value> = self.vars.iter().map(|&v| state.get(v)).collect();
        (self.f)(&vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_computation::lattice::all_cuts;
    use slicing_computation::test_fixtures::{random_computation, RandomConfig};
    use slicing_computation::{ComputationBuilder, GlobalState};

    fn dnf_eval(dnf: &[Conjunctive], st: &GlobalState<'_>) -> bool {
        dnf.iter().any(|c| c.eval(st))
    }

    #[test]
    fn neq_transform_is_equivalent() {
        let mut b = ComputationBuilder::new(2);
        let x = b.declare_var(b.process(0), "x", Value::Int(0));
        let y = b.declare_var(b.process(1), "y", Value::Int(0));
        for v in [1, 0, 2] {
            b.step(b.process(0), &[(x, Value::Int(v))]);
        }
        for v in [2, 0] {
            b.step(b.process(1), &[(y, Value::Int(v))]);
        }
        let comp = b.build().unwrap();
        let pred = KLocalPredicate::new(vec![x, y], "x != y", |v| v[0] != v[1]);
        let dnf = pred.to_dnf(&comp);
        for cut in all_cuts(&comp) {
            let st = GlobalState::new(&comp, &cut);
            assert_eq!(pred.eval(&st), dnf_eval(&dnf, &st), "cut {cut}");
        }
    }

    #[test]
    fn dnf_matches_on_random_computations() {
        let cfg = RandomConfig {
            processes: 3,
            events_per_process: 3,
            value_range: 3,
            ..RandomConfig::default()
        };
        for seed in 0..20 {
            let comp = random_computation(seed, &cfg);
            let vars: Vec<VarRef> = comp
                .processes()
                .map(|p| comp.var(p, "x").unwrap())
                .collect();
            // A genuinely non-regular 3-local predicate.
            let pred = KLocalPredicate::new(vars, "x0 + x1 == x2 + 1", |v| {
                v[0].expect_int() + v[1].expect_int() == v[2].expect_int() + 1
            });
            let dnf = pred.to_dnf(&comp);
            for cut in all_cuts(&comp) {
                let st = GlobalState::new(&comp, &cut);
                assert_eq!(pred.eval(&st), dnf_eval(&dnf, &st), "seed {seed} cut {cut}");
            }
        }
    }

    #[test]
    fn single_process_predicate_degenerates_to_local() {
        let mut b = ComputationBuilder::new(1);
        let x = b.declare_var(b.process(0), "x", Value::Int(0));
        b.step(b.process(0), &[(x, Value::Int(1))]);
        let comp = b.build().unwrap();
        let pred = KLocalPredicate::new(vec![x], "x == 1", |v| v[0] == Value::Int(1));
        assert_eq!(pred.locality(), 1);
        let dnf = pred.to_dnf(&comp);
        assert_eq!(dnf.len(), 1);
        assert_eq!(dnf[0].clauses().len(), 1);
        for cut in all_cuts(&comp) {
            let st = GlobalState::new(&comp, &cut);
            assert_eq!(pred.eval(&st), dnf_eval(&dnf, &st));
        }
    }

    #[test]
    fn dnf_size_bounds_clause_count() {
        let cfg = RandomConfig {
            processes: 3,
            events_per_process: 4,
            value_range: 4,
            ..RandomConfig::default()
        };
        let comp = random_computation(3, &cfg);
        let vars: Vec<VarRef> = comp
            .processes()
            .map(|p| comp.var(p, "x").unwrap())
            .collect();
        let pred = KLocalPredicate::new(vars, "sum odd", |v| {
            (v.iter().map(|x| x.expect_int()).sum::<i64>()) % 2 == 1
        });
        let dnf = pred.to_dnf(&comp);
        assert!(dnf.len() as u64 <= pred.dnf_size(&comp));
    }

    #[test]
    fn infeasible_clauses_are_pruned() {
        let mut b = ComputationBuilder::new(2);
        let x = b.declare_var(b.process(0), "x", Value::Int(0));
        let y = b.declare_var(b.process(1), "y", Value::Int(0));
        b.step(b.process(0), &[(x, Value::Int(1))]);
        let comp = b.build().unwrap();
        // Never true: y is always 0, x ∈ {0, 1}.
        let pred = KLocalPredicate::new(vec![x, y], "x + y == 5", |v| {
            v[0].expect_int() + v[1].expect_int() == 5
        });
        assert!(pred.to_dnf(&comp).is_empty());
    }

    #[test]
    fn accessors() {
        let mut b = ComputationBuilder::new(2);
        let x = b.declare_var(b.process(0), "x", Value::Int(0));
        let y = b.declare_var(b.process(1), "y", Value::Int(0));
        let pred = KLocalPredicate::new(vec![x, y], "x != y", |v| v[0] != v[1]);
        assert_eq!(pred.vars().len(), 2);
        assert_eq!(pred.label(), "x != y");
        assert_eq!(pred.locality(), 2);
        assert!(format!("{pred:?}").contains("k=2"));
    }
}
