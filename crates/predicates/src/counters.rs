//! Predicates over monotonically non-decreasing counters, including the
//! paper's running example of a *decomposable regular predicate*:
//! "counters of all processes are approximately synchronized".

use slicing_computation::{GlobalState, ProcSet, ProcessId, VarRef};

use crate::predicate::{LinearPredicate, PostLinearPredicate, Predicate, RegularPredicate};

/// `|counter_i − counter_j| ≤ delta` for two monotonically non-decreasing
/// integer counters — a 2-local regular predicate (Section 4.1's clause).
///
/// # Monotonicity contract
///
/// Regularity (and the forbidden-process logic) relies on both counters
/// being non-decreasing along their processes. Violating that contract
/// silently degrades slices from exact to approximate; it never causes
/// unsoundness (slices still contain all satisfying cuts).
#[derive(Debug, Clone, Copy)]
pub struct BoundedDifference {
    a: VarRef,
    b: VarRef,
    delta: i64,
}

impl BoundedDifference {
    /// Creates the predicate `|a − b| ≤ delta`.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is negative or the variables live on the same
    /// process.
    pub fn new(a: VarRef, b: VarRef, delta: i64) -> Self {
        assert!(delta >= 0, "delta must be non-negative");
        assert_ne!(
            a.process(),
            b.process(),
            "BoundedDifference compares counters of two distinct processes"
        );
        BoundedDifference { a, b, delta }
    }

    /// First counter.
    pub fn a(&self) -> VarRef {
        self.a
    }

    /// Second counter.
    pub fn b(&self) -> VarRef {
        self.b
    }

    /// Synchronization tolerance.
    pub fn delta(&self) -> i64 {
        self.delta
    }
}

impl Predicate for BoundedDifference {
    fn support(&self) -> ProcSet {
        let mut s = ProcSet::singleton(self.a.process());
        s.insert(self.b.process());
        s
    }

    fn eval(&self, state: &GlobalState<'_>) -> bool {
        let va = state.get(self.a).expect_int();
        let vb = state.get(self.b).expect_int();
        (va - vb).abs() <= self.delta
    }
}

impl LinearPredicate for BoundedDifference {
    fn forbidden_process(&self, state: &GlobalState<'_>) -> ProcessId {
        let va = state.get(self.a).expect_int();
        let vb = state.get(self.b).expect_int();
        debug_assert!((va - vb).abs() > self.delta);
        // The lagging counter must advance: the leader can only grow.
        if va > vb {
            self.b.process()
        } else {
            self.a.process()
        }
    }
}

impl PostLinearPredicate for BoundedDifference {
    fn retreat_process(&self, state: &GlobalState<'_>) -> ProcessId {
        let va = state.get(self.a).expect_int();
        let vb = state.get(self.b).expect_int();
        debug_assert!((va - vb).abs() > self.delta);
        // Dually, the leading counter must retreat.
        if va > vb {
            self.a.process()
        } else {
            self.b.process()
        }
    }
}

impl RegularPredicate for BoundedDifference {}

/// `lo ≤ hi` for two monotonically non-decreasing integer counters on
/// distinct processes — the *dominance* clause behind causal-counting
/// invariants ("a receiver's count never exceeds the sender's": acks vs.
/// sends, applied ops vs. generated ops, dequeues vs. handouts).
///
/// # Monotonicity contract
///
/// Regularity relies on both counters being non-decreasing along their
/// processes. With monotone counters the satisfying cuts form a
/// sublattice (meets and joins both keep the *minimum* of each counter on
/// the satisfying side), so the predicate — and crucially its
/// *complement* via [`PredicateSpec::not_regular`] — slices exactly.
/// Breaking the contract degrades `regular` leaves to approximate
/// (sound) slices, but can make `not_regular` (co-regular) leaves
/// **unsound**; only use the complement on genuinely monotone variables.
///
/// [`PredicateSpec::not_regular`]: https://docs.rs/slicing-core
#[derive(Debug, Clone, Copy)]
pub struct MonotoneDominates {
    lo: VarRef,
    hi: VarRef,
}

impl MonotoneDominates {
    /// Creates the predicate `lo ≤ hi`.
    ///
    /// # Panics
    ///
    /// Panics if the variables live on the same process.
    pub fn new(lo: VarRef, hi: VarRef) -> Self {
        assert_ne!(
            lo.process(),
            hi.process(),
            "MonotoneDominates compares counters of two distinct processes"
        );
        MonotoneDominates { lo, hi }
    }

    /// The dominated (smaller) counter.
    pub fn lo(&self) -> VarRef {
        self.lo
    }

    /// The dominating (larger) counter.
    pub fn hi(&self) -> VarRef {
        self.hi
    }
}

impl Predicate for MonotoneDominates {
    fn support(&self) -> ProcSet {
        let mut s = ProcSet::singleton(self.lo.process());
        s.insert(self.hi.process());
        s
    }

    fn eval(&self, state: &GlobalState<'_>) -> bool {
        state.get(self.lo).expect_int() <= state.get(self.hi).expect_int()
    }
}

impl LinearPredicate for MonotoneDominates {
    fn forbidden_process(&self, state: &GlobalState<'_>) -> ProcessId {
        debug_assert!(state.get(self.lo).expect_int() > state.get(self.hi).expect_int());
        // `lo` ran ahead: only advancing `hi` can restore dominance, since
        // `lo` never decreases.
        self.hi.process()
    }
}

impl PostLinearPredicate for MonotoneDominates {
    fn retreat_process(&self, state: &GlobalState<'_>) -> ProcessId {
        debug_assert!(state.get(self.lo).expect_int() > state.get(self.hi).expect_int());
        // Dually, the overshooting `lo` must retreat.
        self.lo.process()
    }
}

impl RegularPredicate for MonotoneDominates {}

/// Builds the paper's Section 4.1 running example as a list of 2-local
/// regular clauses: for all pairs `i < j`,
/// `|counter_i − counter_j| ≤ delta`.
///
/// The conjunction of the returned clauses is a *decomposable regular
/// predicate* with clause span `k = 2` and per-process clause count
/// `s = n − 1`; feed it to `slicing-core`'s decomposable slicer.
///
/// # Panics
///
/// Panics if `counters` has fewer than two entries or hosts two counters on
/// one process.
pub fn approximately_synchronized(counters: &[VarRef], delta: i64) -> Vec<BoundedDifference> {
    assert!(counters.len() >= 2, "need at least two counters");
    let mut clauses = Vec::with_capacity(counters.len() * (counters.len() - 1) / 2);
    for (i, &a) in counters.iter().enumerate() {
        for &b in &counters[i + 1..] {
            clauses.push(BoundedDifference::new(a, b, delta));
        }
    }
    clauses
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_computation::oracle::{satisfying_cuts, sublattice_closure};
    use slicing_computation::{Computation, ComputationBuilder, Cut, Value};

    /// Two processes incrementing counters, loosely coupled by a message.
    fn counter_comp() -> (Computation, VarRef, VarRef) {
        let mut b = ComputationBuilder::new(2);
        let ca = b.declare_var(b.process(0), "c", Value::Int(0));
        let cb = b.declare_var(b.process(1), "c", Value::Int(0));
        for v in 1..=3 {
            b.step(b.process(0), &[(ca, Value::Int(v))]);
        }
        for v in 1..=3 {
            b.step(b.process(1), &[(cb, Value::Int(v))]);
        }
        (b.build().unwrap(), ca, cb)
    }

    #[test]
    fn eval_and_forbidden() {
        let (c, ca, cb) = counter_comp();
        let p = BoundedDifference::new(ca, cb, 1);
        // p0 at 3, p1 at 0: difference 3 > 1, p1 must advance.
        let cut = Cut::from(vec![4, 1]);
        let st = GlobalState::new(&c, &cut);
        assert!(!p.eval(&st));
        assert_eq!(p.forbidden_process(&st), c.process(1));
        assert_eq!(p.retreat_process(&st), c.process(0));
        // Symmetric case.
        let cut = Cut::from(vec![1, 4]);
        let st = GlobalState::new(&c, &cut);
        assert_eq!(p.forbidden_process(&st), c.process(0));
        assert_eq!(p.retreat_process(&st), c.process(1));
        // Within tolerance.
        let cut = Cut::from(vec![3, 2]);
        assert!(p.eval(&GlobalState::new(&c, &cut)));
    }

    #[test]
    fn regular_by_oracle_for_monotone_counters() {
        let (c, ca, cb) = counter_comp();
        for delta in 0..3 {
            let p = BoundedDifference::new(ca, cb, delta);
            let sat = satisfying_cuts(&c, |st| p.eval(st));
            assert_eq!(
                sublattice_closure(&sat).len(),
                sat.len(),
                "delta={delta} must be regular"
            );
        }
    }

    #[test]
    fn pairwise_construction() {
        let mut b = ComputationBuilder::new(3);
        let counters: Vec<VarRef> = (0..3)
            .map(|i| b.declare_var(b.process(i), "c", Value::Int(0)))
            .collect();
        let clauses = approximately_synchronized(&counters, 4);
        assert_eq!(clauses.len(), 3); // C(3, 2)
        for cl in &clauses {
            assert_eq!(cl.delta(), 4);
            assert_eq!(cl.support().len(), 2);
            assert_ne!(cl.a().process(), cl.b().process());
        }
    }

    #[test]
    fn dominance_eval_and_forbidden() {
        let (c, ca, cb) = counter_comp();
        let p = MonotoneDominates::new(ca, cb);
        // p0 at 3, p1 at 1: lo > hi, p1 (hi) must advance, p0 retreat.
        let cut = Cut::from(vec![4, 2]);
        let st = GlobalState::new(&c, &cut);
        assert!(!p.eval(&st));
        assert_eq!(p.forbidden_process(&st), c.process(1));
        assert_eq!(p.retreat_process(&st), c.process(0));
        // Equal or dominated: satisfied.
        assert!(p.eval(&GlobalState::new(&c, &Cut::from(vec![3, 3]))));
        assert!(p.eval(&GlobalState::new(&c, &Cut::from(vec![1, 4]))));
    }

    #[test]
    fn dominance_and_its_complement_are_regular_for_monotone_counters() {
        let (c, ca, cb) = counter_comp();
        let p = MonotoneDominates::new(ca, cb);
        let sat = satisfying_cuts(&c, |st| p.eval(st));
        assert_eq!(sublattice_closure(&sat).len(), sat.len(), "lo <= hi");
        // The complement (lo > hi) is regular too — the property the
        // co-regular slicer leans on for violation specs.
        let co = satisfying_cuts(&c, |st| !p.eval(st));
        assert_eq!(sublattice_closure(&co).len(), co.len(), "lo > hi");
    }

    #[test]
    #[should_panic(expected = "distinct processes")]
    fn dominance_same_process_rejected() {
        let mut b = ComputationBuilder::new(2);
        let x = b.declare_var(b.process(0), "x", Value::Int(0));
        let y = b.declare_var(b.process(0), "y", Value::Int(0));
        let _ = MonotoneDominates::new(x, y);
    }

    #[test]
    #[should_panic(expected = "distinct processes")]
    fn same_process_rejected() {
        let mut b = ComputationBuilder::new(2);
        let x = b.declare_var(b.process(0), "x", Value::Int(0));
        let _ = BoundedDifference::new(x, x, 1);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_delta_rejected() {
        let mut b = ComputationBuilder::new(2);
        let x = b.declare_var(b.process(0), "x", Value::Int(0));
        let y = b.declare_var(b.process(1), "y", Value::Int(0));
        let _ = BoundedDifference::new(x, y, -1);
    }
}
