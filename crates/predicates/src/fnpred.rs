//! Arbitrary function predicates.

use std::fmt;
use std::sync::Arc;

use slicing_computation::{GlobalState, ProcSet};

use crate::predicate::Predicate;

type GlobalFn = dyn for<'a, 'b> Fn(&'a GlobalState<'b>) -> bool + Send + Sync;

/// A predicate given by an arbitrary closure over the global state.
///
/// `FnPredicate` makes no structural promises (it is neither linear nor
/// regular), so it cannot be sliced exactly — but it is exactly what the
/// slice-then-search pipeline needs for the *residual* predicate: slice with
/// respect to a tractable weakening, then evaluate the full predicate on
/// the few remaining cuts. The paper's introduction does precisely this
/// with `(x1*x2 + x3 < 5) ∧ (x1 > 1) ∧ (x3 ≤ 3)`.
///
/// # Examples
///
/// ```
/// use slicing_computation::{ComputationBuilder, Cut, GlobalState, ProcSet, Value};
/// use slicing_predicates::{FnPredicate, Predicate};
///
/// let mut b = ComputationBuilder::new(2);
/// let x = b.declare_var(b.process(0), "x", Value::Int(2));
/// let y = b.declare_var(b.process(1), "y", Value::Int(3));
/// let comp = b.build()?;
///
/// let pred = FnPredicate::new(ProcSet::all(2), "x * y < 5", move |st| {
///     st.get(x).expect_int() * st.get(y).expect_int() < 5
/// });
/// let bottom = Cut::bottom(2);
/// assert!(!pred.eval(&GlobalState::new(&comp, &bottom)));
/// # Ok::<(), slicing_computation::BuildError>(())
/// ```
#[derive(Clone)]
pub struct FnPredicate {
    support: ProcSet,
    label: String,
    f: Arc<GlobalFn>,
}

impl FnPredicate {
    /// Creates a predicate from a closure. `support` must cover every
    /// process whose variables or channels the closure reads.
    pub fn new(
        support: ProcSet,
        label: impl Into<String>,
        f: impl for<'a, 'b> Fn(&'a GlobalState<'b>) -> bool + Send + Sync + 'static,
    ) -> Self {
        FnPredicate {
            support,
            label: label.into(),
            f: Arc::new(f),
        }
    }

    /// The human-readable label used in `Debug` output.
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl fmt::Debug for FnPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FnPredicate({})", self.label)
    }
}

impl Predicate for FnPredicate {
    fn support(&self) -> ProcSet {
        self.support
    }

    fn eval(&self, state: &GlobalState<'_>) -> bool {
        (self.f)(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_computation::test_fixtures::figure1;
    use slicing_computation::Cut;

    #[test]
    fn evaluates_closure() {
        let comp = figure1();
        let x1 = comp.var(comp.process(0), "x1").unwrap();
        let x2 = comp.var(comp.process(1), "x2").unwrap();
        let x3 = comp.var(comp.process(2), "x3").unwrap();
        // The paper's full introduction predicate.
        let pred = FnPredicate::new(ProcSet::all(3), "x1*x2 + x3 < 5", move |st| {
            st.get(x1).expect_int() * st.get(x2).expect_int() + st.get(x3).expect_int() < 5
        });
        // Bottom: 2*2 + 4 = 8, not < 5.
        let bottom = Cut::bottom(3);
        assert!(!pred.eval(&GlobalState::new(&comp, &bottom)));
        // (1,2,2): 2*1 + 1 = 3 < 5.
        let cut = Cut::from(vec![1, 2, 2]);
        assert!(pred.eval(&GlobalState::new(&comp, &cut)));
        assert_eq!(pred.support().len(), 3);
        assert_eq!(pred.label(), "x1*x2 + x3 < 5");
        assert!(format!("{pred:?}").contains("x1*x2"));
    }
}
