//! Core predicate traits: evaluation, linearity, post-linearity,
//! regularity.

use std::fmt;
use std::sync::Arc;

use slicing_computation::{GlobalState, ProcSet, ProcessId};

/// A global predicate: a boolean function of the global state reached at a
/// consistent cut.
///
/// Predicates are evaluated on the values of process variables (and channel
/// contents) *after* executing all events in the cut, matching the paper's
/// Section 2.
pub trait Predicate: fmt::Debug + Send + Sync {
    /// The processes whose variables (or channels) the predicate reads.
    /// Detection and slicing use this to bound work: a predicate is
    /// *k-local* when its support has at most `k` processes.
    fn support(&self) -> ProcSet;

    /// Evaluates the predicate at a global state.
    fn eval(&self, state: &GlobalState<'_>) -> bool;
}

impl<P: Predicate + ?Sized> Predicate for &P {
    fn support(&self) -> ProcSet {
        (**self).support()
    }

    fn eval(&self, state: &GlobalState<'_>) -> bool {
        (**self).eval(state)
    }
}

impl<P: Predicate + ?Sized> Predicate for Arc<P> {
    fn support(&self) -> ProcSet {
        (**self).support()
    }

    fn eval(&self, state: &GlobalState<'_>) -> bool {
        (**self).eval(state)
    }
}

impl<P: Predicate + ?Sized> Predicate for Box<P> {
    fn support(&self) -> ProcSet {
        (**self).support()
    }

    fn eval(&self, state: &GlobalState<'_>) -> bool {
        (**self).eval(state)
    }
}

/// A *linear* predicate: its set of satisfying consistent cuts is closed
/// under set intersection (Chase–Garg).
///
/// Linearity is witnessed operationally by the *forbidden process*: when the
/// predicate is false at a cut `C`, there is a process `p` such that **no**
/// consistent cut `D ⊇ C` with the same frontier event of `p` satisfies the
/// predicate — so any search (and the slicer's `J_b` computation) must
/// advance `p` past its current event. This is the "crucial element" that
/// makes the `O(n²|E|)` slicing algorithm of Section 4.3 work.
pub trait LinearPredicate: Predicate {
    /// Returns a forbidden process of `state`.
    ///
    /// Only called when `self.eval(state)` is false; implementations may
    /// panic otherwise.
    fn forbidden_process(&self, state: &GlobalState<'_>) -> ProcessId;
}

impl<P: LinearPredicate + ?Sized> LinearPredicate for &P {
    fn forbidden_process(&self, state: &GlobalState<'_>) -> ProcessId {
        (**self).forbidden_process(state)
    }
}

impl<P: LinearPredicate + ?Sized> LinearPredicate for Arc<P> {
    fn forbidden_process(&self, state: &GlobalState<'_>) -> ProcessId {
        (**self).forbidden_process(state)
    }
}

impl<P: LinearPredicate + ?Sized> LinearPredicate for Box<P> {
    fn forbidden_process(&self, state: &GlobalState<'_>) -> ProcessId {
        (**self).forbidden_process(state)
    }
}

/// A *post-linear* predicate: its set of satisfying consistent cuts is
/// closed under set union — the order dual of [`LinearPredicate`].
///
/// Dually to the forbidden process, when the predicate is false at `C`
/// there is a process `p` such that no satisfying `D ⊆ C` keeps the same
/// frontier event of `p`; any satisfying subset must *retreat* `p`.
pub trait PostLinearPredicate: Predicate {
    /// Returns a process that must retreat below its current frontier event
    /// in any satisfying cut `D ⊆ state.cut()`.
    ///
    /// Only called when `self.eval(state)` is false; implementations may
    /// panic otherwise.
    fn retreat_process(&self, state: &GlobalState<'_>) -> ProcessId;
}

impl<P: PostLinearPredicate + ?Sized> PostLinearPredicate for &P {
    fn retreat_process(&self, state: &GlobalState<'_>) -> ProcessId {
        (**self).retreat_process(state)
    }
}

impl<P: PostLinearPredicate + ?Sized> PostLinearPredicate for Arc<P> {
    fn retreat_process(&self, state: &GlobalState<'_>) -> ProcessId {
        (**self).retreat_process(state)
    }
}

impl<P: PostLinearPredicate + ?Sized> PostLinearPredicate for Box<P> {
    fn retreat_process(&self, state: &GlobalState<'_>) -> ProcessId {
        (**self).retreat_process(state)
    }
}

/// A *regular* predicate: its set of satisfying consistent cuts is closed
/// under both set intersection and set union — a sublattice of the cut
/// lattice (Definition 2 of the paper). The slice of a regular predicate is
/// *lean*: it contains exactly the satisfying cuts.
///
/// Every regular predicate is both linear and post-linear; the supertrait
/// bounds make that explicit. This trait is a semantic marker: implementing
/// it asserts the closure property, which the slicers rely on (e.g. to
/// promise lean slices). Implementations that violate the property produce
/// approximate slices rather than unsound ones, but the leanness guarantee
/// is lost.
pub trait RegularPredicate: LinearPredicate + PostLinearPredicate {}

impl<P: RegularPredicate + ?Sized> RegularPredicate for &P {}
impl<P: RegularPredicate + ?Sized> RegularPredicate for Arc<P> {}
impl<P: RegularPredicate + ?Sized> RegularPredicate for Box<P> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LocalPredicate;
    use slicing_computation::{ComputationBuilder, Cut, Value};

    #[test]
    fn trait_objects_and_smart_pointers_compose() {
        let mut b = ComputationBuilder::new(1);
        let x = b.declare_var(b.process(0), "x", Value::Int(1));
        let comp = b.build().unwrap();
        let local = LocalPredicate::int(x, "x>0", |v| v > 0);

        let by_ref: &dyn Predicate = &local;
        let arc: Arc<dyn Predicate> = Arc::new(local.clone());
        let boxed: Box<dyn Predicate> = Box::new(local.clone());

        let cut = Cut::bottom(1);
        let st = GlobalState::new(&comp, &cut);
        assert!(by_ref.eval(&st));
        assert!(arc.eval(&st));
        assert!(boxed.eval(&st));
        assert_eq!(arc.support().len(), 1);
        // Blanket impls let references to trait objects be used generically.
        fn takes_pred<P: Predicate>(p: P, st: &GlobalState<'_>) -> bool {
            p.eval(st)
        }
        assert!(takes_pred(&arc, &st));
    }
}
