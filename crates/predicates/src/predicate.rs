//! Core predicate traits: evaluation, linearity, post-linearity,
//! regularity.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use slicing_computation::{GlobalState, ProcSet, ProcessId};

use crate::expr::EvalError;

/// Process-wide count of predicate evaluations that hit a runtime type
/// error and fell back to `false` (the documented false-with-counter
/// policy of the infallible [`Predicate::eval`] path).
static EVAL_TYPE_ERRORS: AtomicU64 = AtomicU64::new(0);

/// Total predicate evaluations, process-wide, that hit a runtime type
/// error (a variable changed type mid-computation, or an expression
/// evaluated to a non-boolean) and were coerced to `false`.
///
/// The fallible entry point [`Predicate::try_eval`] surfaces these as
/// [`EvalError`]s instead and does not touch this counter; engines that
/// must go through the infallible path (the slicers' forbidden-process
/// machinery) snapshot the counter around a run to downgrade "not
/// detected" verdicts into predicate-error aborts.
pub fn eval_type_errors() -> u64 {
    EVAL_TYPE_ERRORS.load(Ordering::Relaxed)
}

/// Records one false-coerced type error; see [`eval_type_errors`].
pub(crate) fn note_eval_type_error() {
    EVAL_TYPE_ERRORS.fetch_add(1, Ordering::Relaxed);
}

/// A global predicate: a boolean function of the global state reached at a
/// consistent cut.
///
/// Predicates are evaluated on the values of process variables (and channel
/// contents) *after* executing all events in the cut, matching the paper's
/// Section 2.
pub trait Predicate: fmt::Debug + Send + Sync {
    /// The processes whose variables (or channels) the predicate reads.
    /// Detection and slicing use this to bound work: a predicate is
    /// *k-local* when its support has at most `k` processes.
    fn support(&self) -> ProcSet;

    /// Evaluates the predicate at a global state.
    ///
    /// This entry point is infallible: predicates whose evaluation can
    /// fail at runtime (parsed expressions over type-flipping traces)
    /// coerce the failure to `false` and bump the process-wide
    /// [`eval_type_errors`] counter. Detection engines prefer
    /// [`try_eval`](Predicate::try_eval), which surfaces the failure.
    fn eval(&self, state: &GlobalState<'_>) -> bool;

    /// Evaluates the predicate, surfacing runtime evaluation failures.
    ///
    /// The default forwards to [`eval`](Predicate::eval) and never fails —
    /// correct for every predicate whose closure arithmetic cannot hit a
    /// type error. Predicates backed by interpreted expressions override
    /// this to return the underlying [`EvalError`] so a malformed trace
    /// yields an abort verdict instead of a process panic.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] when evaluation hits a runtime type mismatch.
    fn try_eval(&self, state: &GlobalState<'_>) -> Result<bool, EvalError> {
        Ok(self.eval(state))
    }
}

impl<P: Predicate + ?Sized> Predicate for &P {
    fn support(&self) -> ProcSet {
        (**self).support()
    }

    fn eval(&self, state: &GlobalState<'_>) -> bool {
        (**self).eval(state)
    }

    fn try_eval(&self, state: &GlobalState<'_>) -> Result<bool, EvalError> {
        (**self).try_eval(state)
    }
}

impl<P: Predicate + ?Sized> Predicate for Arc<P> {
    fn support(&self) -> ProcSet {
        (**self).support()
    }

    fn eval(&self, state: &GlobalState<'_>) -> bool {
        (**self).eval(state)
    }

    fn try_eval(&self, state: &GlobalState<'_>) -> Result<bool, EvalError> {
        (**self).try_eval(state)
    }
}

impl<P: Predicate + ?Sized> Predicate for Box<P> {
    fn support(&self) -> ProcSet {
        (**self).support()
    }

    fn eval(&self, state: &GlobalState<'_>) -> bool {
        (**self).eval(state)
    }

    fn try_eval(&self, state: &GlobalState<'_>) -> Result<bool, EvalError> {
        (**self).try_eval(state)
    }
}

/// A *linear* predicate: its set of satisfying consistent cuts is closed
/// under set intersection (Chase–Garg).
///
/// Linearity is witnessed operationally by the *forbidden process*: when the
/// predicate is false at a cut `C`, there is a process `p` such that **no**
/// consistent cut `D ⊇ C` with the same frontier event of `p` satisfies the
/// predicate — so any search (and the slicer's `J_b` computation) must
/// advance `p` past its current event. This is the "crucial element" that
/// makes the `O(n²|E|)` slicing algorithm of Section 4.3 work.
pub trait LinearPredicate: Predicate {
    /// Returns a forbidden process of `state`.
    ///
    /// Only called when `self.eval(state)` is false; implementations may
    /// panic otherwise.
    fn forbidden_process(&self, state: &GlobalState<'_>) -> ProcessId;
}

impl<P: LinearPredicate + ?Sized> LinearPredicate for &P {
    fn forbidden_process(&self, state: &GlobalState<'_>) -> ProcessId {
        (**self).forbidden_process(state)
    }
}

impl<P: LinearPredicate + ?Sized> LinearPredicate for Arc<P> {
    fn forbidden_process(&self, state: &GlobalState<'_>) -> ProcessId {
        (**self).forbidden_process(state)
    }
}

impl<P: LinearPredicate + ?Sized> LinearPredicate for Box<P> {
    fn forbidden_process(&self, state: &GlobalState<'_>) -> ProcessId {
        (**self).forbidden_process(state)
    }
}

/// A *post-linear* predicate: its set of satisfying consistent cuts is
/// closed under set union — the order dual of [`LinearPredicate`].
///
/// Dually to the forbidden process, when the predicate is false at `C`
/// there is a process `p` such that no satisfying `D ⊆ C` keeps the same
/// frontier event of `p`; any satisfying subset must *retreat* `p`.
pub trait PostLinearPredicate: Predicate {
    /// Returns a process that must retreat below its current frontier event
    /// in any satisfying cut `D ⊆ state.cut()`.
    ///
    /// Only called when `self.eval(state)` is false; implementations may
    /// panic otherwise.
    fn retreat_process(&self, state: &GlobalState<'_>) -> ProcessId;
}

impl<P: PostLinearPredicate + ?Sized> PostLinearPredicate for &P {
    fn retreat_process(&self, state: &GlobalState<'_>) -> ProcessId {
        (**self).retreat_process(state)
    }
}

impl<P: PostLinearPredicate + ?Sized> PostLinearPredicate for Arc<P> {
    fn retreat_process(&self, state: &GlobalState<'_>) -> ProcessId {
        (**self).retreat_process(state)
    }
}

impl<P: PostLinearPredicate + ?Sized> PostLinearPredicate for Box<P> {
    fn retreat_process(&self, state: &GlobalState<'_>) -> ProcessId {
        (**self).retreat_process(state)
    }
}

/// A *regular* predicate: its set of satisfying consistent cuts is closed
/// under both set intersection and set union — a sublattice of the cut
/// lattice (Definition 2 of the paper). The slice of a regular predicate is
/// *lean*: it contains exactly the satisfying cuts.
///
/// Every regular predicate is both linear and post-linear; the supertrait
/// bounds make that explicit. This trait is a semantic marker: implementing
/// it asserts the closure property, which the slicers rely on (e.g. to
/// promise lean slices). Implementations that violate the property produce
/// approximate slices rather than unsound ones, but the leanness guarantee
/// is lost.
pub trait RegularPredicate: LinearPredicate + PostLinearPredicate {}

impl<P: RegularPredicate + ?Sized> RegularPredicate for &P {}
impl<P: RegularPredicate + ?Sized> RegularPredicate for Arc<P> {}
impl<P: RegularPredicate + ?Sized> RegularPredicate for Box<P> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LocalPredicate;
    use slicing_computation::{ComputationBuilder, Cut, Value};

    #[test]
    fn trait_objects_and_smart_pointers_compose() {
        let mut b = ComputationBuilder::new(1);
        let x = b.declare_var(b.process(0), "x", Value::Int(1));
        let comp = b.build().unwrap();
        let local = LocalPredicate::int(x, "x>0", |v| v > 0);

        let by_ref: &dyn Predicate = &local;
        let arc: Arc<dyn Predicate> = Arc::new(local.clone());
        let boxed: Box<dyn Predicate> = Box::new(local.clone());

        let cut = Cut::bottom(1);
        let st = GlobalState::new(&comp, &cut);
        assert!(by_ref.eval(&st));
        assert!(arc.eval(&st));
        assert!(boxed.eval(&st));
        assert_eq!(arc.support().len(), 1);
        // Blanket impls let references to trait objects be used generically.
        fn takes_pred<P: Predicate>(p: P, st: &GlobalState<'_>) -> bool {
            p.eval(st)
        }
        assert!(takes_pred(&arc, &st));
    }
}
