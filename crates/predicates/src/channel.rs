//! Channel predicates: conditions on messages in transit.

use slicing_computation::{GlobalState, ProcSet, ProcessId};

use crate::predicate::{LinearPredicate, PostLinearPredicate, Predicate, RegularPredicate};

/// "At most `k` messages are in transit from `from` to `to`" — one of the
/// paper's examples of a regular predicate (Section 3.3).
///
/// When violated, only a receive at `to` can shrink the channel, so `to` is
/// the forbidden process; dually, `from` must retreat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtMostInTransit {
    /// Sending process.
    pub from: ProcessId,
    /// Receiving process.
    pub to: ProcessId,
    /// Bound on the channel occupancy.
    pub k: u32,
}

impl AtMostInTransit {
    /// Creates the predicate `|channel(from → to)| ≤ k`.
    pub fn new(from: ProcessId, to: ProcessId, k: u32) -> Self {
        AtMostInTransit { from, to, k }
    }
}

impl Predicate for AtMostInTransit {
    fn support(&self) -> ProcSet {
        let mut s = ProcSet::singleton(self.from);
        s.insert(self.to);
        s
    }

    fn eval(&self, state: &GlobalState<'_>) -> bool {
        state.in_transit(self.from, self.to) <= self.k
    }
}

impl LinearPredicate for AtMostInTransit {
    fn forbidden_process(&self, state: &GlobalState<'_>) -> ProcessId {
        debug_assert!(!self.eval(state));
        // Too many messages in flight: only advancing the receiver helps.
        self.to
    }
}

impl PostLinearPredicate for AtMostInTransit {
    fn retreat_process(&self, state: &GlobalState<'_>) -> ProcessId {
        debug_assert!(!self.eval(state));
        // Shrinking the cut can only reduce the channel by unsending.
        self.from
    }
}

impl RegularPredicate for AtMostInTransit {}

/// "At least `k` messages are in transit from `from` to `to`" — the dual
/// regular channel predicate from Section 3.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtLeastInTransit {
    /// Sending process.
    pub from: ProcessId,
    /// Receiving process.
    pub to: ProcessId,
    /// Lower bound on the channel occupancy.
    pub k: u32,
}

impl AtLeastInTransit {
    /// Creates the predicate `|channel(from → to)| ≥ k`.
    pub fn new(from: ProcessId, to: ProcessId, k: u32) -> Self {
        AtLeastInTransit { from, to, k }
    }
}

impl Predicate for AtLeastInTransit {
    fn support(&self) -> ProcSet {
        let mut s = ProcSet::singleton(self.from);
        s.insert(self.to);
        s
    }

    fn eval(&self, state: &GlobalState<'_>) -> bool {
        state.in_transit(self.from, self.to) >= self.k
    }
}

impl LinearPredicate for AtLeastInTransit {
    fn forbidden_process(&self, state: &GlobalState<'_>) -> ProcessId {
        debug_assert!(!self.eval(state));
        // Too few messages in flight: only more sends help.
        self.from
    }
}

impl PostLinearPredicate for AtLeastInTransit {
    fn retreat_process(&self, state: &GlobalState<'_>) -> ProcessId {
        debug_assert!(!self.eval(state));
        self.to
    }
}

impl RegularPredicate for AtLeastInTransit {}

/// "At most `k` messages destined for process `to` have not been received
/// yet" — the paper's Section 4.3 example of a predicate that is *linear
/// but not regular* in general.
///
/// The total backlog sums over all senders, so a union of two satisfying
/// cuts can combine sends from different senders and overflow the bound;
/// intersection cannot, hence linear only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingAtMost {
    /// Receiving process.
    pub to: ProcessId,
    /// Bound on the total backlog.
    pub k: u32,
    /// Number of processes in the computation (needed for the support set).
    pub num_processes: usize,
}

impl PendingAtMost {
    /// Creates the predicate `Σ_q |channel(q → to)| ≤ k` over a computation
    /// with `num_processes` processes.
    pub fn new(to: ProcessId, k: u32, num_processes: usize) -> Self {
        PendingAtMost {
            to,
            k,
            num_processes,
        }
    }
}

impl Predicate for PendingAtMost {
    fn support(&self) -> ProcSet {
        ProcSet::all(self.num_processes)
    }

    fn eval(&self, state: &GlobalState<'_>) -> bool {
        state.pending_for(self.to) <= self.k
    }
}

impl LinearPredicate for PendingAtMost {
    fn forbidden_process(&self, state: &GlobalState<'_>) -> ProcessId {
        debug_assert!(!self.eval(state));
        // The backlog only shrinks when `to` receives.
        self.to
    }
}

/// "At most `k` messages sent by process `from` have not been received
/// yet" (summed over all destinations) — the order dual of
/// [`PendingAtMost`]: *post-linear* but not linear.
///
/// Shrinking a cut can only reduce the outstanding count by removing sends
/// of `from`, so `from` is the retreat process. Growing a cut offers a
/// choice of receivers, so no single forbidden process exists and the
/// predicate is not linear.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SentPendingAtMost {
    /// Sending process.
    pub from: ProcessId,
    /// Bound on the total outstanding sends.
    pub k: u32,
    /// Number of processes in the computation (needed for the support set).
    pub num_processes: usize,
}

impl SentPendingAtMost {
    /// Creates the predicate `Σ_q |channel(from → q)| ≤ k` over a
    /// computation with `num_processes` processes.
    pub fn new(from: ProcessId, k: u32, num_processes: usize) -> Self {
        SentPendingAtMost {
            from,
            k,
            num_processes,
        }
    }
}

impl Predicate for SentPendingAtMost {
    fn support(&self) -> ProcSet {
        ProcSet::all(self.num_processes)
    }

    fn eval(&self, state: &GlobalState<'_>) -> bool {
        let total: u32 = (0..self.num_processes)
            .map(ProcessId::new)
            .filter(|&q| q != self.from)
            .map(|q| state.in_transit(self.from, q))
            .sum();
        total <= self.k
    }
}

impl PostLinearPredicate for SentPendingAtMost {
    fn retreat_process(&self, state: &GlobalState<'_>) -> ProcessId {
        debug_assert!(!self.eval(state));
        self.from
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_computation::lattice::all_cuts;
    use slicing_computation::oracle::{satisfying_cuts, sublattice_closure};
    use slicing_computation::{Computation, ComputationBuilder, Cut};

    /// p0 sends two messages to p1, received in order; p2 sends one to p1.
    fn chan_comp() -> Computation {
        let mut b = ComputationBuilder::new(3);
        let s1 = b.append_event(b.process(0));
        let s2 = b.append_event(b.process(0));
        let r1 = b.append_event(b.process(1));
        let r2 = b.append_event(b.process(1));
        let s3 = b.append_event(b.process(2));
        let r3 = b.append_event(b.process(1));
        b.message(s1, r1).unwrap();
        b.message(s2, r2).unwrap();
        b.message(s3, r3).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn at_most_counts_channel() {
        let c = chan_comp();
        let p = AtMostInTransit::new(c.process(0), c.process(1), 1);
        // Both sends done, nothing received: 2 in transit.
        let cut = Cut::from(vec![3, 1, 1]);
        let st = GlobalState::new(&c, &cut);
        assert!(!p.eval(&st));
        assert_eq!(p.forbidden_process(&st), c.process(1));
        assert_eq!(p.retreat_process(&st), c.process(0));
        // One received: ok.
        let cut = Cut::from(vec![3, 2, 1]);
        assert!(p.eval(&GlobalState::new(&c, &cut)));
    }

    #[test]
    fn at_least_counts_channel() {
        let c = chan_comp();
        let p = AtLeastInTransit::new(c.process(0), c.process(1), 1);
        let bottom = Cut::bottom(3);
        let st = GlobalState::new(&c, &bottom);
        assert!(!p.eval(&st));
        assert_eq!(p.forbidden_process(&st), c.process(0));
        assert_eq!(p.retreat_process(&st), c.process(1));
        let cut = Cut::from(vec![2, 1, 1]);
        assert!(p.eval(&GlobalState::new(&c, &cut)));
    }

    #[test]
    fn channel_predicates_are_regular_by_oracle() {
        let c = chan_comp();
        for k in 0..2 {
            let p = AtMostInTransit::new(c.process(0), c.process(1), k);
            let sat = satisfying_cuts(&c, |st| p.eval(st));
            assert_eq!(sublattice_closure(&sat).len(), sat.len(), "AtMost k={k}");
            let q = AtLeastInTransit::new(c.process(0), c.process(1), k + 1);
            let sat = satisfying_cuts(&c, |st| q.eval(st));
            assert_eq!(sublattice_closure(&sat).len(), sat.len(), "AtLeast k={k}");
        }
    }

    #[test]
    fn pending_sums_across_senders() {
        let c = chan_comp();
        let p = PendingAtMost::new(c.process(1), 1, 3);
        // p0's two sends and p2's one send outstanding: backlog 3.
        let cut = Cut::from(vec![3, 1, 2]);
        let st = GlobalState::new(&c, &cut);
        assert!(!p.eval(&st));
        assert_eq!(p.forbidden_process(&st), c.process(1));
        assert!(p.eval(&GlobalState::new(&c, &c.top_cut())));
        assert_eq!(p.support().len(), 3);
    }

    #[test]
    fn pending_is_linear_by_enumeration() {
        // Satisfying cuts are closed under intersection (linear), even when
        // not closed under union.
        let c = chan_comp();
        let p = PendingAtMost::new(c.process(1), 1, 3);
        let sat: Vec<Cut> = all_cuts(&c)
            .into_iter()
            .filter(|cut| p.eval(&GlobalState::new(&c, cut)))
            .collect();
        for a in &sat {
            for b in &sat {
                let m = a.meet(b);
                assert!(
                    sat.contains(&m),
                    "meet of satisfying cuts must satisfy a linear predicate"
                );
            }
        }
    }

    #[test]
    fn forbidden_process_is_sound_for_pending() {
        let c = chan_comp();
        let p = PendingAtMost::new(c.process(1), 0, 3);
        let all = all_cuts(&c);
        let sat: Vec<Cut> = all
            .iter()
            .filter(|cut| p.eval(&GlobalState::new(&c, cut)))
            .cloned()
            .collect();
        for cut in &all {
            let st = GlobalState::new(&c, cut);
            if p.eval(&st) {
                continue;
            }
            let fp = p.forbidden_process(&st);
            for d in &sat {
                if cut.leq(d) {
                    assert!(d.count(fp) > cut.count(fp));
                }
            }
        }
    }
}
