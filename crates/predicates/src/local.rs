//! Local predicates: boolean functions of a single process's variables.

use std::fmt;
use std::sync::Arc;

use slicing_computation::{Computation, GlobalState, ProcSet, ProcessId, Value, VarRef};

use crate::predicate::{LinearPredicate, PostLinearPredicate, Predicate, RegularPredicate};

type LocalFn = dyn Fn(&[Value]) -> bool + Send + Sync;

/// A predicate over the variables of a single process.
///
/// Local predicates are the building blocks of conjunctive predicates and
/// of the Stoller–Schneider k-local transform. Because a local predicate
/// depends only on one process's frontier event, it can be evaluated per
/// event position without materializing cuts — which is what makes the
/// `O(|E|)` conjunctive slicer possible.
///
/// Every local predicate is regular: its satisfying cuts are exactly those
/// whose frontier on the process lies in a fixed set of positions, which is
/// closed under componentwise min and max.
///
/// # Examples
///
/// ```
/// use slicing_computation::{ComputationBuilder, Cut, GlobalState, Value};
/// use slicing_predicates::{LocalPredicate, Predicate};
///
/// let mut b = ComputationBuilder::new(1);
/// let x = b.declare_var(b.process(0), "x", Value::Int(0));
/// b.step(b.process(0), &[(x, Value::Int(5))]);
/// let comp = b.build()?;
///
/// let p = LocalPredicate::int(x, "x ≥ 5", |x| x >= 5);
/// let top = comp.top_cut();
/// assert!(p.eval(&GlobalState::new(&comp, &top)));
/// assert!(!p.holds_at(&comp, 0));
/// assert!(p.holds_at(&comp, 1));
/// # Ok::<(), slicing_computation::BuildError>(())
/// ```
#[derive(Clone)]
pub struct LocalPredicate {
    process: ProcessId,
    vars: Arc<[VarRef]>,
    f: Arc<LocalFn>,
    label: String,
}

impl LocalPredicate {
    /// Creates a local predicate reading the given variables (all on the
    /// same process) and evaluated by `f`, which receives the values in the
    /// order of `vars`.
    ///
    /// # Panics
    ///
    /// Panics if `vars` is empty or the variables span multiple processes.
    pub fn new(
        vars: impl Into<Vec<VarRef>>,
        label: impl Into<String>,
        f: impl Fn(&[Value]) -> bool + Send + Sync + 'static,
    ) -> Self {
        let vars: Vec<VarRef> = vars.into();
        assert!(
            !vars.is_empty(),
            "a local predicate needs at least one variable"
        );
        let process = vars[0].process();
        assert!(
            vars.iter().all(|v| v.process() == process),
            "local predicate variables must live on one process"
        );
        LocalPredicate {
            process,
            vars: vars.into(),
            f: Arc::new(f),
            label: label.into(),
        }
    }

    /// Convenience constructor for a predicate over one integer variable.
    ///
    /// # Panics
    ///
    /// Evaluation panics if the variable does not hold an integer.
    pub fn int(
        var: VarRef,
        label: impl Into<String>,
        f: impl Fn(i64) -> bool + Send + Sync + 'static,
    ) -> Self {
        LocalPredicate::new(vec![var], label, move |vals| f(vals[0].expect_int()))
    }

    /// Convenience constructor for a predicate over one boolean variable.
    ///
    /// # Panics
    ///
    /// Evaluation panics if the variable does not hold a boolean.
    pub fn bool(var: VarRef, label: impl Into<String>) -> Self {
        LocalPredicate::new(vec![var], label, |vals| vals[0].expect_bool())
    }

    /// Convenience constructor: the variable equals the given value.
    pub fn equals(var: VarRef, value: Value) -> Self {
        LocalPredicate::new(vec![var], format!("v == {value}"), move |vals| {
            vals[0] == value
        })
    }

    /// Convenience constructor: all listed variables equal the given values
    /// simultaneously (used by the k-local DNF transform).
    ///
    /// # Panics
    ///
    /// Panics if `vars` and `values` differ in length (or `vars` spans
    /// multiple processes, per [`LocalPredicate::new`]).
    pub fn equals_all(vars: Vec<VarRef>, values: Vec<Value>) -> Self {
        assert_eq!(vars.len(), values.len());
        let label = format!("locals == {values:?}");
        LocalPredicate::new(vars, label, move |vals| {
            vals.iter().zip(&values).all(|(a, b)| a == b)
        })
    }

    /// The process this predicate reads.
    pub fn process(&self) -> ProcessId {
        self.process
    }

    /// The variables this predicate reads.
    pub fn vars(&self) -> &[VarRef] {
        &self.vars
    }

    /// The human-readable label used in `Debug` output.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Evaluates the predicate at event position `pos` of its process: the
    /// truth value any cut whose frontier on the process is `pos` observes.
    pub fn holds_at(&self, comp: &Computation, pos: u32) -> bool {
        // Clause arities are tiny (one or two variables for every spec in
        // the paper's workloads); evaluate those on a stack tuple so the
        // detection hot loop performs no per-eval heap allocation.
        match self.vars[..] {
            [a] => (self.f)(&[comp.value_at(a, pos)]),
            [a, b] => (self.f)(&[comp.value_at(a, pos), comp.value_at(b, pos)]),
            _ => {
                let values: Vec<Value> = self.vars.iter().map(|&v| comp.value_at(v, pos)).collect();
                (self.f)(&values)
            }
        }
    }

    /// Evaluates the predicate directly on a value tuple (in the order of
    /// [`vars`](LocalPredicate::vars)), without a computation — the entry
    /// point online monitors use to test a clause against the values they
    /// track themselves.
    pub fn eval_values(&self, values: &[Value]) -> bool {
        (self.f)(values)
    }
}

impl fmt::Debug for LocalPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Local({} @ {})", self.label, self.process)
    }
}

impl Predicate for LocalPredicate {
    fn support(&self) -> ProcSet {
        ProcSet::singleton(self.process)
    }

    fn eval(&self, state: &GlobalState<'_>) -> bool {
        self.holds_at(state.computation(), state.cut().frontier_pos(self.process))
    }
}

impl LinearPredicate for LocalPredicate {
    fn forbidden_process(&self, state: &GlobalState<'_>) -> ProcessId {
        debug_assert!(!self.eval(state));
        self.process
    }
}

impl PostLinearPredicate for LocalPredicate {
    fn retreat_process(&self, state: &GlobalState<'_>) -> ProcessId {
        debug_assert!(!self.eval(state));
        self.process
    }
}

impl RegularPredicate for LocalPredicate {}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_computation::oracle::{satisfying_cuts, sublattice_closure};
    use slicing_computation::test_fixtures::figure1;
    use slicing_computation::{ComputationBuilder, Cut};

    #[test]
    fn evaluates_frontier_values() {
        let comp = figure1();
        let x1 = comp.var(comp.process(0), "x1").unwrap();
        let p = LocalPredicate::int(x1, "x1 > 1", |x| x > 1);
        // x1 values by position: 2, 3, -1, 0.
        assert!(p.holds_at(&comp, 0));
        assert!(p.holds_at(&comp, 1));
        assert!(!p.holds_at(&comp, 2));
        assert!(!p.holds_at(&comp, 3));
        let cut = Cut::from(vec![2, 1, 1]);
        assert!(p.eval(&GlobalState::new(&comp, &cut)));
    }

    #[test]
    fn multi_variable_local() {
        let mut b = ComputationBuilder::new(1);
        let p0 = b.process(0);
        let x = b.declare_var(p0, "x", Value::Int(1));
        let y = b.declare_var(p0, "y", Value::Int(2));
        b.step(p0, &[(x, Value::Int(5))]);
        let comp = b.build().unwrap();
        let p = LocalPredicate::new(vec![x, y], "x < y", |v| {
            v[0].expect_int() < v[1].expect_int()
        });
        assert!(p.holds_at(&comp, 0));
        assert!(!p.holds_at(&comp, 1));
    }

    #[test]
    #[should_panic(expected = "one process")]
    fn cross_process_variables_rejected() {
        let mut b = ComputationBuilder::new(2);
        let x = b.declare_var(b.process(0), "x", Value::Int(0));
        let y = b.declare_var(b.process(1), "y", Value::Int(0));
        let _ = LocalPredicate::new(vec![x, y], "bad", |_| true);
    }

    #[test]
    fn equality_constructors() {
        let comp = figure1();
        let x2 = comp.var(comp.process(1), "x2").unwrap();
        let p = LocalPredicate::equals(x2, Value::Int(4));
        // x2 values: 2, 1, 4, 0 → only position 2 matches.
        assert!((0..4).filter(|&pos| p.holds_at(&comp, pos)).eq([2]));
        let q = LocalPredicate::equals_all(vec![x2], vec![Value::Int(1)]);
        assert!(q.holds_at(&comp, 1));
        assert!(!q.holds_at(&comp, 0));
    }

    #[test]
    fn local_predicates_are_regular_by_oracle() {
        // The satisfying cuts of a local predicate form a sublattice.
        let comp = figure1();
        let x3 = comp.var(comp.process(2), "x3").unwrap();
        let p = LocalPredicate::int(x3, "x3 <= 3", |x| x <= 3);
        let sat = satisfying_cuts(&comp, |st| p.eval(st));
        let closed = sublattice_closure(&sat);
        assert_eq!(closed.len(), sat.len(), "local predicate must be regular");
    }

    #[test]
    fn accessors() {
        let comp = figure1();
        let x1 = comp.var(comp.process(0), "x1").unwrap();
        let p = LocalPredicate::int(x1, "x1 > 1", |x| x > 1);
        assert_eq!(p.process(), comp.process(0));
        assert_eq!(p.vars(), &[x1]);
        assert_eq!(p.label(), "x1 > 1");
        assert!(format!("{p:?}").contains("x1 > 1"));
        assert!(p.support().contains(comp.process(0)));
        assert_eq!(p.support().len(), 1);
    }
}
