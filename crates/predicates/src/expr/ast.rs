//! Typed abstract syntax for the predicate expression language.

use std::error::Error;
use std::fmt;

use slicing_computation::{GlobalState, ProcSet, ProcessId, Value, VarRef};

/// Binary operators of the expression language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Integer addition `+`.
    Add,
    /// Integer subtraction `-`.
    Sub,
    /// Integer multiplication `*`.
    Mul,
    /// Integer division `/` (truncating; dividing by zero is a runtime
    /// [`EvalError`]).
    Div,
    /// Integer remainder `%` (same zero-divisor rule as [`BinOp::Div`]).
    Mod,
    /// Less-than `<` (integers).
    Lt,
    /// Less-or-equal `<=` (integers).
    Le,
    /// Greater-than `>` (integers).
    Gt,
    /// Greater-or-equal `>=` (integers).
    Ge,
    /// Equality `==` (any matching types).
    Eq,
    /// Inequality `!=` (any matching types).
    Ne,
    /// Boolean conjunction `&&`.
    And,
    /// Boolean disjunction `||`.
    Or,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        };
        f.write_str(s)
    }
}

/// An expression over process variables.
///
/// Produced by [`parse_expr`](crate::expr::parse_expr); evaluated against a
/// [`GlobalState`] or any variable lookup function.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// Process-id literal (`p3`).
    Pid(ProcessId),
    /// Variable reference, keeping the source name for display.
    Var(VarRef, String),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// Boolean negation.
    Not(Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

/// Runtime type-mismatch error during expression evaluation.
///
/// The parser type-checks against the variables' initial values, so this
/// only occurs if a variable changes type mid-computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    /// Description of the mismatch.
    pub message: String,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expression evaluation error: {}", self.message)
    }
}

impl Error for EvalError {}

fn type_err(msg: impl Into<String>) -> EvalError {
    EvalError {
        message: msg.into(),
    }
}

fn int_of(v: Value) -> Result<i64, EvalError> {
    v.as_int()
        .ok_or_else(|| type_err(format!("expected an integer, found {v}")))
}

fn bool_of(v: Value) -> Result<bool, EvalError> {
    v.as_bool()
        .ok_or_else(|| type_err(format!("expected a boolean, found {v}")))
}

impl Expr {
    /// Evaluates the expression with an arbitrary variable lookup.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] on a type mismatch (e.g. `true + 1`).
    pub fn eval_with(&self, lookup: &dyn Fn(VarRef) -> Value) -> Result<Value, EvalError> {
        match self {
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Bool(v) => Ok(Value::Bool(*v)),
            Expr::Pid(p) => Ok(Value::Pid(*p)),
            Expr::Var(v, _) => Ok(lookup(*v)),
            Expr::Neg(e) => Ok(Value::Int(-int_of(e.eval_with(lookup)?)?)),
            Expr::Not(e) => Ok(Value::Bool(!bool_of(e.eval_with(lookup)?)?)),
            Expr::Bin(op, l, r) => {
                // Short-circuit boolean operators.
                match op {
                    BinOp::And => {
                        return Ok(Value::Bool(
                            bool_of(l.eval_with(lookup)?)? && bool_of(r.eval_with(lookup)?)?,
                        ));
                    }
                    BinOp::Or => {
                        return Ok(Value::Bool(
                            bool_of(l.eval_with(lookup)?)? || bool_of(r.eval_with(lookup)?)?,
                        ));
                    }
                    _ => {}
                }
                let lv = l.eval_with(lookup)?;
                let rv = r.eval_with(lookup)?;
                match op {
                    BinOp::Add => Ok(Value::Int(int_of(lv)? + int_of(rv)?)),
                    BinOp::Sub => Ok(Value::Int(int_of(lv)? - int_of(rv)?)),
                    BinOp::Mul => Ok(Value::Int(int_of(lv)? * int_of(rv)?)),
                    BinOp::Div => {
                        let d = int_of(rv)?;
                        if d == 0 {
                            return Err(type_err("division by zero"));
                        }
                        Ok(Value::Int(int_of(lv)? / d))
                    }
                    BinOp::Mod => {
                        let d = int_of(rv)?;
                        if d == 0 {
                            return Err(type_err("remainder by zero"));
                        }
                        Ok(Value::Int(int_of(lv)? % d))
                    }
                    BinOp::Lt => Ok(Value::Bool(int_of(lv)? < int_of(rv)?)),
                    BinOp::Le => Ok(Value::Bool(int_of(lv)? <= int_of(rv)?)),
                    BinOp::Gt => Ok(Value::Bool(int_of(lv)? > int_of(rv)?)),
                    BinOp::Ge => Ok(Value::Bool(int_of(lv)? >= int_of(rv)?)),
                    BinOp::Eq => Ok(Value::Bool(lv == rv)),
                    BinOp::Ne => Ok(Value::Bool(lv != rv)),
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                }
            }
        }
    }

    /// Evaluates the expression at a global state.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] on a type mismatch.
    pub fn eval(&self, state: &GlobalState<'_>) -> Result<Value, EvalError> {
        self.eval_with(&|v| state.get(v))
    }

    /// The processes whose variables the expression reads.
    pub fn support(&self) -> ProcSet {
        let mut s = ProcSet::empty();
        self.collect_support(&mut s);
        s
    }

    fn collect_support(&self, s: &mut ProcSet) {
        match self {
            Expr::Int(_) | Expr::Bool(_) | Expr::Pid(_) => {}
            Expr::Var(v, _) => s.insert(v.process()),
            Expr::Neg(e) | Expr::Not(e) => e.collect_support(s),
            Expr::Bin(_, l, r) => {
                l.collect_support(s);
                r.collect_support(s);
            }
        }
    }

    /// All variable references in the expression, deduplicated, in first
    /// occurrence order.
    pub fn variables(&self) -> Vec<VarRef> {
        let mut vars = Vec::new();
        self.collect_vars(&mut vars);
        vars
    }

    fn collect_vars(&self, vars: &mut Vec<VarRef>) {
        match self {
            Expr::Int(_) | Expr::Bool(_) | Expr::Pid(_) => {}
            Expr::Var(v, _) => {
                if !vars.contains(v) {
                    vars.push(*v);
                }
            }
            Expr::Neg(e) | Expr::Not(e) => e.collect_vars(vars),
            Expr::Bin(_, l, r) => {
                l.collect_vars(vars);
                r.collect_vars(vars);
            }
        }
    }

    /// Returns the logical negation with `!` pushed down to the literals:
    /// De Morgan over `&&`/`||`, comparison flipping (`¬(a < b)` becomes
    /// `a >= b`), and double-negation elimination. The result contains
    /// [`Expr::Not`] only directly above boolean variables.
    ///
    /// Normalizing negations this way lets the slicing compiler treat
    /// `¬`-free trees uniformly (complements of regular predicates become
    /// flipped comparisons rather than opaque negations).
    ///
    /// # Panics
    ///
    /// Panics if called on a non-boolean expression (arithmetic cannot be
    /// negated logically).
    #[must_use]
    pub fn negated(&self) -> Expr {
        match self {
            Expr::Bool(v) => Expr::Bool(!v),
            Expr::Var(v, name) => Expr::Not(Box::new(Expr::Var(*v, name.clone()))),
            Expr::Not(e) => (**e).clone(),
            Expr::Bin(op, l, r) => {
                let (l, r) = (l.clone(), r.clone());
                match op {
                    BinOp::And => {
                        Expr::Bin(BinOp::Or, Box::new(l.negated()), Box::new(r.negated()))
                    }
                    BinOp::Or => {
                        Expr::Bin(BinOp::And, Box::new(l.negated()), Box::new(r.negated()))
                    }
                    BinOp::Lt => Expr::Bin(BinOp::Ge, l, r),
                    BinOp::Le => Expr::Bin(BinOp::Gt, l, r),
                    BinOp::Gt => Expr::Bin(BinOp::Le, l, r),
                    BinOp::Ge => Expr::Bin(BinOp::Lt, l, r),
                    BinOp::Eq => Expr::Bin(BinOp::Ne, l, r),
                    BinOp::Ne => Expr::Bin(BinOp::Eq, l, r),
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                        panic!("cannot logically negate arithmetic expression {self}")
                    }
                }
            }
            Expr::Int(_) | Expr::Pid(_) | Expr::Neg(_) => {
                panic!("cannot logically negate non-boolean expression {self}")
            }
        }
    }

    /// Splits a top-level conjunction into its conjuncts (a single
    /// non-conjunction expression yields itself).
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        self.collect_conjuncts(&mut out);
        out
    }

    fn collect_conjuncts<'a>(&'a self, out: &mut Vec<&'a Expr>) {
        match self {
            Expr::Bin(BinOp::And, l, r) => {
                l.collect_conjuncts(out);
                r.collect_conjuncts(out);
            }
            other => out.push(other),
        }
    }

    /// Splits a top-level disjunction into its disjuncts.
    pub fn disjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        self.collect_disjuncts(&mut out);
        out
    }

    fn collect_disjuncts<'a>(&'a self, out: &mut Vec<&'a Expr>) {
        match self {
            Expr::Bin(BinOp::Or, l, r) => {
                l.collect_disjuncts(out);
                r.collect_disjuncts(out);
            }
            other => out.push(other),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Int(v) => write!(f, "{v}"),
            Expr::Bool(v) => write!(f, "{v}"),
            Expr::Pid(p) => write!(f, "{p}"),
            Expr::Var(v, name) => write!(f, "{}@{}", name, v.process().as_usize()),
            Expr::Neg(e) => write!(f, "-({e})"),
            Expr::Not(e) => write!(f, "!({e})"),
            Expr::Bin(op, l, r) => write!(f, "({l} {op} {r})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_computation::{ComputationBuilder, Cut};

    fn setup() -> (slicing_computation::Computation, VarRef, VarRef) {
        let mut b = ComputationBuilder::new(2);
        let x = b.declare_var(b.process(0), "x", Value::Int(3));
        let flag = b.declare_var(b.process(1), "f", Value::Bool(true));
        (b.build().unwrap(), x, flag)
    }

    #[test]
    fn arithmetic_and_comparison() {
        let (comp, x, _) = setup();
        let e = Expr::Bin(
            BinOp::Lt,
            Box::new(Expr::Bin(
                BinOp::Add,
                Box::new(Expr::Var(x, "x".into())),
                Box::new(Expr::Int(1)),
            )),
            Box::new(Expr::Int(5)),
        );
        let cut = Cut::bottom(2);
        let st = GlobalState::new(&comp, &cut);
        assert_eq!(e.eval(&st).unwrap(), Value::Bool(true)); // 3 + 1 < 5
    }

    #[test]
    fn boolean_short_circuit() {
        let (comp, _, flag) = setup();
        // true || (1 + true) — the RHS would be a type error if evaluated.
        let bad = Expr::Bin(
            BinOp::Add,
            Box::new(Expr::Int(1)),
            Box::new(Expr::Bool(true)),
        );
        let e = Expr::Bin(
            BinOp::Or,
            Box::new(Expr::Var(flag, "f".into())),
            Box::new(bad.clone()),
        );
        let cut = Cut::bottom(2);
        let st = GlobalState::new(&comp, &cut);
        assert_eq!(e.eval(&st).unwrap(), Value::Bool(true));
        // Without short-circuit the error surfaces.
        let e = Expr::Bin(BinOp::And, Box::new(Expr::Bool(true)), Box::new(bad));
        assert!(e.eval(&st).is_err());
    }

    #[test]
    fn type_errors_are_reported() {
        let (comp, _, flag) = setup();
        let cut = Cut::bottom(2);
        let st = GlobalState::new(&comp, &cut);
        let e = Expr::Neg(Box::new(Expr::Var(flag, "f".into())));
        let err = e.eval(&st).unwrap_err();
        assert!(err.to_string().contains("expected an integer"));
        let e = Expr::Not(Box::new(Expr::Int(1)));
        assert!(e.eval(&st).is_err());
    }

    #[test]
    fn pid_equality() {
        let (comp, _, _) = setup();
        let cut = Cut::bottom(2);
        let st = GlobalState::new(&comp, &cut);
        let e = Expr::Bin(
            BinOp::Eq,
            Box::new(Expr::Pid(ProcessId::new(1))),
            Box::new(Expr::Pid(ProcessId::new(1))),
        );
        assert_eq!(e.eval(&st).unwrap(), Value::Bool(true));
        let e = Expr::Bin(
            BinOp::Ne,
            Box::new(Expr::Pid(ProcessId::new(0))),
            Box::new(Expr::Pid(ProcessId::new(1))),
        );
        assert_eq!(e.eval(&st).unwrap(), Value::Bool(true));
    }

    #[test]
    fn support_variables_conjuncts() {
        let (_, x, flag) = setup();
        let e = Expr::Bin(
            BinOp::And,
            Box::new(Expr::Bin(
                BinOp::Gt,
                Box::new(Expr::Var(x, "x".into())),
                Box::new(Expr::Var(x, "x".into())),
            )),
            Box::new(Expr::Var(flag, "f".into())),
        );
        assert_eq!(e.support().len(), 2);
        assert_eq!(e.variables().len(), 2); // deduplicated
        assert_eq!(e.conjuncts().len(), 2);
        assert_eq!(e.disjuncts().len(), 1);
    }

    #[test]
    fn negation_pushes_to_literals() {
        let (comp, x, flag) = setup();
        let cut = Cut::bottom(2);
        let st = GlobalState::new(&comp, &cut);
        // ¬(x > 1 && f) = (x <= 1) || !f — and semantics agree.
        let e = Expr::Bin(
            BinOp::And,
            Box::new(Expr::Bin(
                BinOp::Gt,
                Box::new(Expr::Var(x, "x".into())),
                Box::new(Expr::Int(1)),
            )),
            Box::new(Expr::Var(flag, "f".into())),
        );
        let n = e.negated();
        assert_eq!(n.to_string(), "((x@0 <= 1) || !(f@1))");
        let ev = e.eval(&st).unwrap().expect_bool();
        let nv = n.eval(&st).unwrap().expect_bool();
        assert_eq!(ev, !nv);
        // Double negation is the identity modulo structure.
        let nn = n.negated();
        assert_eq!(
            nn.eval(&st).unwrap().expect_bool(),
            e.eval(&st).unwrap().expect_bool()
        );
        // All comparison flips.
        for (op, flipped) in [
            (BinOp::Lt, BinOp::Ge),
            (BinOp::Le, BinOp::Gt),
            (BinOp::Gt, BinOp::Le),
            (BinOp::Ge, BinOp::Lt),
            (BinOp::Eq, BinOp::Ne),
            (BinOp::Ne, BinOp::Eq),
        ] {
            let e = Expr::Bin(op, Box::new(Expr::Int(1)), Box::new(Expr::Int(2)));
            match e.negated() {
                Expr::Bin(got, _, _) => assert_eq!(got, flipped),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(
            Expr::Bool(true).negated().eval(&st).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    #[should_panic(expected = "non-boolean")]
    fn negating_arithmetic_atom_panics() {
        let _ = Expr::Int(3).negated();
    }

    #[test]
    fn display_round_trips_visually() {
        let (_, x, _) = setup();
        let e = Expr::Bin(
            BinOp::Le,
            Box::new(Expr::Var(x, "x".into())),
            Box::new(Expr::Int(3)),
        );
        assert_eq!(e.to_string(), "(x@0 <= 3)");
    }
}
