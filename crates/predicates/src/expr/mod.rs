//! A small expression language for writing global predicates as text.
//!
//! Predicates like the paper's `(x1 > 1) ∧ (x3 ≤ 3)` can be written as
//! `"x1@0 > 1 && x3@2 <= 3"` (the `@n` suffix names the hosting process),
//! parsed against a computation, and then classified: conjunctions of
//! single-process clauses become [`Conjunctive`](crate::Conjunctive)
//! predicates (sliceable in `O(|E|)`), everything else falls back to a
//! [`KLocalPredicate`](crate::KLocalPredicate) over the referenced
//! variables.
//!
//! See [`parse_expr`] for the grammar and [`ExprPredicate`] for the
//! classification entry points.

mod ast;
mod classify;
mod parser;

pub use ast::{BinOp, EvalError, Expr};
pub use classify::{local_from_expr, ExprPredicate};
pub use parser::{parse_expr, ParseError};

use slicing_computation::Computation;

/// Parses a boolean expression and wraps it as a [`Predicate`].
///
/// # Errors
///
/// Returns [`ParseError`] on syntax or type errors, and if the expression
/// is not boolean-valued.
///
/// [`Predicate`]: crate::Predicate
pub fn parse_predicate(comp: &Computation, src: &str) -> Result<ExprPredicate, ParseError> {
    let expr = parse_expr(comp, src)?;
    // Reject non-boolean expressions up front.
    match &expr {
        Expr::Bool(_) | Expr::Not(_) => {}
        Expr::Bin(op, _, _)
            if !matches!(
                op,
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod
            ) => {}
        Expr::Var(v, _) if comp.value_at(*v, 0).as_bool().is_some() => {}
        other => {
            return Err(ParseError {
                offset: 0,
                message: format!("expression `{other}` is not boolean-valued"),
            });
        }
    }
    Ok(ExprPredicate::new(expr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_computation::test_fixtures::figure1;

    #[test]
    fn non_boolean_rejected() {
        let comp = figure1();
        assert!(parse_predicate(&comp, "x1@0 + 1").is_err());
        assert!(parse_predicate(&comp, "42").is_err());
        assert!(parse_predicate(&comp, "p1").is_err());
        assert!(parse_predicate(&comp, "x1@0").is_err()); // int variable
    }

    #[test]
    fn boolean_forms_accepted() {
        let comp = figure1();
        assert!(parse_predicate(&comp, "true").is_ok());
        assert!(parse_predicate(&comp, "!(x1@0 > 1)").is_ok());
        assert!(parse_predicate(&comp, "x1@0 == 2 || x2@1 == 1").is_ok());
    }
}
