//! Turning parsed expressions into predicate objects and recognizing
//! sliceable structure.

use std::fmt;
use std::sync::Arc;

use slicing_computation::{GlobalState, ProcSet, Value, VarRef};

use super::ast::{EvalError, Expr};
use crate::conjunctive::Conjunctive;
use crate::klocal::KLocalPredicate;
use crate::local::LocalPredicate;
use crate::predicate::{note_eval_type_error, Predicate};

/// A [`Predicate`] backed by a parsed boolean [`Expr`].
///
/// # Runtime type errors
///
/// The parser type-checks against initial values, but a variable can still
/// change type mid-computation (a malformed trace). Evaluation never
/// panics on that: [`Predicate::try_eval`] returns the underlying
/// [`EvalError`], and the infallible [`Predicate::eval`] coerces the
/// failure to `false` while bumping the process-wide
/// [`eval_type_errors`](crate::eval_type_errors) counter — so detection
/// reports an error verdict instead of aborting the process.
///
/// # Examples
///
/// ```
/// use slicing_computation::test_fixtures::figure1;
/// use slicing_computation::{Cut, GlobalState};
/// use slicing_predicates::expr::{parse_predicate, ExprPredicate};
/// use slicing_predicates::Predicate;
///
/// let comp = figure1();
/// let pred = parse_predicate(&comp, "x1@0 > 1 && x3@2 <= 3")?;
/// let cut = Cut::from(vec![1, 2, 2]);
/// assert!(pred.eval(&GlobalState::new(&comp, &cut)));
/// // The expression has conjunctive structure, so it slices in O(|E|).
/// assert!(pred.to_conjunctive().is_some());
/// # Ok::<(), slicing_predicates::expr::ParseError>(())
/// ```
#[derive(Clone)]
pub struct ExprPredicate {
    expr: Arc<Expr>,
    source: String,
}

impl ExprPredicate {
    /// Wraps a boolean expression.
    pub fn new(expr: Expr) -> Self {
        let source = expr.to_string();
        ExprPredicate {
            expr: Arc::new(expr),
            source,
        }
    }

    /// The wrapped expression.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// The rendered source of the expression.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// If every top-level conjunct reads a single process, rewrites the
    /// expression as a [`Conjunctive`] predicate (sliceable in `O(|E|)`).
    ///
    /// Conjuncts reading *no* process (constant subexpressions) are folded
    /// onto an arbitrary process only if other conjuncts exist; a fully
    /// constant expression yields `None`.
    pub fn to_conjunctive(&self) -> Option<Conjunctive> {
        let conjuncts = self.expr.conjuncts();
        let mut locals = Vec::with_capacity(conjuncts.len());
        for c in conjuncts {
            let support = c.support();
            if support.len() != 1 {
                return None;
            }
            locals.push(local_from_expr(c));
        }
        Some(Conjunctive::new(locals))
    }

    /// Rewrites the expression as a [`KLocalPredicate`] over its variables,
    /// suitable for the Stoller–Schneider DNF transform when the support is
    /// small.
    ///
    /// Returns `None` if the expression reads no variables at all.
    pub fn to_klocal(&self) -> Option<KLocalPredicate> {
        let vars = self.expr.variables();
        if vars.is_empty() {
            return None;
        }
        let expr = Arc::clone(&self.expr);
        let vars_key = vars.clone();
        Some(KLocalPredicate::new(
            vars,
            self.source.clone(),
            move |vals| {
                let lookup = |v: VarRef| {
                    let i = vars_key
                        .iter()
                        .position(|&u| u == v)
                        .expect("expression variables enumerated exhaustively");
                    vals[i]
                };
                match expr.eval_with(&lookup) {
                    Ok(Value::Bool(b)) => b,
                    Ok(_) | Err(_) => {
                        note_eval_type_error();
                        false
                    }
                }
            },
        ))
    }
}

/// Builds a [`LocalPredicate`] from a single-process boolean expression.
///
/// # Panics
///
/// Panics if the expression does not read exactly one process.
pub fn local_from_expr(expr: &Expr) -> LocalPredicate {
    let support = expr.support();
    assert_eq!(
        support.len(),
        1,
        "local_from_expr needs a single-process expression, got support {support}"
    );
    let vars = expr.variables();
    let vars_key = vars.clone();
    let expr = expr.clone();
    let label = expr.to_string();
    LocalPredicate::new(vars, label, move |vals| {
        let lookup = |v: VarRef| {
            let i = vars_key
                .iter()
                .position(|&u| u == v)
                .expect("expression variables enumerated exhaustively");
            vals[i]
        };
        match expr.eval_with(&lookup) {
            Ok(Value::Bool(b)) => b,
            // False-with-counter: a type-flipped observation makes the
            // clause unsatisfied rather than aborting the process.
            Ok(_) | Err(_) => {
                note_eval_type_error();
                false
            }
        }
    })
}

impl fmt::Debug for ExprPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ExprPredicate({})", self.source)
    }
}

impl Predicate for ExprPredicate {
    fn support(&self) -> ProcSet {
        self.expr.support()
    }

    fn eval(&self, state: &GlobalState<'_>) -> bool {
        match self.expr.eval(state) {
            Ok(Value::Bool(b)) => b,
            Ok(_) | Err(_) => {
                note_eval_type_error();
                false
            }
        }
    }

    fn try_eval(&self, state: &GlobalState<'_>) -> Result<bool, EvalError> {
        match self.expr.eval(state)? {
            Value::Bool(b) => Ok(b),
            other => Err(EvalError {
                message: format!(
                    "predicate expression {} evaluated to non-boolean {other}",
                    self.source
                ),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::parse_predicate;
    use super::*;
    use slicing_computation::lattice::all_cuts;
    use slicing_computation::test_fixtures::figure1;
    use slicing_computation::Cut;

    #[test]
    fn conjunctive_recognition() {
        let comp = figure1();
        let pred = parse_predicate(&comp, "x1@0 > 1 && x3@2 <= 3").unwrap();
        let conj = pred.to_conjunctive().expect("conjunctive structure");
        assert_eq!(conj.clauses().len(), 2);
        // Semantics agree everywhere.
        for cut in all_cuts(&comp) {
            let st = GlobalState::new(&comp, &cut);
            assert_eq!(pred.eval(&st), conj.eval(&st), "cut {cut}");
        }
    }

    #[test]
    fn cross_process_conjunct_blocks_conjunctive_form() {
        let comp = figure1();
        let pred = parse_predicate(&comp, "x1@0 > x2@1 && x3@2 <= 3").unwrap();
        assert!(pred.to_conjunctive().is_none());
        // But the k-local view still works and agrees.
        let kl = pred.to_klocal().expect("reads variables");
        assert_eq!(kl.locality(), 3);
        for cut in all_cuts(&comp) {
            let st = GlobalState::new(&comp, &cut);
            assert_eq!(pred.eval(&st), kl.eval(&st));
        }
    }

    #[test]
    fn multi_clause_per_process_conjunctive() {
        let comp = figure1();
        let pred = parse_predicate(&comp, "x1@0 > 1 && x1@0 < 3 && x3@2 <= 3").unwrap();
        let conj = pred.to_conjunctive().unwrap();
        assert_eq!(conj.clauses().len(), 3);
        assert_eq!(conj.clauses_on(comp.process(0)).count(), 2);
    }

    #[test]
    fn constant_expression_has_no_klocal_form() {
        let comp = figure1();
        let pred = parse_predicate(&comp, "1 < 2").unwrap();
        assert!(pred.to_klocal().is_none());
        let cut = Cut::bottom(3);
        assert!(pred.eval(&GlobalState::new(&comp, &cut)));
    }

    #[test]
    fn accessors_and_debug() {
        let comp = figure1();
        let pred = parse_predicate(&comp, "x1@0 > 1").unwrap();
        assert!(pred.source().contains("x1@0"));
        assert!(format!("{pred:?}").contains("x1@0"));
        assert_eq!(pred.support().len(), 1);
        assert!(matches!(pred.expr(), Expr::Bin(..)));
    }

    #[test]
    #[should_panic(expected = "single-process")]
    fn local_from_expr_rejects_multi_process() {
        let comp = figure1();
        let pred = parse_predicate(&comp, "x1@0 > x2@1").unwrap();
        let _ = local_from_expr(pred.expr());
    }

    /// A computation whose variable `x` is declared `Int` but flips to
    /// `Bool` at its first event — the malformed-trace shape the parser's
    /// initial-value type check cannot see.
    fn type_flipped() -> slicing_computation::Computation {
        use slicing_computation::{ComputationBuilder, Value};
        let mut b = ComputationBuilder::new(1);
        let x = b.declare_var(b.process(0), "x", Value::Int(0));
        b.step(b.process(0), &[(x, Value::Bool(true))]);
        b.build().unwrap()
    }

    #[test]
    fn type_flip_errors_instead_of_panicking() {
        let comp = type_flipped();
        let pred = parse_predicate(&comp, "x@0 > 1").unwrap();
        // At bottom the variable still holds its declared Int: fine.
        let bottom = Cut::bottom(1);
        assert_eq!(pred.try_eval(&GlobalState::new(&comp, &bottom)), Ok(false));
        // Past the flip, try_eval surfaces the mismatch...
        let top = comp.top_cut();
        let st = GlobalState::new(&comp, &top);
        assert!(pred.try_eval(&st).is_err());
        // ...and the infallible path coerces to false, counting the error.
        let before = crate::eval_type_errors();
        assert!(!pred.eval(&st));
        assert!(crate::eval_type_errors() > before);
    }

    #[test]
    fn type_flip_in_local_and_klocal_closures_is_false_with_counter() {
        let comp = type_flipped();
        let pred = parse_predicate(&comp, "x@0 > 1").unwrap();
        let local = local_from_expr(pred.expr());
        let kl = pred.to_klocal().unwrap();
        let before = crate::eval_type_errors();
        assert!(!local.holds_at(&comp, 1));
        let top = comp.top_cut();
        assert!(!kl.eval(&GlobalState::new(&comp, &top)));
        assert!(crate::eval_type_errors() >= before + 2);
    }

    #[test]
    fn non_boolean_result_is_an_error_not_a_panic() {
        use super::super::parse_expr;
        let comp = figure1();
        // Bypass parse_predicate's boolean check to force a non-boolean
        // result at evaluation time.
        let pred = ExprPredicate::new(parse_expr(&comp, "x1@0 + 1").unwrap());
        let cut = Cut::bottom(3);
        let st = GlobalState::new(&comp, &cut);
        let err = pred.try_eval(&st).unwrap_err();
        assert!(err.message.contains("non-boolean"));
        let before = crate::eval_type_errors();
        assert!(!pred.eval(&st));
        assert!(crate::eval_type_errors() > before);
    }
}
