//! Recursive-descent parser for the predicate expression language.
//!
//! Grammar (standard precedence, lowest first):
//!
//! ```text
//! expr  := or
//! or    := and ('||' and)*
//! and   := cmp ('&&' cmp)*
//! cmp   := sum (('<' | '<=' | '>' | '>=' | '==' | '!=') sum)?
//! sum   := prod (('+' | '-') prod)*
//! prod  := unary (('*' | '/' | '%') unary)*
//! unary := '-' unary | '!' unary | atom
//! atom  := int | 'true' | 'false' | pid | varref | '(' expr ')'
//! pid   := 'p' digits              (e.g. p2)
//! varref:= ident '@' digits        (e.g. x1@0 — variable x1 of process 0)
//! ```
//!
//! Variables are resolved and the expression is type-checked against the
//! computation at parse time (using the type of each variable's initial
//! value).

use std::error::Error;
use std::fmt;

use slicing_computation::{Computation, ProcessId, Value, VarRef};

use super::ast::{BinOp, Expr};

/// Error produced when parsing an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the source where the error was detected.
    pub offset: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at offset {}: {}", self.offset, self.message)
    }
}

impl Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Int(i64),
    True,
    False,
    Ident(String),
    Pid(usize),
    At,
    LParen,
    RParen,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    AndAnd,
    OrOr,
    Bang,
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn tokens(mut self) -> Result<Vec<(usize, Token)>, ParseError> {
        let mut out = Vec::new();
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let c = self.bytes[self.pos];
            match c {
                b' ' | b'\t' | b'\n' | b'\r' => {
                    self.pos += 1;
                    continue;
                }
                b'(' => {
                    self.pos += 1;
                    out.push((start, Token::LParen));
                }
                b')' => {
                    self.pos += 1;
                    out.push((start, Token::RParen));
                }
                b'@' => {
                    self.pos += 1;
                    out.push((start, Token::At));
                }
                b'+' => {
                    self.pos += 1;
                    out.push((start, Token::Plus));
                }
                b'-' => {
                    self.pos += 1;
                    out.push((start, Token::Minus));
                }
                b'*' => {
                    self.pos += 1;
                    out.push((start, Token::Star));
                }
                b'/' => {
                    self.pos += 1;
                    out.push((start, Token::Slash));
                }
                b'%' => {
                    self.pos += 1;
                    out.push((start, Token::Percent));
                }
                b'<' => {
                    if self.bytes.get(self.pos + 1) == Some(&b'=') {
                        self.pos += 2;
                        out.push((start, Token::Le));
                    } else {
                        self.pos += 1;
                        out.push((start, Token::Lt));
                    }
                }
                b'>' => {
                    if self.bytes.get(self.pos + 1) == Some(&b'=') {
                        self.pos += 2;
                        out.push((start, Token::Ge));
                    } else {
                        self.pos += 1;
                        out.push((start, Token::Gt));
                    }
                }
                b'=' => {
                    if self.bytes.get(self.pos + 1) == Some(&b'=') {
                        self.pos += 2;
                        out.push((start, Token::EqEq));
                    } else {
                        return Err(self.error("expected `==`"));
                    }
                }
                b'!' => {
                    if self.bytes.get(self.pos + 1) == Some(&b'=') {
                        self.pos += 2;
                        out.push((start, Token::Ne));
                    } else {
                        self.pos += 1;
                        out.push((start, Token::Bang));
                    }
                }
                b'&' => {
                    if self.bytes.get(self.pos + 1) == Some(&b'&') {
                        self.pos += 2;
                        out.push((start, Token::AndAnd));
                    } else {
                        return Err(self.error("expected `&&`"));
                    }
                }
                b'|' => {
                    if self.bytes.get(self.pos + 1) == Some(&b'|') {
                        self.pos += 2;
                        out.push((start, Token::OrOr));
                    } else {
                        return Err(self.error("expected `||`"));
                    }
                }
                b'0'..=b'9' => {
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end].is_ascii_digit() {
                        end += 1;
                    }
                    let text = &self.src[self.pos..end];
                    let v: i64 = text
                        .parse()
                        .map_err(|_| self.error(format!("integer literal {text:?} overflows")))?;
                    self.pos = end;
                    out.push((start, Token::Int(v)));
                }
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                    let mut end = self.pos;
                    while end < self.bytes.len()
                        && (self.bytes[end].is_ascii_alphanumeric() || self.bytes[end] == b'_')
                    {
                        end += 1;
                    }
                    let text = &self.src[self.pos..end];
                    self.pos = end;
                    // `p<digits>` not followed by `@` is a pid literal.
                    let is_pid_literal = text.len() > 1
                        && text.starts_with('p')
                        && text[1..].bytes().all(|b| b.is_ascii_digit())
                        && self.bytes.get(self.pos) != Some(&b'@');
                    let tok = match text {
                        "true" => Token::True,
                        "false" => Token::False,
                        // An unparseable index (overflow) falls back to an
                        // identifier, which fails later with a clearer error.
                        _ if is_pid_literal => match text[1..].parse() {
                            Ok(i) => Token::Pid(i),
                            Err(_) => Token::Ident(text.to_owned()),
                        },
                        _ => Token::Ident(text.to_owned()),
                    };
                    out.push((start, tok));
                }
                other => {
                    return Err(self.error(format!("unexpected character {:?}", other as char)));
                }
            }
        }
        Ok(out)
    }
}

/// The inferred type of an expression, used for parse-time checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ty {
    Int,
    Bool,
    Pid,
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Int => f.write_str("int"),
            Ty::Bool => f.write_str("bool"),
            Ty::Pid => f.write_str("pid"),
        }
    }
}

struct Parser<'a> {
    comp: &'a Computation,
    tokens: Vec<(usize, Token)>,
    pos: usize,
    src_len: usize,
}

impl<'a> Parser<'a> {
    fn error_at(&self, offset: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            offset,
            message: message.into(),
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let offset = self
            .tokens
            .get(self.pos)
            .map(|&(o, _)| o)
            .unwrap_or(self.src_len);
        self.error_at(offset, message)
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(_, t)| t)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn var_type(&self, v: VarRef) -> Ty {
        match self.comp.value_at(v, 0) {
            Value::Int(_) => Ty::Int,
            Value::Bool(_) => Ty::Bool,
            Value::Pid(_) => Ty::Pid,
        }
    }

    fn type_of(&self, e: &Expr) -> Ty {
        match e {
            Expr::Int(_) => Ty::Int,
            Expr::Bool(_) => Ty::Bool,
            Expr::Pid(_) => Ty::Pid,
            Expr::Var(v, _) => self.var_type(*v),
            Expr::Neg(_) => Ty::Int,
            Expr::Not(_) => Ty::Bool,
            Expr::Bin(op, _, _) => match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => Ty::Int,
                _ => Ty::Bool,
            },
        }
    }

    fn expect_ty(&self, e: &Expr, want: Ty) -> Result<(), ParseError> {
        let got = self.type_of(e);
        if got != want {
            return Err(self.error(format!("type error: expected {want}, found {got} in `{e}`")));
        }
        Ok(())
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_and()?;
        while self.eat(&Token::OrOr) {
            self.expect_ty(&lhs, Ty::Bool)?;
            let rhs = self.parse_and()?;
            self.expect_ty(&rhs, Ty::Bool)?;
            lhs = Expr::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_cmp()?;
        while self.eat(&Token::AndAnd) {
            self.expect_ty(&lhs, Ty::Bool)?;
            let rhs = self.parse_cmp()?;
            self.expect_ty(&rhs, Ty::Bool)?;
            lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_sum()?;
        let op = match self.peek() {
            Some(Token::Lt) => BinOp::Lt,
            Some(Token::Le) => BinOp::Le,
            Some(Token::Gt) => BinOp::Gt,
            Some(Token::Ge) => BinOp::Ge,
            Some(Token::EqEq) => BinOp::Eq,
            Some(Token::Ne) => BinOp::Ne,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.parse_sum()?;
        match op {
            BinOp::Eq | BinOp::Ne => {
                let (lt, rt) = (self.type_of(&lhs), self.type_of(&rhs));
                if lt != rt {
                    return Err(self.error(format!("type error: cannot compare {lt} with {rt}")));
                }
            }
            _ => {
                self.expect_ty(&lhs, Ty::Int)?;
                self.expect_ty(&rhs, Ty::Int)?;
            }
        }
        Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)))
    }

    fn parse_sum(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_prod()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            self.expect_ty(&lhs, Ty::Int)?;
            let rhs = self.parse_prod()?;
            self.expect_ty(&rhs, Ty::Int)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn parse_prod(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::Percent) => BinOp::Mod,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            self.expect_ty(&lhs, Ty::Int)?;
            let rhs = self.parse_unary()?;
            self.expect_ty(&rhs, Ty::Int)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Token::Minus) {
            let e = self.parse_unary()?;
            self.expect_ty(&e, Ty::Int)?;
            return Ok(Expr::Neg(Box::new(e)));
        }
        if self.eat(&Token::Bang) {
            let e = self.parse_unary()?;
            self.expect_ty(&e, Ty::Bool)?;
            return Ok(Expr::Not(Box::new(e)));
        }
        self.parse_atom()
    }

    fn parse_atom(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Some(Token::Int(v)) => Ok(Expr::Int(v)),
            Some(Token::True) => Ok(Expr::Bool(true)),
            Some(Token::False) => Ok(Expr::Bool(false)),
            Some(Token::Pid(i)) => {
                if i >= self.comp.num_processes() {
                    return Err(self.error(format!("process p{i} does not exist")));
                }
                Ok(Expr::Pid(ProcessId::new(i)))
            }
            Some(Token::LParen) => {
                let e = self.parse_or()?;
                if !self.eat(&Token::RParen) {
                    return Err(self.error("expected `)`"));
                }
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                if !self.eat(&Token::At) {
                    return Err(self.error(format!(
                        "variable {name:?} needs a process: write `{name}@<proc>`"
                    )));
                }
                match self.bump() {
                    Some(Token::Int(idx)) if idx >= 0 => {
                        let idx = idx as usize;
                        if idx >= self.comp.num_processes() {
                            return Err(self.error(format!("process {idx} does not exist")));
                        }
                        let p = self.comp.process(idx);
                        match self.comp.var(p, &name) {
                            Some(v) => Ok(Expr::Var(v, name)),
                            None => Err(self
                                .error(format!("process p{idx} has no variable named {name:?}"))),
                        }
                    }
                    _ => Err(self.error("expected a process index after `@`")),
                }
            }
            Some(other) => Err(self.error(format!("unexpected token {other:?}"))),
            None => Err(self.error("unexpected end of input")),
        }
    }
}

/// Parses an expression against `comp`, resolving variables (`x@0`) and
/// type-checking with the variables' initial-value types.
///
/// # Errors
///
/// Returns [`ParseError`] on syntax errors, unknown variables/processes,
/// and type mismatches.
pub fn parse_expr(comp: &Computation, src: &str) -> Result<Expr, ParseError> {
    let tokens = Lexer::new(src).tokens()?;
    let mut p = Parser {
        comp,
        tokens,
        pos: 0,
        src_len: src.len(),
    };
    let e = p.parse_or()?;
    if p.pos != p.tokens.len() {
        return Err(p.error("trailing input after expression"));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_computation::test_fixtures::figure1;
    use slicing_computation::{Cut, GlobalState};

    #[test]
    fn parses_the_paper_predicate() {
        let comp = figure1();
        let e = parse_expr(&comp, "x1@0 > 1 && x3@2 <= 3").unwrap();
        let cut = Cut::from(vec![1, 2, 2]);
        let st = GlobalState::new(&comp, &cut);
        assert_eq!(e.eval(&st).unwrap(), Value::Bool(true));
        let bottom = Cut::bottom(3);
        let st = GlobalState::new(&comp, &bottom);
        assert_eq!(e.eval(&st).unwrap(), Value::Bool(false));
    }

    #[test]
    fn parses_full_intro_predicate() {
        let comp = figure1();
        let e = parse_expr(&comp, "x1@0 * x2@1 + x3@2 < 5 && (x1@0 > 1) && (x3@2 <= 3)").unwrap();
        assert_eq!(e.support().len(), 3);
        assert_eq!(e.conjuncts().len(), 3);
    }

    #[test]
    fn precedence_is_conventional() {
        let comp = figure1();
        // * binds tighter than +, + tighter than <, < tighter than &&.
        let e = parse_expr(&comp, "1 + 2 * 3 < 8 && true").unwrap();
        let cut = Cut::bottom(3);
        let st = GlobalState::new(&comp, &cut);
        assert_eq!(e.eval(&st).unwrap(), Value::Bool(true)); // 7 < 8
        let e = parse_expr(&comp, "2 - 1 - 1 == 0").unwrap(); // left assoc
        assert_eq!(e.eval(&st).unwrap(), Value::Bool(true));
    }

    #[test]
    fn unary_operators() {
        let comp = figure1();
        let cut = Cut::bottom(3);
        let st = GlobalState::new(&comp, &cut);
        let e = parse_expr(&comp, "-x1@0 == 0 - 2").unwrap();
        assert_eq!(e.eval(&st).unwrap(), Value::Bool(true));
        let e = parse_expr(&comp, "!(x1@0 > 1)").unwrap();
        assert_eq!(e.eval(&st).unwrap(), Value::Bool(false));
        let e = parse_expr(&comp, "!!true").unwrap();
        assert_eq!(e.eval(&st).unwrap(), Value::Bool(true));
    }

    #[test]
    fn pid_literals_and_vars() {
        let comp = figure1();
        let e = parse_expr(&comp, "p1 == p1").unwrap();
        let cut = Cut::bottom(3);
        assert_eq!(
            e.eval(&GlobalState::new(&comp, &cut)).unwrap(),
            Value::Bool(true)
        );
        // p99 is out of range.
        assert!(parse_expr(&comp, "p99 == p1").is_err());
        // A variable named p-something still works with @.
        assert!(parse_expr(&comp, "x1@0 == 2").is_ok());
    }

    #[test]
    fn unknown_names_are_rejected() {
        let comp = figure1();
        assert!(parse_expr(&comp, "nope@0 > 1").is_err());
        assert!(parse_expr(&comp, "x1@9 > 1").is_err());
        assert!(parse_expr(&comp, "x1 > 1").is_err()); // missing @proc
    }

    #[test]
    fn type_errors_at_parse_time() {
        let comp = figure1();
        assert!(parse_expr(&comp, "x1@0 && true").is_err()); // int as bool
        assert!(parse_expr(&comp, "true + 1").is_err());
        assert!(parse_expr(&comp, "p1 < p1").is_err()); // pids not ordered
        assert!(parse_expr(&comp, "x1@0 == true").is_err()); // mixed eq
        assert!(parse_expr(&comp, "-true").is_err());
        assert!(parse_expr(&comp, "!3").is_err());
    }

    #[test]
    fn syntax_errors_are_reported_with_offsets() {
        let comp = figure1();
        let err = parse_expr(&comp, "x1@0 >").unwrap_err();
        assert!(err.offset >= 5);
        assert!(parse_expr(&comp, "(x1@0 > 1").is_err()); // unclosed paren
        assert!(parse_expr(&comp, "x1@0 > 1 extra").is_err()); // trailing
        assert!(parse_expr(&comp, "x1@0 = 1").is_err()); // single =
        assert!(parse_expr(&comp, "x1@0 & true").is_err()); // single &
        assert!(parse_expr(&comp, "x1@0 | true").is_err()); // single |
        assert!(parse_expr(&comp, "$").is_err());
        assert!(parse_expr(&comp, "").is_err());
    }

    #[test]
    fn integer_overflow_is_rejected() {
        let comp = figure1();
        assert!(parse_expr(&comp, "99999999999999999999999 > 1").is_err());
    }

    #[test]
    fn division_and_remainder() {
        let comp = figure1();
        let cut = Cut::bottom(3);
        let st = GlobalState::new(&comp, &cut);
        let e = parse_expr(&comp, "7 / 2 == 3 && 7 % 2 == 1").unwrap();
        assert_eq!(e.eval(&st).unwrap(), Value::Bool(true));
        // Same precedence tier as `*`, left associative.
        let e = parse_expr(&comp, "8 / 2 * 2 == 8").unwrap();
        assert_eq!(e.eval(&st).unwrap(), Value::Bool(true));
        let e = parse_expr(&comp, "1 + 6 / 3 == 3").unwrap();
        assert_eq!(e.eval(&st).unwrap(), Value::Bool(true));
        // Negative truncation follows Rust semantics.
        let e = parse_expr(&comp, "-7 / 2 == -3 && -7 % 2 == -1").unwrap();
        assert_eq!(e.eval(&st).unwrap(), Value::Bool(true));
        // Type checking applies.
        assert!(parse_expr(&comp, "true / 2").is_err());
        assert!(parse_expr(&comp, "1 % false").is_err());
    }

    #[test]
    fn division_by_zero_is_a_runtime_error() {
        let comp = figure1();
        let cut = Cut::bottom(3);
        let st = GlobalState::new(&comp, &cut);
        // x1 at bottom is 2; (x1 - 2) is 0 only dynamically.
        let e = parse_expr(&comp, "1 / (x1@0 - 2) == 0").unwrap();
        let err = e.eval(&st).unwrap_err();
        assert!(err.to_string().contains("division by zero"));
        let e = parse_expr(&comp, "1 % (x1@0 - 2) == 0").unwrap();
        assert!(e.eval(&st).is_err());
    }
}
