//! Global predicates over distributed computations.
//!
//! This crate defines the predicate classes whose structure the slicing
//! algorithms in `slicing-core` exploit (following Mittal & Garg, ICDCS
//! 2003):
//!
//! | Class | Closure of satisfying cuts | Trait / type |
//! |---|---|---|
//! | local | sublattice (one process) | [`LocalPredicate`] |
//! | conjunctive | sublattice | [`Conjunctive`] |
//! | regular | under ∩ and ∪ | [`RegularPredicate`] |
//! | linear | under ∩ | [`LinearPredicate`] |
//! | post-linear | under ∪ | [`PostLinearPredicate`] |
//! | k-local | none assumed | [`KLocalPredicate`] |
//! | arbitrary | none | [`FnPredicate`] |
//!
//! Concrete predicates include channel bounds ([`AtMostInTransit`],
//! [`AtLeastInTransit`], [`PendingAtMost`]) and monotone-counter
//! synchronization and dominance ([`BoundedDifference`],
//! [`MonotoneDominates`]). The [`expr`] module adds a
//! parsed expression language (`"x1@0 > 1 && x3@2 <= 3"`) with automatic
//! classification into the table above.
//!
//! # Example
//!
//! ```
//! use slicing_computation::test_fixtures::figure1;
//! use slicing_computation::{Cut, GlobalState};
//! use slicing_predicates::{expr::parse_predicate, Predicate};
//!
//! let comp = figure1();
//! let pred = parse_predicate(&comp, "x1@0 > 1 && x3@2 <= 3")?;
//! let cut = Cut::from(vec![1, 2, 2]);
//! assert!(pred.eval(&GlobalState::new(&comp, &cut)));
//! # Ok::<(), slicing_predicates::expr::ParseError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod channel;
mod conjunctive;
mod counters;
mod fnpred;
mod klocal;
mod local;
mod predicate;

pub mod expr;

pub use channel::{AtLeastInTransit, AtMostInTransit, PendingAtMost, SentPendingAtMost};
pub use conjunctive::Conjunctive;
pub use counters::{approximately_synchronized, BoundedDifference, MonotoneDominates};
pub use fnpred::FnPredicate;
pub use klocal::KLocalPredicate;
pub use local::LocalPredicate;
pub use predicate::{
    eval_type_errors, LinearPredicate, PostLinearPredicate, Predicate, RegularPredicate,
};
