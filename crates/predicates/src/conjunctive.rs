//! Conjunctive predicates: conjunctions of local predicates.

use std::fmt;

use slicing_computation::{GlobalState, ProcSet, ProcessId};

use crate::local::LocalPredicate;
use crate::predicate::{LinearPredicate, PostLinearPredicate, Predicate, RegularPredicate};

/// A conjunction of [`LocalPredicate`]s — the paper's *conjunctive
/// predicate* (`l₁ ∧ l₂ ∧ … ∧ lₘ` with each `lᵢ` local), e.g. "all
/// processes are in *red* state" or "no process has the token".
///
/// Conjunctive predicates are regular, and their slices can be computed in
/// optimal `O(|E|)` time (`slicing-core::conjunctive`). A process may host
/// several conjuncts.
///
/// # Examples
///
/// ```
/// use slicing_computation::{ComputationBuilder, Cut, GlobalState, Value};
/// use slicing_predicates::{Conjunctive, LocalPredicate, Predicate};
///
/// let mut b = ComputationBuilder::new(2);
/// let x = b.declare_var(b.process(0), "x", Value::Int(0));
/// let y = b.declare_var(b.process(1), "y", Value::Int(9));
/// let comp = b.build()?;
///
/// let pred = Conjunctive::new(vec![
///     LocalPredicate::int(x, "x == 0", |x| x == 0),
///     LocalPredicate::int(y, "y > 5", |y| y > 5),
/// ]);
/// let bottom = Cut::bottom(2);
/// assert!(pred.eval(&GlobalState::new(&comp, &bottom)));
/// # Ok::<(), slicing_computation::BuildError>(())
/// ```
#[derive(Clone)]
pub struct Conjunctive {
    clauses: Vec<LocalPredicate>,
}

impl Conjunctive {
    /// Creates a conjunctive predicate from its local conjuncts.
    ///
    /// An empty conjunction is the constant `true`.
    pub fn new(clauses: Vec<LocalPredicate>) -> Self {
        Conjunctive { clauses }
    }

    /// The local conjuncts.
    pub fn clauses(&self) -> &[LocalPredicate] {
        &self.clauses
    }

    /// Returns the conjuncts hosted by process `p`.
    pub fn clauses_on(&self, p: ProcessId) -> impl Iterator<Item = &LocalPredicate> {
        self.clauses.iter().filter(move |c| c.process() == p)
    }

    /// Evaluates all conjuncts of process `p` at event position `pos`:
    /// whether a cut whose frontier on `p` is `pos` can satisfy the
    /// conjunction as far as `p` is concerned.
    pub fn holds_at(
        &self,
        comp: &slicing_computation::Computation,
        p: ProcessId,
        pos: u32,
    ) -> bool {
        self.clauses_on(p).all(|c| c.holds_at(comp, pos))
    }
}

impl fmt::Debug for Conjunctive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Conjunctive(")?;
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{c:?}")?;
        }
        write!(f, ")")
    }
}

impl Predicate for Conjunctive {
    fn support(&self) -> ProcSet {
        self.clauses.iter().map(LocalPredicate::process).collect()
    }

    fn eval(&self, state: &GlobalState<'_>) -> bool {
        self.clauses.iter().all(|c| c.eval(state))
    }
}

impl LinearPredicate for Conjunctive {
    fn forbidden_process(&self, state: &GlobalState<'_>) -> ProcessId {
        // Any process whose conjunct is false at the frontier is forbidden:
        // as long as its frontier event stays, that conjunct stays false.
        self.clauses
            .iter()
            .find(|c| !c.eval(state))
            .expect("forbidden_process is only called on falsifying states")
            .process()
    }
}

impl PostLinearPredicate for Conjunctive {
    fn retreat_process(&self, state: &GlobalState<'_>) -> ProcessId {
        self.clauses
            .iter()
            .find(|c| !c.eval(state))
            .expect("retreat_process is only called on falsifying states")
            .process()
    }
}

impl RegularPredicate for Conjunctive {}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_computation::oracle::{satisfying_cuts, sublattice_closure};
    use slicing_computation::test_fixtures::figure1;
    use slicing_computation::Cut;

    fn figure1_pred() -> (slicing_computation::Computation, Conjunctive) {
        let comp = figure1();
        let x1 = comp.var(comp.process(0), "x1").unwrap();
        let x3 = comp.var(comp.process(2), "x3").unwrap();
        let pred = Conjunctive::new(vec![
            LocalPredicate::int(x1, "x1 > 1", |x| x > 1),
            LocalPredicate::int(x3, "x3 <= 3", |x| x <= 3),
        ]);
        (comp, pred)
    }

    #[test]
    fn figure1_satisfying_cuts() {
        let (comp, pred) = figure1_pred();
        let sat = satisfying_cuts(&comp, |st| pred.eval(st));
        assert_eq!(sat.len(), 6);
    }

    #[test]
    fn conjunctive_is_regular_by_oracle() {
        let (comp, pred) = figure1_pred();
        let sat = satisfying_cuts(&comp, |st| pred.eval(st));
        assert_eq!(sublattice_closure(&sat).len(), sat.len());
    }

    #[test]
    fn empty_conjunction_is_true() {
        let (comp, _) = figure1_pred();
        let pred = Conjunctive::new(vec![]);
        let bottom = Cut::bottom(3);
        assert!(pred.eval(&GlobalState::new(&comp, &bottom)));
        assert!(pred.support().is_empty());
    }

    #[test]
    fn forbidden_process_points_at_a_false_clause() {
        let (comp, pred) = figure1_pred();
        // Bottom: x1 = 2 (> 1 ✓) but x3 = 4 (≤ 3 ✗) → p2 (index 2) is
        // forbidden.
        let bottom = Cut::bottom(3);
        let st = GlobalState::new(&comp, &bottom);
        assert!(!pred.eval(&st));
        assert_eq!(pred.forbidden_process(&st), comp.process(2));
        assert_eq!(pred.retreat_process(&st), comp.process(2));
    }

    #[test]
    fn forbidden_process_is_sound_by_enumeration() {
        // For every falsifying cut C, no satisfying cut D ⊇ C keeps the
        // frontier of the forbidden process — the defining property of
        // linearity.
        let (comp, pred) = figure1_pred();
        let all = slicing_computation::lattice::all_cuts(&comp);
        let sat: Vec<Cut> = all
            .iter()
            .filter(|c| pred.eval(&GlobalState::new(&comp, c)))
            .cloned()
            .collect();
        for c in &all {
            let st = GlobalState::new(&comp, c);
            if pred.eval(&st) {
                continue;
            }
            let p = pred.forbidden_process(&st);
            for d in &sat {
                if c.leq(d) {
                    assert!(
                        d.count(p) > c.count(p),
                        "forbidden process {p} did not advance from {c} to {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn clauses_on_filters_by_process() {
        let (comp, pred) = figure1_pred();
        assert_eq!(pred.clauses_on(comp.process(0)).count(), 1);
        assert_eq!(pred.clauses_on(comp.process(1)).count(), 0);
        assert_eq!(pred.clauses().len(), 2);
        assert_eq!(pred.support().len(), 2);
    }

    #[test]
    fn holds_at_checks_per_process_positions() {
        let (comp, pred) = figure1_pred();
        // p0 (x1: 2, 3, -1, 0): positions 0 and 1 hold.
        assert!(pred.holds_at(&comp, comp.process(0), 0));
        assert!(!pred.holds_at(&comp, comp.process(0), 2));
        // p1 hosts no clause: always holds.
        assert!(pred.holds_at(&comp, comp.process(1), 3));
    }

    #[test]
    fn debug_format_joins_clauses() {
        let (_, pred) = figure1_pred();
        let s = format!("{pred:?}");
        assert!(s.contains("∧"));
        assert!(s.contains("x1 > 1"));
    }
}
