//! Property tests for the expression language: the printer and parser are
//! mutually consistent, and evaluation is total modulo reported errors.

use std::sync::OnceLock;

use proptest::prelude::*;

use slicing_computation::lattice::all_cuts;
use slicing_computation::test_fixtures::figure1;
use slicing_computation::{Computation, GlobalState, VarRef};
use slicing_predicates::expr::{parse_expr, BinOp, Expr};

fn comp() -> &'static Computation {
    static C: OnceLock<Computation> = OnceLock::new();
    C.get_or_init(figure1)
}

fn int_vars() -> Vec<(VarRef, String)> {
    let c = comp();
    vec![
        (c.var(c.process(0), "x1").unwrap(), "x1".to_owned()),
        (c.var(c.process(1), "x2").unwrap(), "x2".to_owned()),
        (c.var(c.process(2), "x3").unwrap(), "x3".to_owned()),
    ]
}

/// Strategy for integer-typed expressions.
fn int_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-3i64..=3).prop_map(Expr::Int),
        (0usize..3).prop_map(|i| {
            let (v, name) = int_vars()[i].clone();
            Expr::Var(v, name)
        }),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Neg(Box::new(e))),
            (
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                    Just(BinOp::Mod)
                ],
                inner.clone(),
                inner
            )
                .prop_map(|(op, l, r)| Expr::Bin(op, Box::new(l), Box::new(r))),
        ]
    })
}

/// Strategy for boolean-typed expressions.
fn bool_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(Expr::Bool),
        (
            prop_oneof![
                Just(BinOp::Lt),
                Just(BinOp::Le),
                Just(BinOp::Gt),
                Just(BinOp::Ge),
                Just(BinOp::Eq),
                Just(BinOp::Ne)
            ],
            int_expr(),
            int_expr()
        )
            .prop_map(|(op, l, r)| Expr::Bin(op, Box::new(l), Box::new(r))),
    ];
    leaf.prop_recursive(3, 32, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (
                prop_oneof![Just(BinOp::And), Just(BinOp::Or)],
                inner.clone(),
                inner
            )
                .prop_map(|(op, l, r)| Expr::Bin(op, Box::new(l), Box::new(r))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Printing and re-parsing an expression preserves its value at every
    /// cut (including which evaluations error).
    #[test]
    fn display_parse_round_trip(e in bool_expr()) {
        let c = comp();
        let printed = e.to_string();
        let reparsed = parse_expr(c, &printed)
            .unwrap_or_else(|err| panic!("printed form {printed:?} failed to parse: {err}"));
        for cut in all_cuts(c) {
            let st = GlobalState::new(c, &cut);
            let a = e.eval(&st);
            let b = reparsed.eval(&st);
            match (&a, &b) {
                (Ok(x), Ok(y)) => prop_assert_eq!(x, y, "cut {} of {}", cut, printed),
                (Err(_), Err(_)) => {}
                _ => prop_assert!(false, "eval divergence at {} for {}", cut, printed),
            }
        }
    }

    /// `negated` is a semantic complement wherever evaluation succeeds.
    #[test]
    fn negated_complements(e in bool_expr()) {
        let c = comp();
        let n = e.negated();
        for cut in all_cuts(c) {
            let st = GlobalState::new(c, &cut);
            if let (Ok(a), Ok(b)) = (e.eval(&st), n.eval(&st)) {
                prop_assert_eq!(
                    a.expect_bool(),
                    !b.expect_bool(),
                    "cut {} of {}",
                    cut,
                    e
                );
            }
        }
    }

    /// Support and variables are consistent: every variable's process is
    /// in the support, and the counts line up.
    #[test]
    fn support_covers_variables(e in bool_expr()) {
        let support = e.support();
        for v in e.variables() {
            prop_assert!(support.contains(v.process()));
        }
        prop_assert!(support.len() <= 3);
    }

    /// The parser never panics on arbitrary printable input (errors are
    /// returned, not thrown).
    #[test]
    fn parser_is_panic_free(src in "[ -~]{0,40}") {
        let _ = parse_expr(comp(), &src);
    }
}
