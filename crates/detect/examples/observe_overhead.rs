//! Spot-check of the tracing layer's disabled-path overhead: times the
//! same BFS detection sweep with (a) no recorder installed — every
//! instrumentation call is one relaxed atomic load — and (b) a
//! [`NullRecorder`](slicing_observe::NullRecorder) installed, which forces
//! the slow enabled-check but still admits nothing.
//!
//! ```text
//! cargo run --release -p slicing-detect --example observe_overhead
//! ```

use std::sync::Arc;
use std::time::Instant;

use slicing_computation::test_fixtures::grid;
use slicing_computation::{cut_heap_allocs, ProcSet};
use slicing_detect::{detect_bfs, Limits};
use slicing_observe::{Level, MemoryRecorder};
use slicing_predicates::FnPredicate;

fn sweep(reps: u32) -> std::time::Duration {
    let comp = grid(40, 40);
    let never = FnPredicate::new(ProcSet::all(2), "false", |_| false);
    let t0 = Instant::now();
    for _ in 0..reps {
        let d = detect_bfs(&comp, &comp, &never, &Limits::none());
        assert_eq!(d.cuts_explored, 41 * 41);
    }
    t0.elapsed()
}

fn main() {
    const REPS: u32 = 200;
    sweep(10); // warm-up

    let disabled = sweep(REPS);
    slicing_observe::install(Arc::new(slicing_observe::NullRecorder));
    let with_null = sweep(REPS);
    slicing_observe::uninstall();
    let disabled2 = sweep(REPS);

    let per = |d: std::time::Duration| d.as_secs_f64() * 1e6 / f64::from(REPS);
    println!("BFS over a 40x40 grid (1681 cuts), {REPS} reps per row:");
    println!("  no recorder:        {:9.1} us/run", per(disabled));
    println!("  NullRecorder:       {:9.1} us/run", per(with_null));
    println!("  no recorder again:  {:9.1} us/run", per(disabled2));
    let base = per(disabled).min(per(disabled2));
    let overhead = per(with_null) / base - 1.0;
    println!(
        "  NullRecorder overhead: {:+.1}% vs. best disabled run",
        overhead * 100.0
    );

    // The disabled path is the one every production run pays: each
    // instrumentation site is a single relaxed atomic load. Even the
    // deliberately-pessimal NullRecorder (full enabled-check and dispatch,
    // admits nothing) must stay within 50% of the uninstrumented sweep —
    // a generous bound that absorbs shared-runner noise while still
    // catching an accidental allocation or lock on the hot path.
    assert!(
        overhead < 0.50,
        "NullRecorder run {:.1}% over the disabled baseline — the \
         instrumentation fast path regressed",
        overhead * 100.0
    );

    // One traced run surfaces the visited-set work the timing rows hide:
    // hash-table probes, duplicate hits, fresh inserts, and whether the
    // cut kernel touched the heap at all (it should not at this width).
    let rec = Arc::new(MemoryRecorder::new(Level::Trace));
    let comp = grid(40, 40);
    let never = FnPredicate::new(ProcSet::all(2), "false", |_| false);
    let allocs_before = cut_heap_allocs();
    {
        let _guard = slicing_observe::scoped(rec.clone());
        let d = detect_bfs(&comp, &comp, &never, &Limits::none());
        assert_eq!(d.cuts_explored, 41 * 41);
    }
    let heap_allocs = cut_heap_allocs() - allocs_before;
    println!("visited-set counters for one traced run:");
    println!(
        "  probes:  {:7}  ({:.2} per operation)",
        rec.counter_total("detect.visited.probes"),
        rec.counter_total("detect.visited.probes") as f64
            / (rec.counter_total("detect.visited.hits")
                + rec.counter_total("detect.visited.inserts")) as f64
    );
    println!("  hits:    {:7}", rec.counter_total("detect.visited.hits"));
    println!(
        "  inserts: {:7}",
        rec.counter_total("detect.visited.inserts")
    );
    println!("  cut heap allocations: {heap_allocs}");
}
