//! Detection under the `invariant` and `controllable` modalities.
//!
//! Besides `possibly`, the paper notes slicing applies to monitoring under
//! *definitely*, *invariant*, and *controllable* modalities. This module
//! adds the latter two:
//!
//! - `invariant: b` — every consistent cut satisfies `b` (equivalently,
//!   `¬ possibly: ¬b`); slicing `¬b` makes fault-free verification cheap,
//!   which is exactly the paper's software-fault-tolerance setup.
//! - `controllable: b` — some observation (path from the initial to the
//!   final cut) passes only through cuts satisfying `b`, so a controller
//!   that schedules the execution can *maintain* `b`.

use std::collections::VecDeque;
use std::time::Instant;

use slicing_computation::{Computation, Cut, CutSet, CutSpace, GlobalState};
use slicing_core::PredicateSpec;
use slicing_predicates::Predicate;

use crate::metrics::{emit_visited_stats, AbortReason, Detection, Limits, Tracker};
use crate::slicing::detect_with_slicing;

/// Decides `invariant: b` by slicing and searching its complement
/// specification: `spec_of_not_b` must denote `¬b`.
///
/// Returns `Ok(true)` when no consistent cut satisfies `¬b` (the invariant
/// holds), `Ok(false)` with the witness available from the inner search
/// otherwise.
///
/// # Errors
///
/// Returns the inner [`Detection`] as `Err` (boxed — it carries a witness
/// cut and is much larger than the `Ok` bool) if the search aborted on a
/// limit, leaving the question unanswered.
pub fn invariant_via_slicing(
    comp: &Computation,
    spec_of_not_b: &PredicateSpec,
    limits: &Limits,
) -> Result<bool, Box<Detection>> {
    let _span = slicing_observe::span("detect.invariant");
    let outcome = detect_with_slicing(comp, spec_of_not_b, limits);
    if !outcome.search.completed() {
        return Err(Box::new(outcome.search));
    }
    Ok(!outcome.detected())
}

/// Decides `invariant: b` by direct enumeration (the baseline for
/// [`invariant_via_slicing`]).
///
/// # Panics
///
/// Panics if the search aborts on a limit.
pub fn invariant<P: Predicate + ?Sized>(comp: &Computation, pred: &P, limits: &Limits) -> bool {
    let d = crate::enumerate::detect_bfs(comp, comp, &Negated(pred), limits);
    assert!(d.completed(), "invariant check hit a resource limit");
    !d.detected()
}

/// Decides `invariant: b` with the bounded-memory lean traversal: searches
/// `possibly: ¬b` via [`detect_lean`](crate::detect_lean), so fault-free
/// verification sweeps the whole lattice at O(widest layer) live cuts
/// instead of storing it all.
///
/// # Errors
///
/// Returns the inner [`Detection`] as `Err` (boxed, like
/// [`invariant_via_slicing`]) if the search aborted on a limit — including
/// [`Limits::max_live_cuts`] — leaving the question unanswered.
pub fn invariant_lean<P: Predicate + ?Sized>(
    comp: &Computation,
    pred: &P,
    limits: &Limits,
) -> Result<bool, Box<Detection>> {
    let d = crate::lean::detect_lean(comp, comp, &Negated(pred), limits);
    if !d.completed() {
        return Err(Box::new(d));
    }
    Ok(!d.detected())
}

struct Negated<'a, P: ?Sized>(&'a P);

impl<P: Predicate + ?Sized> std::fmt::Debug for Negated<'_, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "¬{:?}", self.0)
    }
}

impl<P: Predicate + ?Sized> Predicate for Negated<'_, P> {
    fn support(&self) -> slicing_computation::ProcSet {
        self.0.support()
    }

    fn eval(&self, state: &GlobalState<'_>) -> bool {
        !self.0.eval(state)
    }

    fn try_eval(
        &self,
        state: &GlobalState<'_>,
    ) -> Result<bool, slicing_predicates::expr::EvalError> {
        self.0.try_eval(state).map(|b| !b)
    }
}

/// Detects `controllable: b`: searches for a path from the initial cut to
/// the final cut that stays within `b`-satisfying cuts.
///
/// `found = Some(top)` means such a controlled observation exists; the
/// execution can be scheduled so `b` holds continuously.
pub fn detect_controllable<P: Predicate + ?Sized>(
    comp: &Computation,
    pred: &P,
    limits: &Limits,
) -> Detection {
    let _span = slicing_observe::span("detect.controllable");
    let start = Instant::now();
    let mut tracker = Tracker::default();
    let n = comp.num_processes();
    let entry_bytes = Tracker::hash_entry_bytes(n);
    let top = comp.top_cut();

    let bottom = Cut::bottom(n);
    match pred.try_eval(&GlobalState::new(comp, &bottom)) {
        Ok(true) => {}
        // Every observation starts at the initial cut.
        Ok(false) => return tracker.finish(None, start.elapsed(), None),
        Err(_) => return tracker.finish(None, start.elapsed(), Some(AbortReason::PredicateError)),
    }

    let mut visited = CutSet::new(n);
    let mut queue: VecDeque<Cut> = VecDeque::new();
    visited.insert(&bottom);
    tracker.store_cut(entry_bytes);
    queue.push_back(bottom);

    let mut succ = Vec::new();
    let mut found = None;
    let mut aborted = None;
    'search: while let Some(cut) = queue.pop_front() {
        tracker.cuts_explored += 1;
        if cut == top {
            found = Some(cut);
            break;
        }
        if let Some(reason) = tracker.over_limit(limits, start) {
            aborted = Some(reason);
            break;
        }
        succ.clear();
        CutSpace::successors(comp, &cut, &mut succ);
        for next in succ.drain(..) {
            match pred.try_eval(&GlobalState::new(comp, &next)) {
                Ok(true) => {}
                Ok(false) => continue,
                Err(_) => {
                    aborted = Some(AbortReason::PredicateError);
                    break 'search;
                }
            }
            if visited.insert(&next) {
                tracker.store_cut(entry_bytes);
                queue.push_back(next);
            }
        }
        if visited.saturated() {
            aborted = Some(AbortReason::ArenaFull);
            break;
        }
    }
    emit_visited_stats(visited.stats());
    tracker.finish(found, start.elapsed(), aborted)
}

/// Boolean form of [`detect_controllable`].
///
/// # Panics
///
/// Panics if the search aborts on a limit.
pub fn controllable<P: Predicate + ?Sized>(comp: &Computation, pred: &P, limits: &Limits) -> bool {
    let d = detect_controllable(comp, pred, limits);
    assert!(d.completed(), "controllable check hit a resource limit");
    d.detected()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::definitely::definitely;
    use slicing_computation::test_fixtures::{grid, random_computation, RandomConfig};
    use slicing_computation::ProcSet;
    use slicing_predicates::{expr::parse_predicate, Conjunctive, FnPredicate, LocalPredicate};

    #[test]
    fn constants() {
        let comp = grid(2, 2);
        let always = FnPredicate::new(ProcSet::all(2), "true", |_| true);
        let never = FnPredicate::new(ProcSet::all(2), "false", |_| false);
        assert!(invariant(&comp, &always, &Limits::none()));
        assert!(!invariant(&comp, &never, &Limits::none()));
        assert!(controllable(&comp, &always, &Limits::none()));
        assert!(!controllable(&comp, &never, &Limits::none()));
    }

    #[test]
    fn modality_hierarchy_holds() {
        // invariant ⇒ controllable ⇒ ... and invariant ⇒ definitely (for
        // predicates true at ⊥/⊤ trivially via all-cuts).
        let cfg = RandomConfig {
            processes: 3,
            events_per_process: 3,
            value_range: 2,
            ..RandomConfig::default()
        };
        for seed in 0..20 {
            let comp = random_computation(seed, &cfg);
            let pred = parse_predicate(&comp, "x@0 + x@1 >= 0 && x@2 <= 1").unwrap();
            let inv = invariant(&comp, &pred, &Limits::none());
            let ctl = controllable(&comp, &pred, &Limits::none());
            let def = definitely(&comp, &pred, &Limits::none());
            if inv {
                assert!(ctl, "seed {seed}: invariant ⇒ controllable");
                assert!(def, "seed {seed}: invariant ⇒ definitely");
            }
        }
    }

    #[test]
    fn controllable_but_not_invariant() {
        // Grid 1×1; predicate: "not the cut ⟨2,1⟩" — the path through
        // ⟨1,2⟩ avoids it, so controllable; but ⟨2,1⟩ itself violates it.
        let comp = grid(1, 1);
        let pred = FnPredicate::new(ProcSet::all(2), "≠(2,1)", |st| {
            st.cut().counts() != [2, 1]
        });
        assert!(!invariant(&comp, &pred, &Limits::none()));
        assert!(controllable(&comp, &pred, &Limits::none()));
    }

    #[test]
    fn invariant_lean_agrees_with_direct() {
        let cfg = RandomConfig {
            processes: 3,
            events_per_process: 3,
            value_range: 2,
            ..RandomConfig::default()
        };
        for seed in 0..20 {
            let comp = random_computation(seed, &cfg);
            let pred = parse_predicate(&comp, "x@0 + x@1 >= 0 && x@2 <= 1").unwrap();
            let direct = invariant(&comp, &pred, &Limits::none());
            let lean = invariant_lean(&comp, &pred, &Limits::none()).unwrap();
            assert_eq!(direct, lean, "seed {seed}");
        }
        // Aborts surface as Err, not as a verdict.
        let comp = grid(9, 9);
        let always = FnPredicate::new(ProcSet::all(2), "true", |_| true);
        let r = invariant_lean(&comp, &always, &Limits::cuts(3));
        assert!(matches!(r, Err(d) if !d.completed()));
        // The lean engine decides invariants under live-cut caps that the
        // BFS-backed `invariant` could never satisfy on this lattice.
        let r = invariant_lean(&comp, &always, &Limits::live_cuts(25));
        assert!(r.unwrap());
    }

    #[test]
    fn invariant_via_slicing_agrees_with_direct() {
        let cfg = RandomConfig {
            processes: 3,
            events_per_process: 3,
            value_range: 2,
            ..RandomConfig::default()
        };
        for seed in 0..20 {
            let comp = random_computation(seed, &cfg);
            // b = "x@0 <= 1": invariant iff ¬b = "x@0 > 1" never holds.
            let x0 = comp.var(comp.process(0), "x").unwrap();
            let b = LocalPredicate::int(x0, "x <= 1", |v| v <= 1);
            let not_b = PredicateSpec::conjunctive(Conjunctive::new(vec![LocalPredicate::int(
                x0,
                "x > 1",
                |v| v > 1,
            )]));
            let direct = invariant(&comp, &b, &Limits::none());
            let sliced = invariant_via_slicing(&comp, &not_b, &Limits::none()).unwrap();
            assert_eq!(direct, sliced, "seed {seed}");
        }
    }

    #[test]
    fn invariant_via_slicing_reports_aborts() {
        // A disjunction whose or-grafted slice has a bottom cut that
        // satisfies neither disjunct: the residual search starts there and
        // trips a one-byte memory limit before any verdict.
        let mut b = slicing_computation::ComputationBuilder::new(2);
        let x = b.declare_var(b.process(0), "x", slicing_computation::Value::Int(0));
        let y = b.declare_var(b.process(1), "y", slicing_computation::Value::Int(0));
        b.step(b.process(0), &[(x, slicing_computation::Value::Int(1))]);
        b.step(b.process(1), &[(y, slicing_computation::Value::Int(1))]);
        let comp = b.build().unwrap();
        let spec = PredicateSpec::or(vec![
            PredicateSpec::conjunctive(Conjunctive::new(vec![LocalPredicate::int(
                x,
                "x == 1",
                |v| v == 1,
            )])),
            PredicateSpec::conjunctive(Conjunctive::new(vec![LocalPredicate::int(
                y,
                "y == 1",
                |v| v == 1,
            )])),
        ]);
        // Sanity: the grafted bottom ⟨1,1⟩ satisfies neither disjunct.
        let slice = spec.slice(&comp);
        assert_eq!(slice.bottom_cut().unwrap().counts(), &[1, 1]);
        let result = invariant_via_slicing(&comp, &spec, &Limits::bytes(1));
        assert!(matches!(result, Err(d) if !d.completed()));
        // With room it completes: ¬b holds somewhere ⇒ invariant false.
        let result = invariant_via_slicing(&comp, &spec, &Limits::none());
        assert!(!result.unwrap());
    }
}
