//! Breadth-first and depth-first predicate detection by explicit lattice
//! enumeration (Cooper–Marzullo style), over any [`CutSpace`] — a
//! computation or a slice.

use std::collections::{HashSet, VecDeque};
use std::time::Instant;

use slicing_computation::{Computation, Cut, CutSpace, GlobalState};
use slicing_predicates::Predicate;

use crate::metrics::{Detection, Limits, Tracker};

/// How often (in explored cuts) the enumeration engines sample their
/// frontier/visited gauges. Sampling keeps the Trace-level stream bounded
/// on big lattices without touching the per-cut fast path.
const GAUGE_SAMPLE_EVERY: u64 = 1024;

/// Detects `possibly: pred` by breadth-first enumeration of the cuts of
/// `space`, evaluating the predicate against `comp` (the computation the
/// cuts refer to — for a slice, its underlying computation).
///
/// Stores every visited cut, so memory grows with the explored state
/// space; this is the classic baseline whose blow-up slicing (or
/// partial-order methods) avoids.
pub fn detect_bfs<S: CutSpace + ?Sized, P: Predicate + ?Sized>(
    space: &S,
    comp: &Computation,
    pred: &P,
    limits: &Limits,
) -> Detection {
    let _span = slicing_observe::span("detect.bfs");
    let start = Instant::now();
    let mut tracker = Tracker::default();
    let entry_bytes = Tracker::hash_entry_bytes(space.num_processes());

    let Some(bottom) = space.bottom() else {
        return tracker.finish(None, start.elapsed(), None);
    };

    let mut visited: HashSet<Cut> = HashSet::new();
    let mut queue: VecDeque<Cut> = VecDeque::new();
    visited.insert(bottom.clone());
    tracker.store_cut(entry_bytes);
    queue.push_back(bottom);
    tracker.charge(entry_bytes);

    let mut succ = Vec::new();
    while let Some(cut) = queue.pop_front() {
        tracker.release(entry_bytes);
        tracker.cuts_explored += 1;
        if tracker.cuts_explored % GAUGE_SAMPLE_EVERY == 0 {
            slicing_observe::gauge("detect.bfs.frontier", queue.len() as u64);
            slicing_observe::gauge("detect.bfs.visited", visited.len() as u64);
        }
        if pred.eval(&GlobalState::new(comp, &cut)) {
            return tracker.finish(Some(cut), start.elapsed(), None);
        }
        if let Some(reason) = tracker.over_limit(limits, start) {
            return tracker.finish(None, start.elapsed(), Some(reason));
        }
        succ.clear();
        space.successors(&cut, &mut succ);
        for next in succ.drain(..) {
            if visited.insert(next.clone()) {
                tracker.store_cut(entry_bytes);
                queue.push_back(next);
                tracker.charge(entry_bytes);
            }
        }
    }
    tracker.finish(None, start.elapsed(), None)
}

/// Depth-first variant of [`detect_bfs`]. Explores the same cut set and
/// also stores every visited cut; the traversal order differs, which
/// matters when the predicate holds somewhere and the search can stop
/// early.
pub fn detect_dfs<S: CutSpace + ?Sized, P: Predicate + ?Sized>(
    space: &S,
    comp: &Computation,
    pred: &P,
    limits: &Limits,
) -> Detection {
    let _span = slicing_observe::span("detect.dfs");
    let start = Instant::now();
    let mut tracker = Tracker::default();
    let entry_bytes = Tracker::hash_entry_bytes(space.num_processes());

    let Some(bottom) = space.bottom() else {
        return tracker.finish(None, start.elapsed(), None);
    };

    let mut visited: HashSet<Cut> = HashSet::new();
    let mut stack: Vec<Cut> = Vec::new();
    visited.insert(bottom.clone());
    tracker.store_cut(entry_bytes);
    stack.push(bottom);
    tracker.charge(entry_bytes);

    let mut succ = Vec::new();
    while let Some(cut) = stack.pop() {
        tracker.release(entry_bytes);
        tracker.cuts_explored += 1;
        if tracker.cuts_explored % GAUGE_SAMPLE_EVERY == 0 {
            slicing_observe::gauge("detect.dfs.frontier", stack.len() as u64);
            slicing_observe::gauge("detect.dfs.visited", visited.len() as u64);
        }
        if pred.eval(&GlobalState::new(comp, &cut)) {
            return tracker.finish(Some(cut), start.elapsed(), None);
        }
        if let Some(reason) = tracker.over_limit(limits, start) {
            return tracker.finish(None, start.elapsed(), Some(reason));
        }
        succ.clear();
        space.successors(&cut, &mut succ);
        for next in succ.drain(..) {
            if visited.insert(next.clone()) {
                tracker.store_cut(entry_bytes);
                stack.push(next);
                tracker.charge(entry_bytes);
            }
        }
    }
    tracker.finish(None, start.elapsed(), None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_computation::oracle::satisfying_cuts;
    use slicing_computation::test_fixtures::{figure1, grid, random_computation, RandomConfig};
    use slicing_computation::ProcSet;
    use slicing_predicates::{expr::parse_predicate, FnPredicate};

    #[test]
    fn finds_the_paper_intro_predicate() {
        let comp = figure1();
        let pred =
            parse_predicate(&comp, "x1@0 * x2@1 + x3@2 < 5 && x1@0 > 1 && x3@2 <= 3").unwrap();
        let d = detect_bfs(&comp, &comp, &pred, &Limits::none());
        assert!(d.detected());
        assert!(d.completed());
        let cut = d.found.unwrap();
        assert!(pred.eval(&GlobalState::new(&comp, &cut)));
    }

    #[test]
    fn reports_absence() {
        let comp = figure1();
        let pred = parse_predicate(&comp, "x1@0 > 99").unwrap();
        let d = detect_bfs(&comp, &comp, &pred, &Limits::none());
        assert!(!d.detected());
        assert_eq!(d.cuts_explored, 28);
        let d = detect_dfs(&comp, &comp, &pred, &Limits::none());
        assert!(!d.detected());
        assert_eq!(d.cuts_explored, 28);
    }

    #[test]
    fn bfs_finds_a_minimal_depth_witness() {
        // BFS explores by distance from bottom, so the witness it returns
        // has the minimum number of events among satisfying cuts.
        let comp = figure1();
        let pred = parse_predicate(&comp, "x1@0 > 1 && x3@2 <= 3").unwrap();
        let d = detect_bfs(&comp, &comp, &pred, &Limits::none());
        let witness = d.found.unwrap();
        let min_size = satisfying_cuts(&comp, |st| pred.eval(st))
            .iter()
            .map(Cut::size)
            .min()
            .unwrap();
        assert_eq!(witness.size(), min_size);
    }

    #[test]
    fn dfs_and_bfs_agree_on_random_instances() {
        let cfg = RandomConfig {
            processes: 3,
            events_per_process: 4,
            value_range: 3,
            ..RandomConfig::default()
        };
        for seed in 0..30 {
            let comp = random_computation(seed, &cfg);
            let x0 = comp.var(comp.process(0), "x").unwrap();
            let x1 = comp.var(comp.process(1), "x").unwrap();
            let t = (seed % 3) as i64;
            let pred = FnPredicate::new(ProcSet::all(3), "x0 + x1 == t", move |st| {
                st.get(x0).expect_int() + st.get(x1).expect_int() == t
            });
            let b = detect_bfs(&comp, &comp, &pred, &Limits::none());
            let d = detect_dfs(&comp, &comp, &pred, &Limits::none());
            assert_eq!(b.detected(), d.detected(), "seed {seed}");
            let oracle = !satisfying_cuts(&comp, |st| pred.eval(st)).is_empty();
            assert_eq!(b.detected(), oracle, "seed {seed} oracle");
        }
    }

    #[test]
    fn memory_limit_aborts() {
        let comp = grid(6, 6);
        let pred = FnPredicate::new(ProcSet::all(2), "false", |_| false);
        let d = detect_bfs(&comp, &comp, &pred, &Limits::bytes(200));
        assert!(!d.completed());
        assert_eq!(d.aborted, Some(crate::AbortReason::MemoryLimit));
    }

    #[test]
    fn cut_limit_aborts() {
        let comp = grid(6, 6);
        let pred = FnPredicate::new(ProcSet::all(2), "false", |_| false);
        let d = detect_bfs(&comp, &comp, &pred, &Limits::cuts(5));
        assert_eq!(d.aborted, Some(crate::AbortReason::CutLimit));
        assert!(d.cuts_explored <= 7);
    }

    #[test]
    fn empty_space_yields_no_detection() {
        let comp = figure1();
        let slice = slicing_core::Slice::empty(&comp);
        let pred = FnPredicate::new(ProcSet::all(3), "true", |_| true);
        let d = detect_bfs(&slice, &comp, &pred, &Limits::none());
        assert!(!d.detected());
        assert_eq!(d.cuts_explored, 0);
    }

    #[test]
    fn searching_a_slice_examines_fewer_cuts() {
        let comp = figure1();
        let weak = parse_predicate(&comp, "x1@0 > 1 && x3@2 <= 3").unwrap();
        let full =
            parse_predicate(&comp, "x1@0 * x2@1 + x3@2 < 5 && x1@0 > 1 && x3@2 <= 3").unwrap();
        let conj = weak.to_conjunctive().unwrap();
        let slice = slicing_core::slice_conjunctive(&comp, &conj);
        let on_comp = detect_bfs(&comp, &comp, &full, &Limits::none());
        let on_slice = detect_bfs(&slice, &comp, &full, &Limits::none());
        assert_eq!(on_comp.detected(), on_slice.detected());
        assert!(on_slice.cuts_explored <= 6);
        assert!(on_slice.cuts_explored <= on_comp.cuts_explored);
    }
}
