//! Breadth-first and depth-first predicate detection by explicit lattice
//! enumeration (Cooper–Marzullo style), over any [`CutSpace`] — a
//! computation or a slice.

use std::collections::VecDeque;
use std::time::Instant;

use slicing_computation::{
    BandedCutSet, Computation, CutPacking, CutSet, CutSpace, GlobalState, PackedBandedSet,
};
use slicing_predicates::Predicate;

use crate::metrics::{emit_visited_stats, AbortReason, Detection, Limits, Tracker};

/// How often (in explored cuts) the enumeration engines sample their
/// frontier/visited gauges. Sampling keeps the Trace-level stream bounded
/// on big lattices without touching the per-cut fast path.
const GAUGE_SAMPLE_EVERY: u64 = 1024;

/// Detects `possibly: pred` by breadth-first enumeration of the cuts of
/// `space`, evaluating the predicate against `comp` (the computation the
/// cuts refer to — for a slice, its underlying computation).
///
/// Stores every visited cut, so memory grows with the explored state
/// space; this is the classic baseline whose blow-up slicing (or
/// partial-order methods) avoids.
pub fn detect_bfs<S: CutSpace + ?Sized, P: Predicate + ?Sized>(
    space: &S,
    comp: &Computation,
    pred: &P,
    limits: &Limits,
) -> Detection {
    detect_bfs_capped(space, comp, pred, limits, u32::MAX - 1)
}

/// [`detect_bfs`] with an explicit visited-set entry ceiling.
///
/// The public entry point uses the containers' natural `u32::MAX - 1`
/// ceiling; unit tests mock a tiny one to pin the
/// [`AbortReason::ArenaFull`] guard path without inserting four billion
/// cuts.
pub(crate) fn detect_bfs_capped<S: CutSpace + ?Sized, P: Predicate + ?Sized>(
    space: &S,
    comp: &Computation,
    pred: &P,
    limits: &Limits,
    max_entries: u32,
) -> Detection {
    let _span = slicing_observe::span("detect.bfs");
    let start = Instant::now();
    let mut tracker = Tracker::default();
    let entry_bytes = Tracker::hash_entry_bytes(space.num_processes());

    let Some(bottom) = space.bottom() else {
        return tracker.finish(None, start.elapsed(), None);
    };

    // The frontier holds 4-byte arena indices into the visited set — every
    // enqueued cut is in the arena already, so queueing whole `Cut`s would
    // only memcpy the same counts a second time.
    let mut visited = CutSet::with_max_entries(space.num_processes(), max_entries);
    let mut queue: VecDeque<u32> = VecDeque::new();
    let bottom_idx = visited.insert_indexed(&bottom).expect("empty set");
    tracker.store_cut(entry_bytes);
    queue.push_back(bottom_idx);
    tracker.charge(entry_bytes);

    let mut found = None;
    let mut aborted = None;
    let mut cut = bottom;
    // Per-expansion probe-length samples only when a Trace sink listens:
    // the delta of the visited set's probe counter across one expansion.
    let sampling = slicing_observe::enabled(slicing_observe::Level::Trace);
    let mut last_probes = visited.stats().probes;
    while let Some(idx) = queue.pop_front() {
        cut.copy_from_counts(visited.counts_at(idx));
        tracker.release(entry_bytes);
        tracker.cuts_explored += 1;
        if tracker.cuts_explored.is_multiple_of(GAUGE_SAMPLE_EVERY) {
            slicing_observe::gauge("detect.bfs.frontier", queue.len() as u64);
            slicing_observe::gauge("detect.bfs.visited", visited.len() as u64);
        }
        match pred.try_eval(&GlobalState::new(comp, &cut)) {
            Ok(true) => {
                found = Some(cut);
                break;
            }
            Ok(false) => {}
            Err(_) => {
                aborted = Some(AbortReason::PredicateError);
                break;
            }
        }
        if let Some(reason) = tracker.over_limit(limits, start) {
            aborted = Some(reason);
            break;
        }
        space.for_each_successor(&cut, &mut |next| {
            if let Some(next_idx) = visited.insert_indexed(next) {
                tracker.store_cut(entry_bytes);
                queue.push_back(next_idx);
                tracker.charge(entry_bytes);
            }
        });
        if sampling {
            let probes = visited.stats().probes;
            slicing_observe::sample("detect.bfs.probe_len", probes - last_probes);
            last_probes = probes;
        }
        if visited.saturated() {
            // A refused insert means unseen successors were dropped: the
            // sweep can no longer prove absence, so stop with a budget
            // verdict instead of silently under-exploring.
            aborted = Some(AbortReason::ArenaFull);
            break;
        }
    }
    emit_visited_stats(visited.stats());
    tracker.finish(found, start.elapsed(), aborted)
}

/// [`detect_bfs`] with the visited set partitioned by cut size — the
/// slice-search variant.
///
/// Successors in a lattice strictly grow, so banding by size keeps each
/// duplicate probe inside the (small, cache-resident) band of the
/// successor's size instead of a random access across the whole visited
/// history. The traversal itself — queue order, duplicate semantics,
/// predicate evaluation, limits, saturation — is op-for-op the same as
/// [`detect_bfs`]: verdict, witness, `cuts_explored`, and the hit/insert
/// counters are identical; only the `probes` counter shifts with the
/// per-band table geometry. Slice lattices are where this pays: their cut
/// populations dwarf every band, and the residual slice search is probe-
/// bound (see EXPERIMENTS.md).
///
/// When the computation's cuts pack into a `u64` ([`CutPacking`] — per-
/// process counts fitting 63 bits of lanes), the visited bands store the
/// packed keys inline ([`PackedBandedSet`]) and the frontier queues packed
/// cuts: a duplicate check then touches exactly one table slot, with no
/// arena access to confirm equality. Wider or longer computations fall
/// back to [`BandedCutSet`] storage. Both paths explore identically.
pub fn detect_bfs_banded<S: CutSpace + ?Sized, P: Predicate + ?Sized>(
    space: &S,
    comp: &Computation,
    pred: &P,
    limits: &Limits,
) -> Detection {
    if space.num_processes() == comp.num_processes() {
        let maxima: Vec<u32> = (0..comp.num_processes())
            .map(|i| comp.len(comp.process(i)))
            .collect();
        if let Some(packing) = CutPacking::for_maxima(&maxima) {
            return detect_bfs_packed(space, comp, pred, limits, &packing);
        }
    }
    detect_bfs_banded_unpacked(space, comp, pred, limits)
}

/// The [`BandedCutSet`] fallback of [`detect_bfs_banded`]: cuts too wide
/// or too long for a 63-bit packing keep their counts in band arenas.
fn detect_bfs_banded_unpacked<S: CutSpace + ?Sized, P: Predicate + ?Sized>(
    space: &S,
    comp: &Computation,
    pred: &P,
    limits: &Limits,
) -> Detection {
    let _span = slicing_observe::span("detect.bfs");
    let start = Instant::now();
    let mut tracker = Tracker::default();
    let entry_bytes = Tracker::hash_entry_bytes(space.num_processes());

    let Some(bottom) = space.bottom() else {
        return tracker.finish(None, start.elapsed(), None);
    };

    let mut visited = BandedCutSet::new(space.num_processes());
    let mut queue: VecDeque<u64> = VecDeque::new();
    let bottom_key = visited.insert_indexed(&bottom).expect("empty set");
    tracker.store_cut(entry_bytes);
    queue.push_back(bottom_key);
    tracker.charge(entry_bytes);

    let mut found = None;
    let mut aborted = None;
    let mut cut = bottom;
    let sampling = slicing_observe::enabled(slicing_observe::Level::Trace);
    let mut last_probes = visited.stats().probes;
    while let Some(key) = queue.pop_front() {
        cut.copy_from_counts(visited.counts_at(key));
        tracker.release(entry_bytes);
        tracker.cuts_explored += 1;
        if tracker.cuts_explored.is_multiple_of(GAUGE_SAMPLE_EVERY) {
            slicing_observe::gauge("detect.bfs.frontier", queue.len() as u64);
            slicing_observe::gauge("detect.bfs.visited", visited.len());
        }
        match pred.try_eval(&GlobalState::new(comp, &cut)) {
            Ok(true) => {
                found = Some(cut);
                break;
            }
            Ok(false) => {}
            Err(_) => {
                aborted = Some(AbortReason::PredicateError);
                break;
            }
        }
        if let Some(reason) = tracker.over_limit(limits, start) {
            aborted = Some(reason);
            break;
        }
        space.for_each_successor(&cut, &mut |next| {
            if let Some(next_key) = visited.insert_indexed(next) {
                tracker.store_cut(entry_bytes);
                queue.push_back(next_key);
                tracker.charge(entry_bytes);
            }
        });
        if sampling {
            let probes = visited.stats().probes;
            slicing_observe::sample("detect.bfs.probe_len", probes - last_probes);
            last_probes = probes;
        }
        if visited.saturated() {
            aborted = Some(AbortReason::ArenaFull);
            break;
        }
    }
    emit_visited_stats(visited.stats());
    tracker.finish(found, start.elapsed(), aborted)
}

/// The packed fast path of [`detect_bfs_banded`]: visited bands and the
/// frontier both hold `u64`-packed cuts, so one lattice sweep's memory
/// traffic is a cache-resident table touch per emission plus sequential
/// queue churn. Exploration order and membership semantics are exactly
/// [`detect_bfs`]'s (packing is a bijection).
fn detect_bfs_packed<S: CutSpace + ?Sized, P: Predicate + ?Sized>(
    space: &S,
    comp: &Computation,
    pred: &P,
    limits: &Limits,
    packing: &CutPacking,
) -> Detection {
    let _span = slicing_observe::span("detect.bfs");
    let start = Instant::now();
    let mut tracker = Tracker::default();
    let entry_bytes = Tracker::hash_entry_bytes(space.num_processes());

    let Some(bottom) = space.bottom() else {
        return tracker.finish(None, start.elapsed(), None);
    };

    let mut visited = PackedBandedSet::new();
    let mut queue: VecDeque<u64> = VecDeque::new();
    let bottom_key = packing.pack(bottom.counts());
    visited.insert(bottom_key, bottom.size() as usize);
    tracker.store_cut(entry_bytes);
    queue.push_back(bottom_key);
    tracker.charge(entry_bytes);

    let mut found = None;
    let mut aborted = None;
    let mut cut = bottom;
    let sampling = slicing_observe::enabled(slicing_observe::Level::Trace);
    let mut last_probes = visited.stats().probes;
    while let Some(key) = queue.pop_front() {
        packing.unpack_into(key, &mut cut);
        tracker.release(entry_bytes);
        tracker.cuts_explored += 1;
        if tracker.cuts_explored.is_multiple_of(GAUGE_SAMPLE_EVERY) {
            slicing_observe::gauge("detect.bfs.frontier", queue.len() as u64);
            slicing_observe::gauge("detect.bfs.visited", visited.len());
        }
        match pred.try_eval(&GlobalState::new(comp, &cut)) {
            Ok(true) => {
                found = Some(cut);
                break;
            }
            Ok(false) => {}
            Err(_) => {
                aborted = Some(AbortReason::PredicateError);
                break;
            }
        }
        if let Some(reason) = tracker.over_limit(limits, start) {
            aborted = Some(reason);
            break;
        }
        let streamed =
            space.for_each_successor_packed(cut.counts(), key, packing, &mut |nk, sz| {
                if visited.insert(nk, sz as usize) {
                    tracker.store_cut(entry_bytes);
                    queue.push_back(nk);
                    tracker.charge(entry_bytes);
                }
            });
        if !streamed {
            // Space without a packed transition table: build each
            // successor as a cut and pack it here.
            space.for_each_successor(&cut, &mut |next| {
                let next_key = packing.pack(next.counts());
                if visited.insert(next_key, next.size() as usize) {
                    tracker.store_cut(entry_bytes);
                    queue.push_back(next_key);
                    tracker.charge(entry_bytes);
                }
            });
        }
        if sampling {
            let probes = visited.stats().probes;
            slicing_observe::sample("detect.bfs.probe_len", probes - last_probes);
            last_probes = probes;
        }
        if visited.saturated() {
            aborted = Some(AbortReason::ArenaFull);
            break;
        }
    }
    emit_visited_stats(visited.stats());
    tracker.finish(found, start.elapsed(), aborted)
}

/// Depth-first variant of [`detect_bfs`]. Explores the same cut set and
/// also stores every visited cut; the traversal order differs, which
/// matters when the predicate holds somewhere and the search can stop
/// early.
pub fn detect_dfs<S: CutSpace + ?Sized, P: Predicate + ?Sized>(
    space: &S,
    comp: &Computation,
    pred: &P,
    limits: &Limits,
) -> Detection {
    let _span = slicing_observe::span("detect.dfs");
    let start = Instant::now();
    let mut tracker = Tracker::default();
    let entry_bytes = Tracker::hash_entry_bytes(space.num_processes());

    let Some(bottom) = space.bottom() else {
        return tracker.finish(None, start.elapsed(), None);
    };

    // Same arena-index frontier as BFS (see above), LIFO order.
    let mut visited = CutSet::new(space.num_processes());
    let mut stack: Vec<u32> = Vec::new();
    let bottom_idx = visited.insert_indexed(&bottom).expect("empty set");
    tracker.store_cut(entry_bytes);
    stack.push(bottom_idx);
    tracker.charge(entry_bytes);

    let mut found = None;
    let mut aborted = None;
    let mut cut = bottom;
    while let Some(idx) = stack.pop() {
        cut.copy_from_counts(visited.counts_at(idx));
        tracker.release(entry_bytes);
        tracker.cuts_explored += 1;
        if tracker.cuts_explored.is_multiple_of(GAUGE_SAMPLE_EVERY) {
            slicing_observe::gauge("detect.dfs.frontier", stack.len() as u64);
            slicing_observe::gauge("detect.dfs.visited", visited.len() as u64);
        }
        match pred.try_eval(&GlobalState::new(comp, &cut)) {
            Ok(true) => {
                found = Some(cut);
                break;
            }
            Ok(false) => {}
            Err(_) => {
                aborted = Some(AbortReason::PredicateError);
                break;
            }
        }
        if let Some(reason) = tracker.over_limit(limits, start) {
            aborted = Some(reason);
            break;
        }
        space.for_each_successor(&cut, &mut |next| {
            if let Some(next_idx) = visited.insert_indexed(next) {
                tracker.store_cut(entry_bytes);
                stack.push(next_idx);
                tracker.charge(entry_bytes);
            }
        });
        if visited.saturated() {
            aborted = Some(AbortReason::ArenaFull);
            break;
        }
    }
    emit_visited_stats(visited.stats());
    tracker.finish(found, start.elapsed(), aborted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_computation::oracle::satisfying_cuts;
    use slicing_computation::test_fixtures::{figure1, grid, random_computation, RandomConfig};
    use slicing_computation::Cut;
    use slicing_computation::ProcSet;
    use slicing_predicates::{expr::parse_predicate, FnPredicate};

    #[test]
    fn finds_the_paper_intro_predicate() {
        let comp = figure1();
        let pred =
            parse_predicate(&comp, "x1@0 * x2@1 + x3@2 < 5 && x1@0 > 1 && x3@2 <= 3").unwrap();
        let d = detect_bfs(&comp, &comp, &pred, &Limits::none());
        assert!(d.detected());
        assert!(d.completed());
        let cut = d.found.unwrap();
        assert!(pred.eval(&GlobalState::new(&comp, &cut)));
    }

    #[test]
    fn reports_absence() {
        let comp = figure1();
        let pred = parse_predicate(&comp, "x1@0 > 99").unwrap();
        let d = detect_bfs(&comp, &comp, &pred, &Limits::none());
        assert!(!d.detected());
        assert_eq!(d.cuts_explored, 28);
        let d = detect_dfs(&comp, &comp, &pred, &Limits::none());
        assert!(!d.detected());
        assert_eq!(d.cuts_explored, 28);
    }

    #[test]
    fn bfs_finds_a_minimal_depth_witness() {
        // BFS explores by distance from bottom, so the witness it returns
        // has the minimum number of events among satisfying cuts.
        let comp = figure1();
        let pred = parse_predicate(&comp, "x1@0 > 1 && x3@2 <= 3").unwrap();
        let d = detect_bfs(&comp, &comp, &pred, &Limits::none());
        let witness = d.found.unwrap();
        let min_size = satisfying_cuts(&comp, |st| pred.eval(st))
            .iter()
            .map(Cut::size)
            .min()
            .unwrap();
        assert_eq!(witness.size(), min_size);
    }

    #[test]
    fn dfs_and_bfs_agree_on_random_instances() {
        let cfg = RandomConfig {
            processes: 3,
            events_per_process: 4,
            value_range: 3,
            ..RandomConfig::default()
        };
        for seed in 0..30 {
            let comp = random_computation(seed, &cfg);
            let x0 = comp.var(comp.process(0), "x").unwrap();
            let x1 = comp.var(comp.process(1), "x").unwrap();
            let t = (seed % 3) as i64;
            let pred = FnPredicate::new(ProcSet::all(3), "x0 + x1 == t", move |st| {
                st.get(x0).expect_int() + st.get(x1).expect_int() == t
            });
            let b = detect_bfs(&comp, &comp, &pred, &Limits::none());
            let d = detect_dfs(&comp, &comp, &pred, &Limits::none());
            assert_eq!(b.detected(), d.detected(), "seed {seed}");
            let oracle = !satisfying_cuts(&comp, |st| pred.eval(st)).is_empty();
            assert_eq!(b.detected(), oracle, "seed {seed} oracle");
        }
    }

    #[test]
    fn memory_limit_aborts() {
        let comp = grid(6, 6);
        let pred = FnPredicate::new(ProcSet::all(2), "false", |_| false);
        let d = detect_bfs(&comp, &comp, &pred, &Limits::bytes(200));
        assert!(!d.completed());
        assert_eq!(d.aborted, Some(crate::AbortReason::MemoryLimit));
    }

    #[test]
    fn cut_limit_aborts() {
        let comp = grid(6, 6);
        let pred = FnPredicate::new(ProcSet::all(2), "false", |_| false);
        let d = detect_bfs(&comp, &comp, &pred, &Limits::cuts(5));
        assert_eq!(d.aborted, Some(crate::AbortReason::CutLimit));
        assert!(d.cuts_explored <= 7);
    }

    #[test]
    fn arena_full_aborts_instead_of_wrapping() {
        // A mocked 4-entry visited-set ceiling stands in for the real
        // u32::MAX - 1: the sweep must stop with a budget verdict, never
        // report "not detected" off a silently truncated search.
        let comp = grid(6, 6);
        let pred = FnPredicate::new(ProcSet::all(2), "false", |_| false);
        let d = detect_bfs_capped(&comp, &comp, &pred, &Limits::none(), 4);
        assert!(!d.detected());
        assert!(!d.completed());
        assert_eq!(d.aborted, Some(crate::AbortReason::ArenaFull));
        assert!(d.cuts_explored <= 5);
        // A witness inside the budget is still found and completes.
        let hit = FnPredicate::new(ProcSet::all(2), "true", |_| true);
        let d = detect_bfs_capped(&comp, &comp, &hit, &Limits::none(), 4);
        assert!(d.detected());
        assert!(d.completed());
    }

    #[test]
    fn predicate_error_aborts_bfs_and_dfs() {
        use slicing_computation::{ComputationBuilder, Value};
        // x declared Int, flipped to Bool: the expression errors at the
        // second cut of the sweep.
        let mut b = ComputationBuilder::new(1);
        let x = b.declare_var(b.process(0), "x", Value::Int(0));
        b.step(b.process(0), &[(x, Value::Bool(true))]);
        let comp = b.build().unwrap();
        let pred = parse_predicate(&comp, "x@0 > 1").unwrap();
        for d in [
            detect_bfs(&comp, &comp, &pred, &Limits::none()),
            detect_dfs(&comp, &comp, &pred, &Limits::none()),
        ] {
            assert!(!d.detected());
            assert_eq!(d.aborted, Some(crate::AbortReason::PredicateError));
        }
    }

    #[test]
    fn empty_space_yields_no_detection() {
        let comp = figure1();
        let slice = slicing_core::Slice::empty(&comp);
        let pred = FnPredicate::new(ProcSet::all(3), "true", |_| true);
        let d = detect_bfs(&slice, &comp, &pred, &Limits::none());
        assert!(!d.detected());
        assert_eq!(d.cuts_explored, 0);
    }

    #[test]
    fn searching_a_slice_examines_fewer_cuts() {
        let comp = figure1();
        let weak = parse_predicate(&comp, "x1@0 > 1 && x3@2 <= 3").unwrap();
        let full =
            parse_predicate(&comp, "x1@0 * x2@1 + x3@2 < 5 && x1@0 > 1 && x3@2 <= 3").unwrap();
        let conj = weak.to_conjunctive().unwrap();
        let slice = slicing_core::slice_conjunctive(&comp, &conj);
        let on_comp = detect_bfs(&comp, &comp, &full, &Limits::none());
        let on_slice = detect_bfs(&slice, &comp, &full, &Limits::none());
        assert_eq!(on_comp.detected(), on_slice.detected());
        assert!(on_slice.cuts_explored <= 6);
        assert!(on_slice.cuts_explored <= on_comp.cuts_explored);
    }
}
