//! Differential-test harness shared by the engine test suites.
//!
//! Every detection engine in this crate answers the same question —
//! `possibly: spec` — so they can all be checked the same way: against the
//! brute-force lattice oracle
//! ([`satisfying_cuts`]) on a
//! common corpus of cases. [`check_engine`] runs one engine on one
//! [`Case`] and asserts the invariants every engine must uphold;
//! [`engine_matrix!`](crate::engine_matrix) stamps out one `#[test]` per
//! engine over a case-producing function, so adding a corpus locks **all**
//! engines to the oracle at once.

use slicing_computation::oracle::satisfying_cuts;
use slicing_computation::{Computation, Cut, GlobalState};
use slicing_core::PredicateSpec;

use crate::metrics::Limits;

/// One differential test case: a computation, a specification to detect,
/// and a tag naming the case in assertion messages.
#[derive(Debug)]
pub struct Case {
    /// Label shown in failure messages (e.g. `"figure1"`, `"seed 7"`).
    pub tag: String,
    /// The computation to search.
    pub comp: Computation,
    /// The specification whose `possibly:` verdict is checked.
    pub spec: PredicateSpec,
}

impl Case {
    /// Builds a case.
    pub fn new(tag: impl Into<String>, comp: Computation, spec: PredicateSpec) -> Self {
        Case {
            tag: tag.into(),
            comp,
            spec,
        }
    }
}

/// A [`PredicateSpec`] viewed as a plain
/// [`Predicate`](slicing_predicates::Predicate), for the engines that take
/// one (the spec-taking engines slice it instead).
#[derive(Debug)]
pub struct SpecPredicate<'s>(pub &'s PredicateSpec);

impl slicing_predicates::Predicate for SpecPredicate<'_> {
    fn support(&self) -> slicing_computation::ProcSet {
        self.0.support()
    }
    fn eval(&self, state: &GlobalState<'_>) -> bool {
        self.0.eval(state)
    }
}

/// The engine names [`check_engine`] understands — the rows of the
/// differential matrix.
pub const ENGINES: [&str; 8] = [
    "bfs",
    "dfs",
    "pom",
    "slicing",
    "hybrid",
    "lean",
    "parallel",
    "parallel_lean",
];

/// Runs the named engine on `case` (unlimited budget) and asserts the
/// contract every engine shares:
///
/// - the verdict equals the brute-force oracle's;
/// - a returned witness satisfies the spec and is a consistent cut;
/// - level-order engines (`bfs`, `lean`, `parallel`, `parallel_lean`)
///   return a witness of *minimum size* among all satisfying cuts.
///
/// # Panics
///
/// Panics on any violated invariant, and on an unknown engine name.
pub fn check_engine(name: &str, case: &Case) {
    let Case { tag, comp, spec } = case;
    let pred = SpecPredicate(spec);
    let limits = Limits::none();
    let detection = match name {
        "bfs" => crate::detect_bfs(comp, comp, &pred, &limits),
        "dfs" => crate::detect_dfs(comp, comp, &pred, &limits),
        "pom" => crate::detect_pom(comp, &pred, &limits),
        "slicing" => crate::detect_with_slicing(comp, spec, &limits).search,
        "hybrid" => {
            let budget = crate::suggested_pom_budget(comp, 4);
            let h = crate::detect_hybrid(comp, spec, budget, &limits);
            // Normalize to a (detected, witness) view shared with the rest.
            let found = h.found().cloned();
            assert_eq!(h.detected(), found.is_some(), "[{tag}] hybrid view");
            let mut d = h.pom.clone();
            d.found = found;
            d.aborted = None;
            d
        }
        "lean" => crate::detect_lean(comp, comp, &pred, &limits),
        "parallel" => crate::detect_bfs_parallel(comp, comp, &pred, &limits, 4),
        "parallel_lean" => crate::detect_lean_parallel(comp, comp, &pred, &limits, 4),
        other => panic!("unknown engine {other:?} (expected one of {ENGINES:?})"),
    };
    assert!(
        detection.completed(),
        "[{tag}] {name}: aborted under no limits: {:?}",
        detection.aborted
    );

    let oracle = satisfying_cuts(comp, |st| spec.eval(st));
    assert_eq!(
        detection.detected(),
        !oracle.is_empty(),
        "[{tag}] {name}: verdict disagrees with the lattice oracle"
    );
    if let Some(witness) = &detection.found {
        assert!(
            spec.eval(&GlobalState::new(comp, witness)),
            "[{tag}] {name}: witness {witness} does not satisfy the spec"
        );
        assert!(
            comp.is_consistent(witness),
            "[{tag}] {name}: witness {witness} is not a consistent cut"
        );
        if matches!(name, "bfs" | "lean" | "parallel" | "parallel_lean") {
            let min_size = oracle.iter().map(Cut::size).min().expect("non-empty");
            assert_eq!(
                witness.size(),
                min_size,
                "[{tag}] {name}: level-order engine returned a non-minimal witness"
            );
        }
    }
}

/// Stamps out one `#[test]` per detection engine, each running
/// [`check_engine`](crate::testkit::check_engine) over every [`Case`]
/// (`crate::testkit::Case`) returned by the given function:
///
/// ```
/// use slicing_detect::{engine_matrix, testkit::Case};
/// use slicing_computation::test_fixtures::figure1;
/// use slicing_core::PredicateSpec;
/// use slicing_predicates::{Conjunctive, LocalPredicate};
///
/// fn cases() -> Vec<Case> {
///     let comp = figure1();
///     let x1 = comp.var(comp.process(0), "x1").unwrap();
///     let spec = PredicateSpec::conjunctive(Conjunctive::new(vec![
///         LocalPredicate::int(x1, "x1 > 1", |x| x > 1),
///     ]));
///     vec![Case::new("figure1", comp, spec)]
/// }
///
/// mod matrix {
///     slicing_detect::engine_matrix!(super::cases);
/// }
/// # fn main() { assert_eq!(cases().len(), 1); }
/// ```
///
/// The generated test names are the engine names (`bfs`, `dfs`, `pom`,
/// `slicing`, `hybrid`, `lean`, `parallel`, `parallel_lean`), so a failing
/// row is visible directly in the test report.
#[macro_export]
macro_rules! engine_matrix {
    ($case_fn:path) => {
        $crate::engine_matrix!(
            @tests $case_fn, bfs dfs pom slicing hybrid lean parallel parallel_lean
        );
    };
    (@tests $case_fn:path, $($engine:ident)+) => {
        $(
            #[test]
            pub fn $engine() {
                for case in $case_fn() {
                    $crate::testkit::check_engine(stringify!($engine), &case);
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_computation::test_fixtures::figure1;
    use slicing_predicates::{Conjunctive, LocalPredicate};

    fn figure1_case(detectable: bool) -> Case {
        let comp = figure1();
        let x1 = comp.var(comp.process(0), "x1").unwrap();
        let threshold = if detectable { 1 } else { 99 };
        let spec = PredicateSpec::conjunctive(Conjunctive::new(vec![LocalPredicate::int(
            x1,
            "x1 > t",
            move |x| x > threshold,
        )]));
        Case::new(format!("figure1 t{threshold}"), comp, spec)
    }

    #[test]
    fn every_engine_passes_on_the_paper_fixture() {
        for detectable in [true, false] {
            let case = figure1_case(detectable);
            for engine in ENGINES {
                check_engine(engine, &case);
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown engine")]
    fn unknown_engine_is_rejected() {
        check_engine("quantum", &figure1_case(true));
    }
}
