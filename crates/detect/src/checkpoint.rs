//! The `slicing.checkpoint/v1` codec: serialize an [`OnlineMonitor`]'s
//! exported [`MonitorState`] to a self-describing JSON document and decode
//! it back for a mid-stream restart.
//!
//! A checkpoint is *state-only*: watch predicates are closures and cannot
//! be serialized, so after [`decode`] the caller rebuilds the monitor with
//! [`OnlineMonitor::from_state`] and re-registers each clause via
//! [`OnlineMonitor::restore_watch_clause`], which cross-validates the
//! clause against the checkpointed truth assignments. The document also
//! carries the metrics-stream sequence number so a resumed
//! [`MetricsSnapshotter`](slicing_observe::MetricsSnapshotter) continues
//! `slicing.metrics/v1` deltas monotonically instead of restarting at 0.
//!
//! Integers are stored as JSON numbers; like every schema in this
//! workspace they round-trip exactly up to the IEEE-754 integer range
//! (`|v| <= 2^53`), which comfortably covers clock counts, positions, and
//! the monitor's deterministic counters.
//!
//! The wire layout is registered in the observe schema registry as
//! [`slicing_observe::schema::CHECKPOINT`] and structurally checked by
//! `slicing validate`; [`decode`] performs the deeper semantic checks
//! (arities, value tags) and [`OnlineMonitor::from_state`] the full
//! consistency ones.

use slicing_computation::{BuildError, ProcSet, ProcessId, Value};
use slicing_core::SlicerState;
use slicing_observe::json::{JsonArray, JsonObject, JsonValue};
use slicing_observe::schema;

use crate::monitor::{GcConfig, MonitorState, MonitorStats};

#[cfg(doc)]
use crate::monitor::OnlineMonitor;

/// Serializes a monitor state plus the metrics-stream cursor as a
/// `slicing.checkpoint/v1` document (one line of JSON).
pub fn encode(state: &MonitorState, metrics_seq: u64) -> String {
    let s = &state.slicer;
    let mut queues = JsonArray::new();
    for queue in &state.queues {
        queues = queues.push_raw(&u32_array(queue));
    }
    let obj = JsonObject::new()
        .str("schema", schema::CHECKPOINT)
        .u64("processes", s.num_processes as u64)
        .u64("metrics_seq", metrics_seq);
    slicer_fields(obj, s)
        .raw("queues", &queues.finish())
        .raw("dirty", &bool_array(&state.dirty))
        .bool("dirty_any", state.dirty_any)
        .u64("seen_revision", state.seen_revision)
        .raw("current_alarm", &opt_cut_json(&state.current_alarm))
        .raw("last_alarm", &opt_cut_json(&state.last_alarm))
        .raw("stats", &stats_json(&state.stats))
        .raw("gc", &gc_json(&state.gc))
        .u64("since_gc", state.since_gc)
        .finish()
}

/// Decodes a parsed `slicing.checkpoint/v1` document back into the
/// monitor state and the metrics-stream cursor it was taken at.
///
/// # Errors
///
/// Returns [`BuildError::InvalidState`] when the document is not a
/// well-formed checkpoint — wrong schema tag, missing or mistyped
/// fields, arity mismatches, or out-of-range indices. The deeper
/// consistency checks (clock monotonicity, queue ordering) run when the
/// result is fed to [`OnlineMonitor::from_state`].
pub fn decode(doc: &JsonValue) -> Result<(MonitorState, u64), BuildError> {
    let tag = field(doc, "schema")?
        .as_str()
        .ok_or_else(|| bad("field \"schema\" must be a string"))?;
    if tag != schema::CHECKPOINT {
        return Err(bad(format!(
            "schema is {tag:?}, expected {:?}",
            schema::CHECKPOINT
        )));
    }
    let num_processes = get_u64(doc, "processes")? as usize;
    if num_processes == 0 || num_processes > ProcSet::MAX_PROCESSES {
        return Err(bad(format!(
            "\"processes\" must be in 1..={}",
            ProcSet::MAX_PROCESSES
        )));
    }
    let metrics_seq = get_u64(doc, "metrics_seq")?;
    let slicer = slicer_from_doc(doc, num_processes)?;

    let mut queues = Vec::with_capacity(num_processes);
    for queue in get_array(doc, "queues")? {
        queues.push(u32_vec(queue, "queues")?);
    }
    let dirty = bool_vec(field(doc, "dirty")?, "dirty")?;
    let dirty_any = field(doc, "dirty_any")?
        .as_bool()
        .ok_or_else(|| bad("field \"dirty_any\" must be a bool"))?;
    let seen_revision = get_u64(doc, "seen_revision")?;
    let current_alarm = opt_cut_from(field(doc, "current_alarm")?, "current_alarm")?;
    let last_alarm = opt_cut_from(field(doc, "last_alarm")?, "last_alarm")?;
    let stats = stats_from(field(doc, "stats")?)?;
    let gc = gc_from(field(doc, "gc")?)?;
    let since_gc = get_u64(doc, "since_gc")?;

    let state = MonitorState {
        slicer,
        queues,
        dirty,
        dirty_any,
        seen_revision,
        current_alarm,
        last_alarm,
        stats,
        gc,
        since_gc,
    };
    Ok((state, metrics_seq))
}

/// Parses checkpoint text and decodes it; see [`decode`].
///
/// # Errors
///
/// Returns [`BuildError::InvalidState`] on malformed JSON or any
/// [`decode`] failure.
pub fn decode_str(text: &str) -> Result<(MonitorState, u64), BuildError> {
    let doc = slicing_observe::json::parse(text)
        .map_err(|e| bad(format!("checkpoint is not valid JSON: {e}")))?;
    decode(&doc)
}

/// Appends the flat [`SlicerState`] fields (`base` through
/// `clock_revision`) shared by the monitor and serve checkpoint schemas.
pub(crate) fn slicer_fields(obj: JsonObject, s: &SlicerState) -> JsonObject {
    let mut events = JsonArray::new();
    for ((&p, &holds), clock) in s.event_procs.iter().zip(&s.holds).zip(&s.clocks) {
        events = events.push_raw(
            &JsonObject::new()
                .u64("p", u64::from(p))
                .bool("holds", holds)
                .raw("clock", &u32_array(clock))
                .finish(),
        );
    }
    let mut vars = JsonArray::new();
    for names in &s.var_names {
        let mut row = JsonArray::new();
        for name in names {
            row = row.push_str(name);
        }
        vars = vars.push_raw(&row.finish());
    }
    let mut snapshots = JsonArray::new();
    for per_process in &s.snapshots {
        let mut rows = JsonArray::new();
        for row in per_process {
            let mut values = JsonArray::new();
            for value in row {
                values = values.push_raw(&value_json(value));
            }
            rows = rows.push_raw(&values.finish());
        }
        snapshots = snapshots.push_raw(&rows.finish());
    }
    obj.raw("base", &u32_array(&s.base))
        .raw("events", &events.finish())
        .raw("vars", &vars.finish())
        .raw("snapshots", &snapshots.finish())
        .raw("messages", &pair_array(&s.messages))
        .raw("settled_edges", &pair_array(&s.settled_edges))
        .u64("clock_revision", s.clock_revision)
}

/// Decodes the flat [`SlicerState`] fields written by [`slicer_fields`].
pub(crate) fn slicer_from_doc(
    doc: &JsonValue,
    num_processes: usize,
) -> Result<SlicerState, BuildError> {
    let base = u32_vec(field(doc, "base")?, "base")?;

    let events = get_array(doc, "events")?;
    let mut event_procs = Vec::with_capacity(events.len());
    let mut holds = Vec::with_capacity(events.len());
    let mut clocks = Vec::with_capacity(events.len());
    for (i, ev) in events.iter().enumerate() {
        event_procs.push(get_u32(ev, "p").map_err(|_| bad(format!("events[{i}]: bad \"p\"")))?);
        holds.push(
            field(ev, "holds")?
                .as_bool()
                .ok_or_else(|| bad(format!("events[{i}]: \"holds\" must be a bool")))?,
        );
        let clock = u32_vec(field(ev, "clock")?, "clock")?;
        if clock.len() != num_processes {
            return Err(bad(format!(
                "events[{i}]: clock has arity {}, expected {num_processes}",
                clock.len()
            )));
        }
        clocks.push(clock);
    }

    let mut var_names = Vec::with_capacity(num_processes);
    for (p, row) in get_array(doc, "vars")?.iter().enumerate() {
        let row = row
            .as_array()
            .ok_or_else(|| bad(format!("vars[{p}] must be an array of names")))?;
        let mut names = Vec::with_capacity(row.len());
        for name in row {
            names.push(
                name.as_str()
                    .ok_or_else(|| bad(format!("vars[{p}]: names must be strings")))?
                    .to_owned(),
            );
        }
        var_names.push(names);
    }

    let mut snapshots = Vec::with_capacity(num_processes);
    for (p, rows) in get_array(doc, "snapshots")?.iter().enumerate() {
        let rows = rows
            .as_array()
            .ok_or_else(|| bad(format!("snapshots[{p}] must be an array of rows")))?;
        let mut per_process = Vec::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            let row = row
                .as_array()
                .ok_or_else(|| bad(format!("snapshots[{p}][{i}] must be an array")))?;
            let mut values = Vec::with_capacity(row.len());
            for value in row {
                values.push(value_from(value, num_processes)?);
            }
            per_process.push(values);
        }
        snapshots.push(per_process);
    }

    Ok(SlicerState {
        num_processes,
        base,
        event_procs,
        holds,
        clocks,
        var_names,
        snapshots,
        messages: pair_vec(field(doc, "messages")?, "messages")?,
        settled_edges: pair_vec(field(doc, "settled_edges")?, "settled_edges")?,
        clock_revision: get_u64(doc, "clock_revision")?,
    })
}

/// Renders an optional [`GcConfig`] as `null` or `{"lag":..,"every":..}`.
pub(crate) fn gc_json(gc: &Option<GcConfig>) -> String {
    match gc {
        None => "null".to_owned(),
        Some(cfg) => JsonObject::new()
            .u64("lag", u64::from(cfg.lag))
            .u64("every", cfg.every)
            .finish(),
    }
}

/// Decodes what [`gc_json`] wrote, rejecting a zero cadence.
pub(crate) fn gc_from(value: &JsonValue) -> Result<Option<GcConfig>, BuildError> {
    match value {
        JsonValue::Null => Ok(None),
        cfg => {
            let every = get_u64(cfg, "every")?;
            if every == 0 {
                return Err(bad("gc.every must be positive"));
            }
            Ok(Some(GcConfig {
                lag: get_u32(cfg, "lag")?,
                every,
            }))
        }
    }
}

pub(crate) fn bad(detail: impl Into<String>) -> BuildError {
    BuildError::InvalidState {
        detail: detail.into(),
    }
}

pub(crate) fn u32_array(values: &[u32]) -> String {
    let mut arr = JsonArray::new();
    for &v in values {
        arr = arr.push_raw(&v.to_string());
    }
    arr.finish()
}

pub(crate) fn bool_array(values: &[bool]) -> String {
    let mut arr = JsonArray::new();
    for &v in values {
        arr = arr.push_raw(if v { "true" } else { "false" });
    }
    arr.finish()
}

pub(crate) fn pair_array(pairs: &[(u32, u32)]) -> String {
    let mut arr = JsonArray::new();
    for &(a, b) in pairs {
        arr = arr.push_raw(&format!("[{a},{b}]"));
    }
    arr.finish()
}

pub(crate) fn opt_cut_json(cut: &Option<Vec<u32>>) -> String {
    match cut {
        None => "null".to_owned(),
        Some(counts) => u32_array(counts),
    }
}

pub(crate) fn value_json(value: &Value) -> String {
    match value {
        Value::Int(v) => JsonObject::new().str("t", "int").i64("v", *v).finish(),
        Value::Bool(v) => JsonObject::new().str("t", "bool").bool("v", *v).finish(),
        Value::Pid(p) => JsonObject::new()
            .str("t", "pid")
            .u64("v", p.as_usize() as u64)
            .finish(),
    }
}

fn stats_json(stats: &MonitorStats) -> String {
    JsonObject::new()
        .u64("events", stats.events)
        .u64("messages", stats.messages)
        .u64("checks", stats.checks)
        .u64("alarms", stats.alarms)
        .u64("check_cost", stats.check_cost)
        .u64("last_check_cost", stats.last_check_cost)
        .u64("delta_cuts", stats.delta_cuts)
        .u64("peak_candidates", stats.peak_candidates)
        .u64("compactions", stats.compactions)
        .u64("dropped_events", stats.dropped_events)
        .u64("retained_peak", stats.retained_peak)
        .finish()
}

pub(crate) fn field<'a>(doc: &'a JsonValue, name: &str) -> Result<&'a JsonValue, BuildError> {
    doc.get(name)
        .ok_or_else(|| bad(format!("checkpoint is missing field {name:?}")))
}

pub(crate) fn get_u64(doc: &JsonValue, name: &str) -> Result<u64, BuildError> {
    field(doc, name)?
        .as_u64()
        .ok_or_else(|| bad(format!("field {name:?} must be a non-negative integer")))
}

pub(crate) fn get_u32(doc: &JsonValue, name: &str) -> Result<u32, BuildError> {
    let v = get_u64(doc, name)?;
    u32::try_from(v).map_err(|_| bad(format!("field {name:?} exceeds u32 range")))
}

pub(crate) fn get_array<'a>(doc: &'a JsonValue, name: &str) -> Result<&'a [JsonValue], BuildError> {
    field(doc, name)?
        .as_array()
        .ok_or_else(|| bad(format!("field {name:?} must be an array")))
}

pub(crate) fn as_u32(value: &JsonValue, what: &str) -> Result<u32, BuildError> {
    value
        .as_u64()
        .and_then(|v| u32::try_from(v).ok())
        .ok_or_else(|| bad(format!("{what}: entries must be u32 integers")))
}

pub(crate) fn u32_vec(value: &JsonValue, what: &str) -> Result<Vec<u32>, BuildError> {
    value
        .as_array()
        .ok_or_else(|| bad(format!("{what} must be an array")))?
        .iter()
        .map(|v| as_u32(v, what))
        .collect()
}

pub(crate) fn bool_vec(value: &JsonValue, what: &str) -> Result<Vec<bool>, BuildError> {
    value
        .as_array()
        .ok_or_else(|| bad(format!("{what} must be an array")))?
        .iter()
        .map(|v| {
            v.as_bool()
                .ok_or_else(|| bad(format!("{what}: entries must be bools")))
        })
        .collect()
}

pub(crate) fn pair_vec(value: &JsonValue, what: &str) -> Result<Vec<(u32, u32)>, BuildError> {
    value
        .as_array()
        .ok_or_else(|| bad(format!("{what} must be an array")))?
        .iter()
        .map(|pair| {
            let pair = pair
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| bad(format!("{what}: entries must be [send, recv] pairs")))?;
            Ok((as_u32(&pair[0], what)?, as_u32(&pair[1], what)?))
        })
        .collect()
}

pub(crate) fn opt_cut_from(value: &JsonValue, what: &str) -> Result<Option<Vec<u32>>, BuildError> {
    match value {
        JsonValue::Null => Ok(None),
        v => u32_vec(v, what).map(Some),
    }
}

pub(crate) fn value_from(value: &JsonValue, num_processes: usize) -> Result<Value, BuildError> {
    let tag = value
        .get("t")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| bad("snapshot values must be {\"t\": ..., \"v\": ...} objects"))?;
    let v = value
        .get("v")
        .ok_or_else(|| bad("snapshot value is missing \"v\""))?;
    match tag {
        "int" => {
            let f = v
                .as_f64()
                .ok_or_else(|| bad("int snapshot value must be a number"))?;
            if f.fract() != 0.0 || f.abs() > 9_007_199_254_740_992.0 {
                return Err(bad("int snapshot value must be an integer within 2^53"));
            }
            Ok(Value::Int(f as i64))
        }
        "bool" => v
            .as_bool()
            .map(Value::Bool)
            .ok_or_else(|| bad("bool snapshot value must be a bool")),
        "pid" => {
            let idx = v
                .as_u64()
                .map(|v| v as usize)
                .filter(|&v| v < num_processes)
                .ok_or_else(|| bad("pid snapshot value must name a valid process"))?;
            Ok(Value::Pid(ProcessId::new(idx)))
        }
        other => Err(bad(format!("unknown snapshot value tag {other:?}"))),
    }
}

fn stats_from(doc: &JsonValue) -> Result<MonitorStats, BuildError> {
    Ok(MonitorStats {
        events: get_u64(doc, "events")?,
        messages: get_u64(doc, "messages")?,
        checks: get_u64(doc, "checks")?,
        alarms: get_u64(doc, "alarms")?,
        check_cost: get_u64(doc, "check_cost")?,
        last_check_cost: get_u64(doc, "last_check_cost")?,
        delta_cuts: get_u64(doc, "delta_cuts")?,
        peak_candidates: get_u64(doc, "peak_candidates")?,
        compactions: get_u64(doc, "compactions")?,
        dropped_events: get_u64(doc, "dropped_events")?,
        retained_peak: get_u64(doc, "retained_peak")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::OnlineMonitor;
    use slicing_predicates::LocalPredicate;

    /// A monitor mid-run: two processes, a watched clause each, a
    /// cross-process message, one alarm already raised, GC enabled.
    fn busy_monitor() -> OnlineMonitor {
        let mut m = OnlineMonitor::new(2).with_gc(GcConfig { lag: 2, every: 64 });
        let x = m.declare_var(0, "x", Value::Int(0)).unwrap();
        let y = m.declare_var(1, "y", Value::Int(0)).unwrap();
        m.watch_int(x, "x > 1", |v| v > 1).unwrap();
        m.watch_int(y, "y > 1", |v| v > 1).unwrap();
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..5 {
            a.push(m.observe(0, &[(x, Value::Int(i))]).unwrap());
            b.push(m.observe(1, &[(y, Value::Int(i))]).unwrap());
        }
        m.message(a[1], b[2]).unwrap();
        assert!(m.check().unwrap().is_some());
        m
    }

    #[test]
    fn checkpoints_round_trip_exactly() {
        let monitor = busy_monitor();
        let state = monitor.export_state();
        let text = encode(&state, 7);
        let (decoded, metrics_seq) = decode_str(&text).unwrap();
        assert_eq!(metrics_seq, 7);
        assert_eq!(decoded, state);

        // And the restored monitor continues identically.
        let mut resumed = OnlineMonitor::from_state(&decoded).unwrap();
        let x = resumed.var(0, "x").unwrap();
        let y = resumed.var(1, "y").unwrap();
        resumed
            .restore_watch_clause(LocalPredicate::int(x, "x > 1", |v| v > 1))
            .unwrap();
        resumed
            .restore_watch_clause(LocalPredicate::int(y, "y > 1", |v| v > 1))
            .unwrap();
        let mut original = busy_monitor();
        for m in [&mut original, &mut resumed] {
            let x = m.var(0, "x").unwrap();
            m.observe(0, &[(x, Value::Int(9))]).unwrap();
        }
        assert_eq!(original.check().unwrap(), resumed.check().unwrap());
        assert_eq!(original.stats(), resumed.stats());
    }

    #[test]
    fn checkpoints_pass_the_schema_registry() {
        let text = encode(&busy_monitor().export_state(), 0);
        let doc = slicing_observe::json::parse(&text).unwrap();
        slicing_observe::schema::validate(&doc).unwrap();
    }

    #[test]
    fn pid_and_bool_values_survive_the_codec() {
        let mut m = OnlineMonitor::new(2);
        let leader = m
            .declare_var(0, "leader", Value::Pid(ProcessId::new(1)))
            .unwrap();
        let up = m.declare_var(0, "up", Value::Bool(true)).unwrap();
        m.observe(
            0,
            &[
                (leader, Value::Pid(ProcessId::new(0))),
                (up, Value::Bool(false)),
            ],
        )
        .unwrap();
        let state = m.export_state();
        let (decoded, _) = decode_str(&encode(&state, 0)).unwrap();
        assert_eq!(decoded, state);
    }

    #[test]
    fn corrupt_documents_are_rejected_with_typed_errors() {
        let text = encode(&busy_monitor().export_state(), 3);

        let reject = |mutate: &dyn Fn(&str) -> String, needle: &str| {
            let err = decode_str(&mutate(&text)).unwrap_err();
            let msg = err.to_string();
            assert!(
                matches!(err, BuildError::InvalidState { .. }) && msg.contains(needle),
                "expected InvalidState mentioning {needle:?}, got: {msg}"
            );
        };

        reject(
            &|t| t.replace("slicing.checkpoint/v1", "slicing.metrics/v1"),
            "schema",
        );
        reject(
            &|t| t.replace("\"processes\":2", "\"processes\":0"),
            "processes",
        );
        reject(
            &|t| t.replace("\"dirty_any\":", "\"renamed\":"),
            "dirty_any",
        );
        reject(&|t| t.replace("\"t\":\"int\"", "\"t\":\"float\""), "tag");
        reject(&|t| t.replace("\"every\":64", "\"every\":0"), "every");
        assert!(decode_str("not json").is_err());
        assert!(decode_str("[1,2,3]").is_err());
    }
}
