//! Polynomial-space detection by reverse-search enumeration.
//!
//! The paper points to Alagar and Venkatesan's linear-space lattice
//! traversal as an orthogonal technique that can be combined with slicing.
//! This module implements a polynomial-space enumeration in the same
//! spirit: a *reverse search* over a canonical spanning tree of the cut
//! lattice. Each non-bottom cut has a unique canonical parent (remove its
//! maximal event with the largest process index), so depth-first traversal
//! of the tree needs **no visited set** — memory is `O(n · depth)` instead
//! of exponential.

use std::time::Instant;

use slicing_computation::{Computation, Cut, GlobalState, ProcessId};
use slicing_predicates::Predicate;

use crate::metrics::{AbortReason, Detection, Limits, Tracker};

/// `true` if the frontier event of `p` in `cut` is maximal: no other event
/// of the cut causally follows it.
fn frontier_is_maximal(comp: &Computation, cut: &Cut, p: ProcessId) -> bool {
    let cp = cut.count(p);
    if cp < 2 {
        return false; // initial events are never removable
    }
    comp.processes().all(|q| {
        if q == p {
            return true;
        }
        let fq = comp.frontier(cut, q);
        comp.min_cut(fq).count(p) < cp
    })
}

/// The canonical removal process of a non-bottom cut: the maximal frontier
/// event with the largest process index.
fn canonical_removal(comp: &Computation, cut: &Cut) -> Option<ProcessId> {
    (0..comp.num_processes())
        .rev()
        .map(ProcessId::new)
        .find(|&p| frontier_is_maximal(comp, cut, p))
}

/// Detects `possibly: pred` over the computation's cut lattice using
/// reverse search: polynomial space, no stored cut set.
///
/// Explores every consistent cut exactly once. Compared with
/// [`detect_bfs`](crate::detect_bfs) it trades the visited set (and the
/// early-exit ordering of BFS) for `O(n·|E|)` worst-case memory.
pub fn detect_reverse_search<P: Predicate + ?Sized>(
    comp: &Computation,
    pred: &P,
    limits: &Limits,
) -> Detection {
    let _span = slicing_observe::span("detect.reverse");
    let start = Instant::now();
    let mut tracker = Tracker::default();
    let n = comp.num_processes();
    let frame_bytes = (std::mem::size_of::<Cut>() + 4 * n + 8) as u64;

    // Explicit DFS over the canonical spanning tree: frames hold the cut
    // and the next process index to try extending with.
    let mut stack: Vec<(Cut, usize)> = vec![(Cut::bottom(n), 0)];
    tracker.store_cut(frame_bytes);

    // Visit the bottom cut.
    tracker.cuts_explored += 1;
    match pred.try_eval(&GlobalState::new(comp, &Cut::bottom(n))) {
        Ok(true) => return tracker.finish(Some(Cut::bottom(n)), start.elapsed(), None),
        Ok(false) => {}
        Err(_) => return tracker.finish(None, start.elapsed(), Some(AbortReason::PredicateError)),
    }

    while let Some((cut, next_p)) = stack.last_mut() {
        let mut advanced = None;
        for i in *next_p..n {
            let p = ProcessId::new(i);
            if !comp.can_advance(cut, p) {
                continue;
            }
            let mut child = cut.clone();
            child.set_count(p, cut.count(p) + 1);
            // Child belongs to this parent iff removing the canonical
            // maximal event undoes exactly this advance.
            if canonical_removal(comp, &child) == Some(p) {
                *next_p = i + 1;
                advanced = Some(child);
                break;
            }
        }
        match advanced {
            Some(child) => {
                tracker.cuts_explored += 1;
                match pred.try_eval(&GlobalState::new(comp, &child)) {
                    Ok(true) => return tracker.finish(Some(child), start.elapsed(), None),
                    Ok(false) => {}
                    Err(_) => {
                        return tracker.finish(
                            None,
                            start.elapsed(),
                            Some(AbortReason::PredicateError),
                        )
                    }
                }
                if let Some(reason) = tracker.over_limit(limits, start) {
                    return tracker.finish(None, start.elapsed(), Some(reason));
                }
                stack.push((child, 0));
                tracker.store_cut(frame_bytes);
            }
            None => {
                slicing_observe::counter("detect.reverse.backtracks", 1);
                stack.pop();
                tracker.drop_cut(frame_bytes);
            }
        }
    }
    tracker.finish(None, start.elapsed(), None)
}

/// Detects `possibly: pred` over a **slice's** cut lattice in polynomial
/// space — the paper's remark that "Alagar and Venkatesan's polynomial
/// space algorithm … can also be used for searching the state-space of a
/// slice", combining both reductions.
///
/// States are slice cuts; the spanning tree adds one *meta-event* at a
/// time (meta-events are atomic in slice cuts), with the canonical parent
/// removing the maximal meta-event whose first member event has the
/// largest id.
pub fn detect_reverse_search_slice<P: Predicate + ?Sized>(
    slice: &slicing_core::Slice<'_>,
    pred: &P,
    limits: &Limits,
) -> Detection {
    let _span = slicing_observe::span("detect.reverse_slice");
    let start = Instant::now();
    let mut tracker = Tracker::default();
    let comp = slice.computation();
    let n = comp.num_processes();
    let frame_bytes = (std::mem::size_of::<Cut>() + 4 * n + 8) as u64;

    let Some(bottom) = slice.bottom_cut().cloned() else {
        return tracker.finish(None, start.elapsed(), None);
    };

    // Meta-events in topological order; per meta: members, per-process
    // span, and its least slice cut (down closure).
    let metas = slice.meta_events();
    struct Meta {
        size: u32,
        /// Per process: (min position, max position) of member events, if
        /// any.
        span: Vec<Option<(u32, u32)>>,
        /// Least slice cut containing the meta.
        closure: Cut,
        key: slicing_computation::EventId,
    }
    let metas: Vec<Meta> = metas
        .iter()
        .map(|members| {
            let mut span: Vec<Option<(u32, u32)>> = vec![None; n];
            for &e in members {
                let p = comp.process_of(e).as_usize();
                let pos = comp.position_of(e);
                span[p] = Some(match span[p] {
                    None => (pos, pos),
                    Some((lo, hi)) => (lo.min(pos), hi.max(pos)),
                });
            }
            Meta {
                size: members.len() as u32,
                span,
                closure: slice
                    .least_cut(members[0])
                    .expect("meta members appear in cuts")
                    .clone(),
                key: members[0],
            }
        })
        // Metas inside the bottom cut are in every slice cut: neither
        // addable nor removable.
        .filter(|m| !m.closure.leq(&bottom))
        .collect();

    // A meta is addable to cut C iff joining its closure adds exactly its
    // own events.
    let addable = |cut: &Cut, m: &Meta| -> Option<Cut> {
        // Quick reject: already included?
        if m.closure.leq(cut) {
            return None;
        }
        let joined = cut.join(&m.closure);
        if joined.size() == cut.size() + u64::from(m.size) {
            Some(joined)
        } else {
            None
        }
    };

    // A meta is maximal in cut C iff its events sit at the top of their
    // processes in C and no frontier event of C outside the meta requires
    // it.
    let is_maximal = |cut: &Cut, m: &Meta| -> bool {
        if !m.closure.leq(cut) {
            return false;
        }
        for p in comp.processes() {
            if let Some((_, hi)) = m.span[p.as_usize()] {
                if cut.count(p) != hi + 1 {
                    return false;
                }
            }
        }
        // No other frontier reaches into the meta.
        for q in comp.processes() {
            let f = comp.frontier(cut, q);
            let fp = comp.process_of(f).as_usize();
            if m.span[fp].is_some_and(|(lo, _)| comp.position_of(f) >= lo) {
                continue; // f is inside the meta itself
            }
            let jf = slice.least_cut(f).expect("frontier events appear in cuts");
            for p in comp.processes() {
                if let Some((lo, _)) = m.span[p.as_usize()] {
                    if jf.count(p) > lo {
                        return false;
                    }
                }
            }
        }
        true
    };

    let canonical_removal = |cut: &Cut| -> Option<usize> {
        metas
            .iter()
            .enumerate()
            .filter(|(_, m)| is_maximal(cut, m))
            .max_by_key(|(_, m)| m.key)
            .map(|(i, _)| i)
    };

    let mut stack: Vec<(Cut, usize)> = vec![(bottom.clone(), 0)];
    tracker.store_cut(frame_bytes);
    tracker.cuts_explored += 1;
    match pred.try_eval(&GlobalState::new(comp, &bottom)) {
        Ok(true) => return tracker.finish(Some(bottom), start.elapsed(), None),
        Ok(false) => {}
        Err(_) => return tracker.finish(None, start.elapsed(), Some(AbortReason::PredicateError)),
    }

    while let Some((cut, next_i)) = stack.last_mut() {
        let mut advanced = None;
        #[allow(clippy::needless_range_loop)] // the index is the tree-edge identity
        for i in *next_i..metas.len() {
            let Some(child) = addable(cut, &metas[i]) else {
                continue;
            };
            if canonical_removal(&child) == Some(i) {
                *next_i = i + 1;
                advanced = Some(child);
                break;
            }
        }
        match advanced {
            Some(child) => {
                tracker.cuts_explored += 1;
                match pred.try_eval(&GlobalState::new(comp, &child)) {
                    Ok(true) => return tracker.finish(Some(child), start.elapsed(), None),
                    Ok(false) => {}
                    Err(_) => {
                        return tracker.finish(
                            None,
                            start.elapsed(),
                            Some(AbortReason::PredicateError),
                        )
                    }
                }
                if let Some(reason) = tracker.over_limit(limits, start) {
                    return tracker.finish(None, start.elapsed(), Some(reason));
                }
                stack.push((child, 0));
                tracker.store_cut(frame_bytes);
            }
            None => {
                slicing_observe::counter("detect.reverse.backtracks", 1);
                stack.pop();
                tracker.drop_cut(frame_bytes);
            }
        }
    }
    tracker.finish(None, start.elapsed(), None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_computation::lattice::count_cuts;
    use slicing_computation::oracle::satisfying_cuts;
    use slicing_computation::test_fixtures::{figure1, grid, random_computation, RandomConfig};
    use slicing_computation::ProcSet;
    use slicing_predicates::{expr::parse_predicate, FnPredicate};

    #[test]
    fn enumerates_every_cut_exactly_once() {
        for (a, b) in [(2, 3), (4, 4), (1, 5)] {
            let comp = grid(a, b);
            let never = FnPredicate::new(ProcSet::all(2), "false", |_| false);
            let d = detect_reverse_search(&comp, &never, &Limits::none());
            assert_eq!(d.cuts_explored, count_cuts(&comp, None).value(), "{a}x{b}");
        }
        let comp = figure1();
        let never = FnPredicate::new(ProcSet::all(3), "false", |_| false);
        let d = detect_reverse_search(&comp, &never, &Limits::none());
        assert_eq!(d.cuts_explored, 28);
    }

    #[test]
    fn exact_count_on_random_computations() {
        let cfg = RandomConfig {
            processes: 4,
            events_per_process: 3,
            send_percent: 50,
            recv_percent: 50,
            ..RandomConfig::default()
        };
        for seed in 0..20 {
            let comp = random_computation(seed, &cfg);
            let never = FnPredicate::new(ProcSet::all(4), "false", |_| false);
            let d = detect_reverse_search(&comp, &never, &Limits::none());
            assert_eq!(
                d.cuts_explored,
                count_cuts(&comp, None).value(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn agrees_with_oracle_on_detection() {
        let cfg = RandomConfig {
            processes: 3,
            events_per_process: 4,
            value_range: 3,
            ..RandomConfig::default()
        };
        for seed in 0..25 {
            let comp = random_computation(seed, &cfg);
            let x0 = comp.var(comp.process(0), "x").unwrap();
            let x2 = comp.var(comp.process(2), "x").unwrap();
            let t = (seed % 4) as i64;
            let pred = FnPredicate::new(ProcSet::all(3), "x0 * x2 == t", move |st| {
                st.get(x0).expect_int() * st.get(x2).expect_int() == t
            });
            let d = detect_reverse_search(&comp, &pred, &Limits::none());
            let oracle = !satisfying_cuts(&comp, |st| pred.eval(st)).is_empty();
            assert_eq!(d.detected(), oracle, "seed {seed}");
        }
    }

    #[test]
    fn memory_stays_polynomial() {
        // A 10×10 grid has 121 cuts but depth ≤ 21: far fewer stored
        // frames than BFS would store cuts.
        let comp = grid(10, 10);
        let never = FnPredicate::new(ProcSet::all(2), "false", |_| false);
        let d = detect_reverse_search(&comp, &never, &Limits::none());
        assert_eq!(d.cuts_explored, 121);
        assert!(d.max_stored_cuts <= 22, "stored {}", d.max_stored_cuts);
        let bfs = crate::detect_bfs(&comp, &comp, &never, &Limits::none());
        assert!(d.peak_bytes < bfs.peak_bytes);
    }

    #[test]
    fn finds_witnesses() {
        let comp = figure1();
        let pred = parse_predicate(&comp, "x1@0 > 1 && x3@2 <= 3").unwrap();
        let d = detect_reverse_search(&comp, &pred, &Limits::none());
        assert!(d.detected());
    }

    #[test]
    fn respects_cut_limit() {
        let comp = grid(8, 8);
        let never = FnPredicate::new(ProcSet::all(2), "false", |_| false);
        let d = detect_reverse_search(&comp, &never, &Limits::cuts(10));
        assert!(!d.completed());
    }

    #[test]
    fn slice_reverse_search_enumerates_exactly_the_slice_cuts() {
        use slicing_core::{slice_conjunctive, Slice};
        use slicing_predicates::{Conjunctive, LocalPredicate};

        // Across random computations and predicates, the polynomial-space
        // traversal of the slice visits exactly count_cuts(slice) cuts.
        let cfg = RandomConfig {
            processes: 3,
            events_per_process: 4,
            send_percent: 40,
            recv_percent: 40,
            value_range: 3,
        };
        for seed in 0..30 {
            let comp = random_computation(seed, &cfg);
            let clauses: Vec<LocalPredicate> = comp
                .processes()
                .map(|p| {
                    let x = comp.var(p, "x").unwrap();
                    let t = (seed % 3) as i64;
                    LocalPredicate::int(x, format!("x != {t}"), move |v| v != t)
                })
                .collect();
            let pred = Conjunctive::new(clauses);
            let slice = slice_conjunctive(&comp, &pred);
            let never = FnPredicate::new(ProcSet::all(3), "false", |_| false);
            let d = detect_reverse_search_slice(&slice, &never, &Limits::none());
            assert_eq!(
                d.cuts_explored,
                slice.count_cuts(None).value(),
                "seed {seed}"
            );
            // The full slice degenerates to plain reverse search.
            let full = Slice::full(&comp);
            let d = detect_reverse_search_slice(&full, &never, &Limits::none());
            assert_eq!(
                d.cuts_explored,
                count_cuts(&comp, None).value(),
                "seed {seed} full"
            );
        }
    }

    #[test]
    fn slice_reverse_search_detects_like_bfs() {
        use slicing_core::slice_klocal;
        use slicing_predicates::KLocalPredicate;

        let cfg = RandomConfig {
            processes: 3,
            events_per_process: 3,
            send_percent: 40,
            recv_percent: 40,
            value_range: 3,
        };
        for seed in 0..25 {
            let comp = random_computation(seed, &cfg);
            let x0 = comp.var(comp.process(0), "x").unwrap();
            let x1 = comp.var(comp.process(1), "x").unwrap();
            let kl = KLocalPredicate::new(vec![x0, x1], "x0 != x1", |v| v[0] != v[1]);
            let slice = slice_klocal(&comp, &kl);
            let rev = detect_reverse_search_slice(&slice, &kl, &Limits::none());
            let bfs = crate::detect_bfs(&slice, &comp, &kl, &Limits::none());
            assert_eq!(rev.detected(), bfs.detected(), "seed {seed}");
        }
    }

    #[test]
    fn slice_reverse_search_on_empty_slice() {
        let comp = grid(2, 2);
        let slice = slicing_core::Slice::empty(&comp);
        let always = FnPredicate::new(ProcSet::all(2), "true", |_| true);
        let d = detect_reverse_search_slice(&slice, &always, &Limits::none());
        assert!(!d.detected());
        assert_eq!(d.cuts_explored, 0);
    }

    #[test]
    fn slice_reverse_search_memory_stays_small() {
        use slicing_core::Slice;
        let comp = grid(8, 8);
        let slice = Slice::full(&comp);
        let never = FnPredicate::new(ProcSet::all(2), "false", |_| false);
        let rev = detect_reverse_search_slice(&slice, &never, &Limits::none());
        let bfs = crate::detect_bfs(&slice, &comp, &never, &Limits::none());
        assert_eq!(rev.cuts_explored, bfs.cuts_explored);
        assert!(rev.peak_bytes < bfs.peak_bytes);
    }
}
