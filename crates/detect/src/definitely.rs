//! Detection under the `definitely` modality.
//!
//! `definitely: b` holds when **every** observation of the computation
//! (every path from the initial cut to the final cut in the lattice)
//! passes through a cut satisfying `b` — the dual question to
//! `possibly: b`. The paper notes slicing applies to this modality too;
//! here we provide the classic lattice algorithm as an extension.

use std::collections::VecDeque;
use std::time::Instant;

use slicing_computation::{Computation, Cut, CutSet, CutSpace, GlobalState};
use slicing_predicates::Predicate;

use crate::metrics::{emit_visited_stats, AbortReason, Detection, Limits, Tracker};

/// Decides `definitely: pred` by searching for a `¬pred` path from the
/// initial cut to the final cut: such a path exists iff the predicate is
/// *not* definitely true.
///
/// The returned [`Detection`] reports the *witness against* definiteness:
/// `found = Some(top)` means a `¬pred` observation exists (so
/// `definitely` is false); `found = None` with `completed()` means
/// `definitely: pred` holds. Use [`definitely`] for the boolean answer.
pub fn detect_not_definitely<P: Predicate + ?Sized>(
    comp: &Computation,
    pred: &P,
    limits: &Limits,
) -> Detection {
    let _span = slicing_observe::span("detect.definitely");
    let start = Instant::now();
    let mut tracker = Tracker::default();
    let n = comp.num_processes();
    let entry_bytes = Tracker::hash_entry_bytes(n);
    let top = comp.top_cut();

    let bottom = Cut::bottom(n);
    // If the initial cut satisfies pred, every observation starts with a
    // satisfying cut: definitely holds, no counter-path exists.
    match pred.try_eval(&GlobalState::new(comp, &bottom)) {
        Ok(true) => return tracker.finish(None, start.elapsed(), None),
        Ok(false) => {}
        Err(_) => return tracker.finish(None, start.elapsed(), Some(AbortReason::PredicateError)),
    }

    let mut visited = CutSet::new(n);
    let mut queue: VecDeque<Cut> = VecDeque::new();
    visited.insert(&bottom);
    tracker.store_cut(entry_bytes);
    queue.push_back(bottom);

    let mut succ = Vec::new();
    let mut found = None;
    let mut aborted = None;
    'search: while let Some(cut) = queue.pop_front() {
        tracker.cuts_explored += 1;
        if cut == top {
            // Reached the final cut through ¬pred cuts only.
            found = Some(cut);
            break;
        }
        if let Some(reason) = tracker.over_limit(limits, start) {
            aborted = Some(reason);
            break;
        }
        succ.clear();
        CutSpace::successors(comp, &cut, &mut succ);
        for next in succ.drain(..) {
            match pred.try_eval(&GlobalState::new(comp, &next)) {
                Ok(true) => continue, // paths through satisfying cuts don't refute
                Ok(false) => {}
                Err(_) => {
                    aborted = Some(AbortReason::PredicateError);
                    break 'search;
                }
            }
            if visited.insert(&next) {
                tracker.store_cut(entry_bytes);
                queue.push_back(next);
            }
        }
        if visited.saturated() {
            aborted = Some(AbortReason::ArenaFull);
            break;
        }
    }
    emit_visited_stats(visited.stats());
    tracker.finish(found, start.elapsed(), aborted)
}

/// Boolean form of [`detect_not_definitely`]: `true` iff every observation
/// passes through a satisfying cut.
///
/// # Panics
///
/// Panics if the search aborts on a limit (pass generous [`Limits`]).
pub fn definitely<P: Predicate + ?Sized>(comp: &Computation, pred: &P, limits: &Limits) -> bool {
    let d = detect_not_definitely(comp, pred, limits);
    assert!(
        d.completed(),
        "definitely-detection hit a resource limit; result unknown"
    );
    !d.detected()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_computation::lattice::all_cuts;
    use slicing_computation::test_fixtures::{figure1, grid, random_computation, RandomConfig};
    use slicing_computation::ProcSet;
    use slicing_predicates::{expr::parse_predicate, FnPredicate};

    /// Brute-force `definitely`: DFS over maximal chains.
    fn definitely_oracle(comp: &Computation, pred: &dyn Predicate) -> bool {
        // A ¬pred path from bottom to top exists iff not definitely.
        fn reach(comp: &Computation, pred: &dyn Predicate, cut: &Cut, top: &Cut) -> bool {
            if pred.eval(&GlobalState::new(comp, cut)) {
                return false;
            }
            if cut == top {
                return true;
            }
            let mut succ = Vec::new();
            CutSpace::successors(comp, cut, &mut succ);
            succ.iter().any(|s| reach(comp, pred, s, top))
        }
        !reach(
            comp,
            pred,
            &Cut::bottom(comp.num_processes()),
            &comp.top_cut(),
        )
    }

    #[test]
    fn constant_predicates() {
        let comp = grid(2, 2);
        let always = FnPredicate::new(ProcSet::all(2), "true", |_| true);
        let never = FnPredicate::new(ProcSet::all(2), "false", |_| false);
        assert!(definitely(&comp, &always, &Limits::none()));
        assert!(!definitely(&comp, &never, &Limits::none()));
    }

    #[test]
    fn synchronization_point_is_definite() {
        // p0 sends to p1 halfway: "message sent but not received" is NOT
        // definite (the receive can follow the send immediately on one
        // path, but... actually every observation passes through the cut
        // just after the send and before the receive). Verify against the
        // oracle rather than intuition.
        let mut b = slicing_computation::ComputationBuilder::new(2);
        let s = b.append_event(b.process(0));
        let r = b.append_event(b.process(1));
        b.message(s, r).unwrap();
        let comp = b.build().unwrap();
        let p0 = comp.process(0);
        let p1 = comp.process(1);
        let pred = FnPredicate::new(ProcSet::all(2), "in transit", move |st| {
            st.in_transit(p0, p1) == 1
        });
        assert_eq!(
            definitely(&comp, &pred, &Limits::none()),
            definitely_oracle(&comp, &pred)
        );
        // Here it is in fact definite: the receive cannot precede the send.
        assert!(definitely(&comp, &pred, &Limits::none()));
    }

    #[test]
    fn possibly_but_not_definitely() {
        // In a 1×1 grid, "p0 advanced but p1 did not" is possible but not
        // definite (the observation advancing p1 first avoids it).
        let comp = grid(1, 1);
        let pred = FnPredicate::new(ProcSet::all(2), "p0 only", |st| {
            let c = st.cut();
            c.counts() == [2, 1]
        });
        assert!(!definitely(&comp, &pred, &Limits::none()));
        let found = all_cuts(&comp).iter().any(|c| c.counts() == [2, 1]);
        assert!(found);
    }

    #[test]
    fn agrees_with_oracle_on_random_instances() {
        let cfg = RandomConfig {
            processes: 3,
            events_per_process: 3,
            value_range: 2,
            ..RandomConfig::default()
        };
        for seed in 0..30 {
            let comp = random_computation(seed, &cfg);
            let pred = parse_predicate(&comp, "x@0 == 1 || x@1 == x@2 - 1").unwrap();
            assert_eq!(
                definitely(&comp, &pred, &Limits::none()),
                definitely_oracle(&comp, &pred),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn figure1_conjunction_is_not_definite() {
        let comp = figure1();
        let pred = parse_predicate(&comp, "x1@0 > 1 && x3@2 <= 3").unwrap();
        // An observation can rush p3 to z (x3 = 6) before p1 moves... z
        // requires g which requires w; the cut (1,3,3) has x3 = 2 and
        // x1 = 2, satisfying the predicate. Check the oracle.
        assert_eq!(
            definitely(&comp, &pred, &Limits::none()),
            definitely_oracle(&comp, &pred)
        );
    }

    #[test]
    #[should_panic(expected = "resource limit")]
    fn limit_hit_panics_in_boolean_form() {
        let comp = grid(6, 6);
        let never = FnPredicate::new(ProcSet::all(2), "false", |_| false);
        let _ = definitely(&comp, &never, &Limits::cuts(3));
    }
}
