//! Predicate multiplexing: many conjunctive predicates, one event stream.
//!
//! A production monitor watches thousands of expressions (per-user alerts,
//! per-shard invariants) over the same firehose. Running one
//! [`OnlineMonitor`](crate::OnlineMonitor) per predicate repeats all the
//! shared work: every monitor re-times the same clocks, re-evaluates the
//! same local clauses, and re-stores the same candidate events. The
//! [`MonitorHub`] factors that sharing out, exploiting the same structure
//! the grafting algebra does (a conjunction's slice is the edge-union of
//! its conjuncts' slices, keyed by [`GraftKey`]):
//!
//! - **one** watch-free [`OnlineSlicer`] keeps vector clocks, messages,
//!   and the stability-GC machinery for every tenant;
//! - each **distinct clause** (process + label) is evaluated once per
//!   event, however many tenants reference it;
//! - clauses of one predicate on one process form a **slot** — a shared,
//!   append-only stream of candidate positions keyed by [`GraftKey`], so
//!   tenants watching the same per-process conjunct bundle share storage;
//! - each **group** (distinct predicate) runs the Garg–Waldecker
//!   candidate-elimination settle over its slots' streams with a private
//!   cursor per slot — byte-identical alarms, witnesses, and check-work
//!   counters to a standalone [`OnlineMonitor`](crate::OnlineMonitor);
//! - **tenants** map onto groups; N tenants watching the same predicate
//!   cost one group. Alarms fan out over bounded channels that drop
//!   laggards rather than ever blocking ingestion.
//!
//! # Examples
//!
//! ```
//! use slicing_computation::Value;
//! use slicing_detect::MonitorHub;
//! use slicing_predicates::{Conjunctive, LocalPredicate};
//!
//! let mut hub = MonitorHub::new(2);
//! let a = hub.declare_var(0, "x", Value::Int(0))?;
//! let b = hub.declare_var(1, "x", Value::Int(0))?;
//! let pred = |a, b| {
//!     Conjunctive::new(vec![
//!         LocalPredicate::int(a, "x@0 > 0", |v| v > 0),
//!         LocalPredicate::int(b, "x@1 > 0", |v| v > 0),
//!     ])
//! };
//! hub.add_tenant("alice", &pred(a, b), "x@0 > 0 && x@1 > 0")?;
//! hub.add_tenant("bob", &pred(a, b), "x@0 > 0 && x@1 > 0")?; // shares everything
//! assert_eq!(hub.group_count(), 1);
//!
//! hub.observe(0, &[(a, Value::Int(1))])?;
//! hub.observe(1, &[(b, Value::Int(2))])?;
//! let alarms = hub.check_all();
//! assert_eq!(alarms.len(), 1); // one distinct predicate fired ...
//! assert_eq!(alarms[0].tenants.len(), 2); // ... for both tenants
//! # Ok::<(), slicing_computation::BuildError>(())
//! ```

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;

use slicing_computation::{BuildError, Cut, EventId, ProcessId, Value, VarRef};
use slicing_core::{GraftKey, OnlineSlicer, SlicerState};
use slicing_predicates::{Conjunctive, LocalPredicate};

use crate::monitor::GcConfig;

/// Deterministic counters describing a hub's work so far — pure event and
/// probe counts, no wall-clock, so the numbers gate CI. The headline claim
/// is that `events + clause_evals + check_cost` grows **sublinearly** in
/// tenant count when predicates overlap, versus the linear sum of
/// independent monitors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HubStats {
    /// Events observed (excluding the fictitious initial events).
    pub events: u64,
    /// Messages recorded.
    pub messages: u64,
    /// Calls to [`MonitorHub::check_all`].
    pub checks: u64,
    /// Distinct alarms reported, summed over groups.
    pub alarms: u64,
    /// Total settle work (candidate-pair probes + alarm joins), summed
    /// over all groups and checks.
    pub check_cost: u64,
    /// Distinct local-clause evaluations. Each (process, label) clause is
    /// evaluated at most once per event, however many tenants use it.
    pub clause_evals: u64,
    /// Candidate positions appended to slot streams (each is shared by
    /// every group referencing the slot).
    pub delta_cuts: u64,
    /// Peak number of candidate positions stored across all slots.
    pub peak_candidates: u64,
    /// Garbage collections that actually reclaimed storage.
    pub compactions: u64,
    /// Events whose storage stability GC reclaimed.
    pub dropped_events: u64,
    /// Peak retained-event gauge observed across GC runs.
    pub retained_peak: u64,
    /// Alarms delivered into subscriber channels.
    pub fanout_sent: u64,
    /// Alarms dropped because a subscriber's channel was full — the
    /// laggard-degradation path (`serve.tenants.dropped`). Ingestion never
    /// blocks on a slow consumer.
    pub fanout_dropped: u64,
}

/// An alarm as fanned out to subscribers: one [`Arc`]'d instance per
/// distinct (group, cut), shared by every tenant channel it lands in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HubAlarm {
    /// The predicate source the alarming group was registered under.
    pub predicate: String,
    /// The least consistent cut satisfying every conjunct.
    pub cut: Cut,
    /// Hub events observed when the alarm settled.
    pub events: u64,
}

/// A newly settled alarm returned by [`MonitorHub::check_all`], with the
/// tenants it applies to.
#[derive(Debug, Clone)]
pub struct AlarmReport {
    /// The alarming group (pass to [`MonitorHub::acknowledge`]).
    pub group: u32,
    /// Tenant ids subscribed to the group, in registration order.
    pub tenants: Vec<String>,
    /// The shared alarm payload.
    pub alarm: Arc<HubAlarm>,
}

/// One distinct local clause, identified by (process, label). The closure
/// is absent between [`MonitorHub::from_state`] and the
/// [`restore_tenant`](MonitorHub::restore_tenant) call that re-registers
/// it.
#[derive(Debug)]
struct Clause {
    process: usize,
    label: String,
    pred: Option<LocalPredicate>,
    /// Memo: the event generation `truth` was computed for.
    gen: u64,
    truth: bool,
}

/// A shared per-process conjunct bundle: the append-only stream of
/// positions where every clause of the bundle held. Groups keep private
/// cursors (absolute indices) into the stream; `start` counts candidates
/// trimmed from the front once no cursor can reach them.
#[derive(Debug)]
struct Slot {
    key: GraftKey,
    process: usize,
    clauses: Vec<u32>,
    start: u64,
    candidates: VecDeque<u32>,
    /// Groups referencing this slot.
    refs: Vec<u32>,
    alive: bool,
}

impl Slot {
    fn total(&self) -> u64 {
        self.start + self.candidates.len() as u64
    }
}

/// One distinct predicate: per-slot cursors plus the settle state of an
/// [`OnlineMonitor`](crate::OnlineMonitor), replicated field for field so
/// alarms, witnesses, and work counters match a standalone monitor.
#[derive(Debug)]
struct Group {
    key: GraftKey,
    source: String,
    /// Per process: the slot watched there, if any.
    slot_of: Vec<Option<u32>>,
    /// Per process: absolute cursor into the slot's candidate stream.
    fronts: Vec<u64>,
    dirty: Vec<bool>,
    dirty_any: bool,
    seen_revision: u64,
    current_alarm: Option<Cut>,
    last_alarm: Option<Cut>,
    check_cost: u64,
    alarms: u64,
    tenants: Vec<String>,
    subscribers: Vec<(String, SyncSender<Arc<HubAlarm>>)>,
    active: bool,
}

struct TenantInfo {
    group: u32,
    source: String,
}

/// A multi-tenant online monitor: thousands of conjunctive predicates over
/// one event stream, sharing clocks, clause evaluations, and candidate
/// storage. The module-level comment describes the sharing model;
/// [`MonitorHub::check_all`] states the alarm contract.
pub struct MonitorHub {
    slicer: OnlineSlicer,
    /// Current value of every declared variable, `values[p][var.index()]`
    /// — the mirror distinct clauses are evaluated against (once per
    /// event, not once per tenant).
    values: Vec<Vec<Value>>,
    clauses: Vec<Clause>,
    clause_index: HashMap<(usize, String), u32>,
    slots: Vec<Slot>,
    slot_index: HashMap<GraftKey, u32>,
    slots_by_proc: Vec<Vec<u32>>,
    groups: Vec<Group>,
    group_index: HashMap<GraftKey, u32>,
    tenants: HashMap<String, TenantInfo>,
    alarm_scratch: Cut,
    values_scratch: Vec<Value>,
    /// Candidate positions currently stored across live slots (running
    /// counter backing `stats.peak_candidates`).
    live_candidates: u64,
    stats: HubStats,
    gc: Option<GcConfig>,
    since_gc: u64,
}

/// A serializable snapshot of one slot; see [`HubState`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotState {
    /// Owning process.
    pub process: u32,
    /// Clause ids (indices into [`HubState::clauses`]).
    pub clauses: Vec<u32>,
    /// Candidates trimmed from the front of the stream.
    pub start: u64,
    /// Live candidate positions (absolute, strictly increasing).
    pub candidates: Vec<u32>,
}

/// A serializable snapshot of one group; see [`HubState`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupState {
    /// Representative predicate source (alarm display).
    pub source: String,
    /// Slot ids (indices into [`HubState::slots`]), at most one per
    /// process.
    pub slots: Vec<u32>,
    /// Absolute cursor per slot, aligned with `slots`.
    pub fronts: Vec<u64>,
    /// Per process: head changed since the last settle.
    pub dirty: Vec<bool>,
    /// Any head changed since the last settle.
    pub dirty_any: bool,
    /// Slicer clock revision at the last settle.
    pub seen_revision: u64,
    /// Settled verdict, absolute counts.
    pub current_alarm: Option<Vec<u32>>,
    /// Last reported alarm, for dedup.
    pub last_alarm: Option<Vec<u32>>,
    /// Settle work accumulated by this group.
    pub check_cost: u64,
    /// Distinct alarms this group reported.
    pub alarms: u64,
}

/// A serializable snapshot of one tenant registration; see [`HubState`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantState {
    /// Tenant id.
    pub id: String,
    /// Group id (index into [`HubState::groups`]).
    pub group: u32,
    /// The predicate source to re-parse on resume.
    pub source: String,
}

/// A serializable snapshot of a [`MonitorHub`] — everything but the clause
/// closures, which [`restore_tenant`](MonitorHub::restore_tenant)
/// re-registers. The JSON codec lives in
/// [`serve_checkpoint`](crate::serve_checkpoint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HubState {
    /// The underlying slicer's retained state.
    pub slicer: SlicerState,
    /// Current variable values, `values[p][index]`.
    pub values: Vec<Vec<Value>>,
    /// Distinct clauses as (process, label); closures restored separately.
    pub clauses: Vec<(u32, String)>,
    /// Live slots.
    pub slots: Vec<SlotState>,
    /// Live groups.
    pub groups: Vec<GroupState>,
    /// Tenant registrations.
    pub tenants: Vec<TenantState>,
    /// Deterministic work counters.
    pub stats: HubStats,
    /// Stability GC configuration, if enabled.
    pub gc: Option<GcConfig>,
    /// Events observed since the last GC run.
    pub since_gc: u64,
}

fn invalid(detail: String) -> BuildError {
    BuildError::InvalidState { detail }
}

impl MonitorHub {
    /// Creates a hub over `num_processes` processes.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`OnlineSlicer::new`].
    pub fn new(num_processes: usize) -> Self {
        MonitorHub {
            slicer: OnlineSlicer::new(num_processes),
            values: vec![Vec::new(); num_processes],
            clauses: Vec::new(),
            clause_index: HashMap::new(),
            slots: Vec::new(),
            slot_index: HashMap::new(),
            slots_by_proc: vec![Vec::new(); num_processes],
            groups: Vec::new(),
            group_index: HashMap::new(),
            tenants: HashMap::new(),
            alarm_scratch: Cut::bottom(num_processes),
            values_scratch: Vec::new(),
            live_candidates: 0,
            stats: HubStats::default(),
            gc: None,
            since_gc: 0,
        }
    }

    /// Enables causal-stability GC with the given configuration.
    pub fn with_gc(mut self, config: GcConfig) -> Self {
        self.gc = Some(config);
        self
    }

    /// The configured GC, if any.
    pub fn gc_config(&self) -> Option<GcConfig> {
        self.gc
    }

    /// Declares a monitored variable (before its process's first event).
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`]s from the underlying slicer.
    pub fn declare_var(
        &mut self,
        process: usize,
        name: &str,
        initial: Value,
    ) -> Result<VarRef, BuildError> {
        let var = self.slicer.declare_var(process, name, initial)?;
        debug_assert_eq!(var.index(), self.values[process].len());
        self.values[process].push(initial);
        Ok(var)
    }

    /// Number of processes in the stream.
    pub fn num_processes(&self) -> usize {
        self.slicer.num_processes()
    }

    /// Looks up a declared variable by process and name.
    pub fn var(&self, process: usize, name: &str) -> Option<VarRef> {
        self.slicer.var(process, name)
    }

    /// Events observed on `process` so far, including the initial event.
    pub fn events_on(&self, process: usize) -> u32 {
        self.slicer.events_on(process)
    }

    /// The event at `pos` on `process`, or `None` if out of range or
    /// compacted away — the handle late message delivery needs.
    pub fn event_at(&self, process: usize, pos: u32) -> Option<EventId> {
        self.slicer.retained_event_at(process, pos)
    }

    /// Events whose storage is currently retained by the slicer.
    pub fn retained_events(&self) -> u64 {
        self.slicer.retained_events()
    }

    /// Deterministic work counters accumulated so far.
    pub fn stats(&self) -> HubStats {
        self.stats
    }

    /// Registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Live groups (distinct predicates).
    pub fn group_count(&self) -> usize {
        self.groups.iter().filter(|g| g.active).count()
    }

    /// Live slots (shared per-process conjunct bundles).
    pub fn slot_count(&self) -> usize {
        self.slots.iter().filter(|s| s.alive).count()
    }

    /// Distinct clauses ever registered.
    pub fn clause_count(&self) -> usize {
        self.clauses.len()
    }

    /// Tenant ids in arbitrary order.
    pub fn tenant_ids(&self) -> Vec<String> {
        self.tenants.keys().cloned().collect()
    }

    /// The group a tenant maps to, if registered.
    pub fn group_of(&self, tenant: &str) -> Option<u32> {
        self.tenants.get(tenant).map(|t| t.group)
    }

    /// A group's accumulated settle work (for differential pinning against
    /// standalone monitors).
    pub fn group_check_cost(&self, group: u32) -> Option<u64> {
        self.groups.get(group as usize).map(|g| g.check_cost)
    }

    /// A group's currently settled alarm cut, if any.
    pub fn group_alarm(&self, group: u32) -> Option<&Cut> {
        self.groups
            .get(group as usize)
            .and_then(|g| g.current_alarm.as_ref())
    }

    fn clause_id(&mut self, clause: &LocalPredicate) -> Result<u32, BuildError> {
        let p = clause.process().as_usize();
        if p >= self.values.len() {
            return Err(invalid(format!(
                "clause '{}' targets process {p} of a {}-process hub",
                clause.label(),
                self.values.len()
            )));
        }
        for &v in clause.vars() {
            if v.process().as_usize() != p {
                return Err(invalid(format!(
                    "clause '{}' reads a variable of another process",
                    clause.label()
                )));
            }
            if v.index() >= self.values[p].len() {
                return Err(invalid(format!(
                    "clause '{}' reads an undeclared variable of process {p}",
                    clause.label()
                )));
            }
        }
        let key = (p, clause.label().to_owned());
        if let Some(&id) = self.clause_index.get(&key) {
            // Same (process, label) ⇒ same clause; refresh the closure in
            // case this id was left hollow by a restore.
            if self.clauses[id as usize].pred.is_none() {
                self.clauses[id as usize].pred = Some(clause.clone());
            }
            return Ok(id);
        }
        let id = self.clauses.len() as u32;
        self.clauses.push(Clause {
            process: p,
            label: clause.label().to_owned(),
            pred: Some(clause.clone()),
            gen: 0,
            truth: false,
        });
        self.clause_index.insert(key, id);
        Ok(id)
    }

    /// Evaluates a distinct clause against the current value mirror, at
    /// most once per event generation.
    fn clause_truth(&mut self, cid: u32, gen: u64) -> Result<bool, BuildError> {
        let clause = &self.clauses[cid as usize];
        if clause.gen == gen {
            return Ok(clause.truth);
        }
        let mut scratch = std::mem::take(&mut self.values_scratch);
        scratch.clear();
        let truth = {
            let clause = &self.clauses[cid as usize];
            match clause.pred.as_ref() {
                None => Err(invalid(format!(
                    "clause '{}' has no closure (incomplete restore)",
                    clause.label
                ))),
                Some(pred) => {
                    for &v in pred.vars() {
                        scratch.push(self.values[clause.process][v.index()]);
                    }
                    Ok(pred.eval_values(&scratch))
                }
            }
        };
        self.values_scratch = scratch;
        let truth = truth?;
        self.stats.clause_evals += 1;
        slicing_observe::counter("serve.clause_evals", 1);
        let clause = &mut self.clauses[cid as usize];
        clause.gen = gen;
        clause.truth = truth;
        Ok(truth)
    }

    /// Registers (or replaces) a tenant watching a conjunctive predicate.
    /// `source` is the expression text, kept for alarm display and
    /// checkpoint resume. Tenants watching structurally equal predicates
    /// (same clause labels per process) share one group; overlapping
    /// per-process conjunct bundles share slots.
    ///
    /// A tenant added mid-stream starts watching from the current frontier
    /// (join-cut semantics): its candidate streams begin at the events
    /// being observed now, not at history it never saw — except where it
    /// joins an existing group, whose full candidate history it inherits.
    ///
    /// # Errors
    ///
    /// [`BuildError::InvalidState`] for a predicate with no clauses or
    /// clauses over undeclared variables; the hub is left unchanged.
    pub fn add_tenant(
        &mut self,
        id: &str,
        pred: &Conjunctive,
        source: &str,
    ) -> Result<u32, BuildError> {
        if pred.clauses().is_empty() {
            return Err(invalid(format!("tenant '{id}' has an empty predicate")));
        }
        // Validate everything before mutating group/slot structure.
        let mut clause_ids = Vec::with_capacity(pred.clauses().len());
        for clause in pred.clauses() {
            clause_ids.push(self.clause_id(clause)?);
        }
        if self.tenants.contains_key(id) {
            self.remove_tenant(id);
        }
        let key = GraftKey::from_parts(
            pred.clauses()
                .iter()
                .map(|c| (c.process().as_usize() as u32, c.label().to_owned())),
        );
        let group = match self.group_index.get(&key) {
            Some(&g) => g,
            None => self.create_group(key, clause_ids, source)?,
        };
        self.groups[group as usize].tenants.push(id.to_owned());
        self.tenants.insert(
            id.to_owned(),
            TenantInfo {
                group,
                source: source.to_owned(),
            },
        );
        slicing_observe::gauge("serve.tenants", self.tenants.len() as u64);
        slicing_observe::gauge("serve.groups", self.group_count() as u64);
        slicing_observe::gauge("serve.slots", self.slot_count() as u64);
        Ok(group)
    }

    fn create_group(
        &mut self,
        key: GraftKey,
        clause_ids: Vec<u32>,
        source: &str,
    ) -> Result<u32, BuildError> {
        let n = self.num_processes();
        // Bucket the clauses per process to form slot keys.
        let mut per_proc: Vec<Vec<u32>> = vec![Vec::new(); n];
        for cid in clause_ids {
            let p = self.clauses[cid as usize].process;
            if !per_proc[p].contains(&cid) {
                per_proc[p].push(cid);
            }
        }
        let g = self.groups.len() as u32;
        let mut slot_of = vec![None; n];
        let mut fronts = vec![0u64; n];
        for (p, cids) in per_proc.into_iter().enumerate() {
            if cids.is_empty() {
                continue;
            }
            let sid = self.slot_for(p, cids)?;
            self.slots[sid as usize].refs.push(g);
            slot_of[p] = Some(sid);
            let slot = &self.slots[sid as usize];
            // Join-cut cursor: include the current frontier event iff it
            // is the newest candidate (it satisfies the bundle "now");
            // older history stays invisible to a fresh slot's new group.
            let frontier = self.slicer.events_on(p) - 1;
            fronts[p] = if slot.candidates.back() == Some(&frontier) {
                slot.total() - 1
            } else {
                slot.total()
            };
        }
        self.groups.push(Group {
            key: key.clone(),
            source: source.to_owned(),
            slot_of,
            fronts,
            dirty: vec![true; n],
            dirty_any: true,
            seen_revision: self.slicer.clock_revision(),
            current_alarm: None,
            last_alarm: None,
            check_cost: 0,
            alarms: 0,
            tenants: Vec::new(),
            subscribers: Vec::new(),
            active: true,
        });
        self.group_index.insert(key, g);
        Ok(g)
    }

    /// Finds or creates the slot for a per-process conjunct bundle. A
    /// fresh slot is seeded with the current frontier position iff the
    /// bundle holds there — for a hub that has seen no events yet, that is
    /// exactly the initial-event candidate a standalone monitor starts
    /// with.
    fn slot_for(&mut self, process: usize, cids: Vec<u32>) -> Result<u32, BuildError> {
        let key = GraftKey::new(
            process as u32,
            cids.iter().map(|&c| self.clauses[c as usize].label.clone()),
        );
        if let Some(&sid) = self.slot_index.get(&key) {
            return Ok(sid);
        }
        let mut holds = true;
        for &cid in &cids {
            // Evaluate outside the event generation counter: the frontier
            // values are current, but this is registration work, not
            // stream work.
            let clause = &self.clauses[cid as usize];
            let pred = clause.pred.as_ref().ok_or_else(|| {
                invalid(format!(
                    "clause '{}' has no closure (incomplete restore)",
                    clause.label
                ))
            })?;
            let mut scratch = std::mem::take(&mut self.values_scratch);
            scratch.clear();
            for &v in pred.vars() {
                scratch.push(self.values[process][v.index()]);
            }
            let ok = pred.eval_values(&scratch);
            self.values_scratch = scratch;
            self.stats.clause_evals += 1;
            slicing_observe::counter("serve.clause_evals", 1);
            if !ok {
                holds = false;
                break;
            }
        }
        let sid = self.slots.len() as u32;
        let mut candidates = VecDeque::new();
        if holds {
            candidates.push_back(self.slicer.events_on(process) - 1);
            self.live_candidates += 1;
            self.stats.peak_candidates = self.stats.peak_candidates.max(self.live_candidates);
        }
        self.slots.push(Slot {
            key: key.clone(),
            process,
            clauses: cids,
            start: 0,
            candidates,
            refs: Vec::new(),
            alive: true,
        });
        self.slot_index.insert(key, sid);
        self.slots_by_proc[process].push(sid);
        Ok(sid)
    }

    /// Deregisters a tenant. The last tenant of a group retires the group
    /// and any slots only it referenced. Returns `false` if the tenant was
    /// not registered.
    pub fn remove_tenant(&mut self, id: &str) -> bool {
        let Some(info) = self.tenants.remove(id) else {
            return false;
        };
        let g = info.group;
        let group = &mut self.groups[g as usize];
        group.tenants.retain(|t| t != id);
        group.subscribers.retain(|(t, _)| t != id);
        if group.tenants.is_empty() {
            group.active = false;
            let key = group.key.clone();
            self.group_index.remove(&key);
            let slot_ids: Vec<u32> = self.groups[g as usize]
                .slot_of
                .iter()
                .flatten()
                .copied()
                .collect();
            for sid in slot_ids {
                let slot = &mut self.slots[sid as usize];
                slot.refs.retain(|&r| r != g);
                if slot.refs.is_empty() {
                    slot.alive = false;
                    self.live_candidates -= slot.candidates.len() as u64;
                    slot.candidates = VecDeque::new();
                    self.slot_index.remove(&slot.key);
                    let p = slot.process;
                    self.slots_by_proc[p].retain(|&s| s != sid);
                }
            }
        }
        slicing_observe::gauge("serve.tenants", self.tenants.len() as u64);
        slicing_observe::gauge("serve.groups", self.group_count() as u64);
        slicing_observe::gauge("serve.slots", self.slot_count() as u64);
        true
    }

    /// Opens a bounded alarm channel for a registered tenant (replacing
    /// any previous subscription). When the channel is full at fan-out
    /// time the alarm is dropped for that tenant and counted
    /// (`serve.tenants.dropped`) — ingestion and checking never block.
    /// Returns `None` for an unknown tenant.
    pub fn subscribe(&mut self, id: &str, capacity: usize) -> Option<Receiver<Arc<HubAlarm>>> {
        let g = self.tenants.get(id)?.group;
        let (tx, rx) = sync_channel(capacity.max(1));
        let group = &mut self.groups[g as usize];
        group.subscribers.retain(|(t, _)| t != id);
        group.subscribers.push((id.to_owned(), tx));
        Some(rx)
    }

    /// Records a new event with its variable writes: one slicer clock
    /// extension, one evaluation per distinct clause on the process, one
    /// candidate append per satisfied slot — however many tenants watch.
    ///
    /// # Errors
    ///
    /// Propagates the slicer's validation errors
    /// ([`BuildError::TypeMismatch`], [`BuildError::StaleAssignment`]); on
    /// error nothing is recorded.
    pub fn observe(
        &mut self,
        process: usize,
        assignments: &[(VarRef, Value)],
    ) -> Result<EventId, BuildError> {
        let e = self.slicer.observe(process, assignments)?;
        self.stats.events += 1;
        slicing_observe::counter("serve.events", 1);
        for &(var, value) in assignments {
            self.values[process][var.index()] = value;
        }
        let gen = self.stats.events;
        let pos = self.slicer.events_on(process) - 1;
        let mut i = 0;
        while i < self.slots_by_proc[process].len() {
            let sid = self.slots_by_proc[process][i];
            i += 1;
            let mut holds = true;
            let mut c = 0;
            while c < self.slots[sid as usize].clauses.len() {
                let cid = self.slots[sid as usize].clauses[c];
                c += 1;
                if !self.clause_truth(cid, gen)? {
                    holds = false;
                    break;
                }
            }
            if !holds {
                continue;
            }
            let total_before = self.slots[sid as usize].total();
            let mut r = 0;
            while r < self.slots[sid as usize].refs.len() {
                let g = self.slots[sid as usize].refs[r];
                r += 1;
                let group = &mut self.groups[g as usize];
                if group.fronts[process] == total_before {
                    // The group's head on this process changed: the
                    // settled verdict may be stale.
                    group.dirty[process] = true;
                    group.dirty_any = true;
                }
            }
            self.slots[sid as usize].candidates.push_back(pos);
            self.live_candidates += 1;
            self.stats.delta_cuts += 1;
            slicing_observe::counter("serve.delta_cuts", 1);
            if self.live_candidates > self.stats.peak_candidates {
                self.stats.peak_candidates = self.live_candidates;
                slicing_observe::gauge("serve.peak_candidates", self.live_candidates);
            }
        }
        if let Some(config) = self.gc {
            self.since_gc += 1;
            if self.since_gc >= config.every {
                self.since_gc = 0;
                self.run_gc();
            }
        }
        Ok(e)
    }

    /// Records a message between two observed events.
    ///
    /// # Errors
    ///
    /// Same contract as [`OnlineSlicer::message`].
    pub fn message(&mut self, send: EventId, recv: EventId) -> Result<(), BuildError> {
        self.slicer.message(send, recv)?;
        self.stats.messages += 1;
        slicing_observe::counter("serve.messages", 1);
        Ok(())
    }

    /// One stability-GC pass: trim slot streams below every referencing
    /// cursor, then compact the slicer below the stability frontier pinned
    /// by the oldest live candidate per process.
    fn run_gc(&mut self) {
        let Some(config) = self.gc else { return };
        let n = self.num_processes();
        // Trim candidates no cursor can reach any more.
        for sid in 0..self.slots.len() {
            if !self.slots[sid].alive {
                continue;
            }
            let min_front = self.slots[sid]
                .refs
                .iter()
                .map(|&g| self.groups[g as usize].fronts[self.slots[sid].process])
                .min()
                .unwrap_or(self.slots[sid].total());
            let slot = &mut self.slots[sid];
            while slot.start < min_front && !slot.candidates.is_empty() {
                slot.candidates.pop_front();
                slot.start += 1;
                self.live_candidates -= 1;
            }
            if slot.candidates.capacity() > 2 * slot.candidates.len() + 64 {
                slot.candidates.shrink_to_fit();
            }
        }
        let keep_floor: Vec<u32> = (0..n)
            .map(|p| {
                self.slots_by_proc[p]
                    .iter()
                    .filter_map(|&sid| self.slots[sid as usize].candidates.front().copied())
                    .min()
                    .unwrap_or(u32::MAX)
            })
            .collect();
        let result = self.slicer.compact(&keep_floor, config.lag);
        let stable: u64 = result.stable_frontier.iter().map(|&g| g as u64).sum();
        slicing_observe::gauge("serve.stable_frontier", stable);
        slicing_observe::gauge("serve.retained_events", result.retained_events);
        self.stats.retained_peak = self.stats.retained_peak.max(result.retained_events);
        if result.dropped_events > 0 {
            self.stats.compactions += 1;
            self.stats.dropped_events += result.dropped_events;
            slicing_observe::counter("serve.compactions", 1);
        }
    }

    /// Checks every dirty group and returns the newly settled alarms, one
    /// report per alarming group. Each report's alarm is also fanned out
    /// to the group's subscriber channels (laggards drop, never block).
    /// Per group this is exactly
    /// [`OnlineMonitor::check`](crate::OnlineMonitor::check): cached `O(1)`
    /// when clean, Garg–Waldecker candidate elimination when dirty, each
    /// distinct alarm reported once.
    pub fn check_all(&mut self) -> Vec<AlarmReport> {
        let _span = slicing_observe::span("serve.check");
        self.stats.checks += 1;
        let revision = self.slicer.clock_revision();
        let mut reports = Vec::new();
        for g in 0..self.groups.len() {
            if !self.groups[g].active {
                continue;
            }
            if self.groups[g].seen_revision != revision {
                // Late messages re-timed history: cached consistency facts
                // are void for every group.
                let group = &mut self.groups[g];
                group.seen_revision = revision;
                for d in &mut group.dirty {
                    *d = true;
                }
                group.dirty_any = true;
            }
            let work = if self.groups[g].dirty_any {
                self.settle_group(g)
            } else {
                0
            };
            self.groups[g].check_cost += work;
            self.stats.check_cost += work;
            if work > 0 {
                slicing_observe::counter("serve.check_cost", work);
            }
            let group = &self.groups[g];
            if group.current_alarm.is_some() && group.current_alarm != group.last_alarm {
                let group = &mut self.groups[g];
                group.last_alarm.clone_from(&group.current_alarm);
                group.alarms += 1;
                self.stats.alarms += 1;
                slicing_observe::counter("serve.alarms", 1);
                let alarm = Arc::new(HubAlarm {
                    predicate: group.source.clone(),
                    cut: group.current_alarm.clone().expect("alarm just checked"),
                    events: self.stats.events,
                });
                let mut dead = Vec::new();
                for (tenant, tx) in &group.subscribers {
                    match tx.try_send(Arc::clone(&alarm)) {
                        Ok(()) => self.stats.fanout_sent += 1,
                        Err(TrySendError::Full(_)) => {
                            self.stats.fanout_dropped += 1;
                            slicing_observe::counter("serve.tenants.dropped", 1);
                        }
                        Err(TrySendError::Disconnected(_)) => dead.push(tenant.clone()),
                    }
                }
                if !dead.is_empty() {
                    group.subscribers.retain(|(t, _)| !dead.contains(t));
                }
                reports.push(AlarmReport {
                    group: g as u32,
                    tenants: group.tenants.clone(),
                    alarm,
                });
            }
        }
        reports
    }

    /// The candidate head a group's cursor points at on `process`.
    fn head(&self, g: usize, process: usize, sid: u32) -> u32 {
        let slot = &self.slots[sid as usize];
        let front = self.groups[g].fronts[process];
        slot.candidates[(front - slot.start) as usize]
    }

    /// Candidate elimination for one group, field-for-field the settle of
    /// [`OnlineMonitor`](crate::OnlineMonitor) with queue heads read
    /// through the shared slot streams: pop heads that can never front a
    /// satisfying consistent cut until the heads are mutually consistent
    /// (alarm) or some watched stream runs dry. Returns probes + joins.
    fn settle_group(&mut self, g: usize) -> u64 {
        let n = self.num_processes();
        let mut work = 0u64;
        'outer: loop {
            for p in 0..n {
                if let Some(sid) = self.groups[g].slot_of[p] {
                    if self.groups[g].fronts[p] >= self.slots[sid as usize].total() {
                        // Some conjunct has no viable candidate: no
                        // satisfying cut exists yet.
                        let group = &mut self.groups[g];
                        for d in &mut group.dirty {
                            *d = false;
                        }
                        group.dirty_any = false;
                        group.current_alarm = None;
                        return work;
                    }
                }
            }
            for p in 0..n {
                let Some(sid_p) = self.groups[g].slot_of[p] else {
                    continue;
                };
                if !self.groups[g].dirty[p] {
                    continue;
                }
                let head_p = self.head(g, p, sid_p);
                let e_p = self.slicer.event_at(p, head_p);
                for q in 0..n {
                    if q == p {
                        continue;
                    }
                    let Some(sid_q) = self.groups[g].slot_of[q] else {
                        continue;
                    };
                    let head_q = self.head(g, q, sid_q);
                    let e_q = self.slicer.event_at(q, head_q);
                    work += 2;
                    // e_q happened before e_p: e_q can never front a
                    // satisfying cut; the pop is permanent.
                    if self.slicer.clock(e_p).count(ProcessId::new(q)) > head_q + 1 {
                        self.groups[g].fronts[q] += 1;
                        self.groups[g].dirty[q] = true;
                        continue 'outer;
                    }
                    if self.slicer.clock(e_q).count(ProcessId::new(p)) > head_p + 1 {
                        self.groups[g].fronts[p] += 1;
                        continue 'outer;
                    }
                }
                self.groups[g].dirty[p] = false;
            }
            break;
        }
        // All watched heads are mutually consistent: the join of their
        // clocks is the least satisfying cut.
        work += 1;
        let mut scratch = std::mem::replace(&mut self.alarm_scratch, Cut::bottom(1));
        for p in 0..n {
            scratch.set_count(ProcessId::new(p), 1);
        }
        for p in 0..n {
            let Some(sid) = self.groups[g].slot_of[p] else {
                continue;
            };
            let head = self.head(g, p, sid);
            let e = self.slicer.event_at(p, head);
            scratch.join_assign(self.slicer.clock(e));
        }
        let group = &mut self.groups[g];
        match &mut group.current_alarm {
            Some(cut) => cut.clone_from(&scratch),
            None => group.current_alarm = Some(scratch.clone()),
        }
        group.dirty_any = false;
        self.alarm_scratch = scratch;
        work
    }

    /// Acknowledges a group's settled alarm: the witnessing heads are
    /// consumed and monitoring continues toward the *next* distinct fault
    /// instance. Returns `false` (and does nothing) if the group has no
    /// settled alarm. Long-lived deployments should acknowledge every
    /// handled alarm — un-acknowledged heads pin the GC floor.
    pub fn acknowledge(&mut self, group: u32) -> bool {
        let Some(g) = self.groups.get_mut(group as usize) else {
            return false;
        };
        if !g.active || g.current_alarm.is_none() {
            return false;
        }
        let n = g.slot_of.len();
        for p in 0..n {
            if g.slot_of[p].is_some() {
                g.fronts[p] += 1;
                g.dirty[p] = true;
            }
        }
        g.current_alarm = None;
        g.dirty_any = true;
        slicing_observe::counter("serve.alarms_acknowledged", 1);
        true
    }

    /// Serializes the hub's retained state (everything but the clause
    /// closures), compacting away retired groups and slots. Restore with
    /// [`from_state`](MonitorHub::from_state) followed by one
    /// [`restore_tenant`](MonitorHub::restore_tenant) per tenant.
    pub fn export_state(&self) -> HubState {
        // Remap live slots, groups, and the clauses they reference onto
        // dense ids.
        let mut slot_map: HashMap<u32, u32> = HashMap::new();
        let mut clause_map: HashMap<u32, u32> = HashMap::new();
        let mut clauses = Vec::new();
        let mut slots = Vec::new();
        for (sid, slot) in self.slots.iter().enumerate() {
            if !slot.alive {
                continue;
            }
            let mut cids = Vec::with_capacity(slot.clauses.len());
            for &cid in &slot.clauses {
                let new = *clause_map.entry(cid).or_insert_with(|| {
                    let c = &self.clauses[cid as usize];
                    clauses.push((c.process as u32, c.label.clone()));
                    (clauses.len() - 1) as u32
                });
                cids.push(new);
            }
            slot_map.insert(sid as u32, slots.len() as u32);
            slots.push(SlotState {
                process: slot.process as u32,
                clauses: cids,
                start: slot.start,
                candidates: slot.candidates.iter().copied().collect(),
            });
        }
        let mut group_map: HashMap<u32, u32> = HashMap::new();
        let mut groups = Vec::new();
        for (gid, group) in self.groups.iter().enumerate() {
            if !group.active {
                continue;
            }
            let mut gslots = Vec::new();
            let mut fronts = Vec::new();
            for (p, sid) in group.slot_of.iter().enumerate() {
                if let Some(sid) = sid {
                    gslots.push(slot_map[sid]);
                    fronts.push(group.fronts[p]);
                }
            }
            group_map.insert(gid as u32, groups.len() as u32);
            groups.push(GroupState {
                source: group.source.clone(),
                slots: gslots,
                fronts,
                dirty: group.dirty.clone(),
                dirty_any: group.dirty_any,
                seen_revision: group.seen_revision,
                current_alarm: group.current_alarm.as_ref().map(|c| c.counts().to_vec()),
                last_alarm: group.last_alarm.as_ref().map(|c| c.counts().to_vec()),
                check_cost: group.check_cost,
                alarms: group.alarms,
            });
        }
        let mut tenants: Vec<TenantState> = self
            .tenants
            .iter()
            .map(|(id, info)| TenantState {
                id: id.clone(),
                group: group_map[&info.group],
                source: info.source.clone(),
            })
            .collect();
        tenants.sort_by(|a, b| a.id.cmp(&b.id));
        HubState {
            slicer: self.slicer.export_state(),
            values: self.values.clone(),
            clauses,
            slots,
            groups,
            tenants,
            stats: self.stats,
            gc: self.gc,
            since_gc: self.since_gc,
        }
    }

    /// Rebuilds a hub from exported state. Clause closures are *not* in
    /// the state: the hub is inert until every tenant is re-registered via
    /// [`restore_tenant`](MonitorHub::restore_tenant) —
    /// [`unrestored_clauses`](MonitorHub::unrestored_clauses) must come
    /// back empty before observing.
    ///
    /// # Errors
    ///
    /// [`BuildError::InvalidState`] for structurally inconsistent state
    /// (out-of-range ids, non-increasing candidate streams, cursor out of
    /// bounds, alarm arity mismatch), plus the slicer's own validations.
    pub fn from_state(state: &HubState) -> Result<MonitorHub, BuildError> {
        let slicer = OnlineSlicer::from_state(&state.slicer)?;
        let n = slicer.num_processes();
        if state.values.len() != n {
            return Err(invalid(format!(
                "value mirror covers {} processes, slicer has {n}",
                state.values.len()
            )));
        }
        let mut hub = MonitorHub {
            slicer,
            values: state.values.clone(),
            clauses: Vec::new(),
            clause_index: HashMap::new(),
            slots: Vec::new(),
            slot_index: HashMap::new(),
            slots_by_proc: vec![Vec::new(); n],
            groups: Vec::new(),
            group_index: HashMap::new(),
            tenants: HashMap::new(),
            alarm_scratch: Cut::bottom(n),
            values_scratch: Vec::new(),
            live_candidates: 0,
            stats: state.stats,
            gc: state.gc,
            since_gc: state.since_gc,
        };
        if let Some(gc) = hub.gc {
            if gc.every == 0 {
                return Err(invalid("gc.every must be positive".into()));
            }
        }
        for (i, (p, label)) in state.clauses.iter().enumerate() {
            let p = *p as usize;
            if p >= n {
                return Err(invalid(format!("clause {i} targets process {p} of {n}")));
            }
            hub.clause_index.insert((p, label.clone()), i as u32);
            hub.clauses.push(Clause {
                process: p,
                label: label.clone(),
                pred: None,
                gen: 0,
                truth: false,
            });
        }
        for (i, slot) in state.slots.iter().enumerate() {
            let p = slot.process as usize;
            if p >= n {
                return Err(invalid(format!("slot {i} targets process {p} of {n}")));
            }
            if slot.clauses.is_empty() {
                return Err(invalid(format!("slot {i} has no clauses")));
            }
            for &cid in &slot.clauses {
                let c = hub
                    .clauses
                    .get(cid as usize)
                    .ok_or_else(|| invalid(format!("slot {i} references clause {cid}")))?;
                if c.process != p {
                    return Err(invalid(format!(
                        "slot {i} on process {p} references a clause of process {}",
                        c.process
                    )));
                }
            }
            let base = hub.slicer.base_of(p);
            let len = hub.slicer.events_on(p);
            let mut prev: Option<u32> = None;
            for &pos in &slot.candidates {
                if pos < base || pos >= len {
                    return Err(invalid(format!(
                        "slot {i} candidate {pos} outside retained range {base}..{len}"
                    )));
                }
                if prev.is_some_and(|q| q >= pos) {
                    return Err(invalid(format!("slot {i} candidates not increasing")));
                }
                prev = Some(pos);
            }
            let key = GraftKey::new(
                slot.process,
                slot.clauses
                    .iter()
                    .map(|&c| hub.clauses[c as usize].label.clone()),
            );
            hub.live_candidates += slot.candidates.len() as u64;
            hub.slot_index.insert(key.clone(), i as u32);
            hub.slots_by_proc[p].push(i as u32);
            hub.slots.push(Slot {
                key,
                process: p,
                clauses: slot.clauses.clone(),
                start: slot.start,
                candidates: slot.candidates.iter().copied().collect(),
                refs: Vec::new(),
                alive: true,
            });
        }
        for (i, group) in state.groups.iter().enumerate() {
            if group.slots.len() != group.fronts.len() {
                return Err(invalid(format!("group {i} slots/fronts length mismatch")));
            }
            if group.dirty.len() != n {
                return Err(invalid(format!(
                    "group {i} dirty flags cover {} of {n} processes",
                    group.dirty.len()
                )));
            }
            let mut slot_of = vec![None; n];
            let mut fronts = vec![0u64; n];
            let mut parts = Vec::new();
            for (&sid, &front) in group.slots.iter().zip(&group.fronts) {
                let slot = hub
                    .slots
                    .get(sid as usize)
                    .ok_or_else(|| invalid(format!("group {i} references slot {sid}")))?;
                let p = slot.process;
                if slot_of[p].is_some() {
                    return Err(invalid(format!("group {i} has two slots on process {p}")));
                }
                if front < slot.start || front > slot.total() {
                    return Err(invalid(format!(
                        "group {i} cursor {front} outside slot window {}..={}",
                        slot.start,
                        slot.total()
                    )));
                }
                for &cid in &slot.clauses {
                    parts.push((p as u32, hub.clauses[cid as usize].label.clone()));
                }
                slot_of[p] = Some(sid);
                fronts[p] = front;
                hub.slots[sid as usize].refs.push(i as u32);
            }
            for counts in [&group.current_alarm, &group.last_alarm]
                .into_iter()
                .flatten()
            {
                if counts.len() != n {
                    return Err(invalid(format!("group {i} alarm arity {}", counts.len())));
                }
            }
            let key = GraftKey::from_parts(parts);
            hub.group_index.insert(key.clone(), i as u32);
            hub.groups.push(Group {
                key,
                source: group.source.clone(),
                slot_of,
                fronts,
                dirty: group.dirty.clone(),
                dirty_any: group.dirty_any,
                seen_revision: group.seen_revision,
                current_alarm: group.current_alarm.as_ref().map(|c| Cut::from_counts(c)),
                last_alarm: group.last_alarm.as_ref().map(|c| Cut::from_counts(c)),
                check_cost: group.check_cost,
                alarms: group.alarms,
                tenants: Vec::new(),
                subscribers: Vec::new(),
                active: true,
            });
        }
        for t in &state.tenants {
            let group = hub.groups.get_mut(t.group as usize).ok_or_else(|| {
                invalid(format!("tenant '{}' references group {}", t.id, t.group))
            })?;
            group.tenants.push(t.id.clone());
            if hub
                .tenants
                .insert(
                    t.id.clone(),
                    TenantInfo {
                        group: t.group,
                        source: t.source.clone(),
                    },
                )
                .is_some()
            {
                return Err(invalid(format!("tenant '{}' registered twice", t.id)));
            }
        }
        for (i, g) in hub.groups.iter().enumerate() {
            if g.tenants.is_empty() {
                return Err(invalid(format!("group {i} has no tenants")));
            }
        }
        hub.stats.peak_candidates = hub.stats.peak_candidates.max(hub.live_candidates);
        Ok(hub)
    }

    /// Re-registers a restored tenant's clause closures, cross-validating
    /// the predicate's shape against the checkpointed group.
    ///
    /// # Errors
    ///
    /// [`BuildError::InvalidState`] if the tenant is unknown or the
    /// predicate's clause set differs from the checkpointed one.
    pub fn restore_tenant(&mut self, id: &str, pred: &Conjunctive) -> Result<(), BuildError> {
        let g = self
            .tenants
            .get(id)
            .map(|t| t.group)
            .ok_or_else(|| invalid(format!("tenant '{id}' is not in the checkpoint")))?;
        let key = GraftKey::from_parts(
            pred.clauses()
                .iter()
                .map(|c| (c.process().as_usize() as u32, c.label().to_owned())),
        );
        if key != self.groups[g as usize].key {
            return Err(invalid(format!(
                "tenant '{id}' predicate does not match the checkpointed clause set"
            )));
        }
        for clause in pred.clauses() {
            let p = clause.process().as_usize();
            for &v in clause.vars() {
                if v.process().as_usize() != p || v.index() >= self.values[p].len() {
                    return Err(invalid(format!(
                        "clause '{}' reads an undeclared variable of process {p}",
                        clause.label()
                    )));
                }
            }
            let cid = self.clause_index[&(p, clause.label().to_owned())];
            if self.clauses[cid as usize].pred.is_none() {
                self.clauses[cid as usize].pred = Some(clause.clone());
            }
        }
        Ok(())
    }

    /// Labels of clauses still missing their closure after restore —
    /// must be empty before the hub observes events again.
    pub fn unrestored_clauses(&self) -> Vec<String> {
        self.clauses
            .iter()
            .filter(|c| c.pred.is_none())
            .map(|c| format!("{}@{}", c.label, c.process))
            .collect()
    }
}

impl std::fmt::Debug for MonitorHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonitorHub")
            .field("tenants", &self.tenants.len())
            .field("groups", &self.group_count())
            .field("slots", &self.slot_count())
            .field("clauses", &self.clauses.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OnlineMonitor;

    /// Deterministic generator shared by the equivalence tests.
    struct XorShift(u64);
    impl XorShift {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    #[test]
    fn two_tenants_share_one_group() {
        let mut hub = MonitorHub::new(2);
        let a = hub.declare_var(0, "x", Value::Int(0)).unwrap();
        let b = hub.declare_var(1, "x", Value::Int(0)).unwrap();
        let pred = || {
            Conjunctive::new(vec![
                LocalPredicate::int(a, "x@0 > 1", |v| v > 1),
                LocalPredicate::int(b, "x@1 > 1", |v| v > 1),
            ])
        };
        hub.add_tenant("alice", &pred(), "p").unwrap();
        hub.add_tenant("bob", &pred(), "p").unwrap();
        assert_eq!(hub.tenant_count(), 2);
        assert_eq!(hub.group_count(), 1);
        assert_eq!(hub.slot_count(), 2);
        let registration_evals = hub.stats().clause_evals;
        hub.observe(0, &[(a, Value::Int(2))]).unwrap();
        hub.observe(1, &[(b, Value::Int(3))]).unwrap();
        // Each clause evaluated once per event despite two tenants.
        assert_eq!(hub.stats().clause_evals - registration_evals, 2);
        let reports = hub.check_all();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].tenants, vec!["alice", "bob"]);
        assert_eq!(reports[0].alarm.cut.counts(), &[2, 2]);
    }

    #[test]
    fn alarms_match_a_standalone_monitor() {
        let mut hub = MonitorHub::new(3);
        let mut m = OnlineMonitor::new(3);
        let mut hv = Vec::new();
        let mut mv = Vec::new();
        for p in 0..3 {
            hv.push(hub.declare_var(p, "x", Value::Int(0)).unwrap());
            mv.push(m.declare_var(p, "x", Value::Int(0)).unwrap());
        }
        let pred = |vars: &[VarRef]| {
            Conjunctive::new(vec![
                LocalPredicate::int(vars[0], "x@0 > 1", |v| v > 1),
                LocalPredicate::int(vars[2], "x@2 <= 3", |v| v <= 3),
            ])
        };
        hub.add_tenant("t", &pred(&hv), "x@0 > 1 && x@2 <= 3")
            .unwrap();
        for clause in pred(&mv).clauses() {
            m.watch_clause(clause.clone()).unwrap();
        }
        let mut rng = XorShift(7);
        let mut hub_events = Vec::new();
        let mut mon_events = Vec::new();
        for step in 0..200u32 {
            let p = (rng.below(3)) as usize;
            let v = Value::Int(rng.below(6) as i64);
            hub_events.push(hub.observe(p, &[(hv[p], v)]).unwrap());
            mon_events.push(m.observe(p, &[(mv[p], v)]).unwrap());
            if step % 5 == 4 {
                let from = rng.below(hub_events.len() as u64 - 1) as usize;
                let to = hub_events.len() - 1;
                let hr = hub.message(hub_events[from], hub_events[to]);
                let mr = m.message(mon_events[from], mon_events[to]);
                assert_eq!(hr.is_ok(), mr.is_ok(), "message at step {step}");
            }
            let reports = hub.check_all();
            let hub_alarm = reports.first().map(|r| r.alarm.cut.clone());
            let mon_alarm = m.check().unwrap();
            assert_eq!(hub_alarm, mon_alarm, "step {step}");
        }
        let g = hub.group_of("t").unwrap();
        assert_eq!(hub.group_check_cost(g).unwrap(), m.stats().check_cost);
        assert_eq!(hub.stats().alarms, m.stats().alarms);
    }

    #[test]
    fn acknowledge_advances_to_the_next_instance() {
        let mut hub = MonitorHub::new(2);
        let mut m = OnlineMonitor::new(2);
        let a = hub.declare_var(0, "x", Value::Int(0)).unwrap();
        let b = hub.declare_var(1, "x", Value::Int(0)).unwrap();
        let ma = m.declare_var(0, "x", Value::Int(0)).unwrap();
        let mb = m.declare_var(1, "x", Value::Int(0)).unwrap();
        hub.add_tenant(
            "t",
            &Conjunctive::new(vec![
                LocalPredicate::int(a, "x@0 > 0", |v| v > 0),
                LocalPredicate::int(b, "x@1 > 0", |v| v > 0),
            ]),
            "p",
        )
        .unwrap();
        m.watch_clause(LocalPredicate::int(ma, "x@0 > 0", |v| v > 0))
            .unwrap();
        m.watch_clause(LocalPredicate::int(mb, "x@1 > 0", |v| v > 0))
            .unwrap();
        for round in 0..3 {
            hub.observe(0, &[(a, Value::Int(1))]).unwrap();
            hub.observe(1, &[(b, Value::Int(1))]).unwrap();
            m.observe(0, &[(ma, Value::Int(1))]).unwrap();
            m.observe(1, &[(mb, Value::Int(1))]).unwrap();
            let reports = hub.check_all();
            let want = m.check().unwrap();
            assert_eq!(
                reports.first().map(|r| r.alarm.cut.clone()),
                want,
                "round {round}"
            );
            if let Some(r) = reports.first() {
                assert!(hub.acknowledge(r.group));
            }
            if want.is_some() {
                assert!(m.acknowledge_alarm());
            }
        }
        assert!(!hub.acknowledge(0), "nothing settled after final ack");
    }

    #[test]
    fn mid_stream_add_and_remove() {
        let mut hub = MonitorHub::new(2);
        let a = hub.declare_var(0, "x", Value::Int(0)).unwrap();
        let b = hub.declare_var(1, "x", Value::Int(0)).unwrap();
        let pred = || {
            Conjunctive::new(vec![
                LocalPredicate::int(a, "x@0 > 0", |v| v > 0),
                LocalPredicate::int(b, "x@1 > 0", |v| v > 0),
            ])
        };
        // History the late tenant never sees: a satisfying pair.
        hub.observe(0, &[(a, Value::Int(5))]).unwrap();
        hub.observe(1, &[(b, Value::Int(5))]).unwrap();
        hub.observe(0, &[(a, Value::Int(0))]).unwrap();
        assert!(hub.check_all().is_empty(), "no tenants yet");
        hub.add_tenant("late", &pred(), "p").unwrap();
        // Join-cut semantics: the old satisfying pair is invisible; only
        // the current frontier (x@0 == 0, x@1 == 5) seeds candidates.
        assert!(hub.check_all().is_empty());
        hub.observe(0, &[(a, Value::Int(7))]).unwrap();
        let reports = hub.check_all();
        assert_eq!(reports.len(), 1);
        assert!(hub.remove_tenant("late"));
        assert!(!hub.remove_tenant("late"), "second removal is a no-op");
        assert_eq!(hub.group_count(), 0);
        assert_eq!(hub.slot_count(), 0);
        hub.observe(1, &[(b, Value::Int(9))]).unwrap();
        assert!(hub.check_all().is_empty(), "retired group stays silent");
    }

    #[test]
    fn laggard_subscriber_drops_but_never_blocks() {
        let mut hub = MonitorHub::new(1);
        let a = hub.declare_var(0, "x", Value::Int(0)).unwrap();
        hub.add_tenant(
            "slow",
            &Conjunctive::new(vec![LocalPredicate::int(a, "x@0 > 0", |v| v > 0)]),
            "x@0 > 0",
        )
        .unwrap();
        let rx = hub.subscribe("slow", 1).unwrap();
        let mut reported = 0;
        for i in 0..10 {
            hub.observe(0, &[(a, Value::Int(i + 1))]).unwrap();
            for r in hub.check_all() {
                reported += 1;
                assert!(hub.acknowledge(r.group));
            }
        }
        assert!(reported >= 3, "expected repeated alarms, got {reported}");
        let stats = hub.stats();
        assert_eq!(stats.fanout_sent, 1, "capacity-1 channel holds one alarm");
        assert_eq!(
            stats.fanout_dropped,
            reported - 1,
            "all further alarms dropped, ingestion never blocked"
        );
        // The queued alarm is still deliverable; the rest were shed.
        assert_eq!(rx.try_iter().count(), 1);
        // A disconnected subscriber is pruned without error.
        drop(rx);
        hub.observe(0, &[(a, Value::Int(99))]).unwrap();
        assert_eq!(hub.check_all().len(), 1);
    }

    #[test]
    fn state_round_trips() {
        let mut hub = MonitorHub::new(2).with_gc(GcConfig { lag: 4, every: 8 });
        let a = hub.declare_var(0, "x", Value::Int(0)).unwrap();
        let b = hub.declare_var(1, "x", Value::Int(0)).unwrap();
        let pred = || {
            Conjunctive::new(vec![
                LocalPredicate::int(a, "x@0 > 2", |v| v > 2),
                LocalPredicate::int(b, "x@1 > 2", |v| v > 2),
            ])
        };
        hub.add_tenant("t0", &pred(), "x@0 > 2 && x@1 > 2").unwrap();
        let mut rng = XorShift(11);
        for _ in 0..40 {
            let p = rng.below(2) as usize;
            let var = if p == 0 { a } else { b };
            hub.observe(p, &[(var, Value::Int(rng.below(5) as i64))])
                .unwrap();
            for r in hub.check_all() {
                hub.acknowledge(r.group);
            }
        }
        let state = hub.export_state();
        let mut restored = MonitorHub::from_state(&state).unwrap();
        restored.restore_tenant("t0", &pred()).unwrap();
        assert!(restored.unrestored_clauses().is_empty());
        assert_eq!(restored.export_state(), state);
        // Both continue identically.
        for step in 0..20 {
            let p = rng.below(2) as usize;
            let var = if p == 0 { a } else { b };
            let v = Value::Int(rng.below(5) as i64);
            hub.observe(p, &[(var, v)]).unwrap();
            restored.observe(p, &[(var, v)]).unwrap();
            let x = hub.check_all();
            let y = restored.check_all();
            assert_eq!(x.len(), y.len(), "step {step}");
            for (rx, ry) in x.iter().zip(&y) {
                assert_eq!(rx.alarm.cut, ry.alarm.cut, "step {step}");
            }
        }
        assert_eq!(hub.stats(), restored.stats());
    }

    #[test]
    fn gc_bounds_retention_and_matches_verdicts() {
        let mut gc_hub = MonitorHub::new(2).with_gc(GcConfig { lag: 16, every: 32 });
        let mut plain = MonitorHub::new(2);
        let mut vars_gc = Vec::new();
        let mut vars_pl = Vec::new();
        for p in 0..2 {
            vars_gc.push(gc_hub.declare_var(p, "x", Value::Int(0)).unwrap());
            vars_pl.push(plain.declare_var(p, "x", Value::Int(0)).unwrap());
        }
        let pred = |vs: &[VarRef]| {
            Conjunctive::new(vec![
                LocalPredicate::int(vs[0], "x@0 > 6", |v| v > 6),
                LocalPredicate::int(vs[1], "x@1 > 6", |v| v > 6),
            ])
        };
        gc_hub.add_tenant("t", &pred(&vars_gc), "p").unwrap();
        plain.add_tenant("t", &pred(&vars_pl), "p").unwrap();
        let mut rng = XorShift(23);
        let mut last_gc: [Option<EventId>; 2] = [None, None];
        let mut last_pl: [Option<EventId>; 2] = [None, None];
        for step in 0..4000u64 {
            let p = rng.below(2) as usize;
            let v = Value::Int(rng.below(8) as i64);
            let eg = gc_hub.observe(p, &[(vars_gc[p], v)]).unwrap();
            let ep = plain.observe(p, &[(vars_pl[p], v)]).unwrap();
            // Cross-process messages advance the stability frontier —
            // without them nothing ever becomes stable and GC is a no-op.
            if let (Some(sg), Some(sp)) = (last_gc[1 - p], last_pl[1 - p]) {
                gc_hub.message(sg, eg).unwrap();
                plain.message(sp, ep).unwrap();
            }
            last_gc[p] = Some(eg);
            last_pl[p] = Some(ep);
            let x = gc_hub.check_all();
            let y = plain.check_all();
            assert_eq!(x.len(), y.len(), "step {step}");
            for (rx, ry) in x.iter().zip(&y) {
                assert_eq!(rx.alarm.cut, ry.alarm.cut, "step {step}");
                gc_hub.acknowledge(rx.group);
                plain.acknowledge(ry.group);
            }
        }
        assert!(gc_hub.stats().compactions > 0, "GC must have run");
        assert!(
            gc_hub.retained_events() < plain.retained_events() / 4,
            "GC'd hub retains {} vs {}",
            gc_hub.retained_events(),
            plain.retained_events()
        );
    }

    #[test]
    fn rejects_bad_predicates_and_state() {
        let mut hub = MonitorHub::new(2);
        let a = hub.declare_var(0, "x", Value::Int(0)).unwrap();
        let err = hub.add_tenant("t", &Conjunctive::new(vec![]), "p");
        assert!(matches!(err, Err(BuildError::InvalidState { .. })));
        hub.add_tenant(
            "t",
            &Conjunctive::new(vec![LocalPredicate::int(a, "x@0 > 0", |v| v > 0)]),
            "p",
        )
        .unwrap();
        let mut state = hub.export_state();
        state.groups[0].fronts[0] = 99;
        assert!(matches!(
            MonitorHub::from_state(&state),
            Err(BuildError::InvalidState { .. })
        ));
        let mut state = hub.export_state();
        state.slots[0].candidates = vec![3, 3];
        assert!(matches!(
            MonitorHub::from_state(&state),
            Err(BuildError::InvalidState { .. })
        ));
        // Observing through an unrestored clause is a typed error, not a
        // panic.
        let state = hub.export_state();
        let mut hollow = MonitorHub::from_state(&state).unwrap();
        assert_eq!(hollow.unrestored_clauses(), vec!["x@0 > 0@0".to_string()]);
        let err = hollow.observe(0, &[(a, Value::Int(1))]);
        assert!(matches!(err, Err(BuildError::InvalidState { .. })));
    }

    #[test]
    fn overlapping_tenants_share_slots() {
        let mut hub = MonitorHub::new(3);
        let mut vars = Vec::new();
        for p in 0..3 {
            vars.push(hub.declare_var(p, "x", Value::Int(0)).unwrap());
        }
        let clause = |p: usize, vars: &[VarRef]| {
            LocalPredicate::int(vars[p], format!("x@{p} > 0"), |v| v > 0)
        };
        hub.add_tenant(
            "ab",
            &Conjunctive::new(vec![clause(0, &vars), clause(1, &vars)]),
            "ab",
        )
        .unwrap();
        hub.add_tenant(
            "bc",
            &Conjunctive::new(vec![clause(1, &vars), clause(2, &vars)]),
            "bc",
        )
        .unwrap();
        hub.add_tenant(
            "ac",
            &Conjunctive::new(vec![clause(0, &vars), clause(2, &vars)]),
            "ac",
        )
        .unwrap();
        // Three groups, but only three distinct single-clause slots — the
        // per-process bundles are shared pairwise.
        assert_eq!(hub.group_count(), 3);
        assert_eq!(hub.slot_count(), 3);
        assert_eq!(hub.clause_count(), 3);
        for step in 0..30u64 {
            let p = (step % 3) as usize;
            hub.observe(p, &[(vars[p], Value::Int((step % 2) as i64))])
                .unwrap();
        }
        // 30 events, one clause eval each — not one per tenant-clause.
        assert_eq!(hub.stats().clause_evals, 30 + 3);
    }
}
