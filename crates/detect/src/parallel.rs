//! Parallel breadth-first detection with adaptive granularity.
//!
//! The paper observes that complementary state-space techniques compose
//! with slicing; so does parallelism. This engine runs a layer-synchronous
//! BFS whose granularity adapts to the lattice:
//!
//! * **Narrow layers** (below [`PARALLEL_EXPAND_MIN`] frontier cuts) are
//!   processed on the calling thread with *exactly* the sequential
//!   engine's operations — same visited set, same insertion order, same
//!   eval-at-dequeue early exit — so a narrow lattice pays nothing for
//!   having asked for threads, and its wall-work counters (probes, hits,
//!   inserts, `cuts_explored`) match [`detect_bfs`](crate::detect_bfs)
//!   exactly. The number of layers handled this way is reported as the
//!   `detect.parallel.seq_layers` counter.
//! * At the first **wide** layer the engine switches permanently to a
//!   fan-out mode: the frontier is split into chunks that evaluate and
//!   expand concurrently, and successors are merged through [`SHARDS`]
//!   hash-sharded visited shards so the merge has no single-table
//!   contention either.
//!
//! On unit-step spaces (a computation advances one event per successor,
//! so the lattice is graded by cut size) the fan-out mode is
//! *work-optimal*: every successor of a layer lands in the next layer,
//! so membership only has to be checked against the layer under
//! construction — the shards are small packed tables
//! ([`PackedCutSet`]) that are cleared between layers instead of one
//! ever-growing global set, and all older layers are released. The total
//! hit/insert traffic is identical to the sequential sweep (the
//! successor stream is the same); the per-probe cost and the live memory
//! are what shrink. Spaces whose successors can add several events at
//! once (slices advance by J-closures) keep persistent shards.
//!
//! Worker threads are spawned only when the machine has more than one
//! core ([`std::thread::available_parallelism`]); on a single core every
//! phase runs on the calling thread. The decision affects wall time
//! only: results and counters are byte-identical either way.
//!
//! # Why sharding keeps determinism
//!
//! Workers expand their chunk of the frontier in order, so concatenating
//! the per-chunk successor sequences reproduces the exact successor stream
//! a sequential pass would generate — regardless of how many chunks it was
//! split into. Every shard scans that stream in order and keeps the cuts
//! hashing to it, so each shard's output order, and therefore the next
//! frontier (shard 0's news, then shard 1's, …), is a pure function of the
//! current frontier.

use std::collections::VecDeque;
use std::time::Instant;

use slicing_computation::{
    hash_counts, hash_packed, Computation, Cut, CutPacking, CutSet, CutSetStats, CutSpace,
    GlobalState, PackedCutSet,
};
use slicing_predicates::Predicate;

use crate::metrics::{emit_visited_stats, AbortReason, Detection, Limits, Tracker};

/// Number of visited-set shards. Fixed (not derived from `threads`) so the
/// shard assignment — and with it the canonical frontier order — is
/// identical for every thread count. Shared with the lean layered engine,
/// which runs the same sharding with per-layer resets.
pub(crate) const SHARDS: usize = 16;

/// Shard selector. Uses *high* hash bits: the shard tables index their
/// slots with the low bits of the same hash, so sharding by the low bits
/// would leave each shard's entries agreeing on them — collapsing its
/// usable home slots 16-fold and turning probes into long linear scans.
#[inline]
pub(crate) fn shard_of(hash: u64) -> usize {
    (hash >> 60) as usize
}

/// Below this many successors in a layer, the merge runs on the calling
/// thread: spawning costs more than the scan, and the output is identical
/// either way.
pub(crate) const PARALLEL_MERGE_MIN: usize = 512;

/// Below this many frontier cuts, the layer is evaluated and expanded on
/// the calling thread. Spawning a scoped worker costs tens of
/// microseconds; narrow layers (every layer of a two-process lattice is
/// ≤ events+1 wide) finish faster than the spawn. The successor stream —
/// a concatenation of per-chunk streams — is identical either way, so
/// verdict, witness, and visited statistics do not depend on which path
/// ran.
pub(crate) const PARALLEL_EXPAND_MIN: usize = 128;

/// Fan-out configuration resolved once per run: the requested thread
/// count, and whether spawning can possibly pay off on this machine.
#[derive(Clone, Copy)]
struct Fanout {
    threads: usize,
    /// `false` forces every phase onto the calling thread. Pure wall-time
    /// knob: chunking and shard order don't depend on it, so verdict,
    /// witness, and all deterministic counters are identical either way.
    spawn: bool,
}

/// Detects `possibly: pred` with a parallel layered BFS over `space`,
/// using up to `threads` worker threads (values < 2 fall back to the
/// sequential engine; so does every layer too narrow to amortize a
/// spawn — see the module docs).
///
/// Equivalent to [`detect_bfs`](crate::detect_bfs) in verdict and in the
/// set of cuts explored up to the witness's layer; `cuts_explored` may
/// exceed the sequential count because a whole layer is evaluated even
/// when an early member matches. On a lattice narrow enough to stay
/// sequential throughout, verdict, witness, and the wall-work counters
/// are *exactly* the sequential engine's.
pub fn detect_bfs_parallel<S, P>(
    space: &S,
    comp: &Computation,
    pred: &P,
    limits: &Limits,
    threads: usize,
) -> Detection
where
    S: CutSpace + Sync + ?Sized,
    P: Predicate + Sync + ?Sized,
{
    if threads < 2 {
        return crate::enumerate::detect_bfs(space, comp, pred, limits);
    }
    let spawn = std::thread::available_parallelism().is_ok_and(|p| p.get() >= 2);
    detect_bfs_parallel_impl(space, comp, pred, limits, Fanout { threads, spawn })
}

/// Engine dispatch behind [`detect_bfs_parallel`]: unit-step spaces whose
/// cuts pack into a `u64` get the graded (layer-local dedup) engine;
/// everything else gets the persistent-shard engine.
fn detect_bfs_parallel_impl<S, P>(
    space: &S,
    comp: &Computation,
    pred: &P,
    limits: &Limits,
    fan: Fanout,
) -> Detection
where
    S: CutSpace + Sync + ?Sized,
    P: Predicate + Sync + ?Sized,
{
    let _span = slicing_observe::span("detect.bfs_parallel");
    let Some(bottom) = space.bottom() else {
        return Tracker::default().finish(None, Instant::now().elapsed(), None);
    };
    let unit_step = space.for_each_advance(&bottom, &mut |_| {});
    let packing = if unit_step && space.num_processes() == comp.num_processes() {
        let maxima: Vec<u32> = (0..comp.num_processes())
            .map(|i| comp.len(comp.process(i)))
            .collect();
        CutPacking::for_maxima(&maxima)
    } else {
        None
    };
    match packing {
        Some(packing) => detect_parallel_graded(space, comp, pred, limits, fan, bottom, &packing),
        None => detect_parallel_general(space, comp, pred, limits, fan, bottom),
    }
}

/// The graded engine: sequential-replica narrow layers, then packed
/// layer-local dedup once the lattice widens.
///
/// Sound because the space is unit-step: every successor of a layer-`k`
/// cut has exactly `k+1` events, so all duplicates of a cut are generated
/// while its own layer is under construction and membership never needs
/// to consult older layers. The `hits`/`inserts` totals therefore equal
/// the sequential sweep's; `probes` shift with the per-layer table
/// geometry; everything before the switch matches
/// [`detect_bfs`](crate::detect_bfs) op for op.
fn detect_parallel_graded<S, P>(
    space: &S,
    comp: &Computation,
    pred: &P,
    limits: &Limits,
    fan: Fanout,
    bottom: Cut,
    packing: &CutPacking,
) -> Detection
where
    S: CutSpace + Sync + ?Sized,
    P: Predicate + Sync + ?Sized,
{
    let start = Instant::now();
    let mut tracker = Tracker::default();
    let entry_bytes = Tracker::hash_entry_bytes(space.num_processes());
    let mut seq_layers = 0u64;
    let mut layer = 0u64;

    // ---- Mode A: the sequential engine's exact operations, layer-aware.
    // One global visited set, eval at dequeue, early exit on the first
    // witness — identical counters and witness to `detect_bfs` for as
    // long as this mode runs.
    let mut visited = CutSet::new(space.num_processes());
    let mut queue: VecDeque<u32> = VecDeque::new();
    let bottom_idx = visited.insert_indexed(&bottom).expect("empty set");
    tracker.store_cut(entry_bytes);
    queue.push_back(bottom_idx);
    tracker.charge(entry_bytes);

    let mut found = None;
    let mut aborted = None;
    let mut cut = bottom;
    let mut widened = false;
    'mode_a: loop {
        let width = queue.len();
        if width == 0 {
            break;
        }
        if width >= PARALLEL_EXPAND_MIN {
            widened = true;
            break;
        }
        layer += 1;
        seq_layers += 1;
        slicing_observe::gauge("detect.parallel.layer", layer);
        slicing_observe::gauge("detect.parallel.layer_width", width as u64);
        slicing_observe::sample("detect.parallel.layer_width", width as u64);
        for _ in 0..width {
            let idx = queue.pop_front().expect("layer width just counted");
            cut.copy_from_counts(visited.counts_at(idx));
            tracker.release(entry_bytes);
            tracker.cuts_explored += 1;
            match pred.try_eval(&GlobalState::new(comp, &cut)) {
                Ok(true) => {
                    found = Some(cut.clone());
                    break 'mode_a;
                }
                Ok(false) => {}
                Err(_) => {
                    aborted = Some(AbortReason::PredicateError);
                    break 'mode_a;
                }
            }
            if let Some(reason) = tracker.over_limit(limits, start) {
                aborted = Some(reason);
                break 'mode_a;
            }
            space.for_each_successor(&cut, &mut |next| {
                if let Some(next_idx) = visited.insert_indexed(next) {
                    tracker.store_cut(entry_bytes);
                    queue.push_back(next_idx);
                    tracker.charge(entry_bytes);
                }
            });
            if visited.saturated() {
                aborted = Some(AbortReason::ArenaFull);
                break 'mode_a;
            }
        }
    }
    let mut stats = visited.stats();

    // ---- Mode B: permanent switch at the first wide layer. The pending
    // layer is packed, the global visited set is released (gradedness: no
    // older cut can ever be rediscovered), and from here on the live set
    // is two layers wide.
    if widened && found.is_none() && aborted.is_none() {
        let mut frontier: Vec<u64> = Vec::with_capacity(queue.len());
        for idx in queue.drain(..) {
            frontier.push(packing.pack(visited.counts_at(idx)));
        }
        let dropped = visited.len() as u64;
        tracker.stored_cuts -= dropped;
        tracker.release(entry_bytes * dropped);
        drop(visited);

        let mut sets: Vec<PackedCutSet> = (0..SHARDS).map(|_| PackedCutSet::new()).collect();
        // Keys sitting in the shard tables from the layer most recently
        // merged; retired (memory and count) when the tables are cleared.
        let mut in_sets = 0u64;
        'mode_b: while !frontier.is_empty() {
            let width = frontier.len();
            layer += 1;
            slicing_observe::gauge("detect.parallel.layer", layer);
            slicing_observe::gauge("detect.parallel.layer_width", width as u64);
            slicing_observe::sample("detect.parallel.layer_width", width as u64);

            let chunk = width.div_ceil(fan.threads);
            type ChunkOut = (Option<(usize, bool)>, Vec<Vec<u64>>);
            let results: Vec<ChunkOut> = if !fan.spawn || width < PARALLEL_EXPAND_MIN {
                vec![expand_packed_chunk(space, comp, pred, packing, &frontier)]
            } else {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = frontier
                        .chunks(chunk)
                        .map(|keys| {
                            scope.spawn(move || {
                                expand_packed_chunk(space, comp, pred, packing, keys)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("worker thread panicked"))
                        .collect()
                })
            };

            // First stop in layer order wins (deterministic).
            for (chunk_idx, (stopped_at, _)) in results.iter().enumerate() {
                if let Some((offset, matched)) = stopped_at {
                    let idx = chunk_idx * chunk + offset;
                    tracker.cuts_explored += idx as u64 + 1;
                    if *matched {
                        let mut witness = Cut::bottom(space.num_processes());
                        packing.unpack_into(frontier[idx], &mut witness);
                        found = Some(witness);
                    } else {
                        aborted = Some(AbortReason::PredicateError);
                    }
                    break 'mode_b;
                }
            }
            tracker.cuts_explored += width as u64;
            tracker.release(entry_bytes * width as u64);
            if let Some(reason) = tracker.over_limit(limits, start) {
                aborted = Some(reason);
                break;
            }

            // Transpose the chunk-major buckets into one stream per shard
            // (chunk order — and thus canonical stream order — preserved).
            let mut streams: Vec<Vec<Vec<u64>>> = (0..SHARDS).map(|_| Vec::new()).collect();
            let mut total = 0usize;
            for (_, buckets) in results {
                for (sid, bucket) in buckets.into_iter().enumerate() {
                    total += bucket.len();
                    streams[sid].push(bucket);
                }
            }

            // Retire the previous layer: its keys can never recur, so the
            // shard tables are cleared (capacity kept warm) and its
            // entries leave the live accounting.
            tracker.stored_cuts -= in_sets;
            tracker.release(entry_bytes * in_sets);
            for set in &mut sets {
                set.clear();
            }

            let parts: Vec<Vec<u64>> = if !fan.spawn || total < PARALLEL_MERGE_MIN {
                sets.iter_mut()
                    .zip(streams)
                    .map(|(set, stream)| merge_packed_shard(stream, set))
                    .collect()
            } else {
                let group = SHARDS.div_ceil(fan.threads.min(SHARDS));
                let mut jobs: Vec<(&mut PackedCutSet, Vec<Vec<u64>>)> =
                    sets.iter_mut().zip(streams).collect();
                std::thread::scope(|scope| {
                    let handles: Vec<_> = jobs
                        .chunks_mut(group)
                        .map(|job_group| {
                            scope.spawn(move || {
                                job_group
                                    .iter_mut()
                                    .map(|(set, stream)| {
                                        merge_packed_shard(std::mem::take(stream), set)
                                    })
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().expect("merge thread panicked"))
                        .collect()
                })
            };

            // Canonical next frontier: shard outputs in shard index order.
            let mut next: Vec<u64> = Vec::with_capacity(parts.iter().map(Vec::len).sum());
            for part in parts {
                for key in part {
                    tracker.store_cut(entry_bytes);
                    next.push(key);
                }
            }
            tracker.charge(entry_bytes * next.len() as u64);
            in_sets = next.len() as u64;
            if let Some(reason) = tracker.over_limit(limits, start) {
                aborted = Some(reason);
                break;
            }
            frontier = next;
        }
        for set in &sets {
            let s = set.stats();
            stats.probes += s.probes;
            stats.hits += s.hits;
            stats.inserts += s.inserts;
        }
    }

    slicing_observe::counter("detect.parallel.seq_layers", seq_layers);
    emit_visited_stats(stats);
    tracker.finish(found, start.elapsed(), aborted)
}

/// Evaluates one chunk of a packed frontier, expanding non-matching cuts
/// entirely in packed space. Returns the offset of the first match (if
/// any; `matched == false` marks a predicate error) and the successor
/// keys generated before it, bucketed by destination shard.
fn expand_packed_chunk<S, P>(
    space: &S,
    comp: &Computation,
    pred: &P,
    packing: &CutPacking,
    keys: &[u64],
) -> (Option<(usize, bool)>, Vec<Vec<u64>>)
where
    S: CutSpace + Sync + ?Sized,
    P: Predicate + Sync + ?Sized,
{
    let mut stop = None;
    let mut buckets: Vec<Vec<u64>> = (0..SHARDS).map(|_| Vec::new()).collect();
    let mut cut = Cut::bottom(space.num_processes());
    for (i, &key) in keys.iter().enumerate() {
        packing.unpack_into(key, &mut cut);
        match pred.try_eval(&GlobalState::new(comp, &cut)) {
            Ok(true) => {
                stop = Some((i, true));
                break;
            }
            Ok(false) => {}
            Err(_) => {
                stop = Some((i, false));
                break;
            }
        }
        let streamed = space.for_each_successor_packed(cut.counts(), key, packing, &mut |nk, _| {
            buckets[shard_of(hash_packed(nk))].push(nk);
        });
        if !streamed {
            space.for_each_successor(&cut, &mut |next| {
                let nk = packing.pack(next.counts());
                buckets[shard_of(hash_packed(nk))].push(nk);
            });
        }
    }
    (stop, buckets)
}

/// Drains one shard's packed successor stream (chunk-major, stream order)
/// into its layer table, returning the newly discovered keys in stream
/// order.
fn merge_packed_shard(stream: Vec<Vec<u64>>, set: &mut PackedCutSet) -> Vec<u64> {
    let mut out = Vec::new();
    for bucket in stream {
        for key in bucket {
            if set.insert(key) {
                out.push(key);
            }
        }
    }
    out
}

/// Hashed successors routed to one visited shard, in generation order:
/// `buckets[s]` holds the `(hash, cut)` pairs bound for shard `s`.
type ShardBuckets = Vec<Vec<(u64, Cut)>>;

/// Evaluates one chunk of the frontier, expanding non-matching cuts.
/// Returns the offset of the first match (if any) and the successor
/// stream generated before it, hashed and bucketed by destination shard —
/// so each merge worker later touches only its own shard's cuts instead
/// of filtering the full stream.
fn expand_chunk<S, P>(
    space: &S,
    comp: &Computation,
    pred: &P,
    cuts: &[Cut],
) -> (Option<(usize, bool)>, ShardBuckets)
where
    S: CutSpace + Sync + ?Sized,
    P: Predicate + Sync + ?Sized,
{
    // The stop marker is (offset, matched): matched=false means the scan
    // stopped on a predicate evaluation error at that offset.
    let mut stop = None;
    let mut buckets: ShardBuckets = (0..SHARDS).map(|_| Vec::new()).collect();
    for (i, cut) in cuts.iter().enumerate() {
        match pred.try_eval(&GlobalState::new(comp, cut)) {
            Ok(true) => {
                stop = Some((i, true));
                break;
            }
            Ok(false) => {}
            Err(_) => {
                stop = Some((i, false));
                break;
            }
        }
        space.for_each_successor(cut, &mut |next| {
            let hash = hash_counts(next.as_ref());
            buckets[shard_of(hash)].push((hash, next.clone()));
        });
    }
    (stop, buckets)
}

/// Drains one shard's successor buckets (chunk-major, stream order) into
/// its visited shard, returning the newly discovered cuts in stream order.
/// Consumes the buckets so new cuts move — never clone — into the output.
fn merge_into_shard(stream: ShardBuckets, shard: &mut CutSet) -> Vec<Cut> {
    let mut out = Vec::new();
    for bucket in stream {
        for (hash, cut) in bucket {
            if shard.insert_hashed(cut.as_ref(), hash) {
                out.push(cut);
            }
        }
    }
    out
}

/// The persistent-shard engine for spaces that are not unit-step (or too
/// wide/long to pack): successors can skip layers, so every visited cut
/// is retained across the whole run in [`SHARDS`] hash shards. Narrow
/// layers still run entirely on the calling thread and count toward
/// `detect.parallel.seq_layers`.
fn detect_parallel_general<S, P>(
    space: &S,
    comp: &Computation,
    pred: &P,
    limits: &Limits,
    fan: Fanout,
    bottom: Cut,
) -> Detection
where
    S: CutSpace + Sync + ?Sized,
    P: Predicate + Sync + ?Sized,
{
    let start = Instant::now();
    let mut tracker = Tracker::default();
    let entry_bytes = Tracker::hash_entry_bytes(space.num_processes());
    let mut seq_layers = 0u64;

    let mut shards: Vec<CutSet> = (0..SHARDS)
        .map(|_| CutSet::new(space.num_processes()))
        .collect();
    shards[shard_of(hash_counts(bottom.as_ref()))].insert(&bottom);
    tracker.store_cut(entry_bytes);
    let mut frontier: Vec<Cut> = vec![bottom];
    tracker.charge(entry_bytes);

    let mut found = None;
    let mut aborted = None;
    let mut layer = 0u64;
    'search: while !frontier.is_empty() {
        layer += 1;
        slicing_observe::gauge("detect.parallel.layer", layer);
        slicing_observe::gauge("detect.parallel.layer_width", frontier.len() as u64);
        slicing_observe::sample("detect.parallel.layer_width", frontier.len() as u64);
        // Evaluate and expand the layer in parallel. Successors carry their
        // hash so the merge shards don't rehash on every scan.
        let narrow = frontier.len() < PARALLEL_EXPAND_MIN;
        seq_layers += u64::from(narrow);
        let chunk = frontier.len().div_ceil(fan.threads);
        type ChunkResult = (Option<(usize, bool)>, ShardBuckets);
        let results: Vec<ChunkResult> = if !fan.spawn || narrow {
            vec![expand_chunk(space, comp, pred, &frontier)]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = frontier
                    .chunks(chunk)
                    .map(|cuts| scope.spawn(move || expand_chunk(space, comp, pred, cuts)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker thread panicked"))
                    .collect()
            })
        };

        // First stop in layer order wins (deterministic).
        for (chunk_idx, (stopped_at, _)) in results.iter().enumerate() {
            if let Some((offset, matched)) = stopped_at {
                let idx = chunk_idx * chunk + offset;
                tracker.cuts_explored += idx as u64 + 1;
                if *matched {
                    found = Some(frontier[idx].clone());
                } else {
                    aborted = Some(AbortReason::PredicateError);
                }
                break 'search;
            }
        }
        tracker.cuts_explored += frontier.len() as u64;
        tracker.release(entry_bytes * frontier.len() as u64);
        if let Some(reason) = tracker.over_limit(limits, start) {
            aborted = Some(reason);
            break;
        }

        // Merge successors into the sharded visited set. Transpose the
        // chunk-major buckets into one stream per shard (chunk order — and
        // thus canonical stream order — preserved); shards then proceed
        // independently, in parallel when the layer is wide enough.
        let mut streams: Vec<ShardBuckets> = (0..SHARDS).map(|_| Vec::new()).collect();
        let mut total = 0usize;
        for (_, buckets) in results {
            for (sid, bucket) in buckets.into_iter().enumerate() {
                total += bucket.len();
                streams[sid].push(bucket);
            }
        }
        let parts: Vec<Vec<Cut>> = if !fan.spawn || total < PARALLEL_MERGE_MIN {
            shards
                .iter_mut()
                .zip(streams)
                .map(|(shard, stream)| merge_into_shard(stream, shard))
                .collect()
        } else {
            let group = SHARDS.div_ceil(fan.threads.min(SHARDS));
            let mut jobs: Vec<(&mut CutSet, ShardBuckets)> =
                shards.iter_mut().zip(streams).collect();
            std::thread::scope(|scope| {
                let handles: Vec<_> = jobs
                    .chunks_mut(group)
                    .map(|job_group| {
                        scope.spawn(move || {
                            job_group
                                .iter_mut()
                                .map(|(shard, stream)| {
                                    merge_into_shard(std::mem::take(stream), shard)
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("merge thread panicked"))
                    .collect()
            })
        };

        // Canonical next frontier: shard outputs in shard index order.
        let mut next: Vec<Cut> = Vec::with_capacity(parts.iter().map(Vec::len).sum());
        for part in parts {
            for cut in part {
                tracker.store_cut(entry_bytes);
                next.push(cut);
            }
        }
        tracker.charge(entry_bytes * next.len() as u64);
        if let Some(reason) = tracker.over_limit(limits, start) {
            aborted = Some(reason);
            break;
        }
        frontier = next;
    }
    let mut stats = CutSetStats::default();
    for shard in &shards {
        let s = shard.stats();
        stats.probes += s.probes;
        stats.hits += s.hits;
        stats.inserts += s.inserts;
    }
    slicing_observe::counter("detect.parallel.seq_layers", seq_layers);
    emit_visited_stats(stats);
    tracker.finish(found, start.elapsed(), aborted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect_bfs;
    use slicing_computation::test_fixtures::{grid, hypercube, random_computation, RandomConfig};
    use slicing_computation::ProcSet;
    use slicing_observe::{Level, MemoryRecorder};
    use slicing_predicates::{expr::parse_predicate, FnPredicate};
    use std::sync::Arc;

    /// Runs `f` under a memory recorder and returns its result plus the
    /// deterministic visited counters and the seq-layers counter.
    fn recorded<T>(f: impl FnOnce() -> T) -> (T, CutSetStats, u64) {
        let rec = Arc::new(MemoryRecorder::new(Level::Trace));
        let out = {
            let _guard = slicing_observe::scoped(rec.clone());
            f()
        };
        let stats = CutSetStats {
            probes: rec.counter_total("detect.visited.probes"),
            hits: rec.counter_total("detect.visited.hits"),
            inserts: rec.counter_total("detect.visited.inserts"),
        };
        (out, stats, rec.counter_total("detect.parallel.seq_layers"))
    }

    #[test]
    fn agrees_with_sequential_bfs() {
        let cfg = RandomConfig {
            processes: 3,
            events_per_process: 4,
            value_range: 3,
            ..RandomConfig::default()
        };
        for seed in 0..20 {
            let comp = random_computation(seed, &cfg);
            let pred = parse_predicate(&comp, "x@0 == 2 && x@2 == 2").unwrap();
            for threads in [2, 4] {
                let par = detect_bfs_parallel(&comp, &comp, &pred, &Limits::none(), threads);
                let seq = detect_bfs(&comp, &comp, &pred, &Limits::none());
                assert_eq!(par.detected(), seq.detected(), "seed {seed} t{threads}");
                if let (Some(a), Some(b)) = (&par.found, &seq.found) {
                    // Same layer: equal event counts.
                    assert_eq!(a.size(), b.size(), "seed {seed} t{threads}");
                }
            }
        }
    }

    #[test]
    fn witness_is_deterministic_across_thread_counts() {
        let comp = grid(5, 5);
        let pred = FnPredicate::new(ProcSet::all(2), "diag", |st| st.cut().counts() == [4, 3]);
        let results: Vec<Option<Cut>> = [2, 3, 4, 8]
            .iter()
            .map(|&t| detect_bfs_parallel(&comp, &comp, &pred, &Limits::none(), t).found)
            .collect();
        for w in &results {
            assert_eq!(w, &results[0]);
        }
    }

    #[test]
    fn explored_sets_match_sequential_bfs_exactly() {
        // Unsatisfiable predicate: every engine must sweep the whole
        // lattice, and the layer-local dedup must count each cut once.
        let cfg = RandomConfig {
            processes: 4,
            events_per_process: 4,
            send_percent: 40,
            recv_percent: 40,
            ..RandomConfig::default()
        };
        for seed in [1, 7, 13] {
            let comp = random_computation(seed, &cfg);
            let never = FnPredicate::new(ProcSet::all(4), "false", |_| false);
            let seq = detect_bfs(&comp, &comp, &never, &Limits::none());
            for threads in [2, 3, 4, 8] {
                let par = detect_bfs_parallel(&comp, &comp, &never, &Limits::none(), threads);
                assert_eq!(
                    par.cuts_explored, seq.cuts_explored,
                    "seed {seed} t{threads}"
                );
            }
        }
    }

    #[test]
    fn narrow_lattices_match_sequential_wall_work_exactly() {
        // A two-process lattice never reaches PARALLEL_EXPAND_MIN, so the
        // whole run stays in the sequential-replica mode: probes, hits,
        // inserts, explored count, and the witness must all be identical
        // to detect_bfs — asking for threads costs no extra work.
        let comp = grid(12, 9);
        let never = FnPredicate::new(ProcSet::all(2), "false", |_| false);
        let (seq, seq_stats, _) = recorded(|| detect_bfs(&comp, &comp, &never, &Limits::none()));
        for threads in [2, 4, 8] {
            let (par, par_stats, seq_layers) =
                recorded(|| detect_bfs_parallel(&comp, &comp, &never, &Limits::none(), threads));
            assert_eq!(par_stats, seq_stats, "t{threads}");
            assert_eq!(par.cuts_explored, seq.cuts_explored, "t{threads}");
            assert_eq!(par.found, seq.found, "t{threads}");
            // Every layer of the (12+1)×(9+1) grid ran sequentially:
            // sizes span 2..=23, so 22 layers.
            assert_eq!(seq_layers, 22, "t{threads}");
        }
    }

    #[test]
    fn seq_layers_counts_only_the_narrow_prefix() {
        // hypercube(4, 7) widens past PARALLEL_EXPAND_MIN after a few
        // layers and the switch is permanent, so the counter equals the
        // number of layers before the first wide one — identical for
        // every thread count.
        let comp = hypercube(4, 7);
        let never = FnPredicate::new(ProcSet::all(4), "false", |_| false);
        let mut observed = Vec::new();
        for threads in [2, 4] {
            let (par, _, seq_layers) =
                recorded(|| detect_bfs_parallel(&comp, &comp, &never, &Limits::none(), threads));
            assert_eq!(par.cuts_explored, 4096); // 8^4 cuts, all swept
            assert!(seq_layers > 0, "bottom layers are narrow");
            assert!(seq_layers < 29, "wide layers must leave the replica mode");
            observed.push(seq_layers);
        }
        assert_eq!(observed[0], observed[1]);
    }

    #[test]
    fn graded_hit_insert_totals_match_sequential() {
        // The layer-local dedup sees the same successor stream as the
        // global visited set, so hits and inserts agree with detect_bfs
        // even after the engine switches modes; only probes may shift
        // with table geometry. Counters must not depend on thread count.
        let comp = hypercube(4, 7);
        let never = FnPredicate::new(ProcSet::all(4), "false", |_| false);
        let (_, seq_stats, _) = recorded(|| detect_bfs(&comp, &comp, &never, &Limits::none()));
        let mut first: Option<CutSetStats> = None;
        for threads in [2, 4, 8] {
            let (_, par_stats, _) =
                recorded(|| detect_bfs_parallel(&comp, &comp, &never, &Limits::none(), threads));
            assert_eq!(par_stats.hits, seq_stats.hits, "t{threads}");
            assert_eq!(par_stats.inserts, seq_stats.inserts, "t{threads}");
            if let Some(f) = first {
                assert_eq!(par_stats, f, "t{threads}");
            }
            first = Some(par_stats);
        }
    }

    #[test]
    fn forced_spawning_changes_nothing_but_wall_time() {
        // The spawn decision is a pure wall-time knob: forcing scoped
        // workers on (as a multi-core host would) must reproduce the
        // no-spawn results and counters bit for bit, on both engines
        // (computation → graded, slice → persistent shards).
        use slicing_core::slice_conjunctive;
        use slicing_predicates::{Conjunctive, LocalPredicate};
        let comp = hypercube(4, 7);
        let never = FnPredicate::new(ProcSet::all(4), "false", |_| false);
        for threads in [2, 4] {
            let off = Fanout {
                threads,
                spawn: false,
            };
            let on = Fanout {
                threads,
                spawn: true,
            };
            let (d_off, s_off, l_off) =
                recorded(|| detect_bfs_parallel_impl(&comp, &comp, &never, &Limits::none(), off));
            let (d_on, s_on, l_on) =
                recorded(|| detect_bfs_parallel_impl(&comp, &comp, &never, &Limits::none(), on));
            assert_eq!(d_off.cuts_explored, d_on.cuts_explored, "t{threads}");
            assert_eq!(d_off.found, d_on.found, "t{threads}");
            assert_eq!(s_off, s_on, "t{threads}");
            assert_eq!(l_off, l_on, "t{threads}");
        }

        let cfg = RandomConfig::default();
        let scomp = random_computation(9, &cfg);
        let x0 = scomp.var(scomp.process(0), "x").unwrap();
        let pred = Conjunctive::new(vec![LocalPredicate::int(x0, "x >= 1", |v| v >= 1)]);
        let slice = slice_conjunctive(&scomp, &pred);
        let fan = Fanout {
            threads: 4,
            spawn: true,
        };
        let forced = detect_bfs_parallel_impl(&slice, &scomp, &pred, &Limits::none(), fan);
        let plain = detect_bfs_parallel(&slice, &scomp, &pred, &Limits::none(), 4);
        assert_eq!(forced.detected(), plain.detected());
        assert_eq!(forced.cuts_explored, plain.cuts_explored);
    }

    #[test]
    fn wide_layers_take_the_parallel_merge_path() {
        // A 4-process hypercube reaches layer widths in the hundreds:
        // past PARALLEL_EXPAND_MIN (chunked expansion) and past
        // PARALLEL_MERGE_MIN in total successors (sharded merge).
        // Verdict, witness layer, and explored count still match
        // sequential BFS.
        let comp = hypercube(4, 7);
        let pred = FnPredicate::new(ProcSet::all(4), "top", |st| {
            st.cut().counts() == [8, 8, 8, 8]
        });
        let par = detect_bfs_parallel(&comp, &comp, &pred, &Limits::none(), 4);
        let seq = detect_bfs(&comp, &comp, &pred, &Limits::none());
        assert_eq!(par.detected(), seq.detected());
        assert_eq!(
            par.found.as_ref().map(Cut::size),
            seq.found.as_ref().map(Cut::size)
        );
        assert_eq!(par.cuts_explored, seq.cuts_explored);
    }

    #[test]
    fn single_thread_falls_back() {
        let comp = grid(3, 3);
        let never = FnPredicate::new(ProcSet::all(2), "false", |_| false);
        let d = detect_bfs_parallel(&comp, &comp, &never, &Limits::none(), 1);
        assert_eq!(d.cuts_explored, 16);
    }

    #[test]
    fn works_on_slices() {
        use slicing_core::slice_conjunctive;
        use slicing_predicates::{Conjunctive, LocalPredicate};
        let cfg = RandomConfig::default();
        let comp = random_computation(9, &cfg);
        let x0 = comp.var(comp.process(0), "x").unwrap();
        let pred = Conjunctive::new(vec![LocalPredicate::int(x0, "x >= 1", |v| v >= 1)]);
        let slice = slice_conjunctive(&comp, &pred);
        let par = detect_bfs_parallel(&slice, &comp, &pred, &Limits::none(), 4);
        let seq = detect_bfs(&slice, &comp, &pred, &Limits::none());
        assert_eq!(par.detected(), seq.detected());
    }

    #[test]
    fn respects_limits() {
        let comp = grid(7, 7);
        let never = FnPredicate::new(ProcSet::all(2), "false", |_| false);
        let d = detect_bfs_parallel(&comp, &comp, &never, &Limits::cuts(5), 4);
        assert!(!d.completed());
    }
}
