//! Parallel breadth-first detection.
//!
//! The paper observes that complementary state-space techniques compose
//! with slicing; so does parallelism. This engine runs a layer-synchronous
//! BFS: each lattice level is partitioned across worker threads that
//! evaluate the predicate and expand successors, and the visited set is
//! *sharded by cut hash* so the merge phase runs in parallel too — no
//! single-threaded merge barrier. Results are deterministic — the witness
//! (if any) is the first satisfying cut in the canonical frontier order,
//! independent of thread count.
//!
//! # Why sharding keeps determinism
//!
//! Workers expand their chunk of the frontier in order, so concatenating
//! the per-chunk successor sequences reproduces the exact successor stream
//! a sequential pass would generate — regardless of how many chunks it was
//! split into. Every shard scans that stream in order and keeps the cuts
//! hashing to it, so each shard's output order, and therefore the next
//! frontier (shard 0's news, then shard 1's, …), is a pure function of the
//! current frontier.

use std::time::Instant;

use slicing_computation::{
    hash_counts, Computation, Cut, CutSet, CutSetStats, CutSpace, GlobalState,
};
use slicing_predicates::Predicate;

use crate::metrics::{emit_visited_stats, AbortReason, Detection, Limits, Tracker};

/// Number of visited-set shards. Fixed (not derived from `threads`) so the
/// shard assignment — and with it the canonical frontier order — is
/// identical for every thread count. Shared with the lean layered engine,
/// which runs the same sharding with per-layer resets.
pub(crate) const SHARDS: usize = 16;

/// Shard selector. Uses *high* hash bits: the shard tables index their
/// slots with the low bits of the same hash, so sharding by the low bits
/// would leave each shard's entries agreeing on them — collapsing its
/// usable home slots 16-fold and turning probes into long linear scans.
#[inline]
pub(crate) fn shard_of(hash: u64) -> usize {
    (hash >> 60) as usize
}

/// Below this many successors in a layer, the merge runs on the calling
/// thread: spawning costs more than the scan, and the output is identical
/// either way.
pub(crate) const PARALLEL_MERGE_MIN: usize = 512;

/// Below this many frontier cuts, the layer is evaluated and expanded on
/// the calling thread. Spawning a scoped worker costs tens of
/// microseconds; narrow layers (every layer of a two-process lattice is
/// ≤ events+1 wide) finish faster than the spawn. The successor stream —
/// a concatenation of per-chunk streams — is identical either way, so
/// verdict, witness, and visited statistics do not depend on which path
/// ran.
pub(crate) const PARALLEL_EXPAND_MIN: usize = 128;

/// Hashed successors routed to one visited shard, in generation order:
/// `buckets[s]` holds the `(hash, cut)` pairs bound for shard `s`.
type ShardBuckets = Vec<Vec<(u64, Cut)>>;

/// Evaluates one chunk of the frontier, expanding non-matching cuts.
/// Returns the offset of the first match (if any) and the successor
/// stream generated before it, hashed and bucketed by destination shard —
/// so each merge worker later touches only its own shard's cuts instead
/// of filtering the full stream.
fn expand_chunk<S, P>(
    space: &S,
    comp: &Computation,
    pred: &P,
    cuts: &[Cut],
) -> (Option<(usize, bool)>, ShardBuckets)
where
    S: CutSpace + Sync + ?Sized,
    P: Predicate + Sync + ?Sized,
{
    // The stop marker is (offset, matched): matched=false means the scan
    // stopped on a predicate evaluation error at that offset.
    let mut stop = None;
    let mut buckets: ShardBuckets = (0..SHARDS).map(|_| Vec::new()).collect();
    for (i, cut) in cuts.iter().enumerate() {
        match pred.try_eval(&GlobalState::new(comp, cut)) {
            Ok(true) => {
                stop = Some((i, true));
                break;
            }
            Ok(false) => {}
            Err(_) => {
                stop = Some((i, false));
                break;
            }
        }
        space.for_each_successor(cut, &mut |next| {
            let hash = hash_counts(next.as_ref());
            buckets[shard_of(hash)].push((hash, next.clone()));
        });
    }
    (stop, buckets)
}

/// Drains one shard's successor buckets (chunk-major, stream order) into
/// its visited shard, returning the newly discovered cuts in stream order.
/// Consumes the buckets so new cuts move — never clone — into the output.
fn merge_into_shard(stream: ShardBuckets, shard: &mut CutSet) -> Vec<Cut> {
    let mut out = Vec::new();
    for bucket in stream {
        for (hash, cut) in bucket {
            if shard.insert_hashed(cut.as_ref(), hash) {
                out.push(cut);
            }
        }
    }
    out
}

/// Detects `possibly: pred` with a parallel layered BFS over `space`,
/// using up to `threads` worker threads (values < 2 fall back to the
/// sequential engine).
///
/// Equivalent to [`detect_bfs`](crate::detect_bfs) in verdict and in the
/// set of cuts explored up to the witness's layer; `cuts_explored` may
/// exceed the sequential count because a whole layer is evaluated even
/// when an early member matches.
pub fn detect_bfs_parallel<S, P>(
    space: &S,
    comp: &Computation,
    pred: &P,
    limits: &Limits,
    threads: usize,
) -> Detection
where
    S: CutSpace + Sync + ?Sized,
    P: Predicate + Sync + ?Sized,
{
    if threads < 2 {
        return crate::enumerate::detect_bfs(space, comp, pred, limits);
    }
    let _span = slicing_observe::span("detect.bfs_parallel");
    let start = Instant::now();
    let mut tracker = Tracker::default();
    let entry_bytes = Tracker::hash_entry_bytes(space.num_processes());

    let Some(bottom) = space.bottom() else {
        return tracker.finish(None, start.elapsed(), None);
    };

    let mut shards: Vec<CutSet> = (0..SHARDS)
        .map(|_| CutSet::new(space.num_processes()))
        .collect();
    shards[shard_of(hash_counts(bottom.as_ref()))].insert(&bottom);
    tracker.store_cut(entry_bytes);
    let mut frontier: Vec<Cut> = vec![bottom];
    tracker.charge(entry_bytes);

    let mut found = None;
    let mut aborted = None;
    let mut layer = 0u64;
    'search: while !frontier.is_empty() {
        layer += 1;
        slicing_observe::gauge("detect.parallel.layer", layer);
        slicing_observe::gauge("detect.parallel.layer_width", frontier.len() as u64);
        slicing_observe::sample("detect.parallel.layer_width", frontier.len() as u64);
        // Evaluate and expand the layer in parallel. Successors carry their
        // hash so the merge shards don't rehash on every scan.
        let chunk = frontier.len().div_ceil(threads);
        type ChunkResult = (Option<(usize, bool)>, ShardBuckets);
        let results: Vec<ChunkResult> = if frontier.len() < PARALLEL_EXPAND_MIN {
            vec![expand_chunk(space, comp, pred, &frontier)]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = frontier
                    .chunks(chunk)
                    .map(|cuts| scope.spawn(move || expand_chunk(space, comp, pred, cuts)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker thread panicked"))
                    .collect()
            })
        };

        // First stop in layer order wins (deterministic).
        for (chunk_idx, (stopped_at, _)) in results.iter().enumerate() {
            if let Some((offset, matched)) = stopped_at {
                let idx = chunk_idx * chunk + offset;
                tracker.cuts_explored += idx as u64 + 1;
                if *matched {
                    found = Some(frontier[idx].clone());
                } else {
                    aborted = Some(AbortReason::PredicateError);
                }
                break 'search;
            }
        }
        tracker.cuts_explored += frontier.len() as u64;
        tracker.release(entry_bytes * frontier.len() as u64);
        if let Some(reason) = tracker.over_limit(limits, start) {
            aborted = Some(reason);
            break;
        }

        // Merge successors into the sharded visited set. Transpose the
        // chunk-major buckets into one stream per shard (chunk order — and
        // thus canonical stream order — preserved); shards then proceed
        // independently, in parallel when the layer is wide enough.
        let mut streams: Vec<ShardBuckets> = (0..SHARDS).map(|_| Vec::new()).collect();
        let mut total = 0usize;
        for (_, buckets) in results {
            for (sid, bucket) in buckets.into_iter().enumerate() {
                total += bucket.len();
                streams[sid].push(bucket);
            }
        }
        let parts: Vec<Vec<Cut>> = if total < PARALLEL_MERGE_MIN {
            shards
                .iter_mut()
                .zip(streams)
                .map(|(shard, stream)| merge_into_shard(stream, shard))
                .collect()
        } else {
            let group = SHARDS.div_ceil(threads.min(SHARDS));
            let mut jobs: Vec<(&mut CutSet, ShardBuckets)> =
                shards.iter_mut().zip(streams).collect();
            std::thread::scope(|scope| {
                let handles: Vec<_> = jobs
                    .chunks_mut(group)
                    .map(|job_group| {
                        scope.spawn(move || {
                            job_group
                                .iter_mut()
                                .map(|(shard, stream)| {
                                    merge_into_shard(std::mem::take(stream), shard)
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("merge thread panicked"))
                    .collect()
            })
        };

        // Canonical next frontier: shard outputs in shard index order.
        let mut next: Vec<Cut> = Vec::with_capacity(parts.iter().map(Vec::len).sum());
        for part in parts {
            for cut in part {
                tracker.store_cut(entry_bytes);
                next.push(cut);
            }
        }
        tracker.charge(entry_bytes * next.len() as u64);
        if let Some(reason) = tracker.over_limit(limits, start) {
            aborted = Some(reason);
            break;
        }
        frontier = next;
    }
    let mut stats = CutSetStats::default();
    for shard in &shards {
        let s = shard.stats();
        stats.probes += s.probes;
        stats.hits += s.hits;
        stats.inserts += s.inserts;
    }
    emit_visited_stats(stats);
    tracker.finish(found, start.elapsed(), aborted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect_bfs;
    use slicing_computation::test_fixtures::{grid, hypercube, random_computation, RandomConfig};
    use slicing_computation::ProcSet;
    use slicing_predicates::{expr::parse_predicate, FnPredicate};

    #[test]
    fn agrees_with_sequential_bfs() {
        let cfg = RandomConfig {
            processes: 3,
            events_per_process: 4,
            value_range: 3,
            ..RandomConfig::default()
        };
        for seed in 0..20 {
            let comp = random_computation(seed, &cfg);
            let pred = parse_predicate(&comp, "x@0 == 2 && x@2 == 2").unwrap();
            for threads in [2, 4] {
                let par = detect_bfs_parallel(&comp, &comp, &pred, &Limits::none(), threads);
                let seq = detect_bfs(&comp, &comp, &pred, &Limits::none());
                assert_eq!(par.detected(), seq.detected(), "seed {seed} t{threads}");
                if let (Some(a), Some(b)) = (&par.found, &seq.found) {
                    // Same layer: equal event counts.
                    assert_eq!(a.size(), b.size(), "seed {seed} t{threads}");
                }
            }
        }
    }

    #[test]
    fn witness_is_deterministic_across_thread_counts() {
        let comp = grid(5, 5);
        let pred = FnPredicate::new(ProcSet::all(2), "diag", |st| st.cut().counts() == [4, 3]);
        let results: Vec<Option<Cut>> = [2, 3, 4, 8]
            .iter()
            .map(|&t| detect_bfs_parallel(&comp, &comp, &pred, &Limits::none(), t).found)
            .collect();
        for w in &results {
            assert_eq!(w, &results[0]);
        }
    }

    #[test]
    fn explored_sets_match_sequential_bfs_exactly() {
        // Unsatisfiable predicate: every engine must sweep the whole
        // lattice, and the sharded visited set must count each cut once.
        let cfg = RandomConfig {
            processes: 4,
            events_per_process: 4,
            send_percent: 40,
            recv_percent: 40,
            ..RandomConfig::default()
        };
        for seed in [1, 7, 13] {
            let comp = random_computation(seed, &cfg);
            let never = FnPredicate::new(ProcSet::all(4), "false", |_| false);
            let seq = detect_bfs(&comp, &comp, &never, &Limits::none());
            for threads in [2, 3, 4, 8] {
                let par = detect_bfs_parallel(&comp, &comp, &never, &Limits::none(), threads);
                assert_eq!(
                    par.cuts_explored, seq.cuts_explored,
                    "seed {seed} t{threads}"
                );
            }
        }
    }

    #[test]
    fn wide_layers_take_the_parallel_merge_path() {
        // A 4-process hypercube reaches layer widths in the hundreds:
        // past PARALLEL_EXPAND_MIN (scoped worker expansion) and past
        // PARALLEL_MERGE_MIN in total successors (scoped shard merge).
        // Verdict, witness layer, and explored count still match
        // sequential BFS.
        let comp = hypercube(4, 7);
        let pred = FnPredicate::new(ProcSet::all(4), "top", |st| {
            st.cut().counts() == [8, 8, 8, 8]
        });
        let par = detect_bfs_parallel(&comp, &comp, &pred, &Limits::none(), 4);
        let seq = detect_bfs(&comp, &comp, &pred, &Limits::none());
        assert_eq!(par.detected(), seq.detected());
        assert_eq!(
            par.found.as_ref().map(Cut::size),
            seq.found.as_ref().map(Cut::size)
        );
        assert_eq!(par.cuts_explored, seq.cuts_explored);
    }

    #[test]
    fn single_thread_falls_back() {
        let comp = grid(3, 3);
        let never = FnPredicate::new(ProcSet::all(2), "false", |_| false);
        let d = detect_bfs_parallel(&comp, &comp, &never, &Limits::none(), 1);
        assert_eq!(d.cuts_explored, 16);
    }

    #[test]
    fn works_on_slices() {
        use slicing_core::slice_conjunctive;
        use slicing_predicates::{Conjunctive, LocalPredicate};
        let cfg = RandomConfig::default();
        let comp = random_computation(9, &cfg);
        let x0 = comp.var(comp.process(0), "x").unwrap();
        let pred = Conjunctive::new(vec![LocalPredicate::int(x0, "x >= 1", |v| v >= 1)]);
        let slice = slice_conjunctive(&comp, &pred);
        let par = detect_bfs_parallel(&slice, &comp, &pred, &Limits::none(), 4);
        let seq = detect_bfs(&slice, &comp, &pred, &Limits::none());
        assert_eq!(par.detected(), seq.detected());
    }

    #[test]
    fn respects_limits() {
        let comp = grid(7, 7);
        let never = FnPredicate::new(ProcSet::all(2), "false", |_| false);
        let d = detect_bfs_parallel(&comp, &comp, &never, &Limits::cuts(5), 4);
        assert!(!d.completed());
    }
}
