//! Parallel breadth-first detection.
//!
//! The paper observes that complementary state-space techniques compose
//! with slicing; so does parallelism. This engine runs a layer-synchronous
//! BFS: each lattice level is partitioned across worker threads that
//! evaluate the predicate and expand successors, while the main thread
//! owns the visited set. Results are deterministic — the witness (if any)
//! is the first satisfying cut in BFS layer order, independent of thread
//! count.

use std::collections::HashSet;
use std::time::Instant;

use slicing_computation::{Computation, Cut, CutSpace, GlobalState};
use slicing_predicates::Predicate;

use crate::metrics::{Detection, Limits, Tracker};

/// Detects `possibly: pred` with a parallel layered BFS over `space`,
/// using up to `threads` worker threads (values < 2 fall back to the
/// sequential engine).
///
/// Equivalent to [`detect_bfs`](crate::detect_bfs) in verdict and in the
/// set of cuts explored up to the witness's layer; `cuts_explored` may
/// exceed the sequential count because a whole layer is evaluated even
/// when an early member matches.
pub fn detect_bfs_parallel<S, P>(
    space: &S,
    comp: &Computation,
    pred: &P,
    limits: &Limits,
    threads: usize,
) -> Detection
where
    S: CutSpace + Sync + ?Sized,
    P: Predicate + Sync + ?Sized,
{
    if threads < 2 {
        return crate::enumerate::detect_bfs(space, comp, pred, limits);
    }
    let _span = slicing_observe::span("detect.bfs_parallel");
    let start = Instant::now();
    let mut tracker = Tracker::default();
    let entry_bytes = Tracker::hash_entry_bytes(space.num_processes());

    let Some(bottom) = space.bottom() else {
        return tracker.finish(None, start.elapsed(), None);
    };

    let mut visited: HashSet<Cut> = HashSet::new();
    visited.insert(bottom.clone());
    tracker.store_cut(entry_bytes);
    let mut frontier: Vec<Cut> = vec![bottom];
    tracker.charge(entry_bytes);

    let mut layer = 0u64;
    while !frontier.is_empty() {
        layer += 1;
        slicing_observe::gauge("detect.parallel.layer", layer);
        slicing_observe::gauge("detect.parallel.layer_width", frontier.len() as u64);
        // Evaluate and expand the layer in parallel.
        let chunk = frontier.len().div_ceil(threads);
        let results: Vec<(Option<usize>, Vec<Cut>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = frontier
                .chunks(chunk)
                .map(|cuts| {
                    scope.spawn(move || {
                        let mut found = None;
                        let mut succ = Vec::new();
                        for (i, cut) in cuts.iter().enumerate() {
                            if pred.eval(&GlobalState::new(comp, cut)) {
                                found = Some(i);
                                break;
                            }
                            space.successors(cut, &mut succ);
                        }
                        (found, succ)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });

        // First match in layer order wins (deterministic).
        for (chunk_idx, (found, _)) in results.iter().enumerate() {
            if let Some(offset) = found {
                let idx = chunk_idx * chunk + offset;
                tracker.cuts_explored += idx as u64 + 1;
                let witness = frontier[idx].clone();
                return tracker.finish(Some(witness), start.elapsed(), None);
            }
        }
        tracker.cuts_explored += frontier.len() as u64;
        tracker.release(entry_bytes * frontier.len() as u64);
        if let Some(reason) = tracker.over_limit(limits, start) {
            return tracker.finish(None, start.elapsed(), Some(reason));
        }

        // Merge successors (single-threaded: the visited set is the shared
        // structure, and merging is cheap relative to evaluation).
        let mut next: Vec<Cut> = Vec::new();
        for (_, succ) in results {
            for cut in succ {
                if visited.insert(cut.clone()) {
                    tracker.store_cut(entry_bytes);
                    next.push(cut);
                }
            }
        }
        tracker.charge(entry_bytes * next.len() as u64);
        if let Some(reason) = tracker.over_limit(limits, start) {
            return tracker.finish(None, start.elapsed(), Some(reason));
        }
        frontier = next;
    }
    tracker.finish(None, start.elapsed(), None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect_bfs;
    use slicing_computation::test_fixtures::{grid, random_computation, RandomConfig};
    use slicing_computation::ProcSet;
    use slicing_predicates::{expr::parse_predicate, FnPredicate};

    #[test]
    fn agrees_with_sequential_bfs() {
        let cfg = RandomConfig {
            processes: 3,
            events_per_process: 4,
            value_range: 3,
            ..RandomConfig::default()
        };
        for seed in 0..20 {
            let comp = random_computation(seed, &cfg);
            let pred = parse_predicate(&comp, "x@0 == 2 && x@2 == 2").unwrap();
            for threads in [2, 4] {
                let par = detect_bfs_parallel(&comp, &comp, &pred, &Limits::none(), threads);
                let seq = detect_bfs(&comp, &comp, &pred, &Limits::none());
                assert_eq!(par.detected(), seq.detected(), "seed {seed} t{threads}");
                if let (Some(a), Some(b)) = (&par.found, &seq.found) {
                    // Same layer: equal event counts.
                    assert_eq!(a.size(), b.size(), "seed {seed} t{threads}");
                }
            }
        }
    }

    #[test]
    fn witness_is_deterministic_across_thread_counts() {
        let comp = grid(5, 5);
        let pred = FnPredicate::new(ProcSet::all(2), "diag", |st| st.cut().counts() == [4, 3]);
        let results: Vec<Option<Cut>> = [2, 3, 4, 8]
            .iter()
            .map(|&t| detect_bfs_parallel(&comp, &comp, &pred, &Limits::none(), t).found)
            .collect();
        for w in &results {
            assert_eq!(w, &results[0]);
        }
    }

    #[test]
    fn single_thread_falls_back() {
        let comp = grid(3, 3);
        let never = FnPredicate::new(ProcSet::all(2), "false", |_| false);
        let d = detect_bfs_parallel(&comp, &comp, &never, &Limits::none(), 1);
        assert_eq!(d.cuts_explored, 16);
    }

    #[test]
    fn works_on_slices() {
        use slicing_core::slice_conjunctive;
        use slicing_predicates::{Conjunctive, LocalPredicate};
        let cfg = RandomConfig::default();
        let comp = random_computation(9, &cfg);
        let x0 = comp.var(comp.process(0), "x").unwrap();
        let pred = Conjunctive::new(vec![LocalPredicate::int(x0, "x >= 1", |v| v >= 1)]);
        let slice = slice_conjunctive(&comp, &pred);
        let par = detect_bfs_parallel(&slice, &comp, &pred, &Limits::none(), 4);
        let seq = detect_bfs(&slice, &comp, &pred, &Limits::none());
        assert_eq!(par.detected(), seq.detected());
    }

    #[test]
    fn respects_limits() {
        let comp = grid(7, 7);
        let never = FnPredicate::new(ProcSet::all(2), "false", |_| false);
        let d = detect_bfs_parallel(&comp, &comp, &never, &Limits::cuts(5), 4);
        assert!(!d.completed());
    }
}
