//! Online fault monitoring: the paper's motivating loop — observe the
//! execution as it unfolds, keep the slice current, and raise an alarm
//! the moment some consistent cut of the history violates the invariant.
//!
//! Built on the incremental conjunctive slicer
//! ([`OnlineSlicer`](slicing_core::OnlineSlicer)); the monitored fault is
//! a *conjunction of local predicates* (e.g. "no process holds the token",
//! or any single clause of a CNF invariant — run one monitor per clause
//! for full CNF coverage).
//!
//! Checks are incremental in the weak-conjunctive-predicate style: each
//! watched process keeps a FIFO queue of *candidate* positions (events
//! where its conjuncts hold); a check only re-examines heads whose queue
//! changed since the previous check (plus everything, once, after a late
//! message re-times the history). Each candidate is eliminated at most
//! once ever, so for a fixed number of processes the per-event check cost
//! is amortized `O(1)` — *independent of the history length* — and the
//! steady state allocates no cut storage at all.

use std::collections::VecDeque;

use slicing_computation::{
    BuildError, Computation, Cut, EventId, GlobalState, ProcessId, Value, VarRef,
};
use slicing_core::{OnlineSlicer, SlicerState};
use slicing_predicates::{LocalPredicate, Predicate};

use crate::enumerate::detect_bfs;
use crate::metrics::{Detection, Limits};

/// Configuration for causal-stability garbage collection; see
/// [`OnlineMonitor::with_gc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcConfig {
    /// Always keep at least the last `lag` positions of every process,
    /// even when stability would allow dropping more — headroom for
    /// protocols whose message-lateness bound is known. Must exceed the
    /// maximum lateness (in positions) of any message the stream will
    /// deliver, or very late messages are rejected with
    /// [`BuildError::CompactedEvent`].
    pub lag: u32,
    /// Run a compaction every `every` observed events.
    pub every: u64,
}

impl Default for GcConfig {
    /// A conservative default: keep the last 128 positions per process,
    /// compact every 1024 events.
    fn default() -> Self {
        GcConfig {
            lag: 128,
            every: 1024,
        }
    }
}

/// Deterministic counters describing a monitor's work so far. Every field
/// is a pure event/probe count — no wall-clock — so the numbers are
/// reproducible run-to-run and can gate CI.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Events observed (excluding the fictitious initial events).
    pub events: u64,
    /// Messages recorded.
    pub messages: u64,
    /// Calls to [`check`](OnlineMonitor::check) /
    /// [`check_detailed`](OnlineMonitor::check_detailed).
    pub checks: u64,
    /// Distinct alarms reported.
    pub alarms: u64,
    /// Total check work: candidate-pair probes plus alarm joins, summed
    /// over all checks. The amortized-`O(1)` claim is about this counter:
    /// it grows linearly in events observed, not quadratically.
    pub check_cost: u64,
    /// The work of the most recent check alone.
    pub last_check_cost: u64,
    /// Candidate cuts unlocked by observations: events whose local
    /// conjuncts held when observed on a watched process.
    pub delta_cuts: u64,
    /// Peak number of simultaneously queued candidates.
    pub peak_candidates: u64,
    /// Garbage collections that actually reclaimed storage.
    pub compactions: u64,
    /// Events whose storage stability GC reclaimed.
    pub dropped_events: u64,
    /// Peak retained-event gauge observed across GC runs (0 until the
    /// first GC). The "bounded memory" soak claim is about this number.
    pub retained_peak: u64,
}

/// An online monitor for a conjunctive global fault.
///
/// Feed events and messages as they are observed;
/// [`check`](OnlineMonitor::check) reports the earliest consistent cut of
/// the observed history that satisfies every watched conjunct, if any.
/// Both the constraint edges and the least-cut table are maintained
/// incrementally by the underlying [`OnlineSlicer`], and each check
/// examines only the *delta* since the last check — new candidate events
/// and the eliminations they trigger — so steady-state monitoring costs
/// amortized `O(1)` per event and performs no cut allocations (for up to
/// 16 processes, where cuts are stored inline).
///
/// `possibly: fault` over a growing history is monotone — once a
/// satisfying cut exists it exists forever — so the earliest witness is
/// stable and [`check`](OnlineMonitor::check) reports it exactly once.
/// After taking corrective action (e.g. rolling back to a recovery line),
/// start a fresh monitor from the recovered state; that is the paper's
/// monitor → detect → correct loop.
///
/// # Examples
///
/// ```
/// use slicing_computation::Value;
/// use slicing_detect::OnlineMonitor;
///
/// // Watch for "both flags down" on two processes.
/// let mut m = OnlineMonitor::new(2);
/// let a = m.declare_var(0, "up", Value::Bool(true))?;
/// let b = m.declare_var(1, "up", Value::Bool(true))?;
/// m.watch_bool(a, "!up_0", |v| !v)?;
/// m.watch_bool(b, "!up_1", |v| !v)?;
///
/// m.observe(0, &[(a, Value::Bool(false))])?;
/// assert!(m.check()?.is_none()); // p1 still up
/// m.observe(1, &[(b, Value::Bool(false))])?;
/// assert!(m.check()?.is_some()); // both down at a consistent cut
/// # Ok::<(), slicing_computation::BuildError>(())
/// ```
#[derive(Debug)]
pub struct OnlineMonitor {
    slicer: OnlineSlicer,
    /// Per process: queued candidate positions — events whose local
    /// conjuncts hold, in observation order. Only consulted for watched
    /// processes. Each position enters and leaves its queue at most once.
    queues: Vec<VecDeque<u32>>,
    /// Per process: whether its queue head changed since the last settle.
    dirty: Vec<bool>,
    /// Whether any queue head changed since the last settle.
    dirty_any: bool,
    /// The slicer's clock revision at the last settle; a bump means late
    /// messages re-timed history and cached consistency facts expired.
    seen_revision: u64,
    /// The settled verdict: the least satisfying cut of the history so
    /// far, if any. Valid while `!dirty_any` and the revision is unchanged.
    current_alarm: Option<Cut>,
    /// Scratch cut for the alarm join; reused across checks so the warm
    /// path allocates nothing.
    alarm_scratch: Cut,
    /// Cuts already reported; `check` returns each alarm once.
    last_alarm: Option<Cut>,
    stats: MonitorStats,
    /// Stability GC configuration; `None` keeps full history (default).
    gc: Option<GcConfig>,
    /// Events observed since the last GC run.
    since_gc: u64,
}

/// A serializable snapshot of an [`OnlineMonitor`] — the slicer state plus
/// the candidate queues and settled verdict. Produced by
/// [`OnlineMonitor::export_state`], consumed by
/// [`OnlineMonitor::from_state`]; the JSON codec lives in
/// [`checkpoint`](crate::checkpoint). Alarm cuts use absolute counts, so a
/// restored monitor reports byte-identical alarms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorState {
    /// The underlying slicer's retained state.
    pub slicer: SlicerState,
    /// Per process: queued candidate positions (absolute).
    pub queues: Vec<Vec<u32>>,
    /// Per process: whether its queue head changed since the last settle.
    pub dirty: Vec<bool>,
    /// Whether any queue head changed since the last settle.
    pub dirty_any: bool,
    /// The slicer clock revision at the last settle.
    pub seen_revision: u64,
    /// The settled verdict, if any (absolute counts).
    pub current_alarm: Option<Vec<u32>>,
    /// The last reported alarm, for dedup (absolute counts).
    pub last_alarm: Option<Vec<u32>>,
    /// Deterministic work counters.
    pub stats: MonitorStats,
    /// Stability GC configuration, if enabled.
    pub gc: Option<GcConfig>,
    /// Events observed since the last GC run.
    pub since_gc: u64,
}

impl OnlineMonitor {
    /// Creates a monitor over `num_processes` processes.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`OnlineSlicer::new`].
    pub fn new(num_processes: usize) -> Self {
        OnlineMonitor {
            slicer: OnlineSlicer::new(num_processes),
            // Initial events hold vacuously until a watch says otherwise.
            queues: (0..num_processes).map(|_| VecDeque::from([0u32])).collect(),
            dirty: vec![true; num_processes],
            dirty_any: true,
            seen_revision: 0,
            current_alarm: None,
            alarm_scratch: Cut::bottom(num_processes),
            last_alarm: None,
            stats: MonitorStats::default(),
            gc: None,
            since_gc: 0,
        }
    }

    /// Enables causal-stability garbage collection: every
    /// [`GcConfig::every`] events the monitor compacts the slicer below the
    /// stability frontier (capped by [`GcConfig::lag`] and by the oldest
    /// live candidate of each queue), keeping live state proportional to
    /// the unstable suffix instead of the full history. Compaction never
    /// changes verdicts, alarms, or deterministic counters other than the
    /// GC counters themselves.
    pub fn with_gc(mut self, config: GcConfig) -> Self {
        assert!(config.every > 0, "GC cadence must be positive");
        self.gc = Some(config);
        self
    }

    /// The GC configuration, if stability GC is enabled.
    pub fn gc_config(&self) -> Option<GcConfig> {
        self.gc
    }

    /// Declares a monitored variable (before its process's first event).
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`]s from the underlying slicer.
    pub fn declare_var(
        &mut self,
        process: usize,
        name: &str,
        initial: Value,
    ) -> Result<VarRef, BuildError> {
        self.slicer.declare_var(process, name, initial)
    }

    /// Adds a conjunct of the fault predicate.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::LateWatch`] if the variable's process already
    /// observed events; the history is left untouched.
    pub fn watch(
        &mut self,
        var: VarRef,
        label: impl Into<String>,
        f: impl Fn(Value) -> bool + Send + Sync + 'static,
    ) -> Result<(), BuildError> {
        let p = var.process().as_usize();
        self.slicer.watch(var, label, f)?;
        self.rescan_initial(p);
        Ok(())
    }

    /// Adds an integer conjunct, validated against the declared type up
    /// front so the closure can never observe a non-integer value.
    ///
    /// # Errors
    ///
    /// [`BuildError::TypeMismatch`] for a non-integer variable,
    /// [`BuildError::LateWatch`] after the process's first event.
    pub fn watch_int(
        &mut self,
        var: VarRef,
        label: impl Into<String>,
        f: impl Fn(i64) -> bool + Send + Sync + 'static,
    ) -> Result<(), BuildError> {
        let p = var.process().as_usize();
        self.slicer.watch_int(var, label, f)?;
        self.rescan_initial(p);
        Ok(())
    }

    /// Adds a boolean conjunct, validated against the declared type up
    /// front so the closure can never observe a non-boolean value.
    ///
    /// # Errors
    ///
    /// [`BuildError::TypeMismatch`] for a non-boolean variable,
    /// [`BuildError::LateWatch`] after the process's first event.
    pub fn watch_bool(
        &mut self,
        var: VarRef,
        label: impl Into<String>,
        f: impl Fn(bool) -> bool + Send + Sync + 'static,
    ) -> Result<(), BuildError> {
        let p = var.process().as_usize();
        self.slicer.watch_bool(var, label, f)?;
        self.rescan_initial(p);
        Ok(())
    }

    /// Adds a whole local clause (possibly over several variables of one
    /// process) as a conjunct — the bridge from CNF specifications.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::LateWatch`] if the clause's process already
    /// observed events.
    pub fn watch_clause(&mut self, clause: LocalPredicate) -> Result<(), BuildError> {
        let p = clause.process().as_usize();
        self.slicer.watch_clause(clause)?;
        self.rescan_initial(p);
        Ok(())
    }

    /// A new watch may flip the initial event's truth; rebuild the (at
    /// most one-element) queue and force a re-settle.
    fn rescan_initial(&mut self, process: usize) {
        self.queues[process].clear();
        let init = self.slicer.event_at(process, 0);
        if self.slicer.event_holds(init) {
            self.queues[process].push_back(0);
        }
        for d in &mut self.dirty {
            *d = true;
        }
        self.dirty_any = true;
    }

    /// Records a new event with its variable writes. `O(1)` monitor work
    /// on top of the slicer's clock extension: if the event's conjuncts
    /// hold it joins its process's candidate queue.
    ///
    /// # Errors
    ///
    /// Propagates the slicer's validation errors
    /// ([`BuildError::TypeMismatch`], [`BuildError::StaleAssignment`]);
    /// on error nothing is recorded.
    pub fn observe(
        &mut self,
        process: usize,
        assignments: &[(VarRef, Value)],
    ) -> Result<EventId, BuildError> {
        let timed = slicing_observe::enabled(slicing_observe::Level::Trace);
        let t0 = timed.then(std::time::Instant::now);
        let e = self.slicer.observe(process, assignments)?;
        self.stats.events += 1;
        slicing_observe::counter("monitor.events", 1);
        if self.slicer.is_watched(process) && self.slicer.event_holds(e) {
            let pos = self.slicer.events_on(process) - 1;
            if self.queues[process].is_empty() {
                // The head changed: the settled verdict may be stale.
                self.dirty[process] = true;
                self.dirty_any = true;
            }
            self.queues[process].push_back(pos);
            self.stats.delta_cuts += 1;
            slicing_observe::counter("monitor.delta_cuts", 1);
            let queued: u64 = self.queues.iter().map(|q| q.len() as u64).sum();
            if queued > self.stats.peak_candidates {
                self.stats.peak_candidates = queued;
                slicing_observe::gauge("monitor.peak_candidates", queued);
            }
        }
        if self.gc.is_some() {
            self.since_gc += 1;
            if self.since_gc >= self.gc.expect("checked").every {
                self.since_gc = 0;
                self.run_gc();
            }
        }
        if let Some(t0) = t0 {
            slicing_observe::gauge("monitor.observe_nanos", t0.elapsed().as_nanos() as u64);
        }
        Ok(e)
    }

    /// One stability-GC pass: compact the slicer below the stability
    /// frontier, pinned by each queue's oldest live candidate (a candidate
    /// must stay addressable until eliminated or folded into an alarm).
    fn run_gc(&mut self) {
        let config = self.gc.expect("run_gc requires GC to be enabled");
        let n = self.slicer.num_processes();
        let keep_floor: Vec<u32> = (0..n)
            .map(|p| self.queues[p].front().copied().unwrap_or(u32::MAX))
            .collect();
        let result = self.slicer.compact(&keep_floor, config.lag);
        let stable: u64 = result.stable_frontier.iter().map(|&g| g as u64).sum();
        slicing_observe::gauge("monitor.stable_frontier", stable);
        slicing_observe::gauge("monitor.retained_events", result.retained_events);
        self.stats.retained_peak = self.stats.retained_peak.max(result.retained_events);
        if result.dropped_events > 0 {
            self.stats.compactions += 1;
            self.stats.dropped_events += result.dropped_events;
            slicing_observe::counter("monitor.compactions", 1);
            for q in &mut self.queues {
                if q.capacity() > 2 * q.len() + 64 {
                    q.shrink_to_fit();
                }
            }
        }
    }

    /// Acknowledges the currently settled alarm: the witnessing candidate
    /// heads are consumed (each queue advances past its contribution to the
    /// alarm cut) and monitoring continues, watching for the *next*
    /// distinct fault instance. Returns `false` (and does nothing) if no
    /// alarm is currently settled.
    ///
    /// A long-lived deployment should acknowledge every alarm it handles:
    /// un-acknowledged alarm heads are pinned forever, which also pins the
    /// GC floor and lets candidate queues grow without bound.
    pub fn acknowledge_alarm(&mut self) -> bool {
        if self.current_alarm.is_none() {
            return false;
        }
        let n = self.slicer.num_processes();
        for p in 0..n {
            if self.slicer.is_watched(p) {
                self.queues[p].pop_front();
                self.dirty[p] = true;
            }
        }
        self.current_alarm = None;
        self.dirty_any = true;
        slicing_observe::counter("monitor.alarms_acknowledged", 1);
        true
    }

    /// The slicer's causal-stability frontier; see
    /// [`OnlineSlicer::stable_frontier`].
    pub fn stable_frontier(&self) -> Vec<u32> {
        self.slicer.stable_frontier()
    }

    /// Events whose storage is currently retained by the slicer.
    pub fn retained_events(&self) -> u64 {
        self.slicer.retained_events()
    }

    /// Looks up a declared variable by process and name — the handle a
    /// resuming caller needs to re-register watches after
    /// [`from_state`](OnlineMonitor::from_state).
    pub fn var(&self, process: usize, name: &str) -> Option<VarRef> {
        self.slicer.var(process, name)
    }

    /// The event at `pos` on `process`, or `None` if the position is out
    /// of range or compacted away. Lets a resuming driver translate
    /// trace positions (which survive a restart) back into live event
    /// handles for late message delivery.
    pub fn event_at(&self, process: usize, pos: u32) -> Option<EventId> {
        self.slicer.retained_event_at(process, pos)
    }

    /// Events observed on `process` so far, including the initial event.
    pub fn events_on(&self, process: usize) -> u32 {
        self.slicer.events_on(process)
    }

    /// Observes a batch of events in order; each element is a process and
    /// its assignments. Returns the new event ids.
    ///
    /// # Errors
    ///
    /// Stops at the first failing observation; earlier events of the batch
    /// remain part of the history.
    pub fn observe_batch(
        &mut self,
        batch: &[(usize, Vec<(VarRef, Value)>)],
    ) -> Result<Vec<EventId>, BuildError> {
        let mut ids = Vec::with_capacity(batch.len());
        for (process, assignments) in batch {
            ids.push(self.observe(*process, assignments)?);
        }
        Ok(ids)
    }

    /// Records a message between two observed events.
    ///
    /// # Errors
    ///
    /// [`BuildError::CyclicOrder`] for a time-bending message (rejected in
    /// `O(1)` before anything is recorded), plus the builder's own
    /// validations (duplicates, self-messages).
    pub fn message(&mut self, send: EventId, recv: EventId) -> Result<(), BuildError> {
        self.slicer.message(send, recv)?;
        self.stats.messages += 1;
        slicing_observe::counter("monitor.messages", 1);
        Ok(())
    }

    /// Checks the observed history: returns the earliest consistent cut
    /// satisfying all watched conjuncts, or `None`. Consecutive checks
    /// report the same alarm cut only once.
    ///
    /// # Errors
    ///
    /// Never fails on a history assembled through this monitor (cyclic
    /// messages are rejected at [`message`](OnlineMonitor::message) time);
    /// the `Result` is kept for interface stability.
    pub fn check(&mut self) -> Result<Option<Cut>, BuildError> {
        Ok(self.check_detailed()?.found)
    }

    /// [`check`](OnlineMonitor::check) with full search metrics:
    /// `cuts_explored` counts candidate probes and alarm joins this check
    /// performed, `max_stored_cuts` the candidates currently queued.
    ///
    /// # Errors
    ///
    /// Never fails on a history assembled through this monitor; see
    /// [`check`](OnlineMonitor::check).
    pub fn check_detailed(&mut self) -> Result<Detection, BuildError> {
        let _span = slicing_observe::span("monitor.check");
        let timed = slicing_observe::enabled(slicing_observe::Level::Trace);
        let t0 = timed.then(std::time::Instant::now);
        let start = std::time::Instant::now();

        if self.slicer.clock_revision() != self.seen_revision {
            // Late messages re-timed history: cached consistency facts are
            // void. Re-probe every watched head.
            self.seen_revision = self.slicer.clock_revision();
            for d in &mut self.dirty {
                *d = true;
            }
            self.dirty_any = true;
        }
        let work = if self.dirty_any { self.settle() } else { 0 };

        self.stats.checks += 1;
        self.stats.check_cost += work;
        self.stats.last_check_cost = work;
        slicing_observe::counter("monitor.check_cost", work);
        slicing_observe::sample("monitor.check.cost", work);

        let found = if self.current_alarm.is_some() && self.current_alarm != self.last_alarm {
            self.last_alarm.clone_from(&self.current_alarm);
            self.stats.alarms += 1;
            slicing_observe::counter("monitor.alarms", 1);
            self.current_alarm.clone()
        } else {
            None
        };
        let max_stored_cuts = self.queues.iter().map(|q| q.len() as u64).sum();
        if let Some(t0) = t0 {
            slicing_observe::gauge("monitor.check_nanos", t0.elapsed().as_nanos() as u64);
        }
        Ok(Detection {
            found,
            cuts_explored: work,
            max_stored_cuts,
            peak_bytes: 0,
            elapsed: start.elapsed(),
            aborted: None,
            phases: Vec::new(),
        })
    }

    /// Candidate elimination à la weak-conjunctive-predicate detection:
    /// pop queue heads that can never front a satisfying consistent cut,
    /// until the heads are mutually consistent (alarm: their clocks' join
    /// is the least satisfying cut) or some watched queue runs dry (no
    /// alarm yet). Only dirty heads are probed; each elimination is
    /// permanent, so total work is linear in candidates ever queued.
    /// Returns the number of probes + joins performed.
    fn settle(&mut self) -> u64 {
        let n = self.slicer.num_processes();
        let mut work = 0u64;
        'outer: loop {
            for p in 0..n {
                if self.slicer.is_watched(p) && self.queues[p].is_empty() {
                    // Some conjunct has no viable candidate: no satisfying
                    // cut exists yet. New candidates re-dirty the process.
                    for d in &mut self.dirty {
                        *d = false;
                    }
                    self.dirty_any = false;
                    self.current_alarm = None;
                    return work;
                }
            }
            for p in 0..n {
                if !self.dirty[p] || !self.slicer.is_watched(p) {
                    continue;
                }
                let head_p = *self.queues[p].front().expect("checked non-empty");
                let e_p = self.slicer.event_at(p, head_p);
                for q in 0..n {
                    if q == p || !self.slicer.is_watched(q) {
                        continue;
                    }
                    let head_q = *self.queues[q].front().expect("checked non-empty");
                    let e_q = self.slicer.event_at(q, head_q);
                    work += 2;
                    // e_q happened before e_p: every cut containing e_p has
                    // its q-frontier strictly after e_q, so e_q can never
                    // front a satisfying cut. The pop is permanent — clocks
                    // only grow, so the inequality can only strengthen.
                    if self.slicer.clock(e_p).count(ProcessId::new(q)) > head_q + 1 {
                        self.queues[q].pop_front();
                        self.dirty[q] = true;
                        continue 'outer;
                    }
                    if self.slicer.clock(e_q).count(ProcessId::new(p)) > head_p + 1 {
                        self.queues[p].pop_front();
                        continue 'outer;
                    }
                }
                self.dirty[p] = false;
            }
            break;
        }
        // All watched heads are mutually consistent: the join of their
        // clocks is the least consistent cut satisfying every conjunct.
        work += 1;
        for p in 0..n {
            self.alarm_scratch.set_count(ProcessId::new(p), 1);
        }
        for p in 0..n {
            if !self.slicer.is_watched(p) {
                continue;
            }
            let head = *self.queues[p].front().expect("checked non-empty");
            let e = self.slicer.event_at(p, head);
            self.alarm_scratch.join_assign(self.slicer.clock(e));
        }
        match &mut self.current_alarm {
            Some(cut) => cut.clone_from(&self.alarm_scratch),
            None => self.current_alarm = Some(self.alarm_scratch.clone()),
        }
        self.dirty_any = false;
        work
    }

    /// Deterministic work counters accumulated so far.
    pub fn stats(&self) -> MonitorStats {
        self.stats
    }

    /// Serializes the monitor's retained state (everything but the watch
    /// closures); see [`MonitorState`]. Restore with
    /// [`from_state`](OnlineMonitor::from_state) followed by one
    /// [`restore_watch_clause`](OnlineMonitor::restore_watch_clause) per
    /// original conjunct.
    pub fn export_state(&self) -> MonitorState {
        MonitorState {
            slicer: self.slicer.export_state(),
            queues: self
                .queues
                .iter()
                .map(|q| q.iter().copied().collect())
                .collect(),
            dirty: self.dirty.clone(),
            dirty_any: self.dirty_any,
            seen_revision: self.seen_revision,
            current_alarm: self.current_alarm.as_ref().map(|c| c.counts().to_vec()),
            last_alarm: self.last_alarm.as_ref().map(|c| c.counts().to_vec()),
            stats: self.stats,
            gc: self.gc,
            since_gc: self.since_gc,
        }
    }

    /// Reconstructs a monitor from a checkpointed [`MonitorState`]. The
    /// restored monitor has **no watches** — re-register every original
    /// conjunct with
    /// [`restore_watch_clause`](OnlineMonitor::restore_watch_clause) before
    /// observing further events; then the continuation is byte-identical to
    /// an uninterrupted run (same alarms, same deterministic counters).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::InvalidState`] when the state is structurally
    /// inconsistent.
    pub fn from_state(state: &MonitorState) -> Result<OnlineMonitor, BuildError> {
        let invalid = |detail: String| BuildError::InvalidState { detail };
        let slicer = OnlineSlicer::from_state(&state.slicer)?;
        let n = slicer.num_processes();
        if state.queues.len() != n || state.dirty.len() != n {
            return Err(invalid(format!(
                "{n} processes but {} queues and {} dirty flags",
                state.queues.len(),
                state.dirty.len()
            )));
        }
        for (p, q) in state.queues.iter().enumerate() {
            let (base, len) = (slicer.base_of(p), slicer.events_on(p));
            for &pos in q {
                if pos < base || pos >= len {
                    return Err(invalid(format!(
                        "queued candidate {pos} of process {p} outside retained \
                         range {base}..{len}"
                    )));
                }
            }
            if !q.windows(2).all(|w| w[0] < w[1]) {
                return Err(invalid(format!(
                    "candidate queue of process {p} is not strictly increasing"
                )));
            }
        }
        for (what, cut) in [
            ("current_alarm", &state.current_alarm),
            ("last_alarm", &state.last_alarm),
        ] {
            if let Some(counts) = cut {
                if counts.len() != n {
                    return Err(invalid(format!("{what} has arity {}", counts.len())));
                }
            }
        }
        if let Some(gc) = state.gc {
            if gc.every == 0 {
                return Err(invalid("GC cadence must be positive".into()));
            }
        }
        Ok(OnlineMonitor {
            slicer,
            queues: state
                .queues
                .iter()
                .map(|q| q.iter().copied().collect())
                .collect(),
            dirty: state.dirty.clone(),
            dirty_any: state.dirty_any,
            seen_revision: state.seen_revision,
            current_alarm: state.current_alarm.as_deref().map(Cut::from_counts),
            alarm_scratch: Cut::bottom(n),
            last_alarm: state.last_alarm.as_deref().map(Cut::from_counts),
            stats: state.stats,
            gc: state.gc,
            since_gc: state.since_gc,
        })
    }

    /// Re-registers a watch clause on a monitor restored with
    /// [`from_state`](OnlineMonitor::from_state); see
    /// [`OnlineSlicer::restore_watch_clause`]. Candidate queues come from
    /// the checkpoint, so no rescan happens.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::InvalidState`] if the clause contradicts the
    /// checkpointed truth of a retained event.
    pub fn restore_watch_clause(&mut self, clause: LocalPredicate) -> Result<(), BuildError> {
        self.slicer.restore_watch_clause(clause)
    }

    /// Reference check: materializes the history, slices it, and searches
    /// the slice with the offline engine — no incremental state, no alarm
    /// dedup. Used by differential tests to pin
    /// [`check`](OnlineMonitor::check) to the offline semantics; costs
    /// `O(history)` per call.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::CyclicOrder`] if observed messages formed a
    /// cycle (unreachable for histories assembled through this monitor).
    pub fn check_offline(&self) -> Result<Detection, BuildError> {
        let comp = self.slicer.snapshot_computation()?;
        let slice = self.slicer.slice_of(&comp);
        Ok(detect_bfs(&slice, &comp, &LeanTrue, &Limits::none()))
    }

    /// The computation observed so far (for recovery-line analysis or
    /// archiving via the trace format).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::CyclicOrder`] if observed messages formed a
    /// cycle (unreachable for histories assembled through this monitor).
    pub fn history(&self) -> Result<Computation, BuildError> {
        self.slicer.snapshot_computation()
    }
}

/// The residual predicate on the lean conjunctive slice: every slice cut
/// satisfies the conjunction, so the first reached cut is the alarm.
#[derive(Debug)]
struct LeanTrue;

impl Predicate for LeanTrue {
    fn support(&self) -> slicing_computation::ProcSet {
        slicing_computation::ProcSet::empty()
    }

    fn eval(&self, _state: &GlobalState<'_>) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Token-ring hand-off monitored live: "no process has the token".
    #[test]
    fn token_in_transit_raises_exactly_one_alarm() {
        let mut m = OnlineMonitor::new(2);
        let t0 = m.declare_var(0, "has_token", Value::Bool(true)).unwrap();
        let t1 = m.declare_var(1, "has_token", Value::Bool(false)).unwrap();
        m.watch_bool(t0, "!t0", |v| !v).unwrap();
        m.watch_bool(t1, "!t1", |v| !v).unwrap();

        assert_eq!(m.check().unwrap(), None);

        let send = m.observe(0, &[(t0, Value::Bool(false))]).unwrap();
        let alarm = m.check().unwrap().expect("token now in transit");
        assert_eq!(alarm.counts(), &[2, 1]);

        // Unchanged history: the same alarm is not re-reported.
        assert_eq!(m.check().unwrap(), None);

        // After the receive the alarm cut still exists in history (the
        // predicate held at a past cut); the monitor reports it once only.
        let recv = m.observe(1, &[(t1, Value::Bool(true))]).unwrap();
        m.message(send, recv).unwrap();
        assert_eq!(m.check().unwrap(), None);
    }

    #[test]
    fn alarm_moves_when_an_earlier_cut_appears() {
        // Two independent processes; the fault needs both flags true.
        let mut m = OnlineMonitor::new(2);
        let a = m.declare_var(0, "f", Value::Bool(false)).unwrap();
        let b = m.declare_var(1, "f", Value::Bool(false)).unwrap();
        m.watch_bool(a, "a", |v| v).unwrap();
        m.watch_bool(b, "b", |v| v).unwrap();

        m.observe(0, &[(a, Value::Bool(true))]).unwrap();
        m.observe(1, &[(b, Value::Bool(false))]).unwrap();
        assert_eq!(m.check().unwrap(), None);
        m.observe(1, &[(b, Value::Bool(true))]).unwrap();
        let alarm = m.check().unwrap().expect("both flags true");
        assert_eq!(alarm.counts(), &[2, 3]);
    }

    #[test]
    fn metrics_variant_reports_search_effort() {
        let mut m = OnlineMonitor::new(1);
        let x = m.declare_var(0, "x", Value::Int(0)).unwrap();
        m.watch_int(x, "x > 1", |v| v > 1).unwrap();
        m.observe(0, &[(x, Value::Int(2))]).unwrap();
        let d = m.check_detailed().unwrap();
        assert!(d.detected());
        assert!(d.cuts_explored >= 1);
        assert!(m.history().unwrap().num_events() == 2);
    }

    #[test]
    fn messages_constrain_alarms() {
        // The fault cut must be consistent: if p1's flag-up event causally
        // follows p0's flag-down event, no consistent cut has both up.
        let mut m = OnlineMonitor::new(2);
        let a = m.declare_var(0, "f", Value::Bool(true)).unwrap();
        let b = m.declare_var(1, "f", Value::Bool(false)).unwrap();
        m.watch_bool(a, "a", |v| v).unwrap();
        m.watch_bool(b, "b", |v| v).unwrap();

        let down = m.observe(0, &[(a, Value::Bool(false))]).unwrap();
        let up = m.observe(1, &[(b, Value::Bool(true))]).unwrap();
        m.message(down, up).unwrap();
        assert_eq!(m.check().unwrap(), None, "flags were never up together");
    }

    #[test]
    fn incremental_check_matches_offline_reference() {
        // A 3-process script with messages; the incremental alarm must
        // equal the offline slice-and-search verdict at every prefix.
        let mut m = OnlineMonitor::new(3);
        let vars: Vec<VarRef> = (0..3)
            .map(|i| m.declare_var(i, "x", Value::Int(0)).unwrap())
            .collect();
        for &v in &vars {
            m.watch_int(v, "x > 0", |x| x > 0).unwrap();
        }
        let script: [(usize, i64); 9] = [
            (0, 1),
            (1, 0),
            (2, 2),
            (1, 3),
            (0, 0),
            (2, 0),
            (1, 1),
            (0, 2),
            (2, 1),
        ];
        let mut events = Vec::new();
        for (i, &(p, val)) in script.iter().enumerate() {
            let e = m.observe(p, &[(vars[p], Value::Int(val))]).unwrap();
            events.push(e);
            if i == 4 {
                m.message(events[0], events[3]).unwrap();
            }
            if i == 7 {
                m.message(events[2], events[7]).unwrap();
            }
            let offline = m.check_offline().unwrap();
            let d = m.check_detailed().unwrap();
            if let Some(cut) = &d.found {
                assert_eq!(Some(cut), offline.found.as_ref(), "prefix {i}");
            } else {
                // No *new* alarm: either nothing exists offline, or the
                // previously reported cut is still the verdict.
                let prev = m.last_alarm.as_ref();
                assert_eq!(offline.found.as_ref(), prev, "prefix {i}");
            }
        }
    }

    #[test]
    fn warm_checks_allocate_no_cuts() {
        let mut m = OnlineMonitor::new(2);
        let a = m.declare_var(0, "x", Value::Int(0)).unwrap();
        let b = m.declare_var(1, "x", Value::Int(0)).unwrap();
        m.watch_int(a, "x > 0", |v| v > 0).unwrap();
        m.watch_int(b, "x > 0", |v| v > 0).unwrap();
        // Warm up: first alarm materializes the scratch and dedup cuts.
        m.observe(0, &[(a, Value::Int(1))]).unwrap();
        m.observe(1, &[(b, Value::Int(1))]).unwrap();
        m.check().unwrap();
        // Steady state: every observe+check must run cut-allocation-free
        // (2 processes ⇒ inline cuts; the delta search reuses scratch).
        let before = slicing_computation::cut_heap_allocs();
        for i in 0..200i64 {
            m.observe(
                (i % 2) as usize,
                &[(if i % 2 == 0 { a } else { b }, Value::Int(i))],
            )
            .unwrap();
            m.check().unwrap();
        }
        assert_eq!(
            slicing_computation::cut_heap_allocs() - before,
            0,
            "warm monitor checks must not allocate cut storage"
        );
    }

    #[test]
    fn check_cost_is_flat_in_history_length() {
        // Feed k events, checking after each; total probe work must stay
        // linear in k (amortized O(1) per event), not quadratic.
        let mut m = OnlineMonitor::new(3);
        let vars: Vec<VarRef> = (0..3)
            .map(|i| m.declare_var(i, "x", Value::Int(0)).unwrap())
            .collect();
        for &v in &vars {
            m.watch_int(v, "x > 0", |x| x > 0).unwrap();
        }
        let k = 600i64;
        for i in 0..k {
            let p = (i % 3) as usize;
            // Alternate satisfying / violating values to keep queues busy.
            m.observe(p, &[(vars[p], Value::Int(if i % 5 == 0 { 0 } else { 1 }))])
                .unwrap();
            m.check().unwrap();
        }
        let stats = m.stats();
        assert_eq!(stats.events as i64, k);
        assert_eq!(stats.checks as i64, k);
        // Generous constant: with 3 processes, each check is a handful of
        // probes; anything quadratic would blow past this immediately.
        assert!(
            stats.check_cost < 20 * k as u64,
            "check cost {} not linear in {} events",
            stats.check_cost,
            k
        );
    }

    #[test]
    fn errors_do_not_poison_the_monitor() {
        let mut m = OnlineMonitor::new(2);
        let a = m.declare_var(0, "x", Value::Int(0)).unwrap();
        let b = m.declare_var(1, "x", Value::Int(0)).unwrap();
        m.watch_int(a, "x > 0", |v| v > 0).unwrap();
        m.watch_int(b, "x > 0", |v| v > 0).unwrap();
        // A mistyped observation is rejected without panicking …
        let err = m.observe(0, &[(a, Value::Bool(true))]).unwrap_err();
        assert!(matches!(err, BuildError::TypeMismatch { .. }));
        // … a late watch is rejected without panicking …
        let e0 = m.observe(0, &[(a, Value::Int(1))]).unwrap();
        assert!(matches!(
            m.watch_int(a, "late", |v| v > 1),
            Err(BuildError::LateWatch { .. })
        ));
        // … and a cyclic message is rejected before corrupting history.
        let e1 = m.observe(1, &[(b, Value::Int(1))]).unwrap();
        m.message(e0, e1).unwrap();
        let e2 = m.observe(1, &[(b, Value::Int(2))]).unwrap();
        assert_eq!(m.message(e2, e0), Err(BuildError::CyclicOrder));
        // The monitor still detects on the clean history.
        assert!(m.check().unwrap().is_some());
        assert_eq!(m.stats().messages, 1);
    }

    /// Drives a 2-process workload with periodic candidates, bidirectional
    /// messages (so the stability frontier advances on both processes),
    /// and an acknowledge after every alarm. Returns the verdict stream.
    fn drive_rounds(m: &mut OnlineMonitor, rounds: usize) -> Vec<Option<Cut>> {
        let a = m.var(0, "x").unwrap();
        let b = m.var(1, "x").unwrap();
        let (mut ea, mut eb) = (Vec::new(), Vec::new());
        let mut verdicts = Vec::new();
        for i in 0..rounds {
            let va = if i % 5 == 0 { 1 } else { -1 };
            let vb = if i % 7 == 0 { 1 } else { -1 };
            ea.push(m.observe(0, &[(a, Value::Int(va))]).unwrap());
            eb.push(m.observe(1, &[(b, Value::Int(vb))]).unwrap());
            if i % 4 == 0 {
                m.message(ea[i], eb[i]).unwrap();
            }
            if i % 4 == 2 {
                m.message(eb[i - 1], ea[i]).unwrap();
            }
            let v = m.check().unwrap();
            if v.is_some() {
                assert!(m.acknowledge_alarm());
            }
            verdicts.push(v);
        }
        verdicts
    }

    fn watched_pair(m: &mut OnlineMonitor) {
        let a = m.declare_var(0, "x", Value::Int(0)).unwrap();
        let b = m.declare_var(1, "x", Value::Int(0)).unwrap();
        m.watch_int(a, "x > 0", |v| v > 0).unwrap();
        m.watch_int(b, "x > 0", |v| v > 0).unwrap();
    }

    #[test]
    fn gc_preserves_every_verdict_while_bounding_retention() {
        let mut plain = OnlineMonitor::new(2);
        let mut gc = OnlineMonitor::new(2).with_gc(GcConfig { lag: 4, every: 8 });
        watched_pair(&mut plain);
        watched_pair(&mut gc);

        let rounds = 200;
        assert_eq!(
            drive_rounds(&mut plain, rounds),
            drive_rounds(&mut gc, rounds)
        );

        // Observable behavior is untouched by compaction...
        let (p, g) = (plain.stats(), gc.stats());
        assert_eq!(
            (p.events, p.messages, p.checks, p.alarms),
            (g.events, g.messages, g.checks, g.alarms)
        );
        assert_eq!(p.check_cost, g.check_cost, "GC must not change settle work");

        // ...while storage is: the un-GC'd monitor holds the whole run,
        // the GC'd one only the unstable suffix.
        assert_eq!(plain.retained_events(), 2 * (rounds as u64 + 1));
        assert!(g.compactions > 0 && g.dropped_events > 0);
        assert!(
            gc.retained_events() <= 60,
            "retained {} events despite GC",
            gc.retained_events()
        );
        assert!(g.retained_peak < plain.retained_events());
        let frontier = gc.stable_frontier();
        assert!(frontier.iter().all(|&g| g > 1), "both processes stabilized");
    }

    #[test]
    fn unacknowledged_alarms_pin_retention_and_acks_release_it() {
        let mut m = OnlineMonitor::new(2).with_gc(GcConfig { lag: 2, every: 4 });
        let a = m.declare_var(0, "x", Value::Int(1)).unwrap();
        let b = m.declare_var(1, "x", Value::Int(1)).unwrap();
        m.watch_int(a, "x > 0", |v| v > 0).unwrap();
        m.watch_int(b, "x > 0", |v| v > 0).unwrap();

        // Every event is a candidate and no alarm is acknowledged: the
        // alarm heads pin the GC floor at the start of history.
        let (mut ea, mut eb) = (Vec::new(), Vec::new());
        for i in 0..40usize {
            ea.push(m.observe(0, &[(a, Value::Int(1))]).unwrap());
            eb.push(m.observe(1, &[(b, Value::Int(1))]).unwrap());
            if i % 2 == 0 {
                m.message(ea[i], eb[i]).unwrap();
            } else {
                m.message(eb[i - 1], ea[i]).unwrap();
            }
            m.check().unwrap();
        }
        let pinned = m.retained_events();
        assert!(pinned >= 80, "nothing should be dropped while heads pin");

        // Handle the backlog: each ack consumes one fault instance, and
        // the following check settles the next one (if any) so the loop
        // keeps consuming until some queue runs dry.
        while m.acknowledge_alarm() {
            m.check().unwrap();
        }
        // A little more (non-candidate) traffic lets the stability
        // frontier catch up and GC reclaim the acknowledged history.
        for i in 40..60usize {
            ea.push(m.observe(0, &[(a, Value::Int(0))]).unwrap());
            eb.push(m.observe(1, &[(b, Value::Int(0))]).unwrap());
            if i % 2 == 0 {
                m.message(ea[i], eb[i]).unwrap();
            } else {
                m.message(eb[i - 1], ea[i]).unwrap();
            }
            m.check().unwrap();
        }
        let after = m.retained_events();
        assert!(
            after < pinned / 4,
            "acknowledged history must be reclaimed: {pinned} -> {after}"
        );
    }

    #[test]
    fn from_state_rejects_corrupt_monitor_state() {
        let mut m = OnlineMonitor::new(2).with_gc(GcConfig { lag: 4, every: 8 });
        watched_pair(&mut m);
        drive_rounds(&mut m, 30);
        let good = m.export_state();
        assert!(OnlineMonitor::from_state(&good).is_ok());

        let mut s = good.clone();
        s.queues[0].push(10_000); // position past the end of history
        assert!(matches!(
            OnlineMonitor::from_state(&s),
            Err(BuildError::InvalidState { .. })
        ));

        let mut s = good.clone();
        s.dirty.pop(); // arity mismatch
        assert!(matches!(
            OnlineMonitor::from_state(&s),
            Err(BuildError::InvalidState { .. })
        ));

        let mut s = good.clone();
        s.gc = Some(GcConfig { lag: 4, every: 0 });
        assert!(matches!(
            OnlineMonitor::from_state(&s),
            Err(BuildError::InvalidState { .. })
        ));

        let mut s = good;
        s.current_alarm = Some(vec![1, 1, 1]); // wrong arity
        assert!(matches!(
            OnlineMonitor::from_state(&s),
            Err(BuildError::InvalidState { .. })
        ));
    }

    #[test]
    fn observe_batch_streams_like_single_observes() {
        let mut m = OnlineMonitor::new(2);
        let a = m.declare_var(0, "x", Value::Int(0)).unwrap();
        let b = m.declare_var(1, "x", Value::Int(0)).unwrap();
        m.watch_int(a, "x > 0", |v| v > 0).unwrap();
        m.watch_int(b, "x > 0", |v| v > 0).unwrap();
        let ids = m
            .observe_batch(&[(0, vec![(a, Value::Int(2))]), (1, vec![(b, Value::Int(3))])])
            .unwrap();
        assert_eq!(ids.len(), 2);
        let alarm = m.check().unwrap().expect("both positive");
        assert_eq!(alarm.counts(), &[2, 2]);
        assert_eq!(m.stats().events, 2);
        assert_eq!(m.stats().delta_cuts, 2);
    }
}
