//! Online fault monitoring: the paper's motivating loop — observe the
//! execution as it unfolds, keep the slice current, and raise an alarm
//! the moment some consistent cut of the history violates the invariant.
//!
//! Built on the incremental conjunctive slicer
//! ([`OnlineSlicer`](slicing_core::OnlineSlicer)); the monitored fault is
//! a *conjunction of local predicates* (e.g. "no process holds the token",
//! or any single clause of a CNF invariant — run one monitor per clause
//! for full CNF coverage).

use slicing_computation::{BuildError, Computation, Cut, EventId, GlobalState, Value, VarRef};
use slicing_core::OnlineSlicer;
use slicing_predicates::Predicate;

use crate::enumerate::detect_bfs;
use crate::metrics::{Detection, Limits};

/// An online monitor for a conjunctive global fault.
///
/// Feed events and messages as they are observed;
/// [`check`](OnlineMonitor::check) reports the earliest consistent cut of
/// the observed history that satisfies every watched conjunct, if any. The
/// constraint edges are maintained incrementally (`O(1)` per event); each
/// check costs one least-cut-table rebuild plus a search of the (usually
/// tiny or empty) slice.
///
/// `possibly: fault` over a growing history is monotone — once a
/// satisfying cut exists it exists forever — so the earliest witness is
/// stable and [`check`](OnlineMonitor::check) reports it exactly once.
/// After taking corrective action (e.g. rolling back to a recovery line),
/// start a fresh monitor from the recovered state; that is the paper's
/// monitor → detect → correct loop.
///
/// # Examples
///
/// ```
/// use slicing_computation::Value;
/// use slicing_detect::OnlineMonitor;
///
/// // Watch for "both flags down" on two processes.
/// let mut m = OnlineMonitor::new(2);
/// let a = m.declare_var(0, "up", Value::Bool(true))?;
/// let b = m.declare_var(1, "up", Value::Bool(true))?;
/// m.watch(a, "!up_0", |v| !v.expect_bool());
/// m.watch(b, "!up_1", |v| !v.expect_bool());
///
/// m.observe(0, &[(a, Value::Bool(false))])?;
/// assert!(m.check()?.is_none()); // p1 still up
/// m.observe(1, &[(b, Value::Bool(false))])?;
/// assert!(m.check()?.is_some()); // both down at a consistent cut
/// # Ok::<(), slicing_computation::BuildError>(())
/// ```
#[derive(Debug)]
pub struct OnlineMonitor {
    slicer: OnlineSlicer,
    /// Cuts already reported; `check` returns each alarm once.
    last_alarm: Option<Cut>,
}

impl OnlineMonitor {
    /// Creates a monitor over `num_processes` processes.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`OnlineSlicer::new`].
    pub fn new(num_processes: usize) -> Self {
        OnlineMonitor {
            slicer: OnlineSlicer::new(num_processes),
            last_alarm: None,
        }
    }

    /// Declares a monitored variable (before its process's first event).
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`]s from the underlying slicer.
    pub fn declare_var(
        &mut self,
        process: usize,
        name: &str,
        initial: Value,
    ) -> Result<VarRef, BuildError> {
        self.slicer.declare_var(process, name, initial)
    }

    /// Adds a conjunct of the fault predicate.
    ///
    /// # Panics
    ///
    /// Panics if the variable's process already observed events.
    pub fn watch(
        &mut self,
        var: VarRef,
        label: impl Into<String>,
        f: impl Fn(Value) -> bool + Send + Sync + 'static,
    ) {
        self.slicer.watch(var, label, f);
    }

    /// Records a new event with its variable writes.
    ///
    /// # Errors
    ///
    /// Propagates builder errors.
    pub fn observe(
        &mut self,
        process: usize,
        assignments: &[(VarRef, Value)],
    ) -> Result<EventId, BuildError> {
        if !slicing_observe::enabled(slicing_observe::Level::Trace) {
            return self.slicer.observe(process, assignments);
        }
        let t0 = std::time::Instant::now();
        let id = self.slicer.observe(process, assignments);
        slicing_observe::gauge("monitor.observe_nanos", t0.elapsed().as_nanos() as u64);
        id
    }

    /// Records a message between two observed events.
    ///
    /// # Errors
    ///
    /// Propagates builder errors (duplicates, self-messages).
    pub fn message(&mut self, send: EventId, recv: EventId) -> Result<(), BuildError> {
        self.slicer.message(send, recv)
    }

    /// Checks the observed history: returns the earliest consistent cut
    /// satisfying all watched conjuncts, or `None`. Consecutive checks
    /// report the same alarm cut only once.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::CyclicOrder`] if observed messages formed a
    /// cycle.
    pub fn check(&mut self) -> Result<Option<Cut>, BuildError> {
        Ok(self.check_detailed()?.found)
    }

    /// [`check`](OnlineMonitor::check) with full search metrics.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::CyclicOrder`] if observed messages formed a
    /// cycle.
    pub fn check_detailed(&mut self) -> Result<Detection, BuildError> {
        let _span = slicing_observe::span("monitor.check");
        let timed = slicing_observe::enabled(slicing_observe::Level::Trace);
        let t0 = timed.then(std::time::Instant::now);
        let comp = self.slicer.snapshot_computation()?;
        let slice = self.slicer.slice_of(&comp);
        // The slice of a conjunctive predicate is lean: its bottom cut, if
        // any, already satisfies the fault. Searching keeps the metrics
        // honest and reuses the dedup against last_alarm.
        let mut outcome = detect_bfs(&slice, &comp, &LeanTrue, &Limits::none());
        if outcome.found.is_some() && outcome.found == self.last_alarm {
            outcome.found = None;
        } else if outcome.found.is_some() {
            self.last_alarm.clone_from(&outcome.found);
            slicing_observe::counter("monitor.alarms", 1);
        }
        if let Some(t0) = t0 {
            slicing_observe::gauge("monitor.check_nanos", t0.elapsed().as_nanos() as u64);
        }
        Ok(outcome)
    }

    /// The computation observed so far (for recovery-line analysis or
    /// archiving via the trace format).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::CyclicOrder`] if observed messages formed a
    /// cycle.
    pub fn history(&self) -> Result<Computation, BuildError> {
        self.slicer.snapshot_computation()
    }
}

/// The residual predicate on the lean conjunctive slice: every slice cut
/// satisfies the conjunction, so the first reached cut is the alarm.
#[derive(Debug)]
struct LeanTrue;

impl Predicate for LeanTrue {
    fn support(&self) -> slicing_computation::ProcSet {
        slicing_computation::ProcSet::empty()
    }

    fn eval(&self, _state: &GlobalState<'_>) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Token-ring hand-off monitored live: "no process has the token".
    #[test]
    fn token_in_transit_raises_exactly_one_alarm() {
        let mut m = OnlineMonitor::new(2);
        let t0 = m.declare_var(0, "has_token", Value::Bool(true)).unwrap();
        let t1 = m.declare_var(1, "has_token", Value::Bool(false)).unwrap();
        m.watch(t0, "!t0", |v| !v.expect_bool());
        m.watch(t1, "!t1", |v| !v.expect_bool());

        assert_eq!(m.check().unwrap(), None);

        let send = m.observe(0, &[(t0, Value::Bool(false))]).unwrap();
        let alarm = m.check().unwrap().expect("token now in transit");
        assert_eq!(alarm.counts(), &[2, 1]);

        // Unchanged history: the same alarm is not re-reported.
        assert_eq!(m.check().unwrap(), None);

        // After the receive the alarm cut still exists in history (the
        // predicate held at a past cut); the monitor reports it once only.
        let recv = m.observe(1, &[(t1, Value::Bool(true))]).unwrap();
        m.message(send, recv).unwrap();
        assert_eq!(m.check().unwrap(), None);
    }

    #[test]
    fn alarm_moves_when_an_earlier_cut_appears() {
        // Two independent processes; the fault needs both flags true.
        let mut m = OnlineMonitor::new(2);
        let a = m.declare_var(0, "f", Value::Bool(false)).unwrap();
        let b = m.declare_var(1, "f", Value::Bool(false)).unwrap();
        m.watch(a, "a", |v| v.expect_bool());
        m.watch(b, "b", |v| v.expect_bool());

        m.observe(0, &[(a, Value::Bool(true))]).unwrap();
        m.observe(1, &[(b, Value::Bool(false))]).unwrap();
        assert_eq!(m.check().unwrap(), None);
        m.observe(1, &[(b, Value::Bool(true))]).unwrap();
        let alarm = m.check().unwrap().expect("both flags true");
        assert_eq!(alarm.counts(), &[2, 3]);
    }

    #[test]
    fn metrics_variant_reports_search_effort() {
        let mut m = OnlineMonitor::new(1);
        let x = m.declare_var(0, "x", Value::Int(0)).unwrap();
        m.watch(x, "x > 1", |v| v.expect_int() > 1);
        m.observe(0, &[(x, Value::Int(2))]).unwrap();
        let d = m.check_detailed().unwrap();
        assert!(d.detected());
        assert!(d.cuts_explored >= 1);
        assert!(m.history().unwrap().num_events() == 2);
    }

    #[test]
    fn messages_constrain_alarms() {
        // The fault cut must be consistent: if p1's flag-up event causally
        // follows p0's flag-down event, no consistent cut has both up.
        let mut m = OnlineMonitor::new(2);
        let a = m.declare_var(0, "f", Value::Bool(true)).unwrap();
        let b = m.declare_var(1, "f", Value::Bool(false)).unwrap();
        m.watch(a, "a", |v| v.expect_bool());
        m.watch(b, "b", |v| v.expect_bool());

        let down = m.observe(0, &[(a, Value::Bool(false))]).unwrap();
        let up = m.observe(1, &[(b, Value::Bool(true))]).unwrap();
        m.message(down, up).unwrap();
        assert_eq!(m.check().unwrap(), None, "flags were never up together");
    }
}
