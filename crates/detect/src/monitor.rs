//! Online fault monitoring: the paper's motivating loop — observe the
//! execution as it unfolds, keep the slice current, and raise an alarm
//! the moment some consistent cut of the history violates the invariant.
//!
//! Built on the incremental conjunctive slicer
//! ([`OnlineSlicer`](slicing_core::OnlineSlicer)); the monitored fault is
//! a *conjunction of local predicates* (e.g. "no process holds the token",
//! or any single clause of a CNF invariant — run one monitor per clause
//! for full CNF coverage).
//!
//! Checks are incremental in the weak-conjunctive-predicate style: each
//! watched process keeps a FIFO queue of *candidate* positions (events
//! where its conjuncts hold); a check only re-examines heads whose queue
//! changed since the previous check (plus everything, once, after a late
//! message re-times the history). Each candidate is eliminated at most
//! once ever, so for a fixed number of processes the per-event check cost
//! is amortized `O(1)` — *independent of the history length* — and the
//! steady state allocates no cut storage at all.

use std::collections::VecDeque;

use slicing_computation::{
    BuildError, Computation, Cut, EventId, GlobalState, ProcessId, Value, VarRef,
};
use slicing_core::OnlineSlicer;
use slicing_predicates::{LocalPredicate, Predicate};

use crate::enumerate::detect_bfs;
use crate::metrics::{Detection, Limits};

/// Deterministic counters describing a monitor's work so far. Every field
/// is a pure event/probe count — no wall-clock — so the numbers are
/// reproducible run-to-run and can gate CI.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Events observed (excluding the fictitious initial events).
    pub events: u64,
    /// Messages recorded.
    pub messages: u64,
    /// Calls to [`check`](OnlineMonitor::check) /
    /// [`check_detailed`](OnlineMonitor::check_detailed).
    pub checks: u64,
    /// Distinct alarms reported.
    pub alarms: u64,
    /// Total check work: candidate-pair probes plus alarm joins, summed
    /// over all checks. The amortized-`O(1)` claim is about this counter:
    /// it grows linearly in events observed, not quadratically.
    pub check_cost: u64,
    /// The work of the most recent check alone.
    pub last_check_cost: u64,
    /// Candidate cuts unlocked by observations: events whose local
    /// conjuncts held when observed on a watched process.
    pub delta_cuts: u64,
    /// Peak number of simultaneously queued candidates.
    pub peak_candidates: u64,
}

/// An online monitor for a conjunctive global fault.
///
/// Feed events and messages as they are observed;
/// [`check`](OnlineMonitor::check) reports the earliest consistent cut of
/// the observed history that satisfies every watched conjunct, if any.
/// Both the constraint edges and the least-cut table are maintained
/// incrementally by the underlying [`OnlineSlicer`], and each check
/// examines only the *delta* since the last check — new candidate events
/// and the eliminations they trigger — so steady-state monitoring costs
/// amortized `O(1)` per event and performs no cut allocations (for up to
/// 16 processes, where cuts are stored inline).
///
/// `possibly: fault` over a growing history is monotone — once a
/// satisfying cut exists it exists forever — so the earliest witness is
/// stable and [`check`](OnlineMonitor::check) reports it exactly once.
/// After taking corrective action (e.g. rolling back to a recovery line),
/// start a fresh monitor from the recovered state; that is the paper's
/// monitor → detect → correct loop.
///
/// # Examples
///
/// ```
/// use slicing_computation::Value;
/// use slicing_detect::OnlineMonitor;
///
/// // Watch for "both flags down" on two processes.
/// let mut m = OnlineMonitor::new(2);
/// let a = m.declare_var(0, "up", Value::Bool(true))?;
/// let b = m.declare_var(1, "up", Value::Bool(true))?;
/// m.watch_bool(a, "!up_0", |v| !v)?;
/// m.watch_bool(b, "!up_1", |v| !v)?;
///
/// m.observe(0, &[(a, Value::Bool(false))])?;
/// assert!(m.check()?.is_none()); // p1 still up
/// m.observe(1, &[(b, Value::Bool(false))])?;
/// assert!(m.check()?.is_some()); // both down at a consistent cut
/// # Ok::<(), slicing_computation::BuildError>(())
/// ```
#[derive(Debug)]
pub struct OnlineMonitor {
    slicer: OnlineSlicer,
    /// Per process: queued candidate positions — events whose local
    /// conjuncts hold, in observation order. Only consulted for watched
    /// processes. Each position enters and leaves its queue at most once.
    queues: Vec<VecDeque<u32>>,
    /// Per process: whether its queue head changed since the last settle.
    dirty: Vec<bool>,
    /// Whether any queue head changed since the last settle.
    dirty_any: bool,
    /// The slicer's clock revision at the last settle; a bump means late
    /// messages re-timed history and cached consistency facts expired.
    seen_revision: u64,
    /// The settled verdict: the least satisfying cut of the history so
    /// far, if any. Valid while `!dirty_any` and the revision is unchanged.
    current_alarm: Option<Cut>,
    /// Scratch cut for the alarm join; reused across checks so the warm
    /// path allocates nothing.
    alarm_scratch: Cut,
    /// Cuts already reported; `check` returns each alarm once.
    last_alarm: Option<Cut>,
    stats: MonitorStats,
}

impl OnlineMonitor {
    /// Creates a monitor over `num_processes` processes.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`OnlineSlicer::new`].
    pub fn new(num_processes: usize) -> Self {
        OnlineMonitor {
            slicer: OnlineSlicer::new(num_processes),
            // Initial events hold vacuously until a watch says otherwise.
            queues: (0..num_processes).map(|_| VecDeque::from([0u32])).collect(),
            dirty: vec![true; num_processes],
            dirty_any: true,
            seen_revision: 0,
            current_alarm: None,
            alarm_scratch: Cut::bottom(num_processes),
            last_alarm: None,
            stats: MonitorStats::default(),
        }
    }

    /// Declares a monitored variable (before its process's first event).
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`]s from the underlying slicer.
    pub fn declare_var(
        &mut self,
        process: usize,
        name: &str,
        initial: Value,
    ) -> Result<VarRef, BuildError> {
        self.slicer.declare_var(process, name, initial)
    }

    /// Adds a conjunct of the fault predicate.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::LateWatch`] if the variable's process already
    /// observed events; the history is left untouched.
    pub fn watch(
        &mut self,
        var: VarRef,
        label: impl Into<String>,
        f: impl Fn(Value) -> bool + Send + Sync + 'static,
    ) -> Result<(), BuildError> {
        let p = var.process().as_usize();
        self.slicer.watch(var, label, f)?;
        self.rescan_initial(p);
        Ok(())
    }

    /// Adds an integer conjunct, validated against the declared type up
    /// front so the closure can never observe a non-integer value.
    ///
    /// # Errors
    ///
    /// [`BuildError::TypeMismatch`] for a non-integer variable,
    /// [`BuildError::LateWatch`] after the process's first event.
    pub fn watch_int(
        &mut self,
        var: VarRef,
        label: impl Into<String>,
        f: impl Fn(i64) -> bool + Send + Sync + 'static,
    ) -> Result<(), BuildError> {
        let p = var.process().as_usize();
        self.slicer.watch_int(var, label, f)?;
        self.rescan_initial(p);
        Ok(())
    }

    /// Adds a boolean conjunct, validated against the declared type up
    /// front so the closure can never observe a non-boolean value.
    ///
    /// # Errors
    ///
    /// [`BuildError::TypeMismatch`] for a non-boolean variable,
    /// [`BuildError::LateWatch`] after the process's first event.
    pub fn watch_bool(
        &mut self,
        var: VarRef,
        label: impl Into<String>,
        f: impl Fn(bool) -> bool + Send + Sync + 'static,
    ) -> Result<(), BuildError> {
        let p = var.process().as_usize();
        self.slicer.watch_bool(var, label, f)?;
        self.rescan_initial(p);
        Ok(())
    }

    /// Adds a whole local clause (possibly over several variables of one
    /// process) as a conjunct — the bridge from CNF specifications.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::LateWatch`] if the clause's process already
    /// observed events.
    pub fn watch_clause(&mut self, clause: LocalPredicate) -> Result<(), BuildError> {
        let p = clause.process().as_usize();
        self.slicer.watch_clause(clause)?;
        self.rescan_initial(p);
        Ok(())
    }

    /// A new watch may flip the initial event's truth; rebuild the (at
    /// most one-element) queue and force a re-settle.
    fn rescan_initial(&mut self, process: usize) {
        self.queues[process].clear();
        let init = self.slicer.event_at(process, 0);
        if self.slicer.event_holds(init) {
            self.queues[process].push_back(0);
        }
        for d in &mut self.dirty {
            *d = true;
        }
        self.dirty_any = true;
    }

    /// Records a new event with its variable writes. `O(1)` monitor work
    /// on top of the slicer's clock extension: if the event's conjuncts
    /// hold it joins its process's candidate queue.
    ///
    /// # Errors
    ///
    /// Propagates the slicer's validation errors
    /// ([`BuildError::TypeMismatch`], [`BuildError::StaleAssignment`]);
    /// on error nothing is recorded.
    pub fn observe(
        &mut self,
        process: usize,
        assignments: &[(VarRef, Value)],
    ) -> Result<EventId, BuildError> {
        let timed = slicing_observe::enabled(slicing_observe::Level::Trace);
        let t0 = timed.then(std::time::Instant::now);
        let e = self.slicer.observe(process, assignments)?;
        self.stats.events += 1;
        slicing_observe::counter("monitor.events", 1);
        if self.slicer.is_watched(process) && self.slicer.event_holds(e) {
            let pos = self.slicer.events_on(process) - 1;
            if self.queues[process].is_empty() {
                // The head changed: the settled verdict may be stale.
                self.dirty[process] = true;
                self.dirty_any = true;
            }
            self.queues[process].push_back(pos);
            self.stats.delta_cuts += 1;
            slicing_observe::counter("monitor.delta_cuts", 1);
            let queued: u64 = self.queues.iter().map(|q| q.len() as u64).sum();
            if queued > self.stats.peak_candidates {
                self.stats.peak_candidates = queued;
                slicing_observe::gauge("monitor.peak_candidates", queued);
            }
        }
        if let Some(t0) = t0 {
            slicing_observe::gauge("monitor.observe_nanos", t0.elapsed().as_nanos() as u64);
        }
        Ok(e)
    }

    /// Observes a batch of events in order; each element is a process and
    /// its assignments. Returns the new event ids.
    ///
    /// # Errors
    ///
    /// Stops at the first failing observation; earlier events of the batch
    /// remain part of the history.
    pub fn observe_batch(
        &mut self,
        batch: &[(usize, Vec<(VarRef, Value)>)],
    ) -> Result<Vec<EventId>, BuildError> {
        let mut ids = Vec::with_capacity(batch.len());
        for (process, assignments) in batch {
            ids.push(self.observe(*process, assignments)?);
        }
        Ok(ids)
    }

    /// Records a message between two observed events.
    ///
    /// # Errors
    ///
    /// [`BuildError::CyclicOrder`] for a time-bending message (rejected in
    /// `O(1)` before anything is recorded), plus the builder's own
    /// validations (duplicates, self-messages).
    pub fn message(&mut self, send: EventId, recv: EventId) -> Result<(), BuildError> {
        self.slicer.message(send, recv)?;
        self.stats.messages += 1;
        slicing_observe::counter("monitor.messages", 1);
        Ok(())
    }

    /// Checks the observed history: returns the earliest consistent cut
    /// satisfying all watched conjuncts, or `None`. Consecutive checks
    /// report the same alarm cut only once.
    ///
    /// # Errors
    ///
    /// Never fails on a history assembled through this monitor (cyclic
    /// messages are rejected at [`message`](OnlineMonitor::message) time);
    /// the `Result` is kept for interface stability.
    pub fn check(&mut self) -> Result<Option<Cut>, BuildError> {
        Ok(self.check_detailed()?.found)
    }

    /// [`check`](OnlineMonitor::check) with full search metrics:
    /// `cuts_explored` counts candidate probes and alarm joins this check
    /// performed, `max_stored_cuts` the candidates currently queued.
    ///
    /// # Errors
    ///
    /// Never fails on a history assembled through this monitor; see
    /// [`check`](OnlineMonitor::check).
    pub fn check_detailed(&mut self) -> Result<Detection, BuildError> {
        let _span = slicing_observe::span("monitor.check");
        let timed = slicing_observe::enabled(slicing_observe::Level::Trace);
        let t0 = timed.then(std::time::Instant::now);
        let start = std::time::Instant::now();

        if self.slicer.clock_revision() != self.seen_revision {
            // Late messages re-timed history: cached consistency facts are
            // void. Re-probe every watched head.
            self.seen_revision = self.slicer.clock_revision();
            for d in &mut self.dirty {
                *d = true;
            }
            self.dirty_any = true;
        }
        let work = if self.dirty_any { self.settle() } else { 0 };

        self.stats.checks += 1;
        self.stats.check_cost += work;
        self.stats.last_check_cost = work;
        slicing_observe::counter("monitor.check_cost", work);
        slicing_observe::sample("monitor.check.cost", work);

        let found = if self.current_alarm.is_some() && self.current_alarm != self.last_alarm {
            self.last_alarm.clone_from(&self.current_alarm);
            self.stats.alarms += 1;
            slicing_observe::counter("monitor.alarms", 1);
            self.current_alarm.clone()
        } else {
            None
        };
        let max_stored_cuts = self.queues.iter().map(|q| q.len() as u64).sum();
        if let Some(t0) = t0 {
            slicing_observe::gauge("monitor.check_nanos", t0.elapsed().as_nanos() as u64);
        }
        Ok(Detection {
            found,
            cuts_explored: work,
            max_stored_cuts,
            peak_bytes: 0,
            elapsed: start.elapsed(),
            aborted: None,
            phases: Vec::new(),
        })
    }

    /// Candidate elimination à la weak-conjunctive-predicate detection:
    /// pop queue heads that can never front a satisfying consistent cut,
    /// until the heads are mutually consistent (alarm: their clocks' join
    /// is the least satisfying cut) or some watched queue runs dry (no
    /// alarm yet). Only dirty heads are probed; each elimination is
    /// permanent, so total work is linear in candidates ever queued.
    /// Returns the number of probes + joins performed.
    fn settle(&mut self) -> u64 {
        let n = self.slicer.num_processes();
        let mut work = 0u64;
        'outer: loop {
            for p in 0..n {
                if self.slicer.is_watched(p) && self.queues[p].is_empty() {
                    // Some conjunct has no viable candidate: no satisfying
                    // cut exists yet. New candidates re-dirty the process.
                    for d in &mut self.dirty {
                        *d = false;
                    }
                    self.dirty_any = false;
                    self.current_alarm = None;
                    return work;
                }
            }
            for p in 0..n {
                if !self.dirty[p] || !self.slicer.is_watched(p) {
                    continue;
                }
                let head_p = *self.queues[p].front().expect("checked non-empty");
                let e_p = self.slicer.event_at(p, head_p);
                for q in 0..n {
                    if q == p || !self.slicer.is_watched(q) {
                        continue;
                    }
                    let head_q = *self.queues[q].front().expect("checked non-empty");
                    let e_q = self.slicer.event_at(q, head_q);
                    work += 2;
                    // e_q happened before e_p: every cut containing e_p has
                    // its q-frontier strictly after e_q, so e_q can never
                    // front a satisfying cut. The pop is permanent — clocks
                    // only grow, so the inequality can only strengthen.
                    if self.slicer.clock(e_p).count(ProcessId::new(q)) > head_q + 1 {
                        self.queues[q].pop_front();
                        self.dirty[q] = true;
                        continue 'outer;
                    }
                    if self.slicer.clock(e_q).count(ProcessId::new(p)) > head_p + 1 {
                        self.queues[p].pop_front();
                        continue 'outer;
                    }
                }
                self.dirty[p] = false;
            }
            break;
        }
        // All watched heads are mutually consistent: the join of their
        // clocks is the least consistent cut satisfying every conjunct.
        work += 1;
        for p in 0..n {
            self.alarm_scratch.set_count(ProcessId::new(p), 1);
        }
        for p in 0..n {
            if !self.slicer.is_watched(p) {
                continue;
            }
            let head = *self.queues[p].front().expect("checked non-empty");
            let e = self.slicer.event_at(p, head);
            self.alarm_scratch.join_assign(self.slicer.clock(e));
        }
        match &mut self.current_alarm {
            Some(cut) => cut.clone_from(&self.alarm_scratch),
            None => self.current_alarm = Some(self.alarm_scratch.clone()),
        }
        self.dirty_any = false;
        work
    }

    /// Deterministic work counters accumulated so far.
    pub fn stats(&self) -> MonitorStats {
        self.stats
    }

    /// Reference check: materializes the history, slices it, and searches
    /// the slice with the offline engine — no incremental state, no alarm
    /// dedup. Used by differential tests to pin
    /// [`check`](OnlineMonitor::check) to the offline semantics; costs
    /// `O(history)` per call.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::CyclicOrder`] if observed messages formed a
    /// cycle (unreachable for histories assembled through this monitor).
    pub fn check_offline(&self) -> Result<Detection, BuildError> {
        let comp = self.slicer.snapshot_computation()?;
        let slice = self.slicer.slice_of(&comp);
        Ok(detect_bfs(&slice, &comp, &LeanTrue, &Limits::none()))
    }

    /// The computation observed so far (for recovery-line analysis or
    /// archiving via the trace format).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::CyclicOrder`] if observed messages formed a
    /// cycle (unreachable for histories assembled through this monitor).
    pub fn history(&self) -> Result<Computation, BuildError> {
        self.slicer.snapshot_computation()
    }
}

/// The residual predicate on the lean conjunctive slice: every slice cut
/// satisfies the conjunction, so the first reached cut is the alarm.
#[derive(Debug)]
struct LeanTrue;

impl Predicate for LeanTrue {
    fn support(&self) -> slicing_computation::ProcSet {
        slicing_computation::ProcSet::empty()
    }

    fn eval(&self, _state: &GlobalState<'_>) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Token-ring hand-off monitored live: "no process has the token".
    #[test]
    fn token_in_transit_raises_exactly_one_alarm() {
        let mut m = OnlineMonitor::new(2);
        let t0 = m.declare_var(0, "has_token", Value::Bool(true)).unwrap();
        let t1 = m.declare_var(1, "has_token", Value::Bool(false)).unwrap();
        m.watch_bool(t0, "!t0", |v| !v).unwrap();
        m.watch_bool(t1, "!t1", |v| !v).unwrap();

        assert_eq!(m.check().unwrap(), None);

        let send = m.observe(0, &[(t0, Value::Bool(false))]).unwrap();
        let alarm = m.check().unwrap().expect("token now in transit");
        assert_eq!(alarm.counts(), &[2, 1]);

        // Unchanged history: the same alarm is not re-reported.
        assert_eq!(m.check().unwrap(), None);

        // After the receive the alarm cut still exists in history (the
        // predicate held at a past cut); the monitor reports it once only.
        let recv = m.observe(1, &[(t1, Value::Bool(true))]).unwrap();
        m.message(send, recv).unwrap();
        assert_eq!(m.check().unwrap(), None);
    }

    #[test]
    fn alarm_moves_when_an_earlier_cut_appears() {
        // Two independent processes; the fault needs both flags true.
        let mut m = OnlineMonitor::new(2);
        let a = m.declare_var(0, "f", Value::Bool(false)).unwrap();
        let b = m.declare_var(1, "f", Value::Bool(false)).unwrap();
        m.watch_bool(a, "a", |v| v).unwrap();
        m.watch_bool(b, "b", |v| v).unwrap();

        m.observe(0, &[(a, Value::Bool(true))]).unwrap();
        m.observe(1, &[(b, Value::Bool(false))]).unwrap();
        assert_eq!(m.check().unwrap(), None);
        m.observe(1, &[(b, Value::Bool(true))]).unwrap();
        let alarm = m.check().unwrap().expect("both flags true");
        assert_eq!(alarm.counts(), &[2, 3]);
    }

    #[test]
    fn metrics_variant_reports_search_effort() {
        let mut m = OnlineMonitor::new(1);
        let x = m.declare_var(0, "x", Value::Int(0)).unwrap();
        m.watch_int(x, "x > 1", |v| v > 1).unwrap();
        m.observe(0, &[(x, Value::Int(2))]).unwrap();
        let d = m.check_detailed().unwrap();
        assert!(d.detected());
        assert!(d.cuts_explored >= 1);
        assert!(m.history().unwrap().num_events() == 2);
    }

    #[test]
    fn messages_constrain_alarms() {
        // The fault cut must be consistent: if p1's flag-up event causally
        // follows p0's flag-down event, no consistent cut has both up.
        let mut m = OnlineMonitor::new(2);
        let a = m.declare_var(0, "f", Value::Bool(true)).unwrap();
        let b = m.declare_var(1, "f", Value::Bool(false)).unwrap();
        m.watch_bool(a, "a", |v| v).unwrap();
        m.watch_bool(b, "b", |v| v).unwrap();

        let down = m.observe(0, &[(a, Value::Bool(false))]).unwrap();
        let up = m.observe(1, &[(b, Value::Bool(true))]).unwrap();
        m.message(down, up).unwrap();
        assert_eq!(m.check().unwrap(), None, "flags were never up together");
    }

    #[test]
    fn incremental_check_matches_offline_reference() {
        // A 3-process script with messages; the incremental alarm must
        // equal the offline slice-and-search verdict at every prefix.
        let mut m = OnlineMonitor::new(3);
        let vars: Vec<VarRef> = (0..3)
            .map(|i| m.declare_var(i, "x", Value::Int(0)).unwrap())
            .collect();
        for &v in &vars {
            m.watch_int(v, "x > 0", |x| x > 0).unwrap();
        }
        let script: [(usize, i64); 9] = [
            (0, 1),
            (1, 0),
            (2, 2),
            (1, 3),
            (0, 0),
            (2, 0),
            (1, 1),
            (0, 2),
            (2, 1),
        ];
        let mut events = Vec::new();
        for (i, &(p, val)) in script.iter().enumerate() {
            let e = m.observe(p, &[(vars[p], Value::Int(val))]).unwrap();
            events.push(e);
            if i == 4 {
                m.message(events[0], events[3]).unwrap();
            }
            if i == 7 {
                m.message(events[2], events[7]).unwrap();
            }
            let offline = m.check_offline().unwrap();
            let d = m.check_detailed().unwrap();
            if let Some(cut) = &d.found {
                assert_eq!(Some(cut), offline.found.as_ref(), "prefix {i}");
            } else {
                // No *new* alarm: either nothing exists offline, or the
                // previously reported cut is still the verdict.
                let prev = m.last_alarm.as_ref();
                assert_eq!(offline.found.as_ref(), prev, "prefix {i}");
            }
        }
    }

    #[test]
    fn warm_checks_allocate_no_cuts() {
        let mut m = OnlineMonitor::new(2);
        let a = m.declare_var(0, "x", Value::Int(0)).unwrap();
        let b = m.declare_var(1, "x", Value::Int(0)).unwrap();
        m.watch_int(a, "x > 0", |v| v > 0).unwrap();
        m.watch_int(b, "x > 0", |v| v > 0).unwrap();
        // Warm up: first alarm materializes the scratch and dedup cuts.
        m.observe(0, &[(a, Value::Int(1))]).unwrap();
        m.observe(1, &[(b, Value::Int(1))]).unwrap();
        m.check().unwrap();
        // Steady state: every observe+check must run cut-allocation-free
        // (2 processes ⇒ inline cuts; the delta search reuses scratch).
        let before = slicing_computation::cut_heap_allocs();
        for i in 0..200i64 {
            m.observe(
                (i % 2) as usize,
                &[(if i % 2 == 0 { a } else { b }, Value::Int(i))],
            )
            .unwrap();
            m.check().unwrap();
        }
        assert_eq!(
            slicing_computation::cut_heap_allocs() - before,
            0,
            "warm monitor checks must not allocate cut storage"
        );
    }

    #[test]
    fn check_cost_is_flat_in_history_length() {
        // Feed k events, checking after each; total probe work must stay
        // linear in k (amortized O(1) per event), not quadratic.
        let mut m = OnlineMonitor::new(3);
        let vars: Vec<VarRef> = (0..3)
            .map(|i| m.declare_var(i, "x", Value::Int(0)).unwrap())
            .collect();
        for &v in &vars {
            m.watch_int(v, "x > 0", |x| x > 0).unwrap();
        }
        let k = 600i64;
        for i in 0..k {
            let p = (i % 3) as usize;
            // Alternate satisfying / violating values to keep queues busy.
            m.observe(p, &[(vars[p], Value::Int(if i % 5 == 0 { 0 } else { 1 }))])
                .unwrap();
            m.check().unwrap();
        }
        let stats = m.stats();
        assert_eq!(stats.events as i64, k);
        assert_eq!(stats.checks as i64, k);
        // Generous constant: with 3 processes, each check is a handful of
        // probes; anything quadratic would blow past this immediately.
        assert!(
            stats.check_cost < 20 * k as u64,
            "check cost {} not linear in {} events",
            stats.check_cost,
            k
        );
    }

    #[test]
    fn errors_do_not_poison_the_monitor() {
        let mut m = OnlineMonitor::new(2);
        let a = m.declare_var(0, "x", Value::Int(0)).unwrap();
        let b = m.declare_var(1, "x", Value::Int(0)).unwrap();
        m.watch_int(a, "x > 0", |v| v > 0).unwrap();
        m.watch_int(b, "x > 0", |v| v > 0).unwrap();
        // A mistyped observation is rejected without panicking …
        let err = m.observe(0, &[(a, Value::Bool(true))]).unwrap_err();
        assert!(matches!(err, BuildError::TypeMismatch { .. }));
        // … a late watch is rejected without panicking …
        let e0 = m.observe(0, &[(a, Value::Int(1))]).unwrap();
        assert!(matches!(
            m.watch_int(a, "late", |v| v > 1),
            Err(BuildError::LateWatch { .. })
        ));
        // … and a cyclic message is rejected before corrupting history.
        let e1 = m.observe(1, &[(b, Value::Int(1))]).unwrap();
        m.message(e0, e1).unwrap();
        let e2 = m.observe(1, &[(b, Value::Int(2))]).unwrap();
        assert_eq!(m.message(e2, e0), Err(BuildError::CyclicOrder));
        // The monitor still detects on the clean history.
        assert!(m.check().unwrap().is_some());
        assert_eq!(m.stats().messages, 1);
    }

    #[test]
    fn observe_batch_streams_like_single_observes() {
        let mut m = OnlineMonitor::new(2);
        let a = m.declare_var(0, "x", Value::Int(0)).unwrap();
        let b = m.declare_var(1, "x", Value::Int(0)).unwrap();
        m.watch_int(a, "x > 0", |v| v > 0).unwrap();
        m.watch_int(b, "x > 0", |v| v > 0).unwrap();
        let ids = m
            .observe_batch(&[(0, vec![(a, Value::Int(2))]), (1, vec![(b, Value::Int(3))])])
            .unwrap();
        assert_eq!(ids.len(), 2);
        let alarm = m.check().unwrap().expect("both positive");
        assert_eq!(alarm.counts(), &[2, 2]);
        assert_eq!(m.stats().events, 2);
        assert_eq!(m.stats().delta_cuts, 2);
    }
}
