//! Instrumentation shared by all detection engines: time, space, and
//! search-effort accounting.

use std::fmt;
use std::time::Duration;

use slicing_computation::Cut;

/// Why a detection run stopped before exhausting the state space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// The tracked memory exceeded [`Limits::max_bytes`] — the paper's
    /// "runs out of memory" outcome (their cap was 100 MB).
    MemoryLimit,
    /// More than [`Limits::max_cuts`] cuts were explored.
    CutLimit,
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortReason::MemoryLimit => f.write_str("memory limit exceeded"),
            AbortReason::CutLimit => f.write_str("explored-cut limit exceeded"),
        }
    }
}

/// Resource limits for a detection run.
#[derive(Debug, Clone, Copy, Default)]
pub struct Limits {
    /// Abort when the tracked bytes of search data structures exceed this.
    pub max_bytes: Option<u64>,
    /// Abort after exploring this many cuts.
    pub max_cuts: Option<u64>,
}

impl Limits {
    /// No limits.
    pub fn none() -> Self {
        Limits::default()
    }

    /// Limit tracked memory only.
    pub fn bytes(max: u64) -> Self {
        Limits {
            max_bytes: Some(max),
            max_cuts: None,
        }
    }

    /// Limit explored cuts only.
    pub fn cuts(max: u64) -> Self {
        Limits {
            max_bytes: None,
            max_cuts: Some(max),
        }
    }
}

/// The outcome of a detection run, with the paper's two comparison metrics
/// (time spent, memory used) plus search-effort counters.
#[derive(Debug, Clone)]
pub struct Detection {
    /// A consistent cut satisfying the predicate, if one was found
    /// (`possibly: b`).
    pub found: Option<Cut>,
    /// Number of distinct cuts whose predicate value was examined.
    pub cuts_explored: u64,
    /// Peak number of cuts stored simultaneously (visited set + frontier).
    pub max_stored_cuts: u64,
    /// Peak tracked bytes of the search data structures. Deterministic
    /// byte accounting stands in for the paper's physical-memory
    /// measurements.
    pub peak_bytes: u64,
    /// Wall-clock time of the search.
    pub elapsed: Duration,
    /// Set when the search stopped early on a limit.
    pub aborted: Option<AbortReason>,
}

impl Detection {
    /// `true` if the predicate was detected.
    pub fn detected(&self) -> bool {
        self.found.is_some()
    }

    /// `true` if the search ran to completion (found the predicate or
    /// exhausted the space) without hitting a limit.
    pub fn completed(&self) -> bool {
        self.aborted.is_none()
    }
}

impl fmt::Display for Detection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} cuts explored, {} peak stored, {} peak bytes, {:?}",
            match (&self.found, &self.aborted) {
                (Some(_), _) => "detected",
                (None, Some(_)) => "aborted",
                (None, None) => "not detected",
            },
            self.cuts_explored,
            self.max_stored_cuts,
            self.peak_bytes,
            self.elapsed,
        )?;
        if let Some(r) = self.aborted {
            write!(f, " ({r})")?;
        }
        Ok(())
    }
}

/// Incremental byte/count tracker used by the engines.
#[derive(Debug, Default, Clone)]
pub(crate) struct Tracker {
    pub cuts_explored: u64,
    pub stored_cuts: u64,
    pub max_stored_cuts: u64,
    pub bytes: u64,
    pub peak_bytes: u64,
}

impl Tracker {
    /// Bytes charged per stored cut inside a hash-based visited set:
    /// the cut payload plus table overhead.
    pub fn hash_entry_bytes(num_processes: usize) -> u64 {
        (std::mem::size_of::<Cut>() + 4 * num_processes + 32) as u64
    }

    pub fn charge(&mut self, bytes: u64) {
        self.bytes += bytes;
        self.peak_bytes = self.peak_bytes.max(self.bytes);
    }

    pub fn release(&mut self, bytes: u64) {
        self.bytes = self.bytes.saturating_sub(bytes);
    }

    pub fn store_cut(&mut self, entry_bytes: u64) {
        self.stored_cuts += 1;
        self.max_stored_cuts = self.max_stored_cuts.max(self.stored_cuts);
        self.charge(entry_bytes);
    }

    pub fn drop_cut(&mut self, entry_bytes: u64) {
        self.stored_cuts = self.stored_cuts.saturating_sub(1);
        self.release(entry_bytes);
    }

    pub fn over_limit(&self, limits: &Limits) -> Option<AbortReason> {
        if let Some(max) = limits.max_bytes {
            if self.peak_bytes > max {
                return Some(AbortReason::MemoryLimit);
            }
        }
        if let Some(max) = limits.max_cuts {
            if self.cuts_explored > max {
                return Some(AbortReason::CutLimit);
            }
        }
        None
    }

    pub fn finish(
        self,
        found: Option<Cut>,
        elapsed: Duration,
        aborted: Option<AbortReason>,
    ) -> Detection {
        Detection {
            found,
            cuts_explored: self.cuts_explored,
            max_stored_cuts: self.max_stored_cuts,
            peak_bytes: self.peak_bytes,
            elapsed,
            aborted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limits_constructors() {
        assert_eq!(Limits::none().max_bytes, None);
        assert_eq!(Limits::bytes(10).max_bytes, Some(10));
        assert_eq!(Limits::cuts(5).max_cuts, Some(5));
    }

    #[test]
    fn tracker_peaks() {
        let mut t = Tracker::default();
        t.store_cut(100);
        t.store_cut(100);
        assert_eq!(t.peak_bytes, 200);
        assert_eq!(t.max_stored_cuts, 2);
        t.drop_cut(100);
        assert_eq!(t.bytes, 100);
        assert_eq!(t.peak_bytes, 200); // peak persists
        assert_eq!(t.max_stored_cuts, 2);
    }

    #[test]
    fn tracker_limits() {
        let mut t = Tracker::default();
        t.charge(50);
        assert_eq!(
            t.over_limit(&Limits::bytes(49)),
            Some(AbortReason::MemoryLimit)
        );
        assert_eq!(t.over_limit(&Limits::bytes(51)), None);
        t.cuts_explored = 10;
        assert_eq!(t.over_limit(&Limits::cuts(9)), Some(AbortReason::CutLimit));
        assert_eq!(t.over_limit(&Limits::none()), None);
    }

    #[test]
    fn detection_display_and_accessors() {
        let d = Detection {
            found: Some(Cut::bottom(2)),
            cuts_explored: 3,
            max_stored_cuts: 2,
            peak_bytes: 64,
            elapsed: Duration::from_millis(1),
            aborted: None,
        };
        assert!(d.detected());
        assert!(d.completed());
        assert!(d.to_string().contains("detected"));
        let a = Detection {
            found: None,
            aborted: Some(AbortReason::MemoryLimit),
            ..d.clone()
        };
        assert!(!a.completed());
        assert!(a.to_string().contains("memory limit"));
    }
}
