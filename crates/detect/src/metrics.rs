//! Instrumentation shared by all detection engines: time, space, and
//! search-effort accounting.

use std::fmt;
use std::time::{Duration, Instant};

use slicing_computation::{Cut, CutSetStats};

/// Why a detection run stopped before exhausting the state space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// The tracked memory exceeded [`Limits::max_bytes`] — the paper's
    /// "runs out of memory" outcome (their cap was 100 MB).
    MemoryLimit,
    /// More than [`Limits::max_cuts`] cuts were explored.
    CutLimit,
    /// More than [`Limits::max_live_cuts`] cuts were stored at once. The
    /// budget the lean traversal is designed around: its live set is the
    /// current layer plus the one under construction, so it stays under
    /// caps that abort the global-visited-set engines almost immediately.
    LiveCutLimit,
    /// Wall-clock time exceeded [`Limits::max_elapsed`].
    Deadline,
    /// A pooled visited set reached its `u32` index ceiling and refused
    /// further inserts. The search cannot continue soundly (unseen cuts
    /// would alias seen ones), so the run stops with a budget-exhausted
    /// verdict rather than ever producing a wrong answer.
    ArenaFull,
    /// The predicate hit a runtime evaluation error (a variable changed
    /// type mid-computation, or an expression produced a non-boolean).
    /// Any witness found *before* the error is still genuine; a "not
    /// detected" sweep that crossed an error is downgraded to this abort.
    PredicateError,
}

impl AbortReason {
    /// The short stable token used in JSON reports (`"memory"`,
    /// `"cuts"`, …) — part of the `slicing.run-report/v1` contract.
    pub fn code(self) -> &'static str {
        match self {
            AbortReason::MemoryLimit => "memory",
            AbortReason::CutLimit => "cuts",
            AbortReason::LiveCutLimit => "live-cuts",
            AbortReason::Deadline => "deadline",
            AbortReason::ArenaFull => "arena-full",
            AbortReason::PredicateError => "predicate",
        }
    }
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortReason::MemoryLimit => f.write_str("memory limit exceeded"),
            AbortReason::CutLimit => f.write_str("explored-cut limit exceeded"),
            AbortReason::LiveCutLimit => f.write_str("live-cut limit exceeded"),
            AbortReason::Deadline => f.write_str("deadline exceeded"),
            AbortReason::ArenaFull => f.write_str("visited-set index space exhausted"),
            AbortReason::PredicateError => f.write_str("predicate evaluation error"),
        }
    }
}

/// Resource limits for a detection run.
#[derive(Debug, Clone, Copy, Default)]
pub struct Limits {
    /// Abort when the tracked bytes of search data structures exceed this.
    pub max_bytes: Option<u64>,
    /// Abort after exploring this many cuts.
    pub max_cuts: Option<u64>,
    /// Abort when more than this many cuts are stored *simultaneously*.
    ///
    /// Unlike [`max_cuts`](Limits::max_cuts) (total work) this caps the
    /// peak of the live set: for the global-visited engines the whole
    /// visited set is live, while the lean traversal keeps only two
    /// lattice layers alive and can finish huge lattices under a cap of a
    /// few times the widest layer.
    pub max_live_cuts: Option<u64>,
    /// Abort once the run's wall clock exceeds this deadline.
    pub max_elapsed: Option<Duration>,
}

impl Limits {
    /// No limits.
    pub fn none() -> Self {
        Limits::default()
    }

    /// Byte and cut limits at once; `None` leaves the corresponding
    /// resource unbounded (no deadline).
    pub fn new(max_bytes: Option<u64>, max_cuts: Option<u64>) -> Self {
        Limits {
            max_bytes,
            max_cuts,
            max_live_cuts: None,
            max_elapsed: None,
        }
    }

    /// Limit tracked memory only.
    pub fn bytes(max: u64) -> Self {
        Limits::none().with_bytes(max)
    }

    /// Limit explored cuts only.
    pub fn cuts(max: u64) -> Self {
        Limits::none().with_cuts(max)
    }

    /// Adds (or replaces) a memory limit, keeping any cut limit.
    pub fn with_bytes(mut self, max: u64) -> Self {
        self.max_bytes = Some(max);
        self
    }

    /// Adds (or replaces) a cut limit, keeping any memory limit.
    pub fn with_cuts(mut self, max: u64) -> Self {
        self.max_cuts = Some(max);
        self
    }

    /// Limit simultaneously stored (live) cuts only.
    pub fn live_cuts(max: u64) -> Self {
        Limits::none().with_live_cuts(max)
    }

    /// Adds (or replaces) a live-cut cap, keeping other limits.
    pub fn with_live_cuts(mut self, max: u64) -> Self {
        self.max_live_cuts = Some(max);
        self
    }

    /// Limit wall-clock time only.
    pub fn deadline(max: Duration) -> Self {
        Limits::none().with_deadline(max)
    }

    /// Adds (or replaces) a wall-clock deadline, keeping other limits.
    pub fn with_deadline(mut self, max: Duration) -> Self {
        self.max_elapsed = Some(max);
        self
    }
}

/// The outcome of a detection run, with the paper's two comparison metrics
/// (time spent, memory used) plus search-effort counters.
#[derive(Debug, Clone)]
pub struct Detection {
    /// A consistent cut satisfying the predicate, if one was found
    /// (`possibly: b`).
    pub found: Option<Cut>,
    /// Number of distinct cuts whose predicate value was examined.
    pub cuts_explored: u64,
    /// Peak number of cuts stored simultaneously (visited set + frontier).
    pub max_stored_cuts: u64,
    /// Peak tracked bytes of the search data structures. Deterministic
    /// byte accounting stands in for the paper's physical-memory
    /// measurements.
    pub peak_bytes: u64,
    /// Wall-clock time of the search.
    pub elapsed: Duration,
    /// Set when the search stopped early on a limit.
    pub aborted: Option<AbortReason>,
    /// Named wall-time phases of the run, in order. Single-phase engines
    /// leave this empty; composite engines (slice-then-search, hybrid)
    /// record one entry per stage, e.g. `("slice", …), ("search", …)`.
    pub phases: Vec<(String, Duration)>,
}

impl Detection {
    /// `true` if the predicate was detected.
    pub fn detected(&self) -> bool {
        self.found.is_some()
    }

    /// `true` if the search ran to completion (found the predicate or
    /// exhausted the space) without hitting a limit.
    pub fn completed(&self) -> bool {
        self.aborted.is_none()
    }

    /// The duration of the named phase, if recorded.
    pub fn phase(&self, name: &str) -> Option<Duration> {
        self.phases.iter().find(|(n, _)| n == name).map(|&(_, d)| d)
    }

    /// Renders the detection as one JSON object with a stable field set:
    ///
    /// ```json
    /// {"detected":true,"witness":[1,2,2],"cuts_explored":9,
    ///  "max_stored_cuts":4,"peak_bytes":256,"elapsed_secs":0.001,
    ///  "aborted":null,"phases":[{"name":"slice","secs":0.0004}]}
    /// ```
    pub fn to_json(&self) -> String {
        use slicing_observe::json::{JsonArray, JsonObject};
        let mut obj = JsonObject::new().bool("detected", self.detected());
        obj = match &self.found {
            Some(cut) => {
                let witness = (0..cut.num_processes())
                    .fold(JsonArray::new(), |arr, p| {
                        arr.push_raw(
                            &cut.count(slicing_computation::ProcessId::new(p))
                                .to_string(),
                        )
                    })
                    .finish();
                obj.raw("witness", &witness)
            }
            None => obj.raw("witness", "null"),
        };
        obj = obj
            .u64("cuts_explored", self.cuts_explored)
            .u64("max_stored_cuts", self.max_stored_cuts)
            .u64("peak_bytes", self.peak_bytes)
            .f64("elapsed_secs", self.elapsed.as_secs_f64())
            .opt_str("aborted", self.aborted.map(AbortReason::code));
        let phases = self
            .phases
            .iter()
            .fold(JsonArray::new(), |arr, (name, d)| {
                arr.push_raw(
                    &JsonObject::new()
                        .str("name", name)
                        .f64("secs", d.as_secs_f64())
                        .finish(),
                )
            })
            .finish();
        obj.raw("phases", &phases).finish()
    }
}

impl fmt::Display for Detection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} cuts explored, {} peak stored, {} peak bytes, {:?}",
            match (&self.found, &self.aborted) {
                (Some(_), _) => "detected",
                (None, Some(_)) => "aborted",
                (None, None) => "not detected",
            },
            self.cuts_explored,
            self.max_stored_cuts,
            self.peak_bytes,
            self.elapsed,
        )?;
        if let Some(r) = self.aborted {
            write!(f, " ({r})")?;
        }
        Ok(())
    }
}

/// Emits a visited-set's deterministic effort counters once per run.
///
/// The pooled containers count probes/hits/inserts as exact functions of
/// the insertion sequence, so these counters are comparable across
/// machines; `table_speedup` gates regressions on them instead of
/// wall-clock time.
pub(crate) fn emit_visited_stats(stats: CutSetStats) {
    slicing_observe::counter("detect.visited.probes", stats.probes);
    slicing_observe::counter("detect.visited.hits", stats.hits);
    slicing_observe::counter("detect.visited.inserts", stats.inserts);
}

/// Incremental byte/count tracker used by the engines.
#[derive(Debug, Default, Clone)]
pub(crate) struct Tracker {
    pub cuts_explored: u64,
    pub stored_cuts: u64,
    pub max_stored_cuts: u64,
    pub bytes: u64,
    pub peak_bytes: u64,
}

impl Tracker {
    /// Bytes charged per stored cut inside a hash-based visited set:
    /// the cut payload plus table overhead.
    pub fn hash_entry_bytes(num_processes: usize) -> u64 {
        (std::mem::size_of::<Cut>() + 4 * num_processes + 32) as u64
    }

    pub fn charge(&mut self, bytes: u64) {
        self.bytes += bytes;
        self.peak_bytes = self.peak_bytes.max(self.bytes);
    }

    pub fn release(&mut self, bytes: u64) {
        self.bytes = self.bytes.saturating_sub(bytes);
    }

    pub fn store_cut(&mut self, entry_bytes: u64) {
        self.stored_cuts += 1;
        self.max_stored_cuts = self.max_stored_cuts.max(self.stored_cuts);
        self.charge(entry_bytes);
    }

    pub fn drop_cut(&mut self, entry_bytes: u64) {
        self.stored_cuts = self.stored_cuts.saturating_sub(1);
        self.release(entry_bytes);
    }

    /// Checks resource limits against the tracked totals and, when a
    /// deadline is set, against the wall clock since `start`.
    pub fn over_limit(&self, limits: &Limits, start: Instant) -> Option<AbortReason> {
        if let Some(max) = limits.max_bytes {
            if self.peak_bytes > max {
                return Some(AbortReason::MemoryLimit);
            }
        }
        if let Some(max) = limits.max_live_cuts {
            if self.stored_cuts > max {
                return Some(AbortReason::LiveCutLimit);
            }
        }
        if let Some(max) = limits.max_cuts {
            if self.cuts_explored > max {
                return Some(AbortReason::CutLimit);
            }
        }
        if let Some(max) = limits.max_elapsed {
            if start.elapsed() > max {
                return Some(AbortReason::Deadline);
            }
        }
        None
    }

    pub fn finish(
        self,
        found: Option<Cut>,
        elapsed: Duration,
        aborted: Option<AbortReason>,
    ) -> Detection {
        // Counter totals are emitted once per run rather than per step, so
        // the hot loops stay allocation- and branch-free while a trace
        // recorder still reconstructs exact totals from the stream.
        slicing_observe::counter("detect.cuts_explored", self.cuts_explored);
        slicing_observe::gauge("detect.max_stored_cuts", self.max_stored_cuts);
        slicing_observe::gauge("detect.peak_bytes", self.peak_bytes);
        Detection {
            found,
            cuts_explored: self.cuts_explored,
            max_stored_cuts: self.max_stored_cuts,
            peak_bytes: self.peak_bytes,
            elapsed,
            aborted,
            phases: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limits_constructors() {
        assert_eq!(Limits::none().max_bytes, None);
        assert_eq!(Limits::bytes(10).max_bytes, Some(10));
        assert_eq!(Limits::bytes(10).max_cuts, None);
        assert_eq!(Limits::cuts(5).max_cuts, Some(5));
        assert_eq!(Limits::cuts(5).max_bytes, None);
    }

    #[test]
    fn limits_combine_bytes_and_cuts() {
        // The historical `bytes()`/`cuts()` constructors could not express
        // a joint limit; `new` and the `with_*` builders can.
        let l = Limits::new(Some(1024), Some(99));
        assert_eq!(l.max_bytes, Some(1024));
        assert_eq!(l.max_cuts, Some(99));

        let l = Limits::bytes(2048).with_cuts(7);
        assert_eq!(l.max_bytes, Some(2048));
        assert_eq!(l.max_cuts, Some(7));

        // Both limits are live simultaneously in over_limit checks.
        let now = Instant::now();
        let mut t = Tracker::default();
        t.charge(4096);
        assert_eq!(t.over_limit(&l, now), Some(AbortReason::MemoryLimit));
        let t = Tracker {
            cuts_explored: 8,
            ..Tracker::default()
        };
        assert_eq!(t.over_limit(&l, now), Some(AbortReason::CutLimit));
        let mut t = Tracker::default();
        t.charge(10);
        t.cuts_explored = 3;
        assert_eq!(t.over_limit(&l, now), None);
    }

    #[test]
    fn live_cut_limit_caps_stored_not_explored() {
        let now = Instant::now();
        let l = Limits::live_cuts(2);
        assert_eq!(l.max_live_cuts, Some(2));
        assert_eq!(Limits::none().with_live_cuts(7).max_live_cuts, Some(7));
        let mut t = Tracker::default();
        t.store_cut(10);
        t.store_cut(10);
        t.cuts_explored = 1_000_000; // total work is not what this caps
        assert_eq!(t.over_limit(&l, now), None);
        t.store_cut(10);
        assert_eq!(t.over_limit(&l, now), Some(AbortReason::LiveCutLimit));
        // Dropping back under the cap clears the condition: the limit
        // tracks the live set, not its historical peak.
        t.drop_cut(10);
        assert_eq!(t.over_limit(&l, now), None);
        assert!(AbortReason::LiveCutLimit.to_string().contains("live-cut"));
    }

    #[test]
    fn tracker_peaks() {
        let mut t = Tracker::default();
        t.store_cut(100);
        t.store_cut(100);
        assert_eq!(t.peak_bytes, 200);
        assert_eq!(t.max_stored_cuts, 2);
        t.drop_cut(100);
        assert_eq!(t.bytes, 100);
        assert_eq!(t.peak_bytes, 200); // peak persists
        assert_eq!(t.max_stored_cuts, 2);
    }

    #[test]
    fn tracker_limits() {
        let now = Instant::now();
        let mut t = Tracker::default();
        t.charge(50);
        assert_eq!(
            t.over_limit(&Limits::bytes(49), now),
            Some(AbortReason::MemoryLimit)
        );
        assert_eq!(t.over_limit(&Limits::bytes(51), now), None);
        t.cuts_explored = 10;
        assert_eq!(
            t.over_limit(&Limits::cuts(9), now),
            Some(AbortReason::CutLimit)
        );
        assert_eq!(t.over_limit(&Limits::none(), now), None);
    }

    #[test]
    fn deadline_limit_trips_on_elapsed_time() {
        let t = Tracker::default();
        let l = Limits::deadline(Duration::ZERO);
        let past = Instant::now() - Duration::from_millis(5);
        assert_eq!(t.over_limit(&l, past), Some(AbortReason::Deadline));
        let generous = Limits::deadline(Duration::from_secs(3600));
        assert_eq!(t.over_limit(&generous, Instant::now()), None);
        assert_eq!(generous.max_elapsed, Some(Duration::from_secs(3600)));
        let joint = Limits::bytes(1).with_deadline(Duration::from_secs(3600));
        let mut t = Tracker::default();
        t.charge(2);
        assert_eq!(
            t.over_limit(&joint, Instant::now()),
            Some(AbortReason::MemoryLimit)
        );
    }

    #[test]
    fn detection_display_and_accessors() {
        let d = Detection {
            found: Some(Cut::bottom(2)),
            cuts_explored: 3,
            max_stored_cuts: 2,
            peak_bytes: 64,
            elapsed: Duration::from_millis(1),
            aborted: None,
            phases: Vec::new(),
        };
        assert!(d.detected());
        assert!(d.completed());
        assert!(d.to_string().contains("detected"));
        let a = Detection {
            found: None,
            aborted: Some(AbortReason::MemoryLimit),
            ..d.clone()
        };
        assert!(!a.completed());
        assert!(a.to_string().contains("memory limit"));
    }

    #[test]
    fn detection_json_is_stable() {
        let mut d = Detection {
            found: Some(Cut::from(vec![1, 2, 2])),
            cuts_explored: 9,
            max_stored_cuts: 4,
            peak_bytes: 256,
            elapsed: Duration::from_millis(2),
            aborted: None,
            phases: vec![("slice".to_owned(), Duration::from_millis(1))],
        };
        let json = d.to_json();
        assert!(json.starts_with("{\"detected\":true,\"witness\":[1,2,2],"));
        assert!(json.contains("\"cuts_explored\":9"));
        assert!(json.contains("\"aborted\":null"));
        assert!(json.contains("{\"name\":\"slice\",\"secs\":0.001}"));
        assert_eq!(d.phase("slice"), Some(Duration::from_millis(1)));
        assert_eq!(d.phase("missing"), None);

        d.found = None;
        d.aborted = Some(AbortReason::CutLimit);
        let json = d.to_json();
        assert!(json.contains("\"detected\":false,\"witness\":null"));
        assert!(json.contains("\"aborted\":\"cuts\""));

        d.aborted = Some(AbortReason::LiveCutLimit);
        assert!(d.to_json().contains("\"aborted\":\"live-cuts\""));
    }
}
