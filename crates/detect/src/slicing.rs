//! Slice-then-search: the paper's approach to detecting global faults.

use std::time::{Duration, Instant};

use slicing_computation::Computation;
use slicing_core::{PredicateSpec, Slice};

use crate::enumerate::detect_bfs_banded;
use crate::metrics::{AbortReason, Detection, Limits};

/// The outcome of slice-based detection: slicing cost plus the (usually
/// tiny) residual search.
#[derive(Debug, Clone)]
pub struct SliceDetection {
    /// Time spent computing the slice.
    pub slicing_elapsed: Duration,
    /// Tracked bytes of the slice's tables and edges.
    pub slice_bytes: u64,
    /// Number of non-trivial consistent cuts the slice was *observed* to
    /// have during the search (`cuts_explored` of the residual search).
    pub search: Detection,
}

impl SliceDetection {
    /// Total time: slicing plus searching (the paper's time metric
    /// includes "the overhead of computing the slice").
    pub fn total_elapsed(&self) -> Duration {
        self.slicing_elapsed + self.search.elapsed
    }

    /// Peak tracked bytes: slice storage plus search structures (the
    /// paper's memory metric likewise includes the slice).
    pub fn total_peak_bytes(&self) -> u64 {
        self.slice_bytes + self.search.peak_bytes
    }

    /// `true` if the predicate was detected.
    pub fn detected(&self) -> bool {
        self.search.detected()
    }
}

/// Detects `possibly: spec` by computing the (possibly approximate) slice
/// for `spec` and then searching only the slice's consistent cuts,
/// evaluating the *exact* predicate at each one.
///
/// Soundness: the slice contains every satisfying cut, so this detects the
/// predicate iff a satisfying cut exists. When the slice is empty the
/// search is free — the paper's fault-free scenarios hit exactly this
/// path.
pub fn detect_with_slicing(
    comp: &Computation,
    spec: &PredicateSpec,
    limits: &Limits,
) -> SliceDetection {
    let _span = slicing_observe::span("detect.slice_then_search");
    // The slicing phase evaluates spec-derived local closures that absorb
    // runtime type errors as `false` (counted, not panicking); watch the
    // counter so a fault-free verdict over a malformed trace is downgraded
    // rather than trusted.
    let errors_before = slicing_predicates::eval_type_errors();
    let t0 = Instant::now();
    let slice = {
        let _span = slicing_observe::span("detect.slice_phase");
        spec.slice(comp)
    };
    let slicing_elapsed = t0.elapsed();
    let mut outcome = detect_on_slice(comp, &slice, spec, slicing_elapsed, limits);
    downgrade_on_eval_errors(&mut outcome.search, errors_before);
    outcome
}

/// Downgrades a "not detected" verdict to a [`AbortReason::PredicateError`]
/// abort when predicate evaluation tripped type errors during the run: the
/// `false`s those evaluations produced cannot support a clean sweep. A
/// found witness is left untouched — it satisfied the predicate for real.
fn downgrade_on_eval_errors(search: &mut Detection, errors_before: u64) {
    if search.aborted.is_none()
        && !search.detected()
        && slicing_predicates::eval_type_errors() > errors_before
    {
        search.aborted = Some(AbortReason::PredicateError);
    }
}

/// Variant of [`detect_with_slicing`] for a precomputed slice (e.g. from
/// an [`OnlineSlicer`](slicing_core::OnlineSlicer) snapshot). The given
/// `slicing_elapsed` is carried into the result.
pub fn detect_on_slice(
    comp: &Computation,
    slice: &Slice<'_>,
    spec: &PredicateSpec,
    slicing_elapsed: Duration,
    limits: &Limits,
) -> SliceDetection {
    /// The exact spec as a detection predicate, with a *failed-clause
    /// hint* for top-level conjunctions: lattice-adjacent cuts tend to
    /// fail the same conjunct, so remembering the last refuting child and
    /// trying it first turns the common reject into one child eval instead
    /// of a scan to the refuting position. Conjunction is order-blind, so
    /// the verdict is bit-identical to in-order evaluation.
    struct SpecPred<'s> {
        spec: &'s PredicateSpec,
        failed_clause: std::sync::atomic::AtomicUsize,
    }
    impl std::fmt::Debug for SpecPred<'_> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{:?}", self.spec)
        }
    }
    impl slicing_predicates::Predicate for SpecPred<'_> {
        fn support(&self) -> slicing_computation::ProcSet {
            self.spec.support()
        }
        fn eval(&self, state: &slicing_computation::GlobalState<'_>) -> bool {
            use std::sync::atomic::Ordering::Relaxed;
            let PredicateSpec::And(children) = self.spec else {
                return self.spec.eval(state);
            };
            let hint = self.failed_clause.load(Relaxed);
            if let Some(c) = children.get(hint) {
                if !c.eval(state) {
                    return false;
                }
            }
            for (i, c) in children.iter().enumerate() {
                if i != hint && !c.eval(state) {
                    self.failed_clause.store(i, Relaxed);
                    return false;
                }
            }
            true
        }
    }

    let errors_before = slicing_predicates::eval_type_errors();
    let mut search = {
        let _span = slicing_observe::span("detect.search_phase");
        // Banded visited set: the residual search is probe-bound on big
        // slices, and banding by cut size keeps each duplicate check in a
        // cache-resident table while reproducing the plain-BFS verdict,
        // witness, and explored set exactly.
        let pred = SpecPred {
            spec,
            failed_clause: std::sync::atomic::AtomicUsize::new(usize::MAX),
        };
        detect_bfs_banded(slice, comp, &pred, limits)
    };
    downgrade_on_eval_errors(&mut search, errors_before);
    search.phases = vec![
        ("slice".to_owned(), slicing_elapsed),
        ("search".to_owned(), search.elapsed),
    ];
    SliceDetection {
        slicing_elapsed,
        slice_bytes: slice.approx_bytes() as u64,
        search,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_computation::oracle::satisfying_cuts;
    use slicing_computation::test_fixtures::{figure1, random_computation, RandomConfig};
    use slicing_computation::GlobalState;
    use slicing_predicates::{Conjunctive, KLocalPredicate, LocalPredicate};

    fn figure1_spec(comp: &Computation) -> PredicateSpec {
        let x1 = comp.var(comp.process(0), "x1").unwrap();
        let x3 = comp.var(comp.process(2), "x3").unwrap();
        PredicateSpec::conjunctive(Conjunctive::new(vec![
            LocalPredicate::int(x1, "x1 > 1", |x| x > 1),
            LocalPredicate::int(x3, "x3 <= 3", |x| x <= 3),
        ]))
    }

    #[test]
    fn figure1_needs_at_most_six_cuts() {
        let comp = figure1();
        let spec = figure1_spec(&comp);
        let d = detect_with_slicing(&comp, &spec, &Limits::none());
        assert!(d.detected());
        assert!(d.search.cuts_explored <= 6);
        assert!(d.total_elapsed() >= d.search.elapsed);
        assert!(d.total_peak_bytes() >= d.slice_bytes);
    }

    #[test]
    fn empty_slice_detects_nothing_for_free() {
        let comp = figure1();
        let x1 = comp.var(comp.process(0), "x1").unwrap();
        let spec = PredicateSpec::conjunctive(Conjunctive::new(vec![LocalPredicate::int(
            x1,
            "x1 > 99",
            |x| x > 99,
        )]));
        let d = detect_with_slicing(&comp, &spec, &Limits::none());
        assert!(!d.detected());
        assert_eq!(d.search.cuts_explored, 0);
    }

    #[test]
    fn agrees_with_direct_search_on_random_klocal_trees() {
        let cfg = RandomConfig {
            processes: 3,
            events_per_process: 3,
            value_range: 3,
            ..RandomConfig::default()
        };
        for seed in 0..25 {
            let comp = random_computation(seed, &cfg);
            let x0 = comp.var(comp.process(0), "x").unwrap();
            let x1 = comp.var(comp.process(1), "x").unwrap();
            let x2 = comp.var(comp.process(2), "x").unwrap();
            let t = (seed % 4) as i64;
            // (x0 != x1) ∧ (x2 >= t): a k-local leaf and a conjunctive
            // leaf — the Section 5 composition.
            let spec = PredicateSpec::and(vec![
                PredicateSpec::klocal(KLocalPredicate::new(vec![x0, x1], "x0 != x1", |v| {
                    v[0] != v[1]
                })),
                PredicateSpec::conjunctive(Conjunctive::new(vec![LocalPredicate::int(
                    x2,
                    format!("x >= {t}"),
                    move |v| v >= t,
                )])),
            ]);
            let d = detect_with_slicing(&comp, &spec, &Limits::none());
            let oracle = !satisfying_cuts(&comp, |st| spec.eval(st)).is_empty();
            assert_eq!(d.detected(), oracle, "seed {seed}");
            if let Some(cut) = &d.search.found {
                assert!(spec.eval(&GlobalState::new(&comp, cut)), "seed {seed}");
            }
        }
    }

    #[test]
    fn detect_on_precomputed_slice() {
        let comp = figure1();
        let spec = figure1_spec(&comp);
        let slice = spec.slice(&comp);
        let d = detect_on_slice(&comp, &slice, &spec, Duration::ZERO, &Limits::none());
        assert!(d.detected());
        assert_eq!(d.slicing_elapsed, Duration::ZERO);
    }
}
