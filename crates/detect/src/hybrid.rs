//! The hybrid strategy from the paper's Section 5.1 conclusion: "to get
//! the best of both worlds, predicate detection can be first done using
//! the partial-order methods approach. In case it turns out that the
//! approach is using too much memory … it can be aborted and the
//! computation slicing approach can then be used."

use slicing_computation::Computation;
use slicing_core::PredicateSpec;
use slicing_observe::Level;

use crate::metrics::Limits;
use crate::pom::detect_pom;
use crate::slicing::{detect_with_slicing, SliceDetection};

/// Which engine produced the final verdict of a hybrid run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HybridPhase {
    /// Partial-order methods finished within budget.
    PartialOrder,
    /// The baseline hit its memory budget and slicing took over.
    Slicing,
}

/// The outcome of a hybrid detection run.
#[derive(Debug, Clone)]
pub struct HybridDetection {
    /// Which phase answered.
    pub phase: HybridPhase,
    /// The partial-order attempt (always present; aborted when `phase` is
    /// [`HybridPhase::Slicing`]).
    pub pom: crate::Detection,
    /// The slicing run, when the fallback fired.
    pub slicing: Option<SliceDetection>,
}

impl HybridDetection {
    /// `true` if a violating cut was found (by either phase).
    pub fn detected(&self) -> bool {
        match self.phase {
            HybridPhase::PartialOrder => self.pom.detected(),
            HybridPhase::Slicing => self.slicing.as_ref().is_some_and(SliceDetection::detected),
        }
    }

    /// The witness cut, if any.
    pub fn found(&self) -> Option<&slicing_computation::Cut> {
        match self.phase {
            HybridPhase::PartialOrder => self.pom.found.as_ref(),
            HybridPhase::Slicing => self.slicing.as_ref().and_then(|s| s.search.found.as_ref()),
        }
    }

    /// Total wall-clock time across phases.
    pub fn total_elapsed(&self) -> std::time::Duration {
        self.pom.elapsed
            + self
                .slicing
                .as_ref()
                .map(SliceDetection::total_elapsed)
                .unwrap_or_default()
    }
}

/// Detects `possibly: spec` with the paper's hybrid strategy: run the
/// partial-order-methods baseline under `pom_budget_bytes` of tracked
/// memory (the paper suggests "`c·n·|E|` for some small constant `c`");
/// if it exceeds the budget, abort it and fall back to slice-then-search
/// under `limits`.
pub fn detect_hybrid(
    comp: &Computation,
    spec: &PredicateSpec,
    pom_budget_bytes: u64,
    limits: &Limits,
) -> HybridDetection {
    struct SpecPred<'s>(&'s PredicateSpec);
    impl std::fmt::Debug for SpecPred<'_> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{:?}", self.0)
        }
    }
    impl slicing_predicates::Predicate for SpecPred<'_> {
        fn support(&self) -> slicing_computation::ProcSet {
            self.0.support()
        }
        fn eval(&self, state: &slicing_computation::GlobalState<'_>) -> bool {
            self.0.eval(state)
        }
    }

    let _span = slicing_observe::span("detect.hybrid");
    let pom_limits = Limits {
        max_bytes: Some(pom_budget_bytes.min(limits.max_bytes.unwrap_or(u64::MAX))),
        ..*limits
    };
    let mut pom = detect_pom(comp, &SpecPred(spec), &pom_limits);
    if pom.completed() {
        pom.phases = vec![("pom".to_owned(), pom.elapsed)];
        return HybridDetection {
            phase: HybridPhase::PartialOrder,
            pom,
            slicing: None,
        };
    }
    slicing_observe::counter("detect.hybrid.switch_over", 1);
    slicing_observe::message(Level::Info, || {
        format!(
            "hybrid: partial-order aborted ({}) after {} cuts; switching to slicing",
            pom.aborted.map(|r| r.to_string()).unwrap_or_default(),
            pom.cuts_explored,
        )
    });
    let mut slicing = detect_with_slicing(comp, spec, limits);
    let mut phases = vec![("pom".to_owned(), pom.elapsed)];
    phases.append(&mut slicing.search.phases);
    slicing.search.phases = phases.clone();
    pom.phases = phases;
    HybridDetection {
        phase: HybridPhase::Slicing,
        pom,
        slicing: Some(slicing),
    }
}

/// The paper's suggested budget: a small multiple of `n·|E|` cut-entries.
pub fn suggested_pom_budget(comp: &Computation, c: u64) -> u64 {
    let per_cut = crate::metrics::Tracker::hash_entry_bytes(comp.num_processes());
    c * comp.num_events() as u64 * per_cut
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_computation::test_fixtures::figure1;
    use slicing_computation::GlobalState;
    use slicing_predicates::{Conjunctive, LocalPredicate};
    use slicing_sim::primary_secondary::{self, PrimarySecondary};
    use slicing_sim::{run, SimConfig};

    fn figure1_spec(comp: &slicing_computation::Computation) -> PredicateSpec {
        let x1 = comp.var(comp.process(0), "x1").unwrap();
        let x3 = comp.var(comp.process(2), "x3").unwrap();
        PredicateSpec::conjunctive(Conjunctive::new(vec![
            LocalPredicate::int(x1, "x1 > 1", |x| x > 1),
            LocalPredicate::int(x3, "x3 <= 3", |x| x <= 3),
        ]))
    }

    #[test]
    fn pom_answers_within_generous_budget() {
        let comp = figure1();
        let spec = figure1_spec(&comp);
        let h = detect_hybrid(&comp, &spec, 1 << 20, &Limits::none());
        assert_eq!(h.phase, HybridPhase::PartialOrder);
        assert!(h.detected());
        assert!(h.slicing.is_none());
        let cut = h.found().unwrap();
        assert!(spec.eval(&GlobalState::new(&comp, cut)));
    }

    #[test]
    fn tight_budget_falls_back_to_slicing() {
        // Fault-free protocol run: POM must sweep a large space; a tiny
        // budget forces the fallback, and slicing still answers correctly.
        let cfg = SimConfig {
            seed: 3,
            max_events_per_process: 10,
            ..SimConfig::default()
        };
        let comp = run(&mut PrimarySecondary::new(4), &cfg).unwrap();
        let spec = primary_secondary::violation_spec(&comp);
        let h = detect_hybrid(&comp, &spec, 512, &Limits::none());
        assert_eq!(h.phase, HybridPhase::Slicing);
        assert!(!h.pom.completed());
        assert!(!h.detected(), "fault-free run must stay clean");
        assert!(h.total_elapsed() >= h.pom.elapsed);
    }

    #[test]
    fn hybrid_agrees_with_slicing_on_faulty_runs() {
        use slicing_sim::fault::inject_primary_secondary_fault;
        let cfg = SimConfig {
            seed: 8,
            max_events_per_process: 8,
            ..SimConfig::default()
        };
        let comp = run(&mut PrimarySecondary::new(3), &cfg).unwrap();
        let (faulty, _) = inject_primary_secondary_fault(&comp, 4).unwrap();
        let spec = primary_secondary::violation_spec(&faulty);
        for budget in [256u64, 1 << 24] {
            let h = detect_hybrid(&faulty, &spec, budget, &Limits::none());
            let direct = detect_with_slicing(&faulty, &spec, &Limits::none());
            assert_eq!(h.detected(), direct.detected(), "budget {budget}");
        }
    }

    #[test]
    fn suggested_budget_scales_with_size() {
        let comp = figure1();
        let small = suggested_pom_budget(&comp, 1);
        let big = suggested_pom_budget(&comp, 10);
        assert_eq!(big, 10 * small);
        assert!(small > 0);
    }
}
