//! The `slicing.serve-checkpoint/v1` codec: serialize a [`MonitorHub`]'s
//! exported [`HubState`] to a self-describing JSON document and decode it
//! back for a mid-stream restart of `slicing serve`.
//!
//! Like `slicing.checkpoint/v1` this is *state-only*: clause closures
//! cannot be serialized, so after [`decode`] the caller rebuilds the hub
//! with [`MonitorHub::from_state`] and re-registers every tenant's
//! predicate via [`MonitorHub::restore_tenant`] (the tenant sources are in
//! the document precisely so the CLI can re-parse them). The document also
//! carries the metrics-stream sequence cursor so a resumed
//! [`MetricsSnapshotter`](slicing_observe::MetricsSnapshotter) continues
//! `slicing.metrics/v1` deltas monotonically.
//!
//! The slicer portion shares its wire layout (and code) with the monitor
//! checkpoint; the hub portion adds the value mirror, the distinct-clause
//! table, the shared candidate slots, the per-group settle state, and the
//! tenant registry.

use slicing_computation::{BuildError, ProcSet};
use slicing_observe::json::{JsonArray, JsonObject, JsonValue};
use slicing_observe::schema;

use crate::checkpoint::{
    bad, field, gc_from, gc_json, get_array, get_u32, get_u64, opt_cut_from, opt_cut_json,
    slicer_fields, slicer_from_doc, u32_array, u32_vec, value_from, value_json,
};
use crate::multiplex::{GroupState, HubState, HubStats, SlotState, TenantState};

#[cfg(doc)]
use crate::multiplex::MonitorHub;

/// Serializes a hub state plus the metrics-stream cursor as a
/// `slicing.serve-checkpoint/v1` document (one line of JSON).
pub fn encode(state: &HubState, metrics_seq: u64) -> String {
    let mut values = JsonArray::new();
    for row in &state.values {
        let mut arr = JsonArray::new();
        for value in row {
            arr = arr.push_raw(&value_json(value));
        }
        values = values.push_raw(&arr.finish());
    }
    let mut clauses = JsonArray::new();
    for (p, label) in &state.clauses {
        clauses = clauses.push_raw(
            &JsonObject::new()
                .u64("p", u64::from(*p))
                .str("label", label)
                .finish(),
        );
    }
    let mut slots = JsonArray::new();
    for slot in &state.slots {
        slots = slots.push_raw(
            &JsonObject::new()
                .u64("p", u64::from(slot.process))
                .raw("clauses", &u32_array(&slot.clauses))
                .u64("start", slot.start)
                .raw("candidates", &u32_array(&slot.candidates))
                .finish(),
        );
    }
    let mut groups = JsonArray::new();
    for group in &state.groups {
        groups = groups.push_raw(
            &JsonObject::new()
                .str("source", &group.source)
                .raw("slots", &u32_array(&group.slots))
                .raw("fronts", &u64_array(&group.fronts))
                .raw("dirty", &bool_array(&group.dirty))
                .bool("dirty_any", group.dirty_any)
                .u64("seen_revision", group.seen_revision)
                .raw("current_alarm", &opt_cut_json(&group.current_alarm))
                .raw("last_alarm", &opt_cut_json(&group.last_alarm))
                .u64("check_cost", group.check_cost)
                .u64("alarms", group.alarms)
                .finish(),
        );
    }
    let mut tenants = JsonArray::new();
    for tenant in &state.tenants {
        tenants = tenants.push_raw(
            &JsonObject::new()
                .str("id", &tenant.id)
                .u64("group", u64::from(tenant.group))
                .str("source", &tenant.source)
                .finish(),
        );
    }
    let obj = JsonObject::new()
        .str("schema", schema::SERVE_CHECKPOINT)
        .u64("processes", state.slicer.num_processes as u64)
        .u64("metrics_seq", metrics_seq);
    slicer_fields(obj, &state.slicer)
        .raw("values", &values.finish())
        .raw("clauses", &clauses.finish())
        .raw("slots", &slots.finish())
        .raw("groups", &groups.finish())
        .raw("tenants", &tenants.finish())
        .raw("stats", &stats_json(&state.stats))
        .raw("gc", &gc_json(&state.gc))
        .u64("since_gc", state.since_gc)
        .finish()
}

/// Decodes a parsed `slicing.serve-checkpoint/v1` document back into the
/// hub state and the metrics-stream cursor it was taken at.
///
/// # Errors
///
/// Returns [`BuildError::InvalidState`] when the document is not a
/// well-formed serve checkpoint; the deeper consistency checks (candidate
/// ordering, cursor bounds) run when the result is fed to
/// [`MonitorHub::from_state`].
pub fn decode(doc: &JsonValue) -> Result<(HubState, u64), BuildError> {
    let tag = field(doc, "schema")?
        .as_str()
        .ok_or_else(|| bad("field \"schema\" must be a string"))?;
    if tag != schema::SERVE_CHECKPOINT {
        return Err(bad(format!(
            "schema is {tag:?}, expected {:?}",
            schema::SERVE_CHECKPOINT
        )));
    }
    let num_processes = get_u64(doc, "processes")? as usize;
    if num_processes == 0 || num_processes > ProcSet::MAX_PROCESSES {
        return Err(bad(format!(
            "\"processes\" must be in 1..={}",
            ProcSet::MAX_PROCESSES
        )));
    }
    let metrics_seq = get_u64(doc, "metrics_seq")?;
    let slicer = slicer_from_doc(doc, num_processes)?;

    let mut values = Vec::with_capacity(num_processes);
    for (p, row) in get_array(doc, "values")?.iter().enumerate() {
        let row = row
            .as_array()
            .ok_or_else(|| bad(format!("values[{p}] must be an array")))?;
        let mut mirror = Vec::with_capacity(row.len());
        for value in row {
            mirror.push(value_from(value, num_processes)?);
        }
        values.push(mirror);
    }

    let mut clauses = Vec::new();
    for (i, clause) in get_array(doc, "clauses")?.iter().enumerate() {
        let p = get_u32(clause, "p").map_err(|_| bad(format!("clauses[{i}]: bad \"p\"")))?;
        let label = field(clause, "label")?
            .as_str()
            .ok_or_else(|| bad(format!("clauses[{i}]: \"label\" must be a string")))?;
        clauses.push((p, label.to_owned()));
    }

    let mut slots = Vec::new();
    for (i, slot) in get_array(doc, "slots")?.iter().enumerate() {
        slots.push(SlotState {
            process: get_u32(slot, "p").map_err(|_| bad(format!("slots[{i}]: bad \"p\"")))?,
            clauses: u32_vec(field(slot, "clauses")?, "slot clauses")?,
            start: get_u64(slot, "start")?,
            candidates: u32_vec(field(slot, "candidates")?, "slot candidates")?,
        });
    }

    let mut groups = Vec::new();
    for (i, group) in get_array(doc, "groups")?.iter().enumerate() {
        let at = format!("groups[{i}]");
        groups.push(GroupState {
            source: field(group, "source")?
                .as_str()
                .ok_or_else(|| bad(format!("{at}: \"source\" must be a string")))?
                .to_owned(),
            slots: u32_vec(field(group, "slots")?, "group slots")?,
            fronts: u64_vec(field(group, "fronts")?, "group fronts")?,
            dirty: crate::checkpoint::bool_vec(field(group, "dirty")?, "group dirty")?,
            dirty_any: field(group, "dirty_any")?
                .as_bool()
                .ok_or_else(|| bad(format!("{at}: \"dirty_any\" must be a bool")))?,
            seen_revision: get_u64(group, "seen_revision")?,
            current_alarm: opt_cut_from(field(group, "current_alarm")?, "current_alarm")?,
            last_alarm: opt_cut_from(field(group, "last_alarm")?, "last_alarm")?,
            check_cost: get_u64(group, "check_cost")?,
            alarms: get_u64(group, "alarms")?,
        });
    }

    let mut tenants = Vec::new();
    for (i, tenant) in get_array(doc, "tenants")?.iter().enumerate() {
        let at = format!("tenants[{i}]");
        tenants.push(TenantState {
            id: field(tenant, "id")?
                .as_str()
                .ok_or_else(|| bad(format!("{at}: \"id\" must be a string")))?
                .to_owned(),
            group: get_u32(tenant, "group")?,
            source: field(tenant, "source")?
                .as_str()
                .ok_or_else(|| bad(format!("{at}: \"source\" must be a string")))?
                .to_owned(),
        });
    }

    let stats = stats_from(field(doc, "stats")?)?;
    let gc = gc_from(field(doc, "gc")?)?;
    let since_gc = get_u64(doc, "since_gc")?;

    let state = HubState {
        slicer,
        values,
        clauses,
        slots,
        groups,
        tenants,
        stats,
        gc,
        since_gc,
    };
    Ok((state, metrics_seq))
}

/// Parses serve-checkpoint text and decodes it; see [`decode`].
///
/// # Errors
///
/// Returns [`BuildError::InvalidState`] on malformed JSON or any
/// [`decode`] failure.
pub fn decode_str(text: &str) -> Result<(HubState, u64), BuildError> {
    let doc = slicing_observe::json::parse(text)
        .map_err(|e| bad(format!("serve checkpoint is not valid JSON: {e}")))?;
    decode(&doc)
}

fn u64_array(values: &[u64]) -> String {
    let mut arr = JsonArray::new();
    for &v in values {
        arr = arr.push_raw(&v.to_string());
    }
    arr.finish()
}

fn bool_array(values: &[bool]) -> String {
    let mut arr = JsonArray::new();
    for &v in values {
        arr = arr.push_raw(if v { "true" } else { "false" });
    }
    arr.finish()
}

fn u64_vec(value: &JsonValue, what: &str) -> Result<Vec<u64>, BuildError> {
    value
        .as_array()
        .ok_or_else(|| bad(format!("{what} must be an array")))?
        .iter()
        .map(|v| {
            v.as_u64()
                .ok_or_else(|| bad(format!("{what}: entries must be u64 integers")))
        })
        .collect()
}

fn stats_json(stats: &HubStats) -> String {
    JsonObject::new()
        .u64("events", stats.events)
        .u64("messages", stats.messages)
        .u64("checks", stats.checks)
        .u64("alarms", stats.alarms)
        .u64("check_cost", stats.check_cost)
        .u64("clause_evals", stats.clause_evals)
        .u64("delta_cuts", stats.delta_cuts)
        .u64("peak_candidates", stats.peak_candidates)
        .u64("compactions", stats.compactions)
        .u64("dropped_events", stats.dropped_events)
        .u64("retained_peak", stats.retained_peak)
        .u64("fanout_sent", stats.fanout_sent)
        .u64("fanout_dropped", stats.fanout_dropped)
        .finish()
}

fn stats_from(doc: &JsonValue) -> Result<HubStats, BuildError> {
    Ok(HubStats {
        events: get_u64(doc, "events")?,
        messages: get_u64(doc, "messages")?,
        checks: get_u64(doc, "checks")?,
        alarms: get_u64(doc, "alarms")?,
        check_cost: get_u64(doc, "check_cost")?,
        clause_evals: get_u64(doc, "clause_evals")?,
        delta_cuts: get_u64(doc, "delta_cuts")?,
        peak_candidates: get_u64(doc, "peak_candidates")?,
        compactions: get_u64(doc, "compactions")?,
        dropped_events: get_u64(doc, "dropped_events")?,
        retained_peak: get_u64(doc, "retained_peak")?,
        fanout_sent: get_u64(doc, "fanout_sent")?,
        fanout_dropped: get_u64(doc, "fanout_dropped")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::GcConfig;
    use crate::multiplex::MonitorHub;
    use slicing_computation::{Value, VarRef};
    use slicing_predicates::{Conjunctive, LocalPredicate};

    fn busy_hub() -> (MonitorHub, Vec<VarRef>) {
        let mut hub = MonitorHub::new(2).with_gc(GcConfig { lag: 4, every: 16 });
        let a = hub.declare_var(0, "x", Value::Int(0)).unwrap();
        let b = hub.declare_var(1, "x", Value::Int(0)).unwrap();
        hub.add_tenant("alice", &pred(a, b), "x@0 > 1 && x@1 > 1")
            .unwrap();
        hub.add_tenant("bob", &pred(a, b), "x@0 > 1 && x@1 > 1")
            .unwrap();
        let mut events = Vec::new();
        for i in 0..12 {
            let p = (i % 2) as usize;
            let var = if p == 0 { a } else { b };
            let e = hub.observe(p, &[(var, Value::Int(i))]).unwrap();
            if let Some(&prev) = events.last() {
                hub.message(prev, e).unwrap();
            }
            events.push(e);
            for r in hub.check_all() {
                hub.acknowledge(r.group);
            }
        }
        (hub, vec![a, b])
    }

    fn pred(a: VarRef, b: VarRef) -> Conjunctive {
        Conjunctive::new(vec![
            LocalPredicate::int(a, "x@0 > 1", |v| v > 1),
            LocalPredicate::int(b, "x@1 > 1", |v| v > 1),
        ])
    }

    #[test]
    fn serve_checkpoints_round_trip_exactly() {
        let (hub, vars) = busy_hub();
        let state = hub.export_state();
        let text = encode(&state, 42);
        let (decoded, metrics_seq) = decode_str(&text).unwrap();
        assert_eq!(metrics_seq, 42);
        assert_eq!(decoded, state);

        let mut resumed = MonitorHub::from_state(&decoded).unwrap();
        resumed
            .restore_tenant("alice", &pred(vars[0], vars[1]))
            .unwrap();
        resumed
            .restore_tenant("bob", &pred(vars[0], vars[1]))
            .unwrap();
        assert!(resumed.unrestored_clauses().is_empty());
        assert_eq!(resumed.export_state(), state);
    }

    #[test]
    fn serve_checkpoints_pass_the_schema_registry() {
        let (hub, _) = busy_hub();
        let text = encode(&hub.export_state(), 0);
        let doc = slicing_observe::json::parse(&text).unwrap();
        assert_eq!(
            slicing_observe::schema::validate(&doc).unwrap(),
            schema::SERVE_CHECKPOINT
        );
    }

    #[test]
    fn corrupt_serve_documents_are_rejected_with_typed_errors() {
        let (hub, _) = busy_hub();
        let text = encode(&hub.export_state(), 3);

        let reject = |mutate: &dyn Fn(&str) -> String, needle: &str| {
            let err = decode_str(&mutate(&text)).unwrap_err();
            let msg = err.to_string();
            assert!(
                matches!(err, BuildError::InvalidState { .. }) && msg.contains(needle),
                "expected InvalidState mentioning {needle:?}, got: {msg}"
            );
        };

        reject(
            &|t| t.replace("slicing.serve-checkpoint/v1", "slicing.checkpoint/v1"),
            "schema",
        );
        reject(
            &|t| t.replace("\"processes\":2", "\"processes\":0"),
            "processes",
        );
        reject(
            &|t| t.replace("\"fanout_dropped\":", "\"renamed\":"),
            "fanout_dropped",
        );
        reject(&|t| t.replace("\"every\":16", "\"every\":0"), "every");
        assert!(decode_str("not json").is_err());
        assert!(decode_str("{}").is_err());
    }
}
