//! Predicate detection engines for distributed computations.
//!
//! Detecting `possibly: b` — does some consistent cut of the computation
//! satisfy `b`? — is NP-complete in general because the cut lattice has
//! `O(kⁿ)` elements. This crate implements the approaches the paper
//! compares, all instrumented with deterministic time/space metrics:
//!
//! - [`detect_bfs`] / [`detect_dfs`]: explicit lattice enumeration
//!   (Cooper–Marzullo style) over any [`CutSpace`] — a computation **or a
//!   slice**, which is how slicing plugs in;
//! - [`detect_pom`]: selective search with persistent sets and sleep sets
//!   — the partial-order-methods baseline (Stoller–Unnikrishnan–Liu) the
//!   paper evaluates against;
//! - [`detect_reverse_search`]: polynomial-space enumeration (no visited
//!   set), in the spirit of Alagar–Venkatesan's space-efficient traversal;
//! - [`detect_with_slicing`]: the paper's pipeline — compute the slice for
//!   a [`PredicateSpec`](slicing_core::PredicateSpec), then search its few
//!   cuts evaluating the exact predicate;
//! - [`detect_lean`]: bounded-memory layered enumeration — BFS-identical
//!   verdict, witness, and explored count while keeping only two lattice
//!   layers of cuts alive (peak memory O(widest layer), not O(lattice)),
//!   with a sharded parallel variant ([`detect_lean_parallel`]);
//! - [`definitely`]: the `definitely` modality (every observation passes
//!   through a satisfying cut), as an extension;
//! - [`detect_resilient`]: graceful degradation — a chain of the above
//!   engines under per-engine budgets, falling through on exhaustion.
//!
//! The [`testkit`] module (and the [`engine_matrix!`](engine_matrix)
//! macro) run any of these engines against the brute-force lattice oracle
//! on a shared corpus — the differential harness the engines are locked
//! down by.
//!
//! # Example
//!
//! ```
//! use slicing_computation::test_fixtures::figure1;
//! use slicing_predicates::{Conjunctive, LocalPredicate};
//! use slicing_core::PredicateSpec;
//! use slicing_detect::{detect_with_slicing, Limits};
//!
//! let comp = figure1();
//! let x1 = comp.var(comp.process(0), "x1").unwrap();
//! let x3 = comp.var(comp.process(2), "x3").unwrap();
//! let spec = PredicateSpec::conjunctive(Conjunctive::new(vec![
//!     LocalPredicate::int(x1, "x1 > 1", |x| x > 1),
//!     LocalPredicate::int(x3, "x3 <= 3", |x| x <= 3),
//! ]));
//! let outcome = detect_with_slicing(&comp, &spec, &Limits::none());
//! assert!(outcome.detected());
//! assert!(outcome.search.cuts_explored <= 6); // slice, not computation
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
mod definitely;
mod enumerate;
mod hybrid;
mod lean;
mod metrics;
mod modalities;
mod monitor;
mod multiplex;
mod parallel;
mod pom;
mod resilient;
mod reverse_search;
pub mod serve_checkpoint;
mod slicing;
pub mod testkit;

pub use definitely::{definitely, detect_not_definitely};
pub use enumerate::{detect_bfs, detect_bfs_banded, detect_dfs};
pub use hybrid::{detect_hybrid, suggested_pom_budget, HybridDetection, HybridPhase};
pub use lean::{detect_lean, detect_lean_parallel, detect_lean_with, LeanArena};
pub use metrics::{AbortReason, Detection, Limits};
pub use modalities::{
    controllable, detect_controllable, invariant, invariant_lean, invariant_via_slicing,
};
pub use monitor::{GcConfig, MonitorState, MonitorStats, OnlineMonitor};
pub use multiplex::{
    AlarmReport, GroupState, HubAlarm, HubState, HubStats, MonitorHub, SlotState, TenantState,
};
pub use parallel::detect_bfs_parallel;
pub use pom::detect_pom;
pub use resilient::{detect_resilient, Engine, ResilientConfig, ResilientDetection};
pub use reverse_search::{detect_reverse_search, detect_reverse_search_slice};
pub use slicing::{detect_on_slice, detect_with_slicing, SliceDetection};

pub use slicing_computation::CutSpace;
