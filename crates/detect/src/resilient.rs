//! Graceful degradation across detection engines: try the cheapest
//! suitable engine first and fall through to progressively more general
//! ones whenever a budget (memory, cut count, or deadline) is exhausted,
//! so a single engine hitting its limit degrades the run instead of
//! failing it.
//!
//! The default chain mirrors the paper's preference order: slice-then-
//! search (exponentially cheaper when the predicate slices well), the
//! hybrid strategy of Section 5.1, the partial-order-methods baseline,
//! then the bounded-memory lean traversal (BFS semantics at two layers of
//! live cuts), and finally plain breadth-first enumeration as the engine
//! of last resort.

use std::time::Duration;

use slicing_computation::Computation;
use slicing_core::PredicateSpec;
use slicing_observe::Level;

use crate::enumerate::detect_bfs;
use crate::hybrid::{detect_hybrid, suggested_pom_budget, HybridPhase};
use crate::lean::detect_lean;
use crate::metrics::{AbortReason, Detection, Limits};
use crate::pom::detect_pom;
use crate::slicing::detect_with_slicing;

/// One engine in the degradation chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Slice-then-search ([`detect_with_slicing`]).
    Slicing,
    /// The paper's hybrid strategy ([`detect_hybrid`]).
    Hybrid,
    /// Partial-order methods ([`detect_pom`]).
    Pom,
    /// Bounded-memory layered enumeration ([`detect_lean`]): BFS-identical
    /// verdict and witness at O(widest layer) live cuts, tried before the
    /// full-memory enumeration of last resort.
    Lean,
    /// Plain breadth-first lattice enumeration ([`detect_bfs`]).
    Bfs,
}

impl Engine {
    /// Stable lowercase name, used in counters and reports.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Slicing => "slicing",
            Engine::Hybrid => "hybrid",
            Engine::Pom => "pom",
            Engine::Lean => "lean",
            Engine::Bfs => "bfs",
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-engine budgets for a [`detect_resilient`] run. `None` disables the
/// engine entirely (it is skipped, not attempted).
#[derive(Debug, Clone)]
pub struct ResilientConfig {
    /// Budget of the slice-then-search attempt.
    pub slicing: Option<Limits>,
    /// Budget of the hybrid attempt.
    pub hybrid: Option<Limits>,
    /// Byte budget handed to the hybrid's partial-order phase; `None`
    /// means [`suggested_pom_budget`] with the paper's small constant.
    pub hybrid_pom_budget: Option<u64>,
    /// Budget of the partial-order-methods attempt.
    pub pom: Option<Limits>,
    /// Budget of the bounded-memory layered attempt. Pairs naturally with
    /// [`Limits::max_live_cuts`]: caps that abort the global-visited
    /// engines almost immediately still let this one finish.
    pub lean: Option<Limits>,
    /// Budget of the last-resort breadth-first attempt.
    pub bfs: Option<Limits>,
}

impl Default for ResilientConfig {
    /// Every engine enabled and unlimited: the chain then always answers
    /// on its first engine. Tighten individual budgets to exercise the
    /// fallbacks.
    fn default() -> Self {
        ResilientConfig::uniform(Limits::none())
    }
}

impl ResilientConfig {
    /// The same budget for every engine in the chain.
    pub fn uniform(limits: Limits) -> Self {
        ResilientConfig {
            slicing: Some(limits),
            hybrid: Some(limits),
            hybrid_pom_budget: None,
            pom: Some(limits),
            lean: Some(limits),
            bfs: Some(limits),
        }
    }

    /// Splits a wall-clock budget evenly over the enabled engines, on top
    /// of the existing per-engine limits.
    pub fn with_total_deadline(mut self, total: Duration) -> Self {
        let enabled = [
            self.slicing.is_some(),
            self.hybrid.is_some(),
            self.pom.is_some(),
            self.lean.is_some(),
            self.bfs.is_some(),
        ]
        .iter()
        .filter(|&&on| on)
        .count() as u32;
        if enabled == 0 {
            return self;
        }
        let share = total / enabled;
        for slot in [
            &mut self.slicing,
            &mut self.hybrid,
            &mut self.pom,
            &mut self.lean,
            &mut self.bfs,
        ] {
            if let Some(l) = slot.take() {
                *slot = Some(l.with_deadline(share));
            }
        }
        self
    }
}

/// The outcome of a [`detect_resilient`] run.
#[derive(Debug, Clone)]
pub struct ResilientDetection {
    /// The engine that produced the final verdict (the first one to finish
    /// within budget, or the last attempted engine when all exhausted).
    pub engine: Engine,
    /// Every attempt in order, with the abort reason of the ones that fell
    /// through (`None` marks the engine that completed).
    pub attempts: Vec<(Engine, Option<AbortReason>)>,
    /// The final engine's detection result.
    pub detection: Detection,
    /// `true` when every enabled engine exhausted its budget; the
    /// `detection` verdict is then *inconclusive*, not a clean "absent".
    pub exhausted: bool,
}

impl ResilientDetection {
    /// `true` if a violating cut was found by any engine.
    pub fn detected(&self) -> bool {
        self.detection.detected()
    }

    /// Number of engines that fell through before the final one.
    pub fn fallbacks(&self) -> usize {
        self.attempts.len().saturating_sub(1)
    }
}

/// Detects `possibly: spec` with graceful degradation: each enabled engine
/// runs under its own budget from [`ResilientConfig`], and a budget
/// exhaustion falls through to the next engine instead of aborting the
/// run. Every fallback increments the `detect.resilient.fallback` counter;
/// if the whole chain exhausts, `detect.resilient.exhausted` is bumped and
/// the result is marked inconclusive.
pub fn detect_resilient(
    comp: &Computation,
    spec: &PredicateSpec,
    config: &ResilientConfig,
) -> ResilientDetection {
    struct SpecPred<'s>(&'s PredicateSpec);
    impl std::fmt::Debug for SpecPred<'_> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{:?}", self.0)
        }
    }
    impl slicing_predicates::Predicate for SpecPred<'_> {
        fn support(&self) -> slicing_computation::ProcSet {
            self.0.support()
        }
        fn eval(&self, state: &slicing_computation::GlobalState<'_>) -> bool {
            self.0.eval(state)
        }
    }

    let _span = slicing_observe::span("detect.resilient");
    let chain: [(Engine, &Option<Limits>); 5] = [
        (Engine::Slicing, &config.slicing),
        (Engine::Hybrid, &config.hybrid),
        (Engine::Pom, &config.pom),
        (Engine::Lean, &config.lean),
        (Engine::Bfs, &config.bfs),
    ];
    let mut attempts: Vec<(Engine, Option<AbortReason>)> = Vec::new();
    let mut last: Option<(Engine, Detection)> = None;
    for (engine, limits) in chain {
        let Some(limits) = limits else { continue };
        let detection = match engine {
            Engine::Slicing => detect_with_slicing(comp, spec, limits).search,
            Engine::Hybrid => {
                let budget = config
                    .hybrid_pom_budget
                    .unwrap_or_else(|| suggested_pom_budget(comp, 4));
                let h = detect_hybrid(comp, spec, budget, limits);
                match h.phase {
                    HybridPhase::PartialOrder => h.pom,
                    HybridPhase::Slicing => h.slicing.expect("slicing phase ran").search,
                }
            }
            Engine::Pom => detect_pom(comp, &SpecPred(spec), limits),
            Engine::Lean => detect_lean(comp, comp, &SpecPred(spec), limits),
            Engine::Bfs => detect_bfs(comp, comp, &SpecPred(spec), limits),
        };
        let aborted = detection.aborted;
        attempts.push((engine, aborted));
        if aborted.is_none() {
            return ResilientDetection {
                engine,
                attempts,
                detection,
                exhausted: false,
            };
        }
        slicing_observe::counter("detect.resilient.fallback", 1);
        slicing_observe::message(Level::Info, || {
            format!(
                "resilient: {engine} aborted ({}) after {} cuts; falling through",
                aborted.map(|r| r.to_string()).unwrap_or_default(),
                detection.cuts_explored,
            )
        });
        last = Some((engine, detection));
    }
    slicing_observe::counter("detect.resilient.exhausted", 1);
    let (engine, detection) = last.expect("at least one engine must be enabled");
    ResilientDetection {
        engine,
        attempts,
        detection,
        exhausted: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_computation::test_fixtures::figure1;
    use slicing_computation::GlobalState;
    use slicing_predicates::{Conjunctive, LocalPredicate};
    use slicing_sim::fault::inject_primary_secondary_fault;
    use slicing_sim::primary_secondary::{self, PrimarySecondary};
    use slicing_sim::{run, SimConfig};

    fn figure1_spec(comp: &Computation) -> PredicateSpec {
        let x1 = comp.var(comp.process(0), "x1").unwrap();
        let x3 = comp.var(comp.process(2), "x3").unwrap();
        PredicateSpec::conjunctive(Conjunctive::new(vec![
            LocalPredicate::int(x1, "x1 > 1", |x| x > 1),
            LocalPredicate::int(x3, "x3 <= 3", |x| x <= 3),
        ]))
    }

    #[test]
    fn first_engine_answers_when_unlimited() {
        let comp = figure1();
        let spec = figure1_spec(&comp);
        let r = detect_resilient(&comp, &spec, &ResilientConfig::default());
        assert_eq!(r.engine, Engine::Slicing);
        assert_eq!(r.fallbacks(), 0);
        assert!(r.detected() && !r.exhausted);
        let cut = r.detection.found.as_ref().unwrap();
        assert!(spec.eval(&GlobalState::new(&comp, cut)));
    }

    /// A faulty run on which every engine starves under a one-cut budget:
    /// the slice is non-empty but its bottom does not satisfy (so
    /// slice-then-search aborts rather than answering on its first cut),
    /// and the computation's bottom does not satisfy either (so POM/BFS
    /// abort too). Probed with the starved engine itself, which makes the
    /// choice self-validating.
    fn starvable_input() -> (Computation, PredicateSpec) {
        let starved = Limits::new(None, Some(1));
        for seed in 0..80u64 {
            let cfg = SimConfig {
                seed,
                max_events_per_process: 8,
                ..SimConfig::default()
            };
            let comp = run(&mut PrimarySecondary::new(4), &cfg).unwrap();
            let Some((faulty, _)) = inject_primary_secondary_fault(&comp, seed) else {
                continue;
            };
            let spec = primary_secondary::violation_spec(&faulty);
            let bottom = slicing_computation::Cut::bottom(4);
            if spec.eval(&GlobalState::new(&faulty, &bottom)) {
                continue;
            }
            if detect_with_slicing(&faulty, &spec, &starved)
                .search
                .aborted
                .is_some()
            {
                return (faulty, spec);
            }
        }
        panic!("no faulty run starves the slicing engine at one cut");
    }

    #[test]
    fn starved_engines_fall_through_in_chain_order() {
        let (comp, spec) = starvable_input();
        // Starve everything upstream of BFS: one cut of budget forces each
        // engine to abort immediately.
        let starved = Limits::new(None, Some(1));
        let config = ResilientConfig {
            slicing: Some(starved),
            hybrid: Some(starved),
            hybrid_pom_budget: None,
            pom: Some(starved),
            lean: Some(starved),
            bfs: Some(Limits::none()),
        };
        let r = detect_resilient(&comp, &spec, &config);
        assert_eq!(r.engine, Engine::Bfs);
        assert_eq!(r.fallbacks(), 4);
        assert!(!r.exhausted);
        let engines: Vec<Engine> = r.attempts.iter().map(|&(e, _)| e).collect();
        assert_eq!(
            engines,
            vec![
                Engine::Slicing,
                Engine::Hybrid,
                Engine::Pom,
                Engine::Lean,
                Engine::Bfs
            ]
        );
        for (e, reason) in &r.attempts[..4] {
            assert!(reason.is_some(), "{e} should have aborted");
        }
    }

    #[test]
    fn exhausted_chain_is_flagged_inconclusive() {
        let (comp, spec) = starvable_input();
        let starved = Limits::new(None, Some(1));
        let r = detect_resilient(&comp, &spec, &ResilientConfig::uniform(starved));
        assert!(r.exhausted);
        assert!(!r.detected());
        assert_eq!(r.attempts.len(), 5);
        assert!(r.attempts.iter().all(|&(_, reason)| reason.is_some()));
    }

    #[test]
    fn disabled_engines_are_skipped() {
        let comp = figure1();
        let spec = figure1_spec(&comp);
        let config = ResilientConfig {
            slicing: None,
            hybrid: None,
            hybrid_pom_budget: None,
            pom: None,
            lean: None,
            bfs: Some(Limits::none()),
        };
        let r = detect_resilient(&comp, &spec, &config);
        assert_eq!(r.engine, Engine::Bfs);
        assert_eq!(r.attempts.len(), 1);
        assert!(r.detected());
    }

    #[test]
    fn lean_live_cut_exhaustion_falls_through_with_counter() {
        // A live-cut cap of 1 starves lean before it can answer; the abort
        // is a clean budget verdict (not a wrong answer), the chain falls
        // through to BFS, and exactly one fallback is counted.
        let comp = figure1();
        let spec = figure1_spec(&comp);
        let config = ResilientConfig {
            slicing: None,
            hybrid: None,
            hybrid_pom_budget: None,
            pom: None,
            lean: Some(Limits::live_cuts(1)),
            bfs: Some(Limits::none()),
        };
        let rec = std::sync::Arc::new(slicing_observe::MemoryRecorder::new(
            slicing_observe::Level::Trace,
        ));
        let r = {
            let _g = slicing_observe::scoped(rec.clone());
            detect_resilient(&comp, &spec, &config)
        };
        assert_eq!(
            r.attempts,
            vec![
                (Engine::Lean, Some(AbortReason::LiveCutLimit)),
                (Engine::Bfs, None)
            ]
        );
        assert_eq!(r.engine, Engine::Bfs);
        assert!(r.detected() && !r.exhausted);
        assert_eq!(rec.counter_total("detect.resilient.fallback"), 1);
        assert_eq!(rec.counter_total("detect.resilient.exhausted"), 0);
        // A cap sized for two lattice layers lets lean answer in place.
        let roomy = ResilientConfig {
            lean: Some(Limits::live_cuts(64)),
            ..config
        };
        let r = detect_resilient(&comp, &spec, &roomy);
        assert_eq!(r.engine, Engine::Lean);
        assert_eq!(r.fallbacks(), 0);
        assert!(r.detected());
    }

    #[test]
    fn total_deadline_splits_over_enabled_engines() {
        let config = ResilientConfig {
            slicing: Some(Limits::none()),
            hybrid: None,
            hybrid_pom_budget: None,
            pom: None,
            lean: None,
            bfs: Some(Limits::none()),
        }
        .with_total_deadline(Duration::from_millis(100));
        assert_eq!(
            config.slicing.as_ref().unwrap().max_elapsed,
            Some(Duration::from_millis(50))
        );
        assert_eq!(
            config.bfs.as_ref().unwrap().max_elapsed,
            Some(Duration::from_millis(50))
        );
        assert!(config.hybrid.is_none());
    }

    #[test]
    fn resilient_verdict_matches_direct_slicing() {
        for seed in [3u64, 8, 13] {
            let cfg = SimConfig {
                seed,
                max_events_per_process: 8,
                ..SimConfig::default()
            };
            let comp = run(&mut PrimarySecondary::new(3), &cfg).unwrap();
            let (faulty, _) = inject_primary_secondary_fault(&comp, seed).unwrap();
            let spec = primary_secondary::violation_spec(&faulty);
            let direct = detect_with_slicing(&faulty, &spec, &Limits::none());
            let resilient = detect_resilient(&faulty, &spec, &ResilientConfig::default());
            assert_eq!(direct.detected(), resilient.detected(), "seed {seed}");
        }
    }
}
