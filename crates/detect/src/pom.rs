//! Partial-order-method detection: persistent sets + sleep sets — the
//! comparison baseline of the paper's experimental section (Stoller,
//! Unnikrishnan & Liu, CAV 2000, building on Godefroid's partial-order
//! methods).
//!
//! The state space is the cut lattice; a transition advances one process
//! by one event. At every state only a *persistent set* of transitions is
//! explored, pruned further by *sleep sets*; states are cached so shared
//! suffixes are not re-explored. Because the predicate is a state property,
//! all transitions of processes in its support are treated as *visible*
//! and mutually dependent, which preserves detection (the cut lattice is
//! acyclic, so the ignoring problem does not arise).

use std::time::Instant;

use slicing_computation::{Computation, Cut, CutMap64, GlobalState, ProcSet, ProcessId};
use slicing_predicates::Predicate;

use crate::metrics::{emit_visited_stats, AbortReason, Detection, Limits, Tracker};

/// Dependency analysis for transitions, fixed per computation + predicate.
struct Dependencies<'a> {
    comp: &'a Computation,
    support: ProcSet,
}

impl<'a> Dependencies<'a> {
    fn new(comp: &'a Computation, support: ProcSet) -> Self {
        Dependencies { comp, support }
    }

    /// `true` if advancing `p` (next event at `cut`) and advancing `q` do
    /// not commute — over-approximated statically:
    /// message partners and predicate-visible pairs are dependent.
    fn dependent(&self, cut: &Cut, p: ProcessId, q: ProcessId) -> bool {
        if p == q {
            return true;
        }
        // Visible transitions are mutually dependent.
        if self.support.contains(p) && self.support.contains(q) {
            return true;
        }
        // Message coupling between the *next* events.
        for (a, b) in [(p, q), (q, p)] {
            let ca = cut.count(a);
            if ca >= self.comp.len(a) {
                continue;
            }
            let ea = self.comp.event_at(a, ca);
            // ea receives from or sends to process b.
            for m in self.comp.messages_into(ea) {
                if self.comp.process_of(m.send) == b {
                    return true;
                }
            }
            for m in self.comp.messages_out_of(ea) {
                if self.comp.process_of(m.recv) == b {
                    return true;
                }
            }
        }
        false
    }

    /// A persistent set of processes at `cut`, as a closure starting from
    /// one enabled seed: if a member's next event is dependent on another
    /// process's next event — or is disabled *because* of that process —
    /// the other process joins the set.
    fn persistent_set(&self, cut: &Cut, enabled: ProcSet) -> ProcSet {
        let Some(seed) = enabled.iter().next() else {
            return ProcSet::empty();
        };
        let mut set = ProcSet::singleton(seed);
        loop {
            let mut grew = false;
            for p in set {
                let cp = cut.count(p);
                if cp >= self.comp.len(p) {
                    continue;
                }
                let ep = self.comp.event_at(p, cp);
                for q in self.comp.processes() {
                    if set.contains(q) {
                        continue;
                    }
                    // Disabled because q has not yet produced a causal
                    // prerequisite of ep.
                    let needs_q = self.comp.min_cut(ep).count(q) > cut.count(q);
                    if needs_q || self.dependent(cut, p, q) {
                        set.insert(q);
                        grew = true;
                    }
                }
            }
            if !grew {
                return set;
            }
        }
    }
}

/// Detects `possibly: pred` with a selective (partial-order) search of the
/// computation's cut lattice using persistent sets, sleep sets, and state
/// caching.
///
/// Explores a subset of the cuts that is guaranteed to contain a
/// satisfying cut whenever one exists. Matches the behaviour the paper
/// reports for its baseline: fast when a fault is found early, but with
/// state storage that can still grow exponentially.
pub fn detect_pom<P: Predicate + ?Sized>(
    comp: &Computation,
    pred: &P,
    limits: &Limits,
) -> Detection {
    let _span = slicing_observe::span("detect.pom");
    let start = Instant::now();
    let mut tracker = Tracker::default();
    let n = comp.num_processes();
    let entry_bytes = Tracker::hash_entry_bytes(n) + 8; // + sleep mask

    // Pruning totals, accumulated locally and emitted once per run so the
    // Trace stream stays O(1) regardless of lattice size.
    let mut sleep_skips = 0u64;
    let mut persistent_pruned = 0u64;

    let deps = Dependencies::new(comp, pred.support());

    // Visited cache: cut → sleep mask it was (or is being) explored with.
    // Re-exploration is needed only with a strictly smaller sleep set; we
    // then continue with the intersection.
    let mut visited = CutMap64::new(n);

    // DFS stack: (cut, sleep mask).
    let bottom = Cut::bottom(n);
    let mut stack: Vec<(Cut, u64)> = vec![(bottom.clone(), 0)];
    tracker.charge(entry_bytes);

    let mut found = None;
    let mut aborted = None;
    while let Some((cut, sleep)) = stack.pop() {
        tracker.release(entry_bytes);
        let (inserted, prev) = visited.insert_or_get(&cut, sleep);
        if !inserted {
            // Already explored with sleep set `*prev`; only transitions
            // sleeping there but awake now need exploration.
            if *prev & !sleep == 0 {
                continue;
            }
            *prev &= sleep;
        } else {
            tracker.store_cut(entry_bytes);
            tracker.cuts_explored += 1;
            match pred.try_eval(&GlobalState::new(comp, &cut)) {
                Ok(true) => {
                    found = Some(cut);
                    break;
                }
                Ok(false) => {}
                Err(_) => {
                    aborted = Some(AbortReason::PredicateError);
                    break;
                }
            }
            if let Some(reason) = tracker.over_limit(limits, start) {
                aborted = Some(reason);
                break;
            }
        }
        if visited.saturated() {
            aborted = Some(AbortReason::ArenaFull);
            break;
        }

        let enabled: ProcSet = comp
            .processes()
            .filter(|&p| comp.can_advance(&cut, p))
            .collect();
        if enabled.is_empty() {
            continue;
        }
        let persistent = deps.persistent_set(&cut, enabled);
        persistent_pruned += enabled.iter().filter(|&p| !persistent.contains(p)).count() as u64;

        // Explore enabled persistent transitions not in the sleep set.
        let mut explored_mask = 0u64;
        for p in persistent {
            if !enabled.contains(p) {
                continue;
            }
            if sleep & (1 << p.as_usize()) != 0 {
                sleep_skips += 1;
                continue;
            }
            let mut child = cut.clone();
            child.set_count(p, cut.count(p) + 1);
            // Child sleep: previously-explored siblings and inherited
            // sleepers that are independent of the taken transition.
            let mut child_sleep = 0u64;
            for q in comp.processes() {
                let bit = 1u64 << q.as_usize();
                if (sleep | explored_mask) & bit != 0 && !deps.dependent(&cut, p, q) {
                    child_sleep |= bit;
                }
            }
            stack.push((child, child_sleep));
            tracker.charge(entry_bytes);
            explored_mask |= 1 << p.as_usize();
        }
    }
    slicing_observe::counter("detect.pom.sleep_set_skips", sleep_skips);
    slicing_observe::counter("detect.pom.persistent_pruned", persistent_pruned);
    emit_visited_stats(visited.stats());
    tracker.finish(found, start.elapsed(), aborted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_computation::lattice::count_cuts;
    use slicing_computation::oracle::satisfying_cuts;
    use slicing_computation::test_fixtures::{figure1, grid, random_computation, RandomConfig};
    use slicing_predicates::{expr::parse_predicate, FnPredicate};

    #[test]
    fn explores_fewer_cuts_than_full_enumeration() {
        // With an unsatisfiable 1-local predicate, independence lets the
        // selective search skip most interleavings of a grid.
        let comp = grid(6, 6);
        let never = FnPredicate::new(ProcSet::singleton(comp.process(0)), "false", |_| false);
        let d = detect_pom(&comp, &never, &Limits::none());
        assert!(!d.detected());
        assert!(
            d.cuts_explored < count_cuts(&comp, None).value(),
            "pom explored {} of {}",
            d.cuts_explored,
            count_cuts(&comp, None).value()
        );
    }

    #[test]
    fn agrees_with_bfs_on_random_instances() {
        let cfg = RandomConfig {
            processes: 3,
            events_per_process: 4,
            value_range: 3,
            send_percent: 50,
            recv_percent: 50,
        };
        for seed in 0..60 {
            let comp = random_computation(seed, &cfg);
            let x0 = comp.var(comp.process(0), "x").unwrap();
            let x1 = comp.var(comp.process(1), "x").unwrap();
            let x2 = comp.var(comp.process(2), "x").unwrap();
            let t = (seed % 5) as i64;
            let pred = FnPredicate::new(ProcSet::all(3), "sum == t", move |st| {
                st.get(x0).expect_int() + st.get(x1).expect_int() + st.get(x2).expect_int() == t
            });
            let pom = detect_pom(&comp, &pred, &Limits::none());
            let oracle = !satisfying_cuts(&comp, |st| pred.eval(st)).is_empty();
            assert_eq!(pom.detected(), oracle, "seed {seed}");
        }
    }

    #[test]
    fn agrees_on_two_local_predicates() {
        let cfg = RandomConfig {
            processes: 4,
            events_per_process: 3,
            value_range: 2,
            send_percent: 40,
            recv_percent: 40,
        };
        for seed in 100..160 {
            let comp = random_computation(seed, &cfg);
            let pred = parse_predicate(&comp, "x@1 == 1 && x@3 == 1").unwrap();
            let pom = detect_pom(&comp, &pred, &Limits::none());
            let oracle =
                !satisfying_cuts(&comp, |st| slicing_predicates::Predicate::eval(&pred, st))
                    .is_empty();
            assert_eq!(pom.detected(), oracle, "seed {seed}");
        }
    }

    #[test]
    fn finds_figure1_witness() {
        let comp = figure1();
        let pred =
            parse_predicate(&comp, "x1@0 * x2@1 + x3@2 < 5 && x1@0 > 1 && x3@2 <= 3").unwrap();
        let d = detect_pom(&comp, &pred, &Limits::none());
        assert!(d.detected());
        let cut = d.found.unwrap();
        assert!(pred.eval(&GlobalState::new(&comp, &cut)));
    }

    #[test]
    fn respects_limits() {
        let comp = grid(8, 8);
        let never = FnPredicate::new(ProcSet::all(2), "false", |_| false);
        let d = detect_pom(&comp, &never, &Limits::bytes(100));
        assert!(!d.completed());
    }

    #[test]
    fn channel_coupled_processes_stay_dependent() {
        // A send/recv pair must not be commuted away: the predicate "one
        // message in transit" only holds between the send and the receive.
        let mut b = slicing_computation::ComputationBuilder::new(3);
        let s = b.append_event(b.process(0));
        let r = b.append_event(b.process(1));
        b.message(s, r).unwrap();
        for _ in 0..3 {
            b.append_event(b.process(2));
        }
        let comp = b.build().unwrap();
        let p0 = comp.process(0);
        let p1 = comp.process(1);
        let pred = FnPredicate::new([p0, p1].into_iter().collect(), "in transit", move |st| {
            st.in_transit(p0, p1) == 1
        });
        let d = detect_pom(&comp, &pred, &Limits::none());
        assert!(d.detected());
    }
}
