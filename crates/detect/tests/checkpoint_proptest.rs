//! Property test for the `slicing.checkpoint/v1` codec: arbitrary monitor
//! states — GC'd or not, with in-flight (held-back) messages at the
//! checkpoint, and process counts crossing the inline→spilled cut
//! boundary — serialize, decode, and restore to a monitor with identical
//! stats and clock revision, whose continuation is step-for-step
//! indistinguishable from the uninterrupted original.

use proptest::prelude::*;

use slicing_computation::{EventId, Value};
use slicing_detect::checkpoint::{decode_str, encode};
use slicing_detect::{GcConfig, OnlineMonitor};
use slicing_predicates::LocalPredicate;

#[derive(Debug, Clone)]
struct Step {
    process: usize,
    value: i64,
    send: bool,
    recv: bool,
}

fn steps(n: usize, size: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        (0..n, -1i64..=2, any::<bool>(), any::<bool>()).prop_map(|(process, value, send, recv)| {
            Step {
                process,
                value,
                send,
                recv,
            }
        }),
        size,
    )
}

#[allow(clippy::type_complexity)]
fn cases() -> impl Strategy<Value = (usize, Vec<Step>, Vec<Step>, i64, Option<u64>)> {
    // n up to 18 crosses the 16-process inline cut representation into
    // spilled storage; the codec must not care.
    (2usize..=18).prop_flat_map(|n| {
        (
            Just(n),
            steps(n, 10..40),
            steps(n, 1..12),
            0i64..=2,
            (any::<bool>(), 2u64..=8).prop_map(|(gc, every)| gc.then_some(every)),
        )
    })
}

fn fresh(n: usize, threshold: i64, gc_every: Option<u64>) -> OnlineMonitor {
    let mut m = OnlineMonitor::new(n);
    if let Some(every) = gc_every {
        m = m.with_gc(GcConfig { lag: 5, every });
    }
    for i in 0..n {
        let v = m.declare_var(i, "x", Value::Int(0)).expect("fresh var");
        m.watch_int(v, format!("x >= {threshold}"), move |x| x >= threshold)
            .expect("watch before events");
    }
    m
}

/// Runs one step (observe, bounded-lateness messaging, check + ack) on a
/// monitor, updating the shared event list and pending-send slot.
fn run_step(
    m: &mut OnlineMonitor,
    step: &Step,
    events: &mut Vec<(usize, u32)>,
    pending: &mut Option<(usize, usize, u32)>,
) -> Option<Vec<u32>> {
    let x = m.var(step.process, "x").unwrap();
    let pos = m.events_on(step.process);
    m.observe(step.process, &[(x, Value::Int(step.value))])
        .expect("observe succeeds");
    events.push((step.process, pos));
    *pending = match *pending {
        Some((idx, from, _)) if step.recv && from != step.process => {
            deliver(m, events[idx], *events.last().unwrap());
            None
        }
        Some((_, _, age)) if age >= 3 => None,
        Some((idx, from, age)) => Some((idx, from, age + 1)),
        None if step.send => Some((events.len() - 1, step.process, 0)),
        None => None,
    };
    let verdict = m.check().expect("check never fails");
    let counts = verdict.map(|c| c.counts().to_vec());
    if counts.is_some() {
        m.acknowledge_alarm();
    }
    counts
}

/// Delivers a message addressed by (process, position) — the coordinates
/// that survive a restart, unlike [`EventId`]s.
fn deliver(m: &mut OnlineMonitor, send: (usize, u32), recv: (usize, u32)) {
    let s: EventId = m.event_at(send.0, send.1).expect("send retained");
    let r: EventId = m.event_at(recv.0, recv.1).expect("recv retained");
    m.message(s, r).expect("bounded-lateness message");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn checkpoints_round_trip_and_continue_identically(
        (n, prefix, tail, threshold, gc_every) in cases()
    ) {
        let mut original = fresh(n, threshold, gc_every);
        let mut events: Vec<(usize, u32)> = Vec::new();
        let mut pending: Option<(usize, usize, u32)> = None;
        for step in &prefix {
            run_step(&mut original, step, &mut events, &mut pending);
        }

        // Checkpoint mid-stream — possibly with a held-back send still in
        // flight (`pending`), the hard case for restore.
        let state = original.export_state();
        let text = encode(&state, 42);
        let (decoded, seq) = decode_str(&text).unwrap();
        prop_assert_eq!(seq, 42);
        prop_assert_eq!(&decoded, &state, "codec round-trip changed the state");

        let mut resumed = OnlineMonitor::from_state(&decoded).expect("restore");
        for p in 0..n {
            let v = resumed.var(p, "x").expect("declared var survives");
            let t = threshold;
            resumed
                .restore_watch_clause(LocalPredicate::int(v, format!("x >= {t}"), move |x| x >= t))
                .expect("clause matches checkpointed truth values");
        }
        prop_assert_eq!(resumed.stats(), original.stats());
        prop_assert_eq!(resumed.retained_events(), original.retained_events());
        prop_assert_eq!(resumed.stable_frontier(), original.stable_frontier());

        // The continuation — including delivery of the in-flight message
        // — must be step-for-step identical.
        let (mut ev2, mut pend2) = (events.clone(), pending);
        for (i, step) in tail.iter().enumerate() {
            let vo = run_step(&mut original, step, &mut events, &mut pending);
            let vr = run_step(&mut resumed, step, &mut ev2, &mut pend2);
            prop_assert_eq!(vo, vr, "tail step {} diverged after resume", i);
        }
        prop_assert_eq!(original.stats(), resumed.stats());
        // Exported states converge again: restore lost nothing.
        prop_assert_eq!(original.export_state().slicer.clock_revision,
                        resumed.export_state().slicer.clock_revision);
    }
}
