//! Property tests pinning the fast cut kernel to the brute-force lattice
//! oracle: BFS, DFS, and the sharded parallel BFS must return the same
//! verdict as exhaustive enumeration on arbitrary computations — including
//! ones wide enough to spill the `Cut` inline buffer (more than 16
//! processes), where the pooled arena and hashing take the heap path.

use proptest::prelude::*;

use slicing_computation::oracle::satisfying_cuts;
use slicing_computation::test_fixtures::{random_computation, RandomConfig};
use slicing_computation::{Computation, Cut, GlobalState, ProcSet};
use slicing_detect::{detect_bfs, detect_bfs_parallel, detect_dfs, Limits};
use slicing_predicates::{FnPredicate, Predicate};

/// Narrow-but-deep computations: few processes, several events each.
fn narrow() -> impl Strategy<Value = Computation> {
    (any::<u64>(), 1usize..=5, 1u32..=4, 0u64..=80).prop_map(|(seed, n, m, msg)| {
        let cfg = RandomConfig {
            processes: n,
            events_per_process: m,
            send_percent: msg,
            recv_percent: msg,
            value_range: 3,
        };
        random_computation(seed, &cfg)
    })
}

/// Wide-but-shallow computations that cross the 16-process inline-cut
/// boundary. One event per process and a high message rate keep the
/// lattice small enough for the exhaustive oracle.
fn wide() -> impl Strategy<Value = Computation> {
    (any::<u64>(), 15usize..=17).prop_map(|(seed, n)| {
        let cfg = RandomConfig {
            processes: n,
            events_per_process: 1,
            send_percent: 70,
            recv_percent: 70,
            value_range: 2,
        };
        random_computation(seed, &cfg)
    })
}

fn sum_equals(comp: &Computation, target: i64) -> FnPredicate {
    let n = comp.num_processes();
    let vars: Vec<_> = comp
        .processes()
        .map(|p| comp.var(p, "x").unwrap())
        .collect();
    FnPredicate::new(ProcSet::all(n), "sum == target", move |st| {
        vars.iter().map(|&v| st.get(v).expect_int()).sum::<i64>() == target
    })
}

/// Checks all three kernel-backed engines against the oracle verdict and
/// validates any witness they return.
fn check_engines(comp: &Computation, pred: &FnPredicate) {
    let limits = Limits::none();
    let expected = !satisfying_cuts(comp, |st| pred.eval(st)).is_empty();
    let bfs = detect_bfs(comp, comp, pred, &limits);
    let dfs = detect_dfs(comp, comp, pred, &limits);
    let par = detect_bfs_parallel(comp, comp, pred, &limits, 4);
    prop_assert_eq!(bfs.detected(), expected, "bfs verdict");
    prop_assert_eq!(dfs.detected(), expected, "dfs verdict");
    prop_assert_eq!(par.detected(), expected, "parallel verdict");
    for d in [&bfs, &dfs, &par] {
        if let Some(cut) = &d.found {
            prop_assert!(pred.eval(&GlobalState::new(comp, cut)));
        }
    }
    // BFS witnesses are minimal-depth; the parallel engine preserves the
    // layer-order guarantee, so its witness sits in the same layer.
    if expected {
        let (b, p) = (bfs.found.as_ref().unwrap(), par.found.as_ref().unwrap());
        prop_assert_eq!(b.size(), p.size(), "parallel witness depth");
    }
    // On a miss every engine exhausts the same lattice.
    if !expected {
        prop_assert_eq!(bfs.cuts_explored, dfs.cuts_explored);
        prop_assert_eq!(bfs.cuts_explored, par.cuts_explored);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engines_match_oracle_on_narrow_computations(
        comp in narrow(),
        target in 0i64..8,
    ) {
        let pred = sum_equals(&comp, target);
        check_engines(&comp, &pred);
    }

    #[test]
    fn engines_match_oracle_past_the_inline_boundary(
        comp in wide(),
        target in 0i64..10,
    ) {
        // Spilled representation really is in play at these widths.
        let bottom = Cut::bottom(comp.num_processes());
        prop_assert_eq!(bottom.counts().len(), comp.num_processes());
        let pred = sum_equals(&comp, target);
        check_engines(&comp, &pred);
    }
}
