//! The differential engine matrix: every detection engine — BFS, DFS,
//! partial-order methods, slicing, hybrid, lean, and sharded parallel lean
//! — runs over the same seeded corpus and is checked against the
//! brute-force lattice oracle by
//! [`check_engine`](slicing_detect::testkit::check_engine). One `#[test]`
//! per engine is stamped out by `engine_matrix!`, so a regression in any
//! engine shows up as that engine's named row failing.

use slicing_computation::test_fixtures::{figure1, random_computation, RandomConfig};
use slicing_computation::Computation;
use slicing_core::PredicateSpec;
use slicing_detect::testkit::Case;
use slicing_predicates::{Conjunctive, LocalPredicate};
use slicing_sim::crdt::{self, CrdtReplication};
use slicing_sim::fault::{
    inject_crdt_fault, inject_leader_election_fault, inject_work_queue_fault,
};
use slicing_sim::leader_election::{self, LeaderElection};
use slicing_sim::work_queue::{self, WorkQueue};
use slicing_sim::{run, Protocol, SimConfig};

/// A conjunctive spec `x@p == target(p)` over every process of a random
/// computation; mixing targets produces detectable and undetectable cases.
fn sum_style_spec(comp: &slicing_computation::Computation, target: i64) -> PredicateSpec {
    let locals: Vec<_> = comp
        .processes()
        .map(|p| {
            let x = comp.var(p, "x").unwrap();
            LocalPredicate::int(x, "x <= t", move |v| v <= target)
        })
        .collect();
    PredicateSpec::conjunctive(Conjunctive::new(locals))
}

/// The corpus the matrix runs: the paper's Figure 1 fixture (detectable
/// and undetectable variants, plus a disjunction), seeded narrow random
/// computations, and a wide one past the 16-process inline-cut boundary.
fn cases() -> Vec<Case> {
    let mut cases = Vec::new();

    // Figure 1 with thresholds on both sides of the reachable values.
    for threshold in [1i64, 99] {
        let comp = figure1();
        let x1 = comp.var(comp.process(0), "x1").unwrap();
        let x3 = comp.var(comp.process(2), "x3").unwrap();
        let spec = PredicateSpec::conjunctive(Conjunctive::new(vec![
            LocalPredicate::int(x1, "x1 > t", move |x| x > threshold),
            LocalPredicate::int(x3, "x3 <= 3", |x| x <= 3),
        ]));
        cases.push(Case::new(format!("figure1 t{threshold}"), comp, spec));
    }

    // A disjunction: exercises the or-grafted slice in the slicing engine.
    let comp = figure1();
    let x1 = comp.var(comp.process(0), "x1").unwrap();
    let x2 = comp.var(comp.process(1), "x2").unwrap();
    let spec = PredicateSpec::or(vec![
        PredicateSpec::conjunctive(Conjunctive::new(vec![LocalPredicate::int(
            x1,
            "x1 == 0",
            |x| x == 0,
        )])),
        PredicateSpec::conjunctive(Conjunctive::new(vec![LocalPredicate::int(
            x2,
            "x2 >= 3",
            |x| x >= 3,
        )])),
    ]);
    cases.push(Case::new("figure1 or", comp, spec));

    // Narrow random computations: messages, several events per process.
    let narrow = RandomConfig {
        processes: 3,
        events_per_process: 3,
        value_range: 3,
        ..RandomConfig::default()
    };
    for seed in [2u64, 7, 19, 23, 42] {
        let comp = random_computation(seed, &narrow);
        // target 0 is often undetectable, 2 almost always detectable.
        let target = (seed % 3) as i64;
        let spec = sum_style_spec(&comp, target);
        cases.push(Case::new(
            format!("narrow seed {seed} t{target}"),
            comp,
            spec,
        ));
    }

    // Deep with sparse messaging: middle layers exceed the parallel
    // engine's fan-out threshold (128 frontier cuts), so the graded
    // packed mode — not just the sequential replica — faces the oracle.
    let deep = RandomConfig {
        processes: 4,
        events_per_process: 6,
        send_percent: 15,
        recv_percent: 15,
        value_range: 4,
    };
    for seed in [3u64, 31] {
        let comp = random_computation(seed, &deep);
        let spec = sum_style_spec(&comp, (seed % 4) as i64);
        cases.push(Case::new(format!("deep seed {seed}"), comp, spec));
    }

    // Wide and shallow: crosses the 16-process inline→spill boundary, so
    // every engine's cut storage takes the spilled path.
    let wide = RandomConfig {
        processes: 17,
        events_per_process: 1,
        send_percent: 70,
        recv_percent: 70,
        value_range: 2,
    };
    for seed in [5u64, 11] {
        let comp = random_computation(seed, &wide);
        let spec = sum_style_spec(&comp, (seed % 2) as i64);
        cases.push(Case::new(format!("wide seed {seed}"), comp, spec));
    }

    // Scenario-zoo protocols: each fault-free run (undetectable) and a
    // corrupt-injected variant (detectable) faces every engine with the
    // protocol's own sliceable `violation_spec` — a mix of conjunctive
    // clauses, co-regular dominance leaves, k-local divergence bounds, and
    // disjunction, unlike the hand-rolled specs above.
    fn protocol_run<P: Protocol>(mut p: P, seed: u64, events: u32) -> Computation {
        let cfg = SimConfig {
            seed,
            max_events_per_process: events,
            ..SimConfig::default()
        };
        run(&mut p, &cfg).expect("protocol run builds")
    }

    let le = protocol_run(LeaderElection::new(4), 2, 5);
    let (le_bad, _) = inject_leader_election_fault(&le, 9).expect("an elected leader to corrupt");
    cases.push(Case::new("leader-election clean", le.clone(), {
        leader_election::violation_spec(&le)
    }));
    let le_spec = leader_election::violation_spec(&le_bad);
    cases.push(Case::new("leader-election corrupt", le_bad, le_spec));

    let cr = protocol_run(CrdtReplication::new(3), 0, 6);
    let (cr_bad, _) = inject_crdt_fault(&cr, 9).expect("a replica sum to corrupt");
    cases.push(Case::new(
        "crdt clean",
        cr.clone(),
        crdt::violation_spec(&cr),
    ));
    let cr_spec = crdt::violation_spec(&cr_bad);
    cases.push(Case::new("crdt corrupt", cr_bad, cr_spec));

    let wq = protocol_run(WorkQueue::new(4), 0, 5);
    let (wq_bad, _) = inject_work_queue_fault(&wq, 9).expect("a broker counter to corrupt");
    cases.push(Case::new(
        "work-queue clean",
        wq.clone(),
        work_queue::violation_spec(&wq),
    ));
    let wq_spec = work_queue::violation_spec(&wq_bad);
    cases.push(Case::new("work-queue corrupt", wq_bad, wq_spec));

    // 17-process leader election: a protocol run past the inline→spill cut
    // boundary whose widest lattice layer also exceeds the parallel
    // engine's 128-cut fan-out threshold.
    let le_wide = protocol_run(LeaderElection::new(17), 0, 2);
    let spec = leader_election::violation_spec(&le_wide);
    cases.push(Case::new("leader-election wide", le_wide, spec));

    // 17-process work queue, corrupt: detectable on spilled cuts, and its
    // widest layer is far past the 128-cut fan-out threshold too.
    let wq_wide = protocol_run(WorkQueue::new(17), 2, 3);
    let (wq_wide_bad, _) = inject_work_queue_fault(&wq_wide, 9).expect("a broker counter");
    let spec = work_queue::violation_spec(&wq_wide_bad);
    cases.push(Case::new("work-queue wide corrupt", wq_wide_bad, spec));

    cases
}

mod matrix {
    slicing_detect::engine_matrix!(super::cases);
}

/// Guard: the corpus itself stays non-trivial — both verdicts represented.
#[test]
fn corpus_has_both_verdicts() {
    use slicing_computation::oracle::satisfying_cuts;
    let cases = cases();
    assert!(cases.len() >= 10, "corpus shrank to {}", cases.len());
    let verdicts: Vec<bool> = cases
        .iter()
        .map(|c| !satisfying_cuts(&c.comp, |st| c.spec.eval(st)).is_empty())
        .collect();
    assert!(verdicts.iter().any(|&v| v), "no detectable case left");
    assert!(verdicts.iter().any(|&v| !v), "no undetectable case left");
}

/// Guard: the protocol cases keep stressing the two size boundaries — a
/// run past the 16-process inline→spill cut representation, and a lattice
/// whose widest rank layer exceeds the parallel engine's 128-cut fan-out
/// threshold.
#[test]
fn corpus_crosses_the_size_boundaries() {
    use slicing_computation::lattice::all_cuts;
    use slicing_computation::Cut;
    use std::collections::HashMap;

    let cases = cases();
    let protocol_cases: Vec<_> = cases
        .iter()
        .filter(|c| {
            ["leader-election", "crdt", "work-queue"]
                .iter()
                .any(|p| c.tag.starts_with(p))
        })
        .collect();
    assert!(
        protocol_cases.len() >= 8,
        "protocol corpus shrank to {}",
        protocol_cases.len()
    );
    assert!(
        protocol_cases
            .iter()
            .any(|c| c.comp.num_processes() > Cut::INLINE_PROCESSES),
        "no protocol case crosses the inline→spill boundary"
    );
    let widest = protocol_cases
        .iter()
        .map(|c| {
            let mut by_rank: HashMap<u32, u64> = HashMap::new();
            for cut in all_cuts(&c.comp) {
                let rank: u32 = c.comp.processes().map(|p| cut.count(p)).sum();
                *by_rank.entry(rank).or_insert(0) += 1;
            }
            by_rank.values().copied().max().unwrap_or(0)
        })
        .max()
        .unwrap_or(0);
    assert!(
        widest > 128,
        "widest protocol lattice layer is {widest}, \
         below the 128-cut parallel fan-out threshold"
    );
}
