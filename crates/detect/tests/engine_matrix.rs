//! The differential engine matrix: every detection engine — BFS, DFS,
//! partial-order methods, slicing, hybrid, lean, and sharded parallel lean
//! — runs over the same seeded corpus and is checked against the
//! brute-force lattice oracle by
//! [`check_engine`](slicing_detect::testkit::check_engine). One `#[test]`
//! per engine is stamped out by `engine_matrix!`, so a regression in any
//! engine shows up as that engine's named row failing.

use slicing_computation::test_fixtures::{figure1, random_computation, RandomConfig};
use slicing_core::PredicateSpec;
use slicing_detect::testkit::Case;
use slicing_predicates::{Conjunctive, LocalPredicate};

/// A conjunctive spec `x@p == target(p)` over every process of a random
/// computation; mixing targets produces detectable and undetectable cases.
fn sum_style_spec(comp: &slicing_computation::Computation, target: i64) -> PredicateSpec {
    let locals: Vec<_> = comp
        .processes()
        .map(|p| {
            let x = comp.var(p, "x").unwrap();
            LocalPredicate::int(x, "x <= t", move |v| v <= target)
        })
        .collect();
    PredicateSpec::conjunctive(Conjunctive::new(locals))
}

/// The corpus the matrix runs: the paper's Figure 1 fixture (detectable
/// and undetectable variants, plus a disjunction), seeded narrow random
/// computations, and a wide one past the 16-process inline-cut boundary.
fn cases() -> Vec<Case> {
    let mut cases = Vec::new();

    // Figure 1 with thresholds on both sides of the reachable values.
    for threshold in [1i64, 99] {
        let comp = figure1();
        let x1 = comp.var(comp.process(0), "x1").unwrap();
        let x3 = comp.var(comp.process(2), "x3").unwrap();
        let spec = PredicateSpec::conjunctive(Conjunctive::new(vec![
            LocalPredicate::int(x1, "x1 > t", move |x| x > threshold),
            LocalPredicate::int(x3, "x3 <= 3", |x| x <= 3),
        ]));
        cases.push(Case::new(format!("figure1 t{threshold}"), comp, spec));
    }

    // A disjunction: exercises the or-grafted slice in the slicing engine.
    let comp = figure1();
    let x1 = comp.var(comp.process(0), "x1").unwrap();
    let x2 = comp.var(comp.process(1), "x2").unwrap();
    let spec = PredicateSpec::or(vec![
        PredicateSpec::conjunctive(Conjunctive::new(vec![LocalPredicate::int(
            x1,
            "x1 == 0",
            |x| x == 0,
        )])),
        PredicateSpec::conjunctive(Conjunctive::new(vec![LocalPredicate::int(
            x2,
            "x2 >= 3",
            |x| x >= 3,
        )])),
    ]);
    cases.push(Case::new("figure1 or", comp, spec));

    // Narrow random computations: messages, several events per process.
    let narrow = RandomConfig {
        processes: 3,
        events_per_process: 3,
        value_range: 3,
        ..RandomConfig::default()
    };
    for seed in [2u64, 7, 19, 23, 42] {
        let comp = random_computation(seed, &narrow);
        // target 0 is often undetectable, 2 almost always detectable.
        let target = (seed % 3) as i64;
        let spec = sum_style_spec(&comp, target);
        cases.push(Case::new(
            format!("narrow seed {seed} t{target}"),
            comp,
            spec,
        ));
    }

    // Deep with sparse messaging: middle layers exceed the parallel
    // engine's fan-out threshold (128 frontier cuts), so the graded
    // packed mode — not just the sequential replica — faces the oracle.
    let deep = RandomConfig {
        processes: 4,
        events_per_process: 6,
        send_percent: 15,
        recv_percent: 15,
        value_range: 4,
    };
    for seed in [3u64, 31] {
        let comp = random_computation(seed, &deep);
        let spec = sum_style_spec(&comp, (seed % 4) as i64);
        cases.push(Case::new(format!("deep seed {seed}"), comp, spec));
    }

    // Wide and shallow: crosses the 16-process inline→spill boundary, so
    // every engine's cut storage takes the spilled path.
    let wide = RandomConfig {
        processes: 17,
        events_per_process: 1,
        send_percent: 70,
        recv_percent: 70,
        value_range: 2,
    };
    for seed in [5u64, 11] {
        let comp = random_computation(seed, &wide);
        let spec = sum_style_spec(&comp, (seed % 2) as i64);
        cases.push(Case::new(format!("wide seed {seed}"), comp, spec));
    }

    cases
}

mod matrix {
    slicing_detect::engine_matrix!(super::cases);
}

/// Guard: the corpus itself stays non-trivial — both verdicts represented.
#[test]
fn corpus_has_both_verdicts() {
    use slicing_computation::oracle::satisfying_cuts;
    let cases = cases();
    assert!(cases.len() >= 10, "corpus shrank to {}", cases.len());
    let verdicts: Vec<bool> = cases
        .iter()
        .map(|c| !satisfying_cuts(&c.comp, |st| c.spec.eval(st)).is_empty())
        .collect();
    assert!(verdicts.iter().any(|&v| v), "no detectable case left");
    assert!(verdicts.iter().any(|&v| !v), "no undetectable case left");
}
