//! Differential property test: the incremental monitor's alarms equal the
//! offline slice-and-search verdict at every prefix of random observation
//! scripts — including randomized message interleavings and out-of-order
//! (late) deliveries.

use proptest::prelude::*;

use slicing_computation::{Cut, EventId, Value};
use slicing_detect::{GcConfig, OnlineMonitor};

/// One scripted action: which process steps, the value it writes, and
/// whether it offers/accepts a message.
#[derive(Debug, Clone)]
struct Step {
    process: usize,
    value: i64,
    send: bool,
    recv: bool,
}

#[allow(clippy::type_complexity)]
fn scripts() -> impl Strategy<Value = (usize, Vec<Step>, i64, Vec<(usize, usize)>)> {
    (2usize..=4).prop_flat_map(|n| {
        let steps = prop::collection::vec(
            (0..n, -1i64..=2, any::<bool>(), any::<bool>()).prop_map(
                |(process, value, send, recv)| Step {
                    process,
                    value,
                    send,
                    recv,
                },
            ),
            0..14,
        );
        // Late deliveries between arbitrary earlier events, attempted at
        // the end of the script with checks in between.
        let late = prop::collection::vec((0usize..14, 0usize..14), 0..4);
        (Just(n), steps, 0i64..=2, late)
    })
}

/// One differential step: the monitor's (deduplicated) alarm against the
/// offline reference. A fresh alarm must equal the offline least cut; no
/// alarm means the offline verdict is unchanged from the last report.
fn assert_agrees(m: &mut OnlineMonitor, last: &mut Option<Cut>, ctx: &str) {
    let offline = m.check_offline().expect("acyclic history").found;
    let online = m.check().expect("check never fails");
    match online {
        Some(cut) => {
            assert_eq!(Some(&cut), offline.as_ref(), "{ctx}: fresh alarm diverged");
            *last = Some(cut);
        }
        None => {
            // No fresh alarm is right in exactly two situations: the
            // offline verdict is unchanged from the last report, or a late
            // message retracted it entirely (message additions remove
            // consistent cuts, so `possibly` is not monotone under them).
            // A *different* satisfying cut, however, must be reported.
            assert!(
                offline.is_none() || offline.as_ref() == last.as_ref(),
                "{ctx}: offline verdict moved to {offline:?} without a fresh alarm"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn monitor_matches_offline_at_every_prefix((n, script, threshold, late) in scripts()) {
        let mut m = OnlineMonitor::new(n);
        let vars: Vec<_> = (0..n)
            .map(|i| m.declare_var(i, "x", Value::Int(0)).expect("fresh var"))
            .collect();
        for &v in &vars {
            let t = threshold;
            m.watch_int(v, format!("x >= {t}"), move |x| x >= t)
                .expect("watch before events");
        }

        let mut last: Option<Cut> = None;
        let mut events: Vec<EventId> = Vec::new();
        let mut pending_send: Option<(EventId, usize)> = None;
        for (i, step) in script.iter().enumerate() {
            let e = m
                .observe(step.process, &[(vars[step.process], Value::Int(step.value))])
                .expect("observe succeeds");
            events.push(e);
            match pending_send {
                Some((send, from)) if step.recv && from != step.process => {
                    m.message(send, e).expect("forward message");
                    pending_send = None;
                }
                None if step.send => pending_send = Some((e, step.process)),
                _ => {}
            }
            assert_agrees(&mut m, &mut last, &format!("prefix {i}"));
        }
        // Late deliveries: each accepted message re-times history; the
        // monitor must still agree with the offline reference afterwards
        // (and rejected ones must leave the history untouched).
        for (i, &(a, b)) in late.iter().enumerate() {
            if a < events.len() && b < events.len() && a != b {
                let _ = m.message(events[a], events[b]);
                assert_agrees(&mut m, &mut last, &format!("late message {i}"));
            }
        }
    }

    /// Stability GC is invisible: at every prefix of longer scripts with
    /// bounded-lateness messages and acknowledged alarms, a GC'd monitor
    /// reports exactly the verdicts (and costs) of an un-GC'd one, while
    /// actually compacting. Lateness is bounded below the lag, matching
    /// the GC contract that candidates and message targets stay
    /// addressable until eliminated.
    #[test]
    fn gc_never_changes_observable_behavior(
        (n, script, threshold) in (2usize..=3).prop_flat_map(|n| {
            let steps = prop::collection::vec(
                (0..n, -1i64..=2, any::<bool>(), any::<bool>()).prop_map(
                    |(process, value, send, recv)| Step { process, value, send, recv },
                ),
                40..120,
            );
            (Just(n), steps, 0i64..=2)
        }),
        lag in 5u32..=8,
        every in 2u64..=8,
    ) {
        let mut plain = OnlineMonitor::new(n);
        let mut gcm = OnlineMonitor::new(n).with_gc(GcConfig { lag, every });
        for m in [&mut plain, &mut gcm] {
            for i in 0..n {
                let v = m.declare_var(i, "x", Value::Int(0)).expect("fresh var");
                let t = threshold;
                m.watch_int(v, format!("x >= {t}"), move |x| x >= t)
                    .expect("watch before events");
            }
        }

        // EventIds are deterministic in the observation stream, so both
        // monitors assign identical handles.
        let mut events: Vec<EventId> = Vec::new();
        let mut pending: Option<(usize, usize, u32)> = None;
        for (i, step) in script.iter().enumerate() {
            let e = plain
                .observe(step.process, &[(plain.var(step.process, "x").unwrap(), Value::Int(step.value))])
                .expect("observe succeeds");
            let eg = gcm
                .observe(step.process, &[(gcm.var(step.process, "x").unwrap(), Value::Int(step.value))])
                .expect("observe succeeds");
            prop_assert_eq!(e, eg);
            events.push(e);
            pending = match pending {
                Some((idx, from, _)) if step.recv && from != step.process => {
                    plain.message(events[idx], e).expect("bounded-lateness message");
                    gcm.message(events[idx], e).expect("bounded-lateness message");
                    None
                }
                // Expire held sends before they age past the lag bound.
                Some((_, _, age)) if age >= 3 => None,
                Some((idx, from, age)) => Some((idx, from, age + 1)),
                None if step.send => Some((events.len() - 1, step.process, 0)),
                None => None,
            };
            let vp = plain.check().expect("check never fails");
            let vg = gcm.check().expect("check never fails");
            prop_assert_eq!(&vp, &vg, "prefix {}: GC changed the verdict", i);
            if vp.is_some() {
                prop_assert!(plain.acknowledge_alarm());
                prop_assert!(gcm.acknowledge_alarm());
            }
        }
        let (p, g) = (plain.stats(), gcm.stats());
        prop_assert_eq!(p.alarms, g.alarms);
        prop_assert_eq!(p.checks, g.checks);
        prop_assert_eq!(p.check_cost, g.check_cost, "GC changed settle work");
        prop_assert_eq!(p.delta_cuts, g.delta_cuts);
        prop_assert!(gcm.retained_events() <= plain.retained_events());
    }
}
