//! Differential lockdown for the predicate-multiplexing hub: N tenants on
//! one [`MonitorHub`] must be observationally identical to N independent
//! [`OnlineMonitor`]s fed the same stream — same alarms at the same
//! points, same least-cut witnesses — while doing strictly less total
//! work. Plus the degradation contract: a laggard subscriber loses
//! alarms, never the ingestion path.

use std::sync::Arc;

use slicing_computation::{Cut, Value, VarRef};
use slicing_detect::{MonitorHub, OnlineMonitor};
use slicing_observe::{Level, MemoryRecorder};
use slicing_predicates::{Conjunctive, LocalPredicate};

/// Deterministic generator, same recurrence the inline equivalence tests
/// use, so failures reproduce bit-for-bit.
struct XorShift(u64);
impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const PROCS: usize = 6;

/// The clause pool: one threshold clause per (process, parity) pair.
/// Tenants draw pairs of clauses from here, so distinct tenants overlap
/// heavily — the regime the hub is built for.
fn clause_pool(vars: &[VarRef]) -> Vec<(String, LocalPredicate)> {
    let mut pool = Vec::new();
    for (p, &v) in vars.iter().enumerate() {
        pool.push((
            format!("x@{p} > 3"),
            LocalPredicate::int(v, format!("x@{p} > 3"), |x| x > 3),
        ));
        pool.push((
            format!("x@{p} == 0"),
            LocalPredicate::int(v, format!("x@{p} == 0"), |x| x == 0),
        ));
    }
    pool
}

/// Tenant `i` watches clauses `i % pool` and `(i * 5 + 3) % pool` (distinct
/// processes forced by construction below).
fn tenant_clauses(i: usize, pool_len: usize) -> (usize, usize) {
    let a = i % pool_len;
    let mut b = (i * 5 + 3) % pool_len;
    // A conjunctive predicate may not read two clauses of the same
    // process slot here — keep the pair on distinct processes so the
    // group key has width 2.
    while b / 2 == a / 2 {
        b = (b + 2) % pool_len;
    }
    (a, b)
}

/// One recorded step of the shared stream.
enum Step {
    Event { process: usize, value: i64 },
    Msg { from: usize, to: usize },
}

/// The shared deterministic stream: events on random processes, a
/// cross-process message every few steps (index pairs into the event
/// log), so GC frontiers and causal joins are exercised.
fn build_stream(seed: u64, steps: usize) -> Vec<Step> {
    let mut rng = XorShift(seed);
    let mut stream = Vec::with_capacity(steps);
    let mut event_procs: Vec<usize> = Vec::new();
    for s in 0..steps {
        let process = rng.below(PROCS as u64) as usize;
        stream.push(Step::Event {
            process,
            value: rng.below(6) as i64,
        });
        event_procs.push(process);
        if s % 4 == 3 && event_procs.len() > 1 {
            let to = event_procs.len() - 1;
            let from = rng.below(to as u64) as usize;
            // A message must cross processes; skip same-process draws
            // rather than redrawing so the stream stays a pure function
            // of the seed.
            if event_procs[from] != event_procs[to] {
                stream.push(Step::Msg { from, to });
            }
        }
    }
    stream
}

struct HubRun {
    alarms: Vec<Vec<(u64, Cut)>>,
    check_cost_by_tenant: Vec<u64>,
    events: u64,
    clause_evals: u64,
    total_check_cost: u64,
}

fn run_hub(tenants: usize, stream: &[Step]) -> HubRun {
    let mut hub = MonitorHub::new(PROCS);
    let vars: Vec<VarRef> = (0..PROCS)
        .map(|p| hub.declare_var(p, "x", Value::Int(0)).unwrap())
        .collect();
    let pool = clause_pool(&vars);
    for i in 0..tenants {
        let (a, b) = tenant_clauses(i, pool.len());
        let pred = Conjunctive::new(vec![pool[a].1.clone(), pool[b].1.clone()]);
        let source = format!("{} && {}", pool[a].0, pool[b].0);
        hub.add_tenant(&format!("t{i}"), &pred, &source).unwrap();
    }
    let registration_evals = hub.stats().clause_evals;
    let mut alarms = vec![Vec::new(); tenants];
    let mut event_ids = Vec::new();
    for step in stream {
        match step {
            Step::Event { process, value } => {
                let e = hub
                    .observe(*process, &[(vars[*process], Value::Int(*value))])
                    .unwrap();
                event_ids.push(e);
            }
            Step::Msg { from, to } => {
                hub.message(event_ids[*from], event_ids[*to]).unwrap();
            }
        }
        for report in hub.check_all() {
            for id in &report.tenants {
                let i: usize = id[1..].parse().unwrap();
                alarms[i].push((report.alarm.events, report.alarm.cut.clone()));
            }
        }
    }
    let check_cost_by_tenant = (0..tenants)
        .map(|i| {
            let g = hub.group_of(&format!("t{i}")).unwrap();
            hub.group_check_cost(g).unwrap()
        })
        .collect();
    let stats = hub.stats();
    HubRun {
        alarms,
        check_cost_by_tenant,
        events: stats.events,
        clause_evals: stats.clause_evals - registration_evals,
        total_check_cost: stats.check_cost,
    }
}

struct MonitorRun {
    alarms: Vec<(u64, Cut)>,
    events: u64,
    check_cost: u64,
}

fn run_monitor(tenant: usize, stream: &[Step]) -> MonitorRun {
    let mut m = OnlineMonitor::new(PROCS);
    let vars: Vec<VarRef> = (0..PROCS)
        .map(|p| m.declare_var(p, "x", Value::Int(0)).unwrap())
        .collect();
    let pool = clause_pool(&vars);
    let (a, b) = tenant_clauses(tenant, pool.len());
    m.watch_clause(pool[a].1.clone()).unwrap();
    m.watch_clause(pool[b].1.clone()).unwrap();
    let mut alarms = Vec::new();
    let mut event_ids = Vec::new();
    let mut events = 0u64;
    for step in stream {
        match step {
            Step::Event { process, value } => {
                let e = m
                    .observe(*process, &[(vars[*process], Value::Int(*value))])
                    .unwrap();
                event_ids.push(e);
                events += 1;
            }
            Step::Msg { from, to } => {
                m.message(event_ids[*from], event_ids[*to]).unwrap();
            }
        }
        if let Some(cut) = m.check().unwrap() {
            alarms.push((events, cut));
        }
    }
    let stats = m.stats();
    MonitorRun {
        alarms,
        events: stats.events,
        check_cost: stats.check_cost,
    }
}

/// The tentpole differential: 24 tenants multiplexed on one hub report
/// exactly the alarms (count, position, and least-cut witness) that 24
/// independent monitors report, and per-group settle work matches the
/// standalone monitor probe-for-probe.
#[test]
fn hub_matches_independent_monitors_alarm_for_alarm() {
    const TENANTS: usize = 24;
    let stream = build_stream(0x5eed_cafe, 400);
    let hub = run_hub(TENANTS, &stream);
    for i in 0..TENANTS {
        let solo = run_monitor(i, &stream);
        assert_eq!(
            hub.alarms[i], solo.alarms,
            "tenant t{i}: hub and standalone monitor disagree"
        );
        assert_eq!(
            hub.check_cost_by_tenant[i], solo.check_cost,
            "tenant t{i}: group settle work diverged from the standalone monitor"
        );
    }
}

/// The sharing claim, as a strict inequality on deterministic counters:
/// the hub's total work (one shared event ingest + one eval per distinct
/// clause + per-group settles) is strictly below the sum the same tenants
/// cost as independent monitors (N ingests + N× clause evals + N settles).
#[test]
fn multiplexed_work_is_strictly_below_the_independent_sum() {
    const TENANTS: usize = 24;
    let stream = build_stream(0x5eed_cafe, 400);
    let hub = run_hub(TENANTS, &stream);
    let mut independent_total = 0u64;
    let mut shared_settles = 0u64;
    for i in 0..TENANTS {
        let solo = run_monitor(i, &stream);
        // A standalone monitor pays its event ingest (with one clause
        // evaluation per watched clause folded into it) plus its settle
        // probes.
        independent_total += solo.events + 2 * solo.events / (PROCS as u64) + solo.check_cost;
        shared_settles += solo.check_cost;
    }
    // Distinct groups < tenants (the pool is smaller than the roster), so
    // the hub settles each shared group once where independent monitors
    // settle it once per tenant.
    let hub_total = hub.events + hub.clause_evals + hub.total_check_cost;
    assert!(
        hub.total_check_cost < shared_settles,
        "shared settles not deduplicated: hub {} vs independent {}",
        hub.total_check_cost,
        shared_settles
    );
    assert!(
        hub_total < independent_total,
        "multiplexing cost {hub_total} is not below the independent sum {independent_total}"
    );
}

/// The degradation contract: a subscriber that never drains its bounded
/// channel loses alarms past the channel capacity — counted, not
/// blocking — while a healthy subscriber on the same group keeps
/// receiving, and ingestion completes regardless.
#[test]
fn laggard_subscribers_drop_alarms_without_blocking_ingestion() {
    let rec = Arc::new(MemoryRecorder::new(Level::Trace));
    let _guard = slicing_observe::scoped(rec.clone());

    let mut hub = MonitorHub::new(2);
    let a = hub.declare_var(0, "x", Value::Int(0)).unwrap();
    let b = hub.declare_var(1, "x", Value::Int(0)).unwrap();
    let pred = Conjunctive::new(vec![
        LocalPredicate::int(a, "x@0 > 0", |v| v > 0),
        LocalPredicate::int(b, "x@1 > 0", |v| v > 0),
    ]);
    hub.add_tenant("laggard", &pred, "p").unwrap();
    hub.add_tenant("healthy", &pred, "p").unwrap();
    let laggard_rx = hub.subscribe("laggard", 2).unwrap();
    let healthy_rx = hub.subscribe("healthy", 64).unwrap();

    // Each round raises both processes then resets them, and the hub is
    // acknowledged, so every round settles a fresh distinct alarm.
    const ROUNDS: u64 = 10;
    for _ in 0..ROUNDS {
        hub.observe(0, &[(a, Value::Int(1))]).unwrap();
        hub.observe(1, &[(b, Value::Int(1))]).unwrap();
        let reports = hub.check_all();
        assert_eq!(reports.len(), 1, "each round must alarm");
        let group = reports[0].group;
        hub.acknowledge(group);
        hub.observe(0, &[(a, Value::Int(0))]).unwrap();
        hub.observe(1, &[(b, Value::Int(0))]).unwrap();
        hub.check_all();
    }

    // Ingestion finished — every event got in regardless of the laggard.
    assert_eq!(hub.stats().events, ROUNDS * 4);
    // The healthy subscriber saw every alarm; the laggard only holds its
    // channel capacity.
    assert_eq!(healthy_rx.try_iter().count() as u64, ROUNDS);
    assert_eq!(laggard_rx.try_iter().count(), 2);
    let dropped = ROUNDS - 2;
    assert_eq!(hub.stats().fanout_dropped, dropped);
    assert_eq!(hub.stats().fanout_sent, ROUNDS + 2);
    // The degradation is observable: `serve.tenants.dropped` counts every
    // alarm shed to a full channel.
    assert_eq!(rec.counter_total("serve.tenants.dropped"), dropped);
}

/// Dead subscribers (receiver dropped) are pruned instead of counted as
/// laggards: fan-out neither blocks nor inflates the drop counter.
#[test]
fn disconnected_subscribers_are_pruned_silently() {
    let rec = Arc::new(MemoryRecorder::new(Level::Trace));
    let _guard = slicing_observe::scoped(rec.clone());

    let mut hub = MonitorHub::new(2);
    let a = hub.declare_var(0, "x", Value::Int(0)).unwrap();
    let b = hub.declare_var(1, "x", Value::Int(0)).unwrap();
    let pred = Conjunctive::new(vec![
        LocalPredicate::int(a, "x@0 > 0", |v| v > 0),
        LocalPredicate::int(b, "x@1 > 0", |v| v > 0),
    ]);
    hub.add_tenant("ghost", &pred, "p").unwrap();
    drop(hub.subscribe("ghost", 1).unwrap());

    hub.observe(0, &[(a, Value::Int(1))]).unwrap();
    hub.observe(1, &[(b, Value::Int(1))]).unwrap();
    assert_eq!(hub.check_all().len(), 1);
    assert_eq!(hub.stats().fanout_dropped, 0);
    assert_eq!(rec.counter_total("serve.tenants.dropped"), 0);
}
