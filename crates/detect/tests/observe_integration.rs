//! End-to-end checks that every detection engine emits a well-formed
//! trace: balanced span enter/exit pairs, the engine's root span, and a
//! `detect.cuts_explored` counter stream whose total matches the
//! [`Detection`](slicing_detect::Detection) the engine returned.

use std::sync::Arc;

use slicing_computation::test_fixtures::figure1;
use slicing_core::PredicateSpec;
use slicing_detect::{
    detect_bfs, detect_dfs, detect_hybrid, detect_pom, detect_reverse_search, detect_with_slicing,
    Limits,
};
use slicing_observe::{Level, MemoryRecorder};
use slicing_predicates::{expr::parse_predicate, Conjunctive, LocalPredicate};

fn figure1_spec(comp: &slicing_computation::Computation) -> PredicateSpec {
    let x1 = comp.var(comp.process(0), "x1").unwrap();
    let x3 = comp.var(comp.process(2), "x3").unwrap();
    PredicateSpec::conjunctive(Conjunctive::new(vec![
        LocalPredicate::int(x1, "x1 > 1", |x| x > 1),
        LocalPredicate::int(x3, "x3 <= 3", |x| x <= 3),
    ]))
}

/// Runs `engine` under a fresh scoped [`MemoryRecorder`] and verifies the
/// emitted stream against the cut total the engine itself reported.
fn check_engine(name: &str, root_span: &str, engine: impl FnOnce() -> u64) {
    let rec = Arc::new(MemoryRecorder::new(Level::Trace));
    let cuts = {
        let _guard = slicing_observe::scoped(rec.clone());
        engine()
    };
    assert!(rec.spans_balanced(), "{name}: unbalanced spans");
    let spans = rec.span_counts();
    let (enters, exits) = spans
        .get(root_span)
        .unwrap_or_else(|| panic!("{name}: no {root_span} span in {spans:?}"));
    assert_eq!(enters, exits, "{name}: {root_span} enter/exit mismatch");
    assert!(*enters >= 1, "{name}: {root_span} never entered");
    assert_eq!(
        rec.counter_total("detect.cuts_explored"),
        cuts,
        "{name}: counter stream disagrees with the returned Detection"
    );
}

#[test]
fn bfs_stream_matches_detection() {
    let comp = figure1();
    let pred = parse_predicate(&comp, "x1@0 > 1 && x3@2 <= 3").unwrap();
    check_engine("bfs", "detect.bfs", || {
        detect_bfs(&comp, &comp, &pred, &Limits::none()).cuts_explored
    });
}

#[test]
fn dfs_stream_matches_detection() {
    let comp = figure1();
    let pred = parse_predicate(&comp, "x1@0 > 1 && x3@2 <= 3").unwrap();
    check_engine("dfs", "detect.dfs", || {
        detect_dfs(&comp, &comp, &pred, &Limits::none()).cuts_explored
    });
}

#[test]
fn reverse_search_stream_matches_detection() {
    let comp = figure1();
    let pred = parse_predicate(&comp, "x1@0 > 99").unwrap();
    check_engine("reverse", "detect.reverse", || {
        detect_reverse_search(&comp, &pred, &Limits::none()).cuts_explored
    });
}

#[test]
fn pom_stream_matches_detection() {
    let comp = figure1();
    let pred = parse_predicate(&comp, "x1@0 > 1 && x3@2 <= 3").unwrap();
    check_engine("pom", "detect.pom", || {
        detect_pom(&comp, &pred, &Limits::none()).cuts_explored
    });
}

#[test]
fn slicing_stream_matches_detection() {
    let comp = figure1();
    let spec = figure1_spec(&comp);
    check_engine("slice", "detect.slice_then_search", || {
        detect_with_slicing(&comp, &spec, &Limits::none())
            .search
            .cuts_explored
    });
}

#[test]
fn hybrid_stream_matches_detection() {
    let comp = figure1();
    let spec = figure1_spec(&comp);
    check_engine("hybrid", "detect.hybrid", || {
        let h = detect_hybrid(&comp, &spec, 1 << 20, &Limits::none());
        h.pom.cuts_explored
            + h.slicing
                .as_ref()
                .map(|s| s.search.cuts_explored)
                .unwrap_or(0)
    });
}

#[test]
fn slicing_run_nests_phase_spans_under_the_root() {
    let comp = figure1();
    let spec = figure1_spec(&comp);
    let rec = Arc::new(MemoryRecorder::new(Level::Trace));
    {
        let _guard = slicing_observe::scoped(rec.clone());
        let _ = detect_with_slicing(&comp, &spec, &Limits::none());
    }
    let spans = rec.span_counts();
    for expected in ["detect.slice_phase", "detect.search_phase", "slice.j_table"] {
        assert!(
            spans.contains_key(expected),
            "missing {expected}: {spans:?}"
        );
    }
}

#[test]
fn disabled_recorder_sees_nothing() {
    // No recorder installed: the engines still work and no events leak
    // into a recorder scoped to a *different* level than they need.
    let comp = figure1();
    let pred = parse_predicate(&comp, "x1@0 > 1 && x3@2 <= 3").unwrap();
    let rec = Arc::new(MemoryRecorder::new(Level::Off));
    {
        let _guard = slicing_observe::scoped(rec.clone());
        let d = detect_bfs(&comp, &comp, &pred, &Limits::none());
        assert!(d.detected());
    }
    assert!(
        rec.events().is_empty(),
        "Off-level recorder received events"
    );
}
