//! Property tests for the partial-order-methods engine: its verdict must
//! match full enumeration on arbitrary computations and predicate shapes —
//! selective search may prune interleavings but never detections.

use proptest::prelude::*;

use slicing_computation::test_fixtures::{random_computation, RandomConfig};
use slicing_computation::{Computation, GlobalState, ProcSet};
use slicing_detect::{detect_bfs, detect_pom, detect_reverse_search, Limits};
use slicing_predicates::{FnPredicate, Predicate};

fn computations() -> impl Strategy<Value = Computation> {
    (any::<u64>(), 2usize..=5, 1u32..=4, 0u64..=80).prop_map(|(seed, n, m, msg)| {
        let cfg = RandomConfig {
            processes: n,
            events_per_process: m,
            send_percent: msg,
            recv_percent: msg,
            value_range: 3,
        };
        random_computation(seed, &cfg)
    })
}

/// Predicate shapes with varying support width and rarity.
#[derive(Debug, Clone, Copy)]
enum Shape {
    SumEquals(i64),
    PairProduct(i64),
    AllAtLeast(i64),
    TransitNonEmpty,
}

fn shapes() -> impl Strategy<Value = Shape> {
    prop_oneof![
        (0i64..8).prop_map(Shape::SumEquals),
        (0i64..5).prop_map(Shape::PairProduct),
        (0i64..3).prop_map(Shape::AllAtLeast),
        Just(Shape::TransitNonEmpty),
    ]
}

fn build(shape: Shape, comp: &Computation) -> FnPredicate {
    let n = comp.num_processes();
    let vars: Vec<_> = comp
        .processes()
        .map(|p| comp.var(p, "x").unwrap())
        .collect();
    match shape {
        Shape::SumEquals(t) => FnPredicate::new(ProcSet::all(n), "sum == t", move |st| {
            vars.iter().map(|&v| st.get(v).expect_int()).sum::<i64>() == t
        }),
        Shape::PairProduct(t) => {
            let a = vars[0];
            let b = vars[n - 1];
            let mut support = ProcSet::singleton(a.process());
            support.insert(b.process());
            FnPredicate::new(support, "x0 * xl == t", move |st| {
                st.get(a).expect_int() * st.get(b).expect_int() == t
            })
        }
        Shape::AllAtLeast(t) => FnPredicate::new(ProcSet::all(n), "all >= t", move |st| {
            vars.iter().all(|&v| st.get(v).expect_int() >= t)
        }),
        Shape::TransitNonEmpty => FnPredicate::new(ProcSet::all(n), "transit > 0", move |st| {
            let comp = st.computation();
            comp.processes()
                .any(|p| comp.processes().any(|q| p != q && st.in_transit(p, q) > 0))
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn pom_matches_bfs_verdict(comp in computations(), shape in shapes()) {
        let pred = build(shape, &comp);
        let limits = Limits::none();
        let bfs = detect_bfs(&comp, &comp, &pred, &limits);
        let pom = detect_pom(&comp, &pred, &limits);
        prop_assert_eq!(pom.detected(), bfs.detected(), "{:?}", shape);
        // Witnesses, when produced, genuinely satisfy the predicate.
        if let Some(cut) = &pom.found {
            prop_assert!(pred.eval(&GlobalState::new(&comp, cut)));
        }
        // Selectivity: never more cuts than the full lattice sweep.
        if !bfs.detected() {
            prop_assert!(pom.cuts_explored <= bfs.cuts_explored);
        }
    }

    #[test]
    fn reverse_search_matches_bfs_verdict(comp in computations(), shape in shapes()) {
        let pred = build(shape, &comp);
        let limits = Limits::none();
        let bfs = detect_bfs(&comp, &comp, &pred, &limits);
        let rev = detect_reverse_search(&comp, &pred, &limits);
        prop_assert_eq!(rev.detected(), bfs.detected(), "{:?}", shape);
        if !bfs.detected() {
            // Both exhaust the lattice; reverse search must count the same
            // number of cuts despite storing none of them.
            prop_assert_eq!(rev.cuts_explored, bfs.cuts_explored);
        }
    }
}
