//! Differential property tests for the lean (bounded-memory) traversal:
//! on arbitrary computations — including ones crossing the 16-process
//! inline→spill boundary — `detect_lean` and the sharded
//! `detect_lean_parallel` must return the *identical* verdict, the
//! *identical* earliest witness cut, and the identical explored count as
//! the global-visited-set `detect_bfs`, all while agreeing with the
//! brute-force lattice oracle.

use proptest::prelude::*;

use slicing_computation::oracle::satisfying_cuts;
use slicing_computation::test_fixtures::{random_computation, RandomConfig};
use slicing_computation::{Computation, Cut, GlobalState, ProcSet};
use slicing_detect::{detect_bfs, detect_lean, detect_lean_parallel, Limits};
use slicing_predicates::{FnPredicate, Predicate};

/// Narrow-but-deep computations: few processes, several events each.
fn narrow() -> impl Strategy<Value = Computation> {
    (any::<u64>(), 1usize..=5, 1u32..=4, 0u64..=80).prop_map(|(seed, n, m, msg)| {
        let cfg = RandomConfig {
            processes: n,
            events_per_process: m,
            send_percent: msg,
            recv_percent: msg,
            value_range: 3,
        };
        random_computation(seed, &cfg)
    })
}

/// Wide-but-shallow computations that cross the 16-process inline-cut
/// boundary, so every layer set and scratch cut takes the spilled path.
fn wide() -> impl Strategy<Value = Computation> {
    (any::<u64>(), 15usize..=17).prop_map(|(seed, n)| {
        let cfg = RandomConfig {
            processes: n,
            events_per_process: 1,
            send_percent: 70,
            recv_percent: 70,
            value_range: 2,
        };
        random_computation(seed, &cfg)
    })
}

fn sum_equals(comp: &Computation, target: i64) -> FnPredicate {
    let n = comp.num_processes();
    let vars: Vec<_> = comp
        .processes()
        .map(|p| comp.var(p, "x").unwrap())
        .collect();
    FnPredicate::new(ProcSet::all(n), "sum == target", move |st| {
        vars.iter().map(|&v| st.get(v).expect_int()).sum::<i64>() == target
    })
}

/// The lean engines' contract: BFS equivalence down to the exact witness
/// and explored count, oracle-checked verdict, and a strictly smaller live
/// set whenever the lattice has more than a couple of layers.
fn check_lean(comp: &Computation, pred: &FnPredicate) {
    let limits = Limits::none();
    let expected = !satisfying_cuts(comp, |st| pred.eval(st)).is_empty();
    let bfs = detect_bfs(comp, comp, pred, &limits);
    let lean = detect_lean(comp, comp, pred, &limits);
    prop_assert_eq!(bfs.detected(), expected, "bfs vs oracle");
    prop_assert_eq!(lean.detected(), expected, "lean vs oracle");
    // Identical earliest witness, not just the same layer.
    prop_assert_eq!(&lean.found, &bfs.found, "lean witness");
    prop_assert_eq!(lean.cuts_explored, bfs.cuts_explored, "lean explored");
    prop_assert!(
        lean.max_stored_cuts <= bfs.max_stored_cuts,
        "lean live set exceeded BFS: {} > {}",
        lean.max_stored_cuts,
        bfs.max_stored_cuts
    );
    if let Some(cut) = &lean.found {
        prop_assert!(pred.eval(&GlobalState::new(comp, cut)));
        prop_assert!(comp.is_consistent(cut), "lean witness consistency");
    }
    for threads in [2, 4] {
        let par = detect_lean_parallel(comp, comp, pred, &limits, threads);
        prop_assert_eq!(&par.found, &bfs.found, "parallel lean witness t{}", threads);
        prop_assert_eq!(
            par.cuts_explored,
            bfs.cuts_explored,
            "parallel lean explored t{}",
            threads
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lean_matches_bfs_and_oracle_on_narrow_computations(
        comp in narrow(),
        target in 0i64..8,
    ) {
        let pred = sum_equals(&comp, target);
        check_lean(&comp, &pred);
    }

    #[test]
    fn lean_matches_bfs_and_oracle_past_the_inline_boundary(
        comp in wide(),
        target in 0i64..10,
    ) {
        // Spilled representation really is in play at these widths.
        let bottom = Cut::bottom(comp.num_processes());
        prop_assert_eq!(bottom.counts().len(), comp.num_processes());
        let pred = sum_equals(&comp, target);
        check_lean(&comp, &pred);
    }
}
