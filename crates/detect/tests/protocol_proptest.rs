//! Differential property tests over the scenario-zoo protocols: the
//! incremental monitor replaying seeded leader-election traces (with late
//! vote deliveries re-timed) must agree with the offline slice-and-search
//! verdict at every prefix, and the CRDT divergence predicates through the
//! slicing pipeline must agree with the brute-force lattice oracle.

use proptest::prelude::*;

use slicing_computation::oracle::satisfying_cuts;
use slicing_computation::{Computation, Cut, EventId, Value};
use slicing_core::PredicateSpec;
use slicing_detect::{detect_with_slicing, Limits, OnlineMonitor};
use slicing_predicates::KLocalPredicate;
use slicing_sim::crdt::CrdtReplication;
use slicing_sim::fault::inject_crdt_fault;
use slicing_sim::leader_election::LeaderElection;
use slicing_sim::{run, SimConfig};

/// The monitored variables of one leader-election process, in declaration
/// order.
const LE_VARS: [&str; 6] = ["term", "votedTerm", "isLeader", "leader", "log", "acked"];

fn le_trace(seed: u64, n: usize, events: u32) -> Computation {
    let cfg = SimConfig {
        seed,
        max_events_per_process: events,
        ..SimConfig::default()
    };
    run(&mut LeaderElection::new(n), &cfg).expect("protocol run builds")
}

/// One differential step: a fresh online alarm must equal the offline
/// least satisfying cut; silence means the offline verdict is unchanged
/// from the last report (or was retracted by a late message).
fn assert_agrees(m: &mut OnlineMonitor, last: &mut Option<Cut>, ctx: &str) {
    let offline = m.check_offline().expect("acyclic history").found;
    let online = m.check().expect("check never fails");
    match online {
        Some(cut) => {
            assert_eq!(Some(&cut), offline.as_ref(), "{ctx}: fresh alarm diverged");
            *last = Some(cut);
        }
        None => {
            assert!(
                offline.is_none() || offline.as_ref() == last.as_ref(),
                "{ctx}: offline verdict moved to {offline:?} without a fresh alarm"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Replays a seeded leader-election computation into the incremental
    /// monitor under a random interleaving; vote/heartbeat edges are
    /// delivered as they become available except for a random subset
    /// re-timed to arrive late, after the whole trace.
    #[test]
    fn leader_election_monitor_matches_offline_at_every_prefix(
        seed in 0u64..64,
        n in 3usize..=4,
        events in 3u32..=5,
        threshold in 0i64..=2,
        picks in prop::collection::vec(0usize..4, 64..65),
        late_mask in prop::collection::vec(any::<bool>(), 32..33),
    ) {
        let comp = le_trace(seed, n, events);
        let mut m = OnlineMonitor::new(n);
        // Declare every protocol variable with its initial value, then
        // watch "term >= t" on each process: the conjunction is a global
        // election-progress predicate that real traces sometimes reach.
        for p in comp.processes() {
            for name in LE_VARS {
                let v = comp.var(p, name).unwrap();
                m.declare_var(p.as_usize(), name, comp.value_at(v, 0))
                    .expect("fresh var");
            }
            let term = m.var(p.as_usize(), "term").unwrap();
            let t = threshold;
            m.watch_int(term, format!("term >= {t}"), move |x| x >= t)
                .expect("watch before events");
        }

        // Observe events under the scripted interleaving (intra-process
        // order preserved), recording the monitor's id for each position.
        let mut next_pos: Vec<u32> = comp.processes().map(|_| 1).collect();
        let mut ids: Vec<Vec<Option<EventId>>> = comp
            .processes()
            .map(|p| vec![None; comp.len(p) as usize])
            .collect();
        let mut last: Option<Cut> = None;
        let mut step = 0usize;
        let mut delivered = vec![false; comp.messages().len()];
        let mut deferred: Vec<usize> = Vec::new();
        loop {
            let remaining: Vec<usize> = (0..n)
                .filter(|&i| next_pos[i] < comp.len(comp.process(i)))
                .collect();
            let Some(&i) = remaining.get(picks[step % picks.len()] % remaining.len().max(1))
            else {
                break;
            };
            let p = comp.process(i);
            let pos = next_pos[i];
            next_pos[i] += 1;
            let writes: Vec<(slicing_computation::VarRef, Value)> = LE_VARS
                .iter()
                .map(|name| {
                    let mv = m.var(i, name).unwrap();
                    let cv = comp.var(p, name).unwrap();
                    (mv, comp.value_at(cv, pos))
                })
                .collect();
            let e = m.observe(i, &writes).expect("observe succeeds");
            ids[i][pos as usize] = Some(e);
            // Deliver newly-completed message edges, unless re-timed late.
            for (mi, msg) in comp.messages().iter().enumerate() {
                if delivered[mi] || deferred.contains(&mi) {
                    continue;
                }
                let (sp, spos) = (comp.process_of(msg.send), comp.position_of(msg.send));
                let (rp, rpos) = (comp.process_of(msg.recv), comp.position_of(msg.recv));
                let (Some(s), Some(r)) = (
                    ids[sp.as_usize()][spos as usize],
                    ids[rp.as_usize()][rpos as usize],
                ) else {
                    continue;
                };
                if late_mask[mi % late_mask.len()] {
                    deferred.push(mi);
                } else {
                    m.message(s, r).expect("edge from a real run");
                    delivered[mi] = true;
                }
            }
            assert_agrees(&mut m, &mut last, &format!("prefix {step}"));
            step += 1;
        }
        // The re-timed (late) deliveries: each one retimes history and the
        // monitor must still agree with the offline reference.
        for (k, mi) in deferred.into_iter().enumerate() {
            let msg = comp.messages()[mi];
            let (sp, spos) = (comp.process_of(msg.send), comp.position_of(msg.send));
            let (rp, rpos) = (comp.process_of(msg.recv), comp.position_of(msg.recv));
            let s = ids[sp.as_usize()][spos as usize].expect("send observed");
            let r = ids[rp.as_usize()][rpos as usize].expect("recv observed");
            m.message(s, r).expect("edge from a real run");
            assert_agrees(&mut m, &mut last, &format!("late message {k}"));
        }
    }

    /// The CRDT divergence predicate `∃ i<j: |sum_i − sum_j| > k` through
    /// the full slicing pipeline agrees with the brute-force lattice
    /// oracle on seeded replication runs — fault-free and corrupted.
    #[test]
    fn crdt_divergence_detection_matches_the_oracle(
        seed in 0u64..64,
        n in 2usize..=3,
        events in 4u32..=7,
        k in 0i64..=3,
        fault in (any::<bool>(), 0u64..16).prop_map(|(inject, s)| inject.then_some(s)),
    ) {
        let cfg = SimConfig {
            seed,
            max_events_per_process: events,
            ..SimConfig::default()
        };
        let mut comp = run(&mut CrdtReplication::new(n), &cfg).expect("run builds");
        if let Some(fseed) = fault {
            if let Some((faulty, _)) = inject_crdt_fault(&comp, fseed) {
                comp = faulty;
            }
        }
        let sums: Vec<_> = comp
            .processes()
            .map(|p| comp.var(p, "sum").unwrap())
            .collect();
        let mut clauses = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                clauses.push(PredicateSpec::klocal(KLocalPredicate::new(
                    vec![sums[i], sums[j]],
                    format!("|sum_{i} - sum_{j}| > {k}"),
                    move |vals| (vals[0].expect_int() - vals[1].expect_int()).abs() > k,
                )));
            }
        }
        let spec = PredicateSpec::or(clauses);
        let oracle = satisfying_cuts(&comp, |st| spec.eval(st));
        let s = detect_with_slicing(&comp, &spec, &Limits::none());
        prop_assert_eq!(
            s.detected(),
            !oracle.is_empty(),
            "slicing disagreed with the oracle (seed {}, k {})",
            seed,
            k
        );
        if let Some(found) = &s.search.found {
            prop_assert!(
                oracle.contains(found),
                "witness {:?} is not a satisfying cut",
                found
            );
        }
    }
}
