//! Zero-dependency structured tracing for the computation-slicing
//! workspace.
//!
//! The crate provides one small vocabulary — leveled [`Event`]s carrying
//! spans (monotonic enter/exit timing), monotonic counters, gauges,
//! histogram samples, and text messages — and a [`Recorder`] trait that
//! sinks implement. Four sinks ship with the crate:
//!
//! * [`NullRecorder`] — discards everything; equivalent to the default
//!   state where no recorder is installed at all.
//! * [`StderrLogger`] — human-readable leveled output on stderr,
//!   conventionally configured through the `SLICING_LOG` environment
//!   variable (see [`StderrLogger::from_env`]).
//! * [`JsonlWriter`] — one JSON object per event, for machine ingestion.
//! * [`MemoryRecorder`] — buffers events in memory for test assertions.
//!
//! # Dispatch model
//!
//! Instrumentation sites call the free functions [`span`], [`counter`],
//! [`gauge`], [`sample`], and [`message`]. Events reach two kinds of
//! recorders:
//!
//! * a single process-wide recorder installed with [`install`] (used by
//!   binaries), and
//! * a thread-local stack of scoped recorders pushed with [`scoped`]
//!   (used by tests, so that parallel test threads never observe each
//!   other's events).
//!
//! When no recorder is installed anywhere, every instrumentation call
//! reduces to one relaxed atomic load — hot loops in the slicers and
//! detectors pay effectively nothing for being instrumented. Spans are
//! emitted at [`Level::Debug`]; counters, gauges, and samples at
//! [`Level::Trace`]; messages at their explicit level.
//!
//! Threads spawned by instrumented code (for example the parallel BFS
//! detector) see the globally installed recorder but not the spawning
//! thread's scoped recorders, since the scope stack is thread-local.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

pub mod diff;
pub mod histogram;
pub mod json;
pub mod profile;
pub mod report;
pub mod schema;
pub mod sinks;
pub mod snapshot;

pub use histogram::Histogram;
pub use profile::{ProfileReport, ProfileSpan, Profiler};
pub use report::{RunReport, RunReportSet};
pub use sinks::{JsonlWriter, MemoryRecorder, OwnedEvent, StderrLogger};
pub use snapshot::MetricsSnapshotter;

/// Verbosity levels, ordered from silent to most verbose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Record nothing.
    Off,
    /// Unrecoverable problems.
    Error,
    /// Suspicious conditions worth flagging.
    Warn,
    /// High-level progress (engine start/finish, phase switches).
    Info,
    /// Spans: per-algorithm enter/exit with timing.
    Debug,
    /// Counters and gauges from hot loops.
    Trace,
}

impl Level {
    /// Parses a level name, case-insensitively. Unknown names are `None`.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(Level::Off),
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    /// The lowercase name of the level.
    pub fn name(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One instrumentation event, borrowed from the emission site.
///
/// Names are `&'static str` by convention (dotted paths such as
/// `"slice.j_table"` or `"detect.cuts_explored"`), which keeps emission
/// allocation-free; sinks that outlive the call copy what they need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event<'a> {
    /// A timed region began. `id` pairs this with its matching exit.
    SpanEnter {
        /// Dotted span name, e.g. `"slice.j_table"`.
        name: &'a str,
        /// Process-unique monotonic span id.
        id: u64,
    },
    /// A timed region ended after `nanos` nanoseconds of wall time.
    SpanExit {
        /// Dotted span name, matching the enter event.
        name: &'a str,
        /// The id issued by the matching [`Event::SpanEnter`].
        id: u64,
        /// Monotonic elapsed time inside the span, in nanoseconds.
        nanos: u64,
    },
    /// A monotonic counter increased by `delta`.
    Counter {
        /// Dotted counter name, e.g. `"detect.cuts_explored"`.
        name: &'a str,
        /// Non-negative increment.
        delta: u64,
    },
    /// An instantaneous measurement of some quantity.
    Gauge {
        /// Dotted gauge name, e.g. `"detect.bfs.frontier"`.
        name: &'a str,
        /// The sampled value.
        value: u64,
    },
    /// One observation destined for a distribution summary (histogram).
    ///
    /// Unlike a [`Event::Gauge`] — where only the latest value and the
    /// running maximum matter — every sample contributes to percentile
    /// figures, so sinks that summarize must bucket each one.
    Sample {
        /// Dotted sample name, e.g. `"monitor.check.cost"`.
        name: &'a str,
        /// The observed value.
        value: u64,
    },
    /// A human-readable message at an explicit level.
    Message {
        /// Severity of the message.
        level: Level,
        /// The rendered text.
        text: &'a str,
    },
}

impl Event<'_> {
    /// The level at which this event is emitted.
    pub fn level(&self) -> Level {
        match self {
            Event::SpanEnter { .. } | Event::SpanExit { .. } => Level::Debug,
            Event::Counter { .. } | Event::Gauge { .. } | Event::Sample { .. } => Level::Trace,
            Event::Message { level, .. } => *level,
        }
    }
}

/// A sink for instrumentation events.
///
/// Implementations must be cheap to call and internally synchronized:
/// `record` may be invoked from multiple threads at once.
///
/// # Event semantics (the cross-sink contract)
///
/// Every sink must interpret the event kinds identically, so that two
/// sinks fed the same event stream agree on derived values:
///
/// * **Counters** are monotonic: a sink's view of counter `n` is the sum
///   of every `delta` recorded for `n`. Sinks never reset or overwrite.
/// * **Gauges** are instantaneous: each [`Event::Gauge`] *replaces* the
///   previous reading of that name. A sink may additionally track the
///   running maximum (as [`MemoryRecorder::gauge_max`] does), but the
///   primary value of a gauge is always its most recent reading —
///   streaming sinks emit each reading in order, and a consumer that
///   keeps only the last line per name reconstructs exactly what
///   [`MemoryRecorder::gauge_last`] reports.
/// * **Samples** feed distributions: every [`Event::Sample`] value
///   contributes one observation to the named histogram; neither
///   replacement (gauge) nor summation (counter) semantics apply.
///
/// `tests/` in this crate pin the contract with a cross-sink
/// equivalence test (MemoryRecorder vs. a parsed-back JSONL stream).
pub trait Recorder: Send + Sync {
    /// The most verbose level this recorder wants. Events above it are
    /// filtered out before `record` is called.
    fn level(&self) -> Level;

    /// Consumes one event.
    fn record(&self, event: &Event<'_>);
}

/// A recorder that discards every event.
///
/// Installing it is equivalent to installing nothing; the type exists so
/// call sites can be explicit about "observability off".
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn level(&self) -> Level {
        Level::Off
    }

    fn record(&self, _event: &Event<'_>) {}
}

/// Count of installed recorders (global + all scoped, process-wide).
/// Zero means every instrumentation call early-outs after one load.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// The process-wide recorder, if any.
static GLOBAL: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);

/// Monotonic source of span ids.
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Scoped recorders visible only to the current thread.
    static SCOPED: RefCell<Vec<Arc<dyn Recorder>>> = const { RefCell::new(Vec::new()) };
}

/// Installs `recorder` as the process-wide sink, replacing any previous
/// one. Binaries call this once at startup.
pub fn install(recorder: Arc<dyn Recorder>) {
    let mut slot = GLOBAL.write().expect("recorder lock");
    if slot.replace(recorder).is_none() {
        ACTIVE.fetch_add(1, Ordering::SeqCst);
    }
}

/// Removes the process-wide recorder, if one is installed.
pub fn uninstall() {
    let mut slot = GLOBAL.write().expect("recorder lock");
    if slot.take().is_some() {
        ACTIVE.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Pushes a recorder visible only to the current thread for the lifetime
/// of the returned guard. Scopes nest; tests use this so parallel test
/// threads stay isolated.
#[must_use = "the recorder is removed when the guard drops"]
pub fn scoped(recorder: Arc<dyn Recorder>) -> ScopedRecorder {
    SCOPED.with(|s| s.borrow_mut().push(recorder));
    ACTIVE.fetch_add(1, Ordering::SeqCst);
    ScopedRecorder {
        _not_send: PhantomData,
    }
}

/// RAII guard for a [`scoped`] recorder; popping happens on drop.
#[derive(Debug)]
pub struct ScopedRecorder {
    // The guard must drop on the thread that pushed it.
    _not_send: PhantomData<*const ()>,
}

impl Drop for ScopedRecorder {
    fn drop(&mut self) {
        SCOPED.with(|s| s.borrow_mut().pop());
        ACTIVE.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Would an event at `level` reach any recorder right now?
///
/// The disabled path is a single relaxed atomic load; instrumentation in
/// hot loops should rely on this rather than pre-computing anything.
#[inline]
pub fn enabled(level: Level) -> bool {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return false;
    }
    enabled_slow(level)
}

#[cold]
fn enabled_slow(level: Level) -> bool {
    let scoped = SCOPED.with(|s| s.borrow().iter().any(|r| r.level() >= level));
    if scoped {
        return true;
    }
    GLOBAL
        .read()
        .expect("recorder lock")
        .as_ref()
        .is_some_and(|r| r.level() >= level)
}

/// Delivers `event` to every recorder whose level admits it.
fn dispatch(event: &Event<'_>) {
    let level = event.level();
    SCOPED.with(|s| {
        for r in s.borrow().iter() {
            if r.level() >= level {
                r.record(event);
            }
        }
    });
    if let Some(r) = GLOBAL.read().expect("recorder lock").as_ref() {
        if r.level() >= level {
            r.record(event);
        }
    }
}

/// Opens a timed span named `name` (a `&'static str` dotted path). The
/// span emits [`Event::SpanEnter`] now and [`Event::SpanExit`] with the
/// elapsed wall time when the returned guard drops. When no recorder
/// admits [`Level::Debug`], the guard is inert and no clock is read.
#[must_use = "the span closes (and reports its time) when the guard drops"]
pub fn span(name: &'static str) -> Span {
    if !enabled(Level::Debug) {
        return Span {
            name,
            id: 0,
            start: None,
        };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed) + 1;
    dispatch(&Event::SpanEnter { name, id });
    Span {
        name,
        id,
        start: Some(Instant::now()),
    }
}

/// An open span; see [`span`].
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    id: u64,
    start: Option<Instant>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            dispatch(&Event::SpanExit {
                name: self.name,
                id: self.id,
                nanos,
            });
        }
    }
}

/// Adds `delta` to the monotonic counter `name` ([`Level::Trace`]).
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if enabled(Level::Trace) {
        dispatch(&Event::Counter { name, delta });
    }
}

/// Samples gauge `name` at `value` ([`Level::Trace`]).
#[inline]
pub fn gauge(name: &'static str, value: u64) {
    if enabled(Level::Trace) {
        dispatch(&Event::Gauge { name, value });
    }
}

/// Records one observation of `name` for distribution summaries
/// ([`Level::Trace`]). Use for quantities whose percentiles matter
/// (per-event check cost, layer width, probe length); use [`gauge`] for
/// quantities where only the latest/maximum reading matters.
#[inline]
pub fn sample(name: &'static str, value: u64) {
    if enabled(Level::Trace) {
        dispatch(&Event::Sample { name, value });
    }
}

/// Emits a text message at `level`. The closure runs only when some
/// recorder admits the level, so formatting is free when disabled.
#[inline]
pub fn message<F: FnOnce() -> String>(level: Level, text: F) {
    if enabled(level) {
        let text = text();
        dispatch(&Event::Message { level, text: &text });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing_and_order() {
        assert_eq!(Level::parse("TRACE"), Some(Level::Trace));
        assert_eq!(Level::parse(" info "), Some(Level::Info));
        assert_eq!(Level::parse("bogus"), None);
        assert!(Level::Trace > Level::Debug);
        assert!(Level::Debug > Level::Info);
        assert!(Level::Error > Level::Off);
        assert_eq!(Level::Warn.to_string(), "warn");
    }

    #[test]
    fn disabled_by_default_on_fresh_threads() {
        std::thread::spawn(|| {
            // No scoped recorder on this thread; a global one may exist if
            // another test installed it, so only assert the scoped path.
            SCOPED.with(|s| assert!(s.borrow().is_empty()));
        })
        .join()
        .unwrap();
    }

    #[test]
    fn scoped_recorder_sees_events_and_pops_on_drop() {
        let mem = Arc::new(MemoryRecorder::new(Level::Trace));
        {
            let _guard = scoped(mem.clone());
            assert!(enabled(Level::Trace));
            {
                let _s = span("test.section");
                counter("test.count", 3);
                counter("test.count", 4);
                gauge("test.gauge", 9);
                message(Level::Info, || "hello".to_owned());
            }
        }
        // After the guard drops, emission stops.
        counter("test.count", 100);
        assert_eq!(mem.counter_total("test.count"), 7);
        assert_eq!(mem.events().len(), 6);
        assert!(mem.spans_balanced());
    }

    #[test]
    fn span_guard_is_inert_when_disabled() {
        let s = span("never.recorded");
        assert!(s.start.is_none(), "no clock read while disabled");
        drop(s);
    }

    #[test]
    fn recorder_level_filters_events() {
        let mem = Arc::new(MemoryRecorder::new(Level::Info));
        let _guard = scoped(mem.clone());
        counter("filtered.out", 1); // Trace > Info: dropped.
        let _ = span("filtered.span"); // Debug > Info: dropped.
        message(Level::Info, || "kept".to_owned());
        let events = mem.events();
        assert_eq!(events.len(), 1);
        assert!(matches!(&events[0], OwnedEvent::Message { text, .. } if text == "kept"));
    }

    #[test]
    fn nested_scopes_both_record() {
        let outer = Arc::new(MemoryRecorder::new(Level::Trace));
        let inner = Arc::new(MemoryRecorder::new(Level::Trace));
        let _g1 = scoped(outer.clone());
        {
            let _g2 = scoped(inner.clone());
            counter("both", 1);
        }
        counter("outer.only", 1);
        assert_eq!(outer.counter_total("both"), 1);
        assert_eq!(outer.counter_total("outer.only"), 1);
        assert_eq!(inner.counter_total("both"), 1);
        assert_eq!(inner.counter_total("outer.only"), 0);
    }

    #[test]
    fn null_recorder_discards() {
        let _guard = scoped(Arc::new(NullRecorder));
        // Level::Off admits nothing, so enabled() is false for every level.
        assert!(!enabled(Level::Error));
        counter("nowhere", 1);
    }

    #[test]
    fn message_closure_not_run_when_disabled() {
        // No recorder on this thread beyond possible global (tests in this
        // crate never install globally), so the closure must not run.
        message(Level::Trace, || panic!("formatted while disabled"));
    }
}
