//! The recorders shipped with the crate: stderr logging, JSONL streaming,
//! and in-memory buffering for tests. The null recorder lives in the
//! crate root next to the dispatch machinery.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::json::JsonObject;
use crate::{Event, Level, Recorder};

/// Environment variable read by [`StderrLogger::from_env`].
pub const LOG_ENV_VAR: &str = "SLICING_LOG";

/// A leveled human-readable logger on stderr.
///
/// Line shapes:
///
/// ```text
/// [debug] slice.j_table{3} enter
/// [debug] slice.j_table{3} exit 1.243ms
/// [trace] detect.cuts_explored +294
/// [trace] detect.bfs.frontier = 17
/// [trace] monitor.check.cost ~ 5
/// [info] engine bfs starting
/// ```
#[derive(Debug)]
pub struct StderrLogger {
    level: Level,
}

impl StderrLogger {
    /// A logger admitting events up to `level`.
    pub fn new(level: Level) -> Self {
        StderrLogger { level }
    }

    /// A logger configured from the `SLICING_LOG` environment variable.
    /// Returns `None` when the variable is unset, empty, `off`, or not a
    /// recognized level name — the caller then installs nothing and the
    /// zero-overhead fast path stays active.
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var(LOG_ENV_VAR).ok()?;
        match Level::parse(&raw) {
            Some(Level::Off) | None => None,
            Some(level) => Some(StderrLogger::new(level)),
        }
    }
}

/// Formats nanoseconds with a readable unit.
fn human_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.3}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3}µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

impl Recorder for StderrLogger {
    fn level(&self) -> Level {
        self.level
    }

    fn record(&self, event: &Event<'_>) {
        let line = match event {
            Event::SpanEnter { name, id } => format!("[debug] {name}{{{id}}} enter"),
            Event::SpanExit { name, id, nanos } => {
                format!("[debug] {name}{{{id}}} exit {}", human_nanos(*nanos))
            }
            Event::Counter { name, delta } => format!("[trace] {name} +{delta}"),
            Event::Gauge { name, value } => format!("[trace] {name} = {value}"),
            Event::Sample { name, value } => format!("[trace] {name} ~ {value}"),
            Event::Message { level, text } => format!("[{level}] {text}"),
        };
        eprintln!("{line}");
    }
}

/// Streams one JSON object per event to an arbitrary writer.
///
/// Event shapes (all on a single line each):
///
/// ```text
/// {"type":"span_enter","name":"slice.j_table","id":3}
/// {"type":"span_exit","name":"slice.j_table","id":3,"nanos":1243000}
/// {"type":"counter","name":"detect.cuts_explored","delta":294}
/// {"type":"gauge","name":"detect.bfs.frontier","value":17}
/// {"type":"sample","name":"monitor.check.cost","value":5}
/// {"type":"message","level":"info","text":"engine bfs starting"}
/// ```
pub struct JsonlWriter<W: Write + Send> {
    level: Level,
    out: Mutex<W>,
}

impl JsonlWriter<BufWriter<File>> {
    /// A writer appending to a freshly created file at `path`, admitting
    /// everything up to [`Level::Trace`].
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        Ok(JsonlWriter::new(
            BufWriter::new(File::create(path)?),
            Level::Trace,
        ))
    }
}

impl<W: Write + Send> JsonlWriter<W> {
    /// A writer over `out` admitting events up to `level`.
    pub fn new(out: W, level: Level) -> Self {
        JsonlWriter {
            level,
            out: Mutex::new(out),
        }
    }
}

impl<W: Write + Send> std::fmt::Debug for JsonlWriter<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlWriter")
            .field("level", &self.level)
            .finish_non_exhaustive()
    }
}

impl<W: Write + Send> Recorder for JsonlWriter<W> {
    fn level(&self) -> Level {
        self.level
    }

    fn record(&self, event: &Event<'_>) {
        let json = match event {
            Event::SpanEnter { name, id } => JsonObject::new()
                .str("type", "span_enter")
                .str("name", name)
                .u64("id", *id)
                .finish(),
            Event::SpanExit { name, id, nanos } => JsonObject::new()
                .str("type", "span_exit")
                .str("name", name)
                .u64("id", *id)
                .u64("nanos", *nanos)
                .finish(),
            Event::Counter { name, delta } => JsonObject::new()
                .str("type", "counter")
                .str("name", name)
                .u64("delta", *delta)
                .finish(),
            Event::Gauge { name, value } => JsonObject::new()
                .str("type", "gauge")
                .str("name", name)
                .u64("value", *value)
                .finish(),
            Event::Sample { name, value } => JsonObject::new()
                .str("type", "sample")
                .str("name", name)
                .u64("value", *value)
                .finish(),
            Event::Message { level, text } => JsonObject::new()
                .str("type", "message")
                .str("level", level.name())
                .str("text", text)
                .finish(),
        };
        let mut out = self.out.lock().expect("jsonl writer lock");
        // A failed write on a telemetry stream must not take down the
        // instrumented computation; drop the line instead.
        let _ = writeln!(out, "{json}");
        let _ = out.flush();
    }
}

/// An owned copy of one [`Event`], as buffered by [`MemoryRecorder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OwnedEvent {
    /// See [`Event::SpanEnter`].
    SpanEnter {
        /// Span name.
        name: String,
        /// Span id.
        id: u64,
    },
    /// See [`Event::SpanExit`].
    SpanExit {
        /// Span name.
        name: String,
        /// Span id matching the enter event.
        id: u64,
        /// Elapsed nanoseconds.
        nanos: u64,
    },
    /// See [`Event::Counter`].
    Counter {
        /// Counter name.
        name: String,
        /// Increment.
        delta: u64,
    },
    /// See [`Event::Gauge`].
    Gauge {
        /// Gauge name.
        name: String,
        /// Sampled value.
        value: u64,
    },
    /// See [`Event::Sample`].
    Sample {
        /// Sample name.
        name: String,
        /// Observed value.
        value: u64,
    },
    /// See [`Event::Message`].
    Message {
        /// Severity.
        level: Level,
        /// Text.
        text: String,
    },
}

impl OwnedEvent {
    fn from_event(event: &Event<'_>) -> Self {
        match event {
            Event::SpanEnter { name, id } => OwnedEvent::SpanEnter {
                name: (*name).to_owned(),
                id: *id,
            },
            Event::SpanExit { name, id, nanos } => OwnedEvent::SpanExit {
                name: (*name).to_owned(),
                id: *id,
                nanos: *nanos,
            },
            Event::Counter { name, delta } => OwnedEvent::Counter {
                name: (*name).to_owned(),
                delta: *delta,
            },
            Event::Gauge { name, value } => OwnedEvent::Gauge {
                name: (*name).to_owned(),
                value: *value,
            },
            Event::Sample { name, value } => OwnedEvent::Sample {
                name: (*name).to_owned(),
                value: *value,
            },
            Event::Message { level, text } => OwnedEvent::Message {
                level: *level,
                text: (*text).to_owned(),
            },
        }
    }
}

/// Buffers every admitted event in memory, for test assertions.
#[derive(Debug)]
pub struct MemoryRecorder {
    level: Level,
    events: Mutex<Vec<OwnedEvent>>,
}

impl MemoryRecorder {
    /// A recorder admitting events up to `level` (tests usually want
    /// [`Level::Trace`]).
    pub fn new(level: Level) -> Self {
        MemoryRecorder {
            level,
            events: Mutex::new(Vec::new()),
        }
    }

    /// A snapshot of everything recorded so far, in order.
    pub fn events(&self) -> Vec<OwnedEvent> {
        self.events.lock().expect("memory recorder lock").clone()
    }

    /// Discards all buffered events.
    pub fn clear(&self) {
        self.events.lock().expect("memory recorder lock").clear();
    }

    /// The sum of all deltas recorded for counter `name`.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.events
            .lock()
            .expect("memory recorder lock")
            .iter()
            .map(|e| match e {
                OwnedEvent::Counter { name: n, delta } if n == name => *delta,
                _ => 0,
            })
            .sum()
    }

    /// The last value recorded for gauge `name`, if any.
    pub fn gauge_last(&self, name: &str) -> Option<u64> {
        self.events
            .lock()
            .expect("memory recorder lock")
            .iter()
            .rev()
            .find_map(|e| match e {
                OwnedEvent::Gauge { name: n, value } if n == name => Some(*value),
                _ => None,
            })
    }

    /// The maximum value recorded for gauge `name`, if any.
    ///
    /// The natural reduction for peak-style gauges sampled mid-run (e.g.
    /// `detect.lean.live_cuts`), where [`gauge_last`](Self::gauge_last)
    /// would report the value at the final sample instead of the high-water
    /// mark.
    pub fn gauge_max(&self, name: &str) -> Option<u64> {
        self.events
            .lock()
            .expect("memory recorder lock")
            .iter()
            .filter_map(|e| match e {
                OwnedEvent::Gauge { name: n, value } if n == name => Some(*value),
                _ => None,
            })
            .max()
    }

    /// A histogram over every value recorded for sample `name`.
    pub fn sample_histogram(&self, name: &str) -> crate::Histogram {
        let mut h = crate::Histogram::new();
        for e in self.events.lock().expect("memory recorder lock").iter() {
            if let OwnedEvent::Sample { name: n, value } = e {
                if n == name {
                    h.record(*value);
                }
            }
        }
        h
    }

    /// Span names seen in enter events, with enter/exit counts.
    pub fn span_counts(&self) -> HashMap<String, (u64, u64)> {
        let mut counts: HashMap<String, (u64, u64)> = HashMap::new();
        for e in self.events.lock().expect("memory recorder lock").iter() {
            match e {
                OwnedEvent::SpanEnter { name, .. } => {
                    counts.entry(name.clone()).or_default().0 += 1;
                }
                OwnedEvent::SpanExit { name, .. } => {
                    counts.entry(name.clone()).or_default().1 += 1;
                }
                _ => {}
            }
        }
        counts
    }

    /// True when every span enter has a matching exit: per id, exactly one
    /// enter and one exit with the same name, and exits never precede
    /// their enters.
    pub fn spans_balanced(&self) -> bool {
        let mut open: HashMap<u64, String> = HashMap::new();
        let mut closed = 0usize;
        let events = self.events.lock().expect("memory recorder lock");
        for e in events.iter() {
            match e {
                OwnedEvent::SpanEnter { name, id } if open.insert(*id, name.clone()).is_some() => {
                    return false; // duplicate id
                }
                OwnedEvent::SpanEnter { .. } => {}
                OwnedEvent::SpanExit { name, id, .. } => match open.remove(id) {
                    Some(entered) if entered == *name => closed += 1,
                    _ => return false, // exit without matching enter
                },
                _ => {}
            }
        }
        let _ = closed;
        open.is_empty()
    }
}

impl Recorder for MemoryRecorder {
    fn level(&self) -> Level {
        self.level
    }

    fn record(&self, event: &Event<'_>) {
        self.events
            .lock()
            .expect("memory recorder lock")
            .push(OwnedEvent::from_event(event));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_writer_emits_one_object_per_line() {
        let sink = JsonlWriter::new(Vec::new(), Level::Trace);
        sink.record(&Event::SpanEnter { name: "a.b", id: 1 });
        sink.record(&Event::SpanExit {
            name: "a.b",
            id: 1,
            nanos: 42,
        });
        sink.record(&Event::Counter {
            name: "c",
            delta: 3,
        });
        sink.record(&Event::Gauge {
            name: "g",
            value: 7,
        });
        sink.record(&Event::Message {
            level: Level::Warn,
            text: "odd \"thing\"",
        });
        let text = String::from_utf8(sink.out.into_inner().unwrap()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(
            lines[0],
            "{\"type\":\"span_enter\",\"name\":\"a.b\",\"id\":1}"
        );
        assert_eq!(
            lines[1],
            "{\"type\":\"span_exit\",\"name\":\"a.b\",\"id\":1,\"nanos\":42}"
        );
        assert_eq!(
            lines[2],
            "{\"type\":\"counter\",\"name\":\"c\",\"delta\":3}"
        );
        assert_eq!(lines[3], "{\"type\":\"gauge\",\"name\":\"g\",\"value\":7}");
        assert_eq!(
            lines[4],
            "{\"type\":\"message\",\"level\":\"warn\",\"text\":\"odd \\\"thing\\\"\"}"
        );
    }

    #[test]
    fn memory_recorder_helpers() {
        let mem = MemoryRecorder::new(Level::Trace);
        mem.record(&Event::SpanEnter { name: "s", id: 1 });
        mem.record(&Event::Counter {
            name: "c",
            delta: 2,
        });
        mem.record(&Event::Counter {
            name: "c",
            delta: 5,
        });
        mem.record(&Event::Gauge {
            name: "g",
            value: 1,
        });
        mem.record(&Event::Gauge {
            name: "g",
            value: 12,
        });
        mem.record(&Event::Gauge {
            name: "g",
            value: 9,
        });
        assert!(!mem.spans_balanced(), "span 1 still open");
        mem.record(&Event::SpanExit {
            name: "s",
            id: 1,
            nanos: 10,
        });
        assert!(mem.spans_balanced());
        assert_eq!(mem.counter_total("c"), 7);
        assert_eq!(mem.counter_total("missing"), 0);
        assert_eq!(mem.gauge_last("g"), Some(9));
        assert_eq!(mem.gauge_max("g"), Some(12), "high-water mark, not last");
        assert_eq!(mem.gauge_max("missing"), None);
        assert_eq!(mem.span_counts().get("s"), Some(&(1, 1)));
        mem.clear();
        assert!(mem.events().is_empty());
    }

    #[test]
    fn samples_flow_through_every_sink() {
        let mem = MemoryRecorder::new(Level::Trace);
        for v in [1u64, 2, 3, 100] {
            mem.record(&Event::Sample {
                name: "probe.len",
                value: v,
            });
        }
        mem.record(&Event::Sample {
            name: "other",
            value: 9,
        });
        let h = mem.sample_histogram("probe.len");
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 100);
        assert_eq!(mem.sample_histogram("missing").count(), 0);

        let sink = JsonlWriter::new(Vec::new(), Level::Trace);
        sink.record(&Event::Sample {
            name: "probe.len",
            value: 5,
        });
        let text = String::from_utf8(sink.out.into_inner().unwrap()).unwrap();
        assert_eq!(
            text.trim_end(),
            "{\"type\":\"sample\",\"name\":\"probe.len\",\"value\":5}"
        );
    }

    #[test]
    fn mismatched_span_names_are_unbalanced() {
        let mem = MemoryRecorder::new(Level::Trace);
        mem.record(&Event::SpanEnter { name: "a", id: 1 });
        mem.record(&Event::SpanExit {
            name: "b",
            id: 1,
            nanos: 0,
        });
        assert!(!mem.spans_balanced());
    }

    #[test]
    fn from_env_respects_off_and_garbage() {
        // Uses explicit construction only — reading the real environment
        // in parallel tests would race with other processes' settings.
        assert_eq!(Level::parse("off"), Some(Level::Off));
        assert!(StderrLogger::new(Level::Info).level() == Level::Info);
    }

    #[test]
    fn human_time_units() {
        assert_eq!(human_nanos(5), "5ns");
        assert_eq!(human_nanos(5_000), "5.000µs");
        assert_eq!(human_nanos(5_000_000), "5.000ms");
        assert_eq!(human_nanos(5_000_000_000), "5.000s");
    }
}
