//! The workspace's JSON report schemas, in one place.
//!
//! Every machine-readable document a binary in this workspace emits
//! carries a `"schema"` field naming its shape and version (for example
//! `"slicing.bench-detect/v1"`). This module owns those version strings —
//! bench binaries and the CLI reference the constants here instead of
//! re-typing literals — and provides [`validate`], a structural check
//! that the CI pipeline (and `slicing validate`) runs over emitted
//! documents before gating on them.
//!
//! Validation is deliberately shallow: it checks the `schema` field, the
//! presence and JSON type of every required field, and recurses into
//! nested runs/entries/spans. It does not constrain values — drift gating
//! is [`crate::diff`]'s job.

use crate::json::JsonValue;

/// One detection (or simulation) run: [`crate::RunReport`].
pub const RUN_REPORT: &str = "slicing.run-report/v1";

/// A set of runs from one binary: [`crate::RunReportSet`].
pub const BENCH_REPORT: &str = "slicing.bench-report/v1";

/// `table_speedup`'s kernel baseline (`BENCH_detect.json`).
pub const BENCH_DETECT: &str = "slicing.bench-detect/v1";

/// `table_memory`'s space baseline (`BENCH_memory.json`).
pub const BENCH_MEMORY: &str = "slicing.bench-memory/v1";

/// `table_online`'s soak baseline (`BENCH_online.json`).
pub const BENCH_ONLINE: &str = "slicing.bench-online/v1";

/// The CLI `monitor` subcommand's stream summary.
pub const MONITOR_REPORT: &str = "slicing.monitor-report/v1";

/// The recovery pipeline's outcome document.
pub const RECOVERY_REPORT: &str = "slicing.recovery-report/v1";

/// A phase-attributed span profile from `slicing profile`.
pub const PROFILE: &str = "slicing.profile/v1";

/// One live-telemetry snapshot line from the metrics stream.
pub const METRICS: &str = "slicing.metrics/v1";

/// The verdict document `slicing bench-diff` emits.
pub const BENCH_DIFF: &str = "slicing.bench-diff/v1";

/// A monitor + slicer checkpoint for mid-stream restart
/// (`slicing monitor --checkpoint` / `--resume`).
pub const CHECKPOINT: &str = "slicing.checkpoint/v1";

/// `table_soak`'s long-run baseline (`BENCH_soak.json`).
pub const BENCH_SOAK: &str = "slicing.bench-soak/v1";

/// `table_protocols`' scenario-zoo baseline (`BENCH_protocols.json`).
pub const BENCH_PROTOCOLS: &str = "slicing.bench-protocols/v1";

/// The CLI `serve` subcommand's multi-tenant stream summary.
pub const SERVE_REPORT: &str = "slicing.serve-report/v1";

/// `table_serve`'s tenant-sweep baseline (`BENCH_serve.json`).
pub const BENCH_SERVE: &str = "slicing.bench-serve/v1";

/// A multi-tenant hub checkpoint for mid-stream restart
/// (`slicing serve --checkpoint` / `--resume`).
pub const SERVE_CHECKPOINT: &str = "slicing.serve-checkpoint/v1";

/// Every schema this workspace version knows, for enumeration in docs
/// and tools.
pub const ALL: &[&str] = &[
    RUN_REPORT,
    BENCH_REPORT,
    BENCH_DETECT,
    BENCH_MEMORY,
    BENCH_ONLINE,
    MONITOR_REPORT,
    RECOVERY_REPORT,
    PROFILE,
    METRICS,
    BENCH_DIFF,
    CHECKPOINT,
    BENCH_SOAK,
    BENCH_PROTOCOLS,
    SERVE_REPORT,
    BENCH_SERVE,
    SERVE_CHECKPOINT,
];

/// Why [`validate`] rejected a document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError(pub String);

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "schema violation: {}", self.0)
    }
}

impl std::error::Error for SchemaError {}

fn fail(msg: impl Into<String>) -> SchemaError {
    SchemaError(msg.into())
}

fn require<'a>(doc: &'a JsonValue, field: &str, at: &str) -> Result<&'a JsonValue, SchemaError> {
    doc.get(field)
        .ok_or_else(|| fail(format!("{at}: missing field {field:?}")))
}

fn require_str<'a>(doc: &'a JsonValue, field: &str, at: &str) -> Result<&'a str, SchemaError> {
    require(doc, field, at)?
        .as_str()
        .ok_or_else(|| fail(format!("{at}: field {field:?} must be a string")))
}

fn require_u64(doc: &JsonValue, field: &str, at: &str) -> Result<u64, SchemaError> {
    require(doc, field, at)?.as_u64().ok_or_else(|| {
        fail(format!(
            "{at}: field {field:?} must be a non-negative integer"
        ))
    })
}

fn require_bool(doc: &JsonValue, field: &str, at: &str) -> Result<bool, SchemaError> {
    require(doc, field, at)?
        .as_bool()
        .ok_or_else(|| fail(format!("{at}: field {field:?} must be a boolean")))
}

fn require_array<'a>(
    doc: &'a JsonValue,
    field: &str,
    at: &str,
) -> Result<&'a [JsonValue], SchemaError> {
    require(doc, field, at)?
        .as_array()
        .ok_or_else(|| fail(format!("{at}: field {field:?} must be an array")))
}

/// Extracts and checks a document's `schema` field against `expected`.
fn expect_schema(doc: &JsonValue, expected: &'static str, at: &str) -> Result<(), SchemaError> {
    let actual = require_str(doc, "schema", at)?;
    if actual == expected {
        Ok(())
    } else {
        Err(fail(format!(
            "{at}: schema is {actual:?}, expected {expected:?}"
        )))
    }
}

/// Validates `doc` against whichever schema its `schema` field names.
///
/// Returns the canonical schema constant on success; unknown schema
/// names are an error.
pub fn validate(doc: &JsonValue) -> Result<&'static str, SchemaError> {
    let name = require_str(doc, "schema", "document")?;
    let known = ALL
        .iter()
        .find(|s| **s == name)
        .ok_or_else(|| fail(format!("unknown schema {name:?}")))?;
    match *known {
        RUN_REPORT => validate_run_report(doc, "run")?,
        BENCH_REPORT => validate_bench_report(doc)?,
        BENCH_DETECT => validate_bench_detect(doc)?,
        BENCH_MEMORY => validate_bench_memory(doc)?,
        BENCH_ONLINE => validate_bench_online(doc)?,
        MONITOR_REPORT => validate_monitor_report(doc)?,
        RECOVERY_REPORT => validate_recovery_report(doc)?,
        PROFILE => validate_profile(doc)?,
        METRICS => validate_metrics(doc)?,
        BENCH_DIFF => validate_bench_diff(doc)?,
        CHECKPOINT => validate_checkpoint(doc)?,
        BENCH_SOAK => validate_bench_soak(doc)?,
        BENCH_PROTOCOLS => validate_bench_protocols(doc)?,
        SERVE_REPORT => validate_serve_report(doc)?,
        BENCH_SERVE => validate_bench_serve(doc)?,
        SERVE_CHECKPOINT => validate_serve_checkpoint(doc)?,
        _ => unreachable!("ALL and the match arms list the same schemas"),
    }
    Ok(known)
}

fn validate_run_report(doc: &JsonValue, at: &str) -> Result<(), SchemaError> {
    expect_schema(doc, RUN_REPORT, at)?;
    require_str(doc, "workload", at)?;
    require_str(doc, "engine", at)?;
    for (i, phase) in require_array(doc, "phases", at)?.iter().enumerate() {
        let pat = format!("{at}.phases[{i}]");
        require_str(phase, "name", &pat)?;
        require(phase, "secs", &pat)?
            .as_f64()
            .ok_or_else(|| fail(format!("{pat}: field \"secs\" must be a number")))?;
    }
    validate_counter_list(doc, "counters", at)?;
    Ok(())
}

/// Checks a `[{"name":..,"value":..}, ...]` counter array at `doc[field]`.
fn validate_counter_list(doc: &JsonValue, field: &str, at: &str) -> Result<(), SchemaError> {
    for (i, counter) in require_array(doc, field, at)?.iter().enumerate() {
        let cat = format!("{at}.{field}[{i}]");
        require_str(counter, "name", &cat)?;
        require_u64(counter, "value", &cat)?;
    }
    Ok(())
}

fn validate_bench_report(doc: &JsonValue) -> Result<(), SchemaError> {
    require_str(doc, "binary", "document")?;
    for (i, run) in require_array(doc, "runs", "document")?.iter().enumerate() {
        validate_run_report(run, &format!("runs[{i}]"))?;
    }
    Ok(())
}

/// Checks a bench table document: `binary` plus an `entries` array whose
/// rows each carry `name` and every field in `bools`/`nums`.
fn validate_bench_table(doc: &JsonValue, bools: &[&str], nums: &[&str]) -> Result<(), SchemaError> {
    require_str(doc, "binary", "document")?;
    for (i, entry) in require_array(doc, "entries", "document")?
        .iter()
        .enumerate()
    {
        let eat = format!("entries[{i}]");
        require_str(entry, "name", &eat)?;
        for field in bools {
            require_bool(entry, field, &eat)?;
        }
        for field in nums {
            require_u64(entry, field, &eat)?;
        }
    }
    Ok(())
}

fn validate_bench_detect(doc: &JsonValue) -> Result<(), SchemaError> {
    validate_bench_table(
        doc,
        &["detected"],
        &[
            "cuts_explored",
            "probes",
            "hits",
            "inserts",
            "heap_allocs",
            "seq_layers",
            "row_joins",
        ],
    )
}

fn validate_bench_memory(doc: &JsonValue) -> Result<(), SchemaError> {
    validate_bench_table(
        doc,
        &["detected"],
        &[
            "witness_size",
            "cuts_explored",
            "peak_live_cuts",
            "visited_inserts",
            "layers",
            "regen_probes",
            "heap_allocs",
        ],
    )
}

fn validate_bench_online(doc: &JsonValue) -> Result<(), SchemaError> {
    validate_bench_table(
        doc,
        &[],
        &[
            "events",
            "checks",
            "check_cost",
            "cost_per_event_milli",
            "heap_allocs",
        ],
    )
}

fn validate_monitor_report(doc: &JsonValue) -> Result<(), SchemaError> {
    for field in [
        "events",
        "messages",
        "checks",
        "alarms",
        "check_cost",
        "delta_cuts",
        "peak_candidates",
    ] {
        require_u64(doc, field, "document")?;
    }
    require_array(doc, "alarm_cuts", "document")?;
    Ok(())
}

fn validate_recovery_report(doc: &JsonValue) -> Result<(), SchemaError> {
    require_str(doc, "verdict", "document")?;
    require_bool(doc, "detected", "document")?;
    require_u64(doc, "replays", "document")?;
    require_array(doc, "attempts", "document")?;
    Ok(())
}

fn validate_profile(doc: &JsonValue) -> Result<(), SchemaError> {
    require_str(doc, "workload", "document")?;
    require_str(doc, "predicate", "document")?;
    require_str(doc, "engine", "document")?;
    validate_counter_list(doc, "totals", "document")?;
    for (i, root) in require_array(doc, "roots", "document")?.iter().enumerate() {
        validate_profile_span(root, &format!("roots[{i}]"), 0)?;
    }
    Ok(())
}

fn validate_profile_span(span: &JsonValue, at: &str, depth: usize) -> Result<(), SchemaError> {
    if depth > 64 {
        return Err(fail(format!("{at}: span tree too deep")));
    }
    require_str(span, "name", at)?;
    require_u64(span, "calls", at)?;
    require_u64(span, "wall_nanos", at)?;
    validate_counter_list(span, "counters", at)?;
    for (i, child) in require_array(span, "children", at)?.iter().enumerate() {
        validate_profile_span(child, &format!("{at}.children[{i}]"), depth + 1)?;
    }
    Ok(())
}

fn validate_metrics(doc: &JsonValue) -> Result<(), SchemaError> {
    require_u64(doc, "seq", "document")?;
    validate_counter_list(doc, "counter_deltas", "document")?;
    validate_counter_list(doc, "gauges", "document")?;
    for (i, hist) in require_array(doc, "samples", "document")?
        .iter()
        .enumerate()
    {
        let hat = format!("samples[{i}]");
        require_str(hist, "name", &hat)?;
        for field in ["count", "p50", "p90", "p99", "max"] {
            require_u64(hist, field, &hat)?;
        }
    }
    Ok(())
}

fn validate_checkpoint(doc: &JsonValue) -> Result<(), SchemaError> {
    let n = require_u64(doc, "processes", "document")?;
    if n == 0 {
        return Err(fail("document: \"processes\" must be positive".to_owned()));
    }
    require_u64(doc, "metrics_seq", "document")?;
    require_u64(doc, "seen_revision", "document")?;
    require_u64(doc, "clock_revision", "document")?;
    require_u64(doc, "since_gc", "document")?;
    require_bool(doc, "dirty_any", "document")?;
    for field in ["base", "vars", "snapshots", "queues", "dirty"] {
        let arr = require_array(doc, field, "document")?;
        if arr.len() != n as usize {
            return Err(fail(format!(
                "document: field {field:?} must have one entry per process"
            )));
        }
    }
    let events = require_array(doc, "events", "document")?;
    for (i, ev) in events.iter().enumerate() {
        let eat = format!("events[{i}]");
        require_u64(ev, "p", &eat)?;
        require_bool(ev, "holds", &eat)?;
        let clock = require_array(ev, "clock", &eat)?;
        if clock.len() != n as usize {
            return Err(fail(format!("{eat}: clock must have arity {n}")));
        }
    }
    for field in ["messages", "settled_edges"] {
        for (i, pair) in require_array(doc, field, "document")?.iter().enumerate() {
            let ok = pair
                .as_array()
                .is_some_and(|p| p.len() == 2 && p.iter().all(|v| v.as_u64().is_some()));
            if !ok {
                return Err(fail(format!(
                    "document: {field}[{i}] must be a [send, recv] index pair"
                )));
            }
        }
    }
    for field in ["current_alarm", "last_alarm", "gc"] {
        require(doc, field, "document")?; // may be null; decode checks shape
    }
    let stats = require(doc, "stats", "document")?;
    for field in [
        "events",
        "messages",
        "checks",
        "alarms",
        "check_cost",
        "last_check_cost",
        "delta_cuts",
        "peak_candidates",
        "compactions",
        "dropped_events",
        "retained_peak",
    ] {
        require_u64(stats, field, "document.stats")?;
    }
    Ok(())
}

fn validate_bench_soak(doc: &JsonValue) -> Result<(), SchemaError> {
    validate_bench_table(
        doc,
        &[],
        &[
            "events",
            "messages",
            "checks",
            "alarms",
            "check_cost",
            "delta_cuts",
            "compactions",
            "dropped_events",
            "retained_peak",
            "heap_allocs",
        ],
    )
}

fn validate_bench_protocols(doc: &JsonValue) -> Result<(), SchemaError> {
    validate_bench_table(
        doc,
        &["detected"],
        &[
            "witness_size",
            "cuts_explored",
            "probes",
            "hits",
            "inserts",
            "heap_allocs",
            "row_joins",
        ],
    )
}

fn validate_serve_report(doc: &JsonValue) -> Result<(), SchemaError> {
    for field in [
        "tenants",
        "groups",
        "slots",
        "events",
        "messages",
        "checks",
        "alarms",
        "check_cost",
        "clause_evals",
        "delta_cuts",
        "peak_candidates",
        "dropped",
    ] {
        require_u64(doc, field, "document")?;
    }
    for (i, alarm) in require_array(doc, "alarm_log", "document")?
        .iter()
        .enumerate()
    {
        let aat = format!("alarm_log[{i}]");
        require_str(alarm, "tenant", &aat)?;
        require_u64(alarm, "events", &aat)?;
        require_array(alarm, "cut", &aat)?;
    }
    Ok(())
}

fn validate_bench_serve(doc: &JsonValue) -> Result<(), SchemaError> {
    validate_bench_table(
        doc,
        &[],
        &[
            "tenants",
            "groups",
            "slots",
            "events",
            "messages",
            "alarms",
            "check_cost",
            "clause_evals",
            "delta_cuts",
            "cost_per_event_milli",
            "heap_allocs",
        ],
    )
}

fn validate_serve_checkpoint(doc: &JsonValue) -> Result<(), SchemaError> {
    let n = require_u64(doc, "processes", "document")?;
    if n == 0 {
        return Err(fail("document: \"processes\" must be positive".to_owned()));
    }
    for field in ["metrics_seq", "clock_revision", "since_gc"] {
        require_u64(doc, field, "document")?;
    }
    for field in ["base", "vars", "snapshots", "values"] {
        let arr = require_array(doc, field, "document")?;
        if arr.len() != n as usize {
            return Err(fail(format!(
                "document: field {field:?} must have one entry per process"
            )));
        }
    }
    for field in ["events", "messages", "settled_edges", "clauses"] {
        require_array(doc, field, "document")?;
    }
    for (i, slot) in require_array(doc, "slots", "document")?.iter().enumerate() {
        let sat = format!("slots[{i}]");
        require_u64(slot, "p", &sat)?;
        require_u64(slot, "start", &sat)?;
        require_array(slot, "clauses", &sat)?;
        require_array(slot, "candidates", &sat)?;
    }
    for (i, group) in require_array(doc, "groups", "document")?.iter().enumerate() {
        let gat = format!("groups[{i}]");
        require_str(group, "source", &gat)?;
        require_bool(group, "dirty_any", &gat)?;
        require_u64(group, "seen_revision", &gat)?;
        require_u64(group, "check_cost", &gat)?;
        require_u64(group, "alarms", &gat)?;
        for field in ["slots", "fronts", "dirty"] {
            require_array(group, field, &gat)?;
        }
        for field in ["current_alarm", "last_alarm"] {
            require(group, field, &gat)?; // may be null
        }
    }
    for (i, tenant) in require_array(doc, "tenants", "document")?
        .iter()
        .enumerate()
    {
        let tat = format!("tenants[{i}]");
        require_str(tenant, "id", &tat)?;
        require_u64(tenant, "group", &tat)?;
        require_str(tenant, "source", &tat)?;
    }
    require(doc, "gc", "document")?; // may be null
    let stats = require(doc, "stats", "document")?;
    for field in [
        "events",
        "messages",
        "checks",
        "alarms",
        "check_cost",
        "clause_evals",
        "delta_cuts",
        "peak_candidates",
        "compactions",
        "dropped_events",
        "retained_peak",
        "fanout_sent",
        "fanout_dropped",
    ] {
        require_u64(stats, field, "document.stats")?;
    }
    Ok(())
}

fn validate_bench_diff(doc: &JsonValue) -> Result<(), SchemaError> {
    require_str(doc, "bench_schema", "document")?;
    require_bool(doc, "pass", "document")?;
    require(doc, "threshold", "document")?
        .as_f64()
        .ok_or_else(|| fail("document: field \"threshold\" must be a number".to_owned()))?;
    for (i, row) in require_array(doc, "checks", "document")?.iter().enumerate() {
        let rat = format!("checks[{i}]");
        require_str(row, "entry", &rat)?;
        require_str(row, "field", &rat)?;
        require_bool(row, "pass", &rat)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn all_schemas_are_versioned_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for s in ALL {
            assert!(s.starts_with("slicing.") && s.ends_with("/v1"), "{s}");
            assert!(seen.insert(s), "duplicate schema {s}");
        }
    }

    #[test]
    fn run_report_round_trips_through_validate() {
        let json = crate::RunReport::new("figure1", "bfs")
            .counter("detect.cuts_explored", 9)
            .phase("search", 0.25)
            .to_json();
        let doc = parse(&json).unwrap();
        assert_eq!(validate(&doc).unwrap(), RUN_REPORT);
    }

    #[test]
    fn report_set_round_trips_through_validate() {
        let mut set = crate::RunReportSet::new("bench");
        set.push(crate::RunReport::new("w", "e"));
        let doc = parse(&set.to_json()).unwrap();
        assert_eq!(validate(&doc).unwrap(), BENCH_REPORT);
    }

    #[test]
    fn missing_fields_are_named_in_the_error() {
        let doc = parse("{\"schema\":\"slicing.run-report/v1\",\"workload\":\"w\"}").unwrap();
        let err = validate(&doc).unwrap_err();
        assert!(err.to_string().contains("\"engine\""), "{err}");
    }

    #[test]
    fn wrong_types_are_rejected() {
        let doc = parse(
            "{\"schema\":\"slicing.run-report/v1\",\"workload\":\"w\",\
             \"engine\":\"e\",\"phases\":[],\"counters\":[{\"name\":\"c\",\"value\":-1}]}",
        )
        .unwrap();
        assert!(validate(&doc).is_err());
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let doc = parse("{\"schema\":\"slicing.bogus/v9\"}").unwrap();
        let err = validate(&doc).unwrap_err();
        assert!(err.to_string().contains("unknown schema"), "{err}");
    }

    #[test]
    fn committed_bench_shapes_validate() {
        let detect = "{\"schema\":\"slicing.bench-detect/v1\",\"binary\":\"table_speedup\",\
                      \"entries\":[{\"name\":\"bfs.grid40\",\"engine\":\"bfs\",\"detected\":false,\
                      \"cuts_explored\":1681,\"probes\":5644,\"hits\":1600,\"inserts\":1681,\
                      \"heap_allocs\":0,\"seq_layers\":0,\"row_joins\":0}]}";
        assert_eq!(validate(&parse(detect).unwrap()).unwrap(), BENCH_DETECT);
        let online = "{\"schema\":\"slicing.bench-online/v1\",\"binary\":\"table_online\",\
                      \"entries\":[{\"name\":\"segment1\",\"events\":2000,\"checks\":2000,\
                      \"check_cost\":11900,\"cost_per_event_milli\":5950,\"heap_allocs\":0}]}";
        assert_eq!(validate(&parse(online).unwrap()).unwrap(), BENCH_ONLINE);
        let protocols = "{\"schema\":\"slicing.bench-protocols/v1\",\
                         \"binary\":\"table_protocols\",\
                         \"entries\":[{\"name\":\"slicing.leader-election.s0\",\
                         \"detected\":true,\"witness_size\":5,\"cuts_explored\":1,\
                         \"probes\":1,\"hits\":0,\"inserts\":1,\"heap_allocs\":0,\
                         \"row_joins\":34}]}";
        assert_eq!(
            validate(&parse(protocols).unwrap()).unwrap(),
            BENCH_PROTOCOLS
        );
    }

    #[test]
    fn profile_documents_validate_recursively() {
        let good = "{\"schema\":\"slicing.profile/v1\",\"workload\":\"grid40\",\
                    \"predicate\":\"x@0 > 999\",\"engine\":\"bfs\",\
                    \"totals\":[{\"name\":\"detect.cuts_explored\",\"value\":1681}],\
                    \"roots\":[{\"name\":\"detect.bfs\",\"calls\":1,\"wall_nanos\":5,\
                    \"counters\":[{\"name\":\"detect.cuts_explored\",\"value\":1681}],\
                    \"children\":[{\"name\":\"inner\",\"calls\":2,\"wall_nanos\":1,\
                    \"counters\":[],\"children\":[]}]}]}";
        assert_eq!(validate(&parse(good).unwrap()).unwrap(), PROFILE);
        let bad = good.replace("\"calls\":2,", "");
        assert!(validate(&parse(&bad).unwrap()).is_err());
    }
}
