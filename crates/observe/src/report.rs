//! Machine-readable run reports.
//!
//! A [`RunReport`] captures one detection (or simulation) run — workload,
//! engine, scale parameters, the detection outcome, a per-phase time
//! breakdown, and any end-of-run counters — in a stable JSON schema so
//! that benchmark results can be regenerated and diffed mechanically. A
//! [`RunReportSet`] wraps the runs a binary produced into a single
//! document.
//!
//! Schema (`slicing.run-report/v1`); absent optional fields are omitted:
//!
//! ```json
//! {
//!   "schema": "slicing.run-report/v1",
//!   "workload": "primary-secondary",
//!   "engine": "slice",
//!   "seed": 7,
//!   "procs": 4,
//!   "events": 40,
//!   "detected": true,
//!   "aborted": null,
//!   "cuts_explored": 512,
//!   "max_stored_cuts": 128,
//!   "peak_bytes": 16384,
//!   "elapsed_secs": 0.0123,
//!   "phases": [{"name":"slice","secs":0.004},{"name":"search","secs":0.008}],
//!   "counters": [{"name":"detect.cuts_explored","value":512}]
//! }
//! ```

use std::io::Write;
use std::path::Path;

use crate::json::{JsonArray, JsonObject};

/// Identifies the per-run schema emitted by [`RunReport::to_json`].
pub const RUN_REPORT_SCHEMA: &str = crate::schema::RUN_REPORT;

/// Identifies the document schema emitted by [`RunReportSet::to_json`].
pub const REPORT_SET_SCHEMA: &str = crate::schema::BENCH_REPORT;

/// One run's report; see the module docs for the JSON shape.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Workload name (e.g. `"primary-secondary"`, `"figure1"`).
    pub workload: String,
    /// Detection engine (e.g. `"slice"`, `"bfs"`, `"hybrid"`).
    pub engine: String,
    /// RNG seed of the simulated run, when one was used.
    pub seed: Option<u64>,
    /// Number of processes in the computation.
    pub procs: Option<u64>,
    /// Events per process (or total events, per the binary's convention).
    pub events: Option<u64>,
    /// Whether the predicate was detected.
    pub detected: Option<bool>,
    /// Witness cut (events included per process) when detected.
    pub witness: Option<Vec<u64>>,
    /// Abort reason when the engine hit a resource limit.
    pub aborted: Option<String>,
    /// Global states examined.
    pub cuts_explored: Option<u64>,
    /// High-water mark of simultaneously stored cuts.
    pub max_stored_cuts: Option<u64>,
    /// Estimated peak memory of the engine's working set, in bytes.
    pub peak_bytes: Option<u64>,
    /// Total wall time of the run, in seconds.
    pub elapsed_secs: Option<f64>,
    /// Ordered per-phase wall-time breakdown, in seconds.
    pub phases: Vec<(String, f64)>,
    /// End-of-run counter totals.
    pub counters: Vec<(String, u64)>,
}

impl RunReport {
    /// A report for `workload` run under `engine`; everything else is
    /// filled in by the caller.
    pub fn new(workload: impl Into<String>, engine: impl Into<String>) -> Self {
        RunReport {
            workload: workload.into(),
            engine: engine.into(),
            ..RunReport::default()
        }
    }

    /// Adds a named phase duration (builder style).
    pub fn phase(mut self, name: impl Into<String>, secs: f64) -> Self {
        self.phases.push((name.into(), secs));
        self
    }

    /// Adds a named counter total (builder style).
    pub fn counter(mut self, name: impl Into<String>, value: u64) -> Self {
        self.counters.push((name.into(), value));
        self
    }

    /// Renders the report as one JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new()
            .str("schema", RUN_REPORT_SCHEMA)
            .str("workload", &self.workload)
            .str("engine", &self.engine);
        if let Some(v) = self.seed {
            obj = obj.u64("seed", v);
        }
        if let Some(v) = self.procs {
            obj = obj.u64("procs", v);
        }
        if let Some(v) = self.events {
            obj = obj.u64("events", v);
        }
        if let Some(v) = self.detected {
            obj = obj.bool("detected", v);
        }
        if let Some(witness) = &self.witness {
            let arr = witness
                .iter()
                .fold(JsonArray::new(), |arr, c| arr.push_raw(&c.to_string()))
                .finish();
            obj = obj.raw("witness", &arr);
        }
        if self.detected.is_some() || self.aborted.is_some() {
            obj = obj.opt_str("aborted", self.aborted.as_deref());
        }
        if let Some(v) = self.cuts_explored {
            obj = obj.u64("cuts_explored", v);
        }
        if let Some(v) = self.max_stored_cuts {
            obj = obj.u64("max_stored_cuts", v);
        }
        if let Some(v) = self.peak_bytes {
            obj = obj.u64("peak_bytes", v);
        }
        if let Some(v) = self.elapsed_secs {
            obj = obj.f64("elapsed_secs", v);
        }
        let phases = self
            .phases
            .iter()
            .fold(JsonArray::new(), |arr, (name, secs)| {
                arr.push_raw(
                    &JsonObject::new()
                        .str("name", name)
                        .f64("secs", *secs)
                        .finish(),
                )
            })
            .finish();
        obj = obj.raw("phases", &phases);
        let counters = self
            .counters
            .iter()
            .fold(JsonArray::new(), |arr, (name, value)| {
                arr.push_raw(
                    &JsonObject::new()
                        .str("name", name)
                        .u64("value", *value)
                        .finish(),
                )
            })
            .finish();
        obj = obj.raw("counters", &counters);
        obj.finish()
    }
}

/// A document collecting every run a binary produced.
#[derive(Debug, Clone, Default)]
pub struct RunReportSet {
    /// Name of the producing binary (e.g. `"fig2_primary_secondary"`).
    pub binary: String,
    /// The collected runs, in production order.
    pub runs: Vec<RunReport>,
}

impl RunReportSet {
    /// An empty report set for `binary`.
    pub fn new(binary: impl Into<String>) -> Self {
        RunReportSet {
            binary: binary.into(),
            runs: Vec::new(),
        }
    }

    /// Appends one run.
    pub fn push(&mut self, run: RunReport) {
        self.runs.push(run);
    }

    /// Renders the whole set as one JSON document.
    pub fn to_json(&self) -> String {
        let runs = self
            .runs
            .iter()
            .fold(JsonArray::new(), |arr, run| arr.push_raw(&run.to_json()))
            .finish();
        JsonObject::new()
            .str("schema", REPORT_SET_SCHEMA)
            .str("binary", &self.binary)
            .raw("runs", &runs)
            .finish()
    }

    /// Writes the document to `path`, trailing newline included.
    pub fn write_to<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        writeln!(file, "{}", self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_report_omits_absent_fields() {
        let json = RunReport::new("figure1", "bfs").to_json();
        assert_eq!(
            json,
            "{\"schema\":\"slicing.run-report/v1\",\"workload\":\"figure1\",\
             \"engine\":\"bfs\",\"phases\":[],\"counters\":[]}"
        );
    }

    #[test]
    fn full_report_round_trips_every_field() {
        let mut r = RunReport::new("primary-secondary", "slice");
        r.seed = Some(7);
        r.procs = Some(4);
        r.events = Some(40);
        r.detected = Some(true);
        r.cuts_explored = Some(512);
        r.max_stored_cuts = Some(128);
        r.peak_bytes = Some(16384);
        r.elapsed_secs = Some(0.5);
        let r = r
            .phase("slice", 0.25)
            .phase("search", 0.25)
            .counter("detect.cuts_explored", 512);
        let json = r.to_json();
        assert!(json.contains("\"seed\":7"));
        assert!(json.contains("\"detected\":true"));
        assert!(json.contains("\"aborted\":null"));
        assert!(json.contains("{\"name\":\"slice\",\"secs\":0.25}"));
        assert!(json.contains("{\"name\":\"detect.cuts_explored\",\"value\":512}"));
    }

    #[test]
    fn aborted_runs_carry_the_reason() {
        let mut r = RunReport::new("db", "pom");
        r.detected = Some(false);
        r.aborted = Some("memory".to_owned());
        assert!(r.to_json().contains("\"aborted\":\"memory\""));
    }

    #[test]
    fn report_set_wraps_runs() {
        let mut set = RunReportSet::new("fig2_primary_secondary");
        set.push(RunReport::new("primary-secondary", "slice"));
        set.push(RunReport::new("primary-secondary", "pom"));
        let json = set.to_json();
        assert!(json.starts_with("{\"schema\":\"slicing.bench-report/v1\""));
        assert!(json.contains("\"binary\":\"fig2_primary_secondary\""));
        assert_eq!(json.matches("slicing.run-report/v1").count(), 2);
    }

    #[test]
    fn write_to_emits_parseable_line() {
        let dir = std::env::temp_dir().join("slicing-observe-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        let mut set = RunReportSet::new("t");
        set.push(RunReport::new("w", "e"));
        set.write_to(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with('\n'));
        assert!(text.trim_end().starts_with('{') && text.trim_end().ends_with('}'));
        std::fs::remove_file(&path).unwrap();
    }
}
