//! The span profiler: a [`Recorder`] that folds the event stream into a
//! merged call tree with per-span counter attribution.
//!
//! # Model
//!
//! Every [`Event::SpanEnter`]/[`Event::SpanExit`] pair contributes one
//! *call* to a tree node identified by its path of span names from the
//! root (two calls of `slice.scc` under `detect.slice_phase` merge into
//! one node with `calls = 2`, exactly like a folded flamegraph). Spans
//! nest per thread: each emitting thread has its own stack, and a span
//! entered while another is open on the same thread becomes its child.
//!
//! Counters are attributed to the innermost span open **on the emitting
//! thread** at the moment they are recorded; counters emitted outside
//! any span (including from worker threads the profiler never saw a
//! span-enter from) land on the synthetic `(unattributed)` root. Because
//! every delta is credited to exactly one node, the per-span counter
//! sums over the whole tree equal the flat totals a [`MemoryRecorder`]
//! would report for the same run — the invariant the CLI's profile
//! regression test pins.
//!
//! Samples feed profile-global histograms (distributions don't decompose
//! by phase the way monotonic counters do).
//!
//! # Panic safety
//!
//! A [`crate::Span`] guard dropped during unwind emits its exit event
//! normally, but exits can arrive out of LIFO order when a guard is
//! moved or leaked across scopes. The profiler therefore closes spans by
//! *id*, popping any still-open descendants first; an exit whose id was
//! never entered (possible when the profiler was installed mid-span) is
//! ignored. The tree never corrupts — at worst a leaked guard's node
//! stays open and is closed implicitly when the report is built.
//!
//! [`Event::SpanEnter`]: crate::Event::SpanEnter
//! [`Event::SpanExit`]: crate::Event::SpanExit
//! [`MemoryRecorder`]: crate::MemoryRecorder

use std::collections::HashMap;
use std::sync::Mutex;
use std::thread::ThreadId;

use crate::histogram::Histogram;
use crate::json::{JsonArray, JsonObject};
use crate::{Event, Level, Recorder};

/// Name of the synthetic node that absorbs events outside any span.
pub const UNATTRIBUTED: &str = "(unattributed)";

/// Index of a node in [`Tree::nodes`]; the unattributed root is 0.
type NodeIx = usize;

#[derive(Debug)]
struct Node {
    name: String,
    children: Vec<NodeIx>,
    calls: u64,
    wall_nanos: u64,
    counters: Vec<(String, u64)>,
}

impl Node {
    fn new(name: impl Into<String>) -> Self {
        Node {
            name: name.into(),
            children: Vec::new(),
            calls: 0,
            wall_nanos: 0,
            counters: Vec::new(),
        }
    }

    fn add_counter(&mut self, name: &str, delta: u64) {
        match self.counters.iter_mut().find(|(n, _)| n == name) {
            Some((_, total)) => *total += delta,
            None => self.counters.push((name.to_owned(), delta)),
        }
    }
}

#[derive(Debug)]
struct OpenSpan {
    id: u64,
    node: NodeIx,
}

#[derive(Debug, Default)]
struct Tree {
    nodes: Vec<Node>,
    /// Per-thread stacks of currently open spans.
    stacks: HashMap<ThreadId, Vec<OpenSpan>>,
    /// Profile-global sample histograms, insertion-ordered.
    samples: Vec<(String, Histogram)>,
}

impl Tree {
    fn new() -> Self {
        Tree {
            nodes: vec![Node::new(UNATTRIBUTED)],
            stacks: HashMap::new(),
            samples: Vec::new(),
        }
    }

    /// The node a fresh event on the current thread attributes to.
    fn current(&self, thread: ThreadId) -> NodeIx {
        self.stacks
            .get(&thread)
            .and_then(|s| s.last())
            .map_or(0, |open| open.node)
    }

    /// Finds or creates the child of `parent` named `name`.
    fn child(&mut self, parent: NodeIx, name: &str) -> NodeIx {
        if let Some(&ix) = self.nodes[parent]
            .children
            .iter()
            .find(|&&c| self.nodes[c].name == name)
        {
            return ix;
        }
        let ix = self.nodes.len();
        self.nodes.push(Node::new(name));
        self.nodes[parent].children.push(ix);
        ix
    }

    fn enter(&mut self, thread: ThreadId, name: &str, id: u64) {
        let parent = self.current(thread);
        let node = self.child(parent, name);
        self.stacks
            .entry(thread)
            .or_default()
            .push(OpenSpan { id, node });
    }

    fn exit(&mut self, thread: ThreadId, id: u64, nanos: u64) {
        let Some(stack) = self.stacks.get_mut(&thread) else {
            return;
        };
        // Close by id, discarding still-open descendants above it: a
        // guard dropped during unwind exits in order, but a moved or
        // leaked guard can overtake its children.
        let Some(pos) = stack.iter().rposition(|open| open.id == id) else {
            return; // entered before the profiler was installed
        };
        let node = stack[pos].node;
        stack.truncate(pos);
        self.nodes[node].calls += 1;
        self.nodes[node].wall_nanos += nanos;
    }

    fn counter(&mut self, thread: ThreadId, name: &str, delta: u64) {
        let node = self.current(thread);
        self.nodes[node].add_counter(name, delta);
    }

    fn sample(&mut self, name: &str, value: u64) {
        match self.samples.iter_mut().find(|(n, _)| n == name) {
            Some((_, h)) => h.record(value),
            None => {
                let mut h = Histogram::new();
                h.record(value);
                self.samples.push((name.to_owned(), h));
            }
        }
    }
}

/// A [`Recorder`] that accumulates the span/counter stream into a
/// merged profile tree; see the module docs for the model.
#[derive(Debug)]
pub struct Profiler {
    tree: Mutex<Tree>,
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::new()
    }
}

impl Profiler {
    /// An empty profiler; install it (globally or scoped) around the
    /// region of interest, then call [`report`](Self::report).
    pub fn new() -> Self {
        Profiler {
            tree: Mutex::new(Tree::new()),
        }
    }

    /// Snapshots the accumulated profile. Spans still open (leaked
    /// guards, or a report taken mid-run) appear in the tree with the
    /// calls and wall time of their *completed* invocations only; their
    /// attributed counters are always included.
    pub fn report(&self) -> ProfileReport {
        let tree = self.tree.lock().expect("profiler lock");
        let mut spans = Vec::with_capacity(tree.nodes.len());
        for node in &tree.nodes {
            spans.push(ProfileSpan {
                name: node.name.clone(),
                calls: node.calls,
                wall_nanos: node.wall_nanos,
                counters: node.counters.clone(),
                children: Vec::new(), // indices resolved below
            });
        }
        // Materialize the tree bottom-up: children indices are always
        // greater than their parent's (nodes are created on first enter,
        // under an already-existing parent), so a reverse sweep moves
        // each node into its parent exactly once.
        let mut built: Vec<Option<ProfileSpan>> = spans.into_iter().map(Some).collect();
        for ix in (1..tree.nodes.len()).rev() {
            let mut span = built[ix].take().expect("node taken once");
            // Collect this node's children (already built).
            span.children = tree.nodes[ix]
                .children
                .iter()
                .map(|&c| built[c].take().expect("child built"))
                .collect();
            built[ix] = Some(span);
        }
        let mut root = built[0].take().expect("root");
        root.children = tree.nodes[0]
            .children
            .iter()
            .map(|&c| built[c].take().expect("child built"))
            .collect();
        ProfileReport {
            workload: String::new(),
            predicate: String::new(),
            engine: String::new(),
            root,
            samples: tree.samples.clone(),
        }
    }
}

impl Recorder for Profiler {
    fn level(&self) -> Level {
        Level::Trace
    }

    fn record(&self, event: &Event<'_>) {
        let thread = std::thread::current().id();
        let mut tree = self.tree.lock().expect("profiler lock");
        match event {
            Event::SpanEnter { name, id } => tree.enter(thread, name, *id),
            Event::SpanExit { id, nanos, .. } => tree.exit(thread, *id, *nanos),
            Event::Counter { name, delta } => tree.counter(thread, name, *delta),
            Event::Sample { name, value } => tree.sample(name, *value),
            Event::Gauge { .. } | Event::Message { .. } => {}
        }
    }
}

/// One node of a materialized profile tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileSpan {
    /// Span name (or [`UNATTRIBUTED`] for the synthetic root).
    pub name: String,
    /// Completed calls merged into this node.
    pub calls: u64,
    /// Total wall time across those calls, in nanoseconds.
    pub wall_nanos: u64,
    /// Counter deltas attributed to this node (not including children).
    pub counters: Vec<(String, u64)>,
    /// Child spans, in first-entered order.
    pub children: Vec<ProfileSpan>,
}

impl ProfileSpan {
    /// Sums `counter` over this node and every descendant.
    pub fn counter_total(&self, counter: &str) -> u64 {
        let own = self
            .counters
            .iter()
            .filter(|(n, _)| n == counter)
            .map(|(_, v)| v)
            .sum::<u64>();
        own + self
            .children
            .iter()
            .map(|c| c.counter_total(counter))
            .sum::<u64>()
    }

    /// Every counter name in this subtree, each with its subtree total,
    /// sorted by name.
    pub fn counter_totals(&self) -> Vec<(String, u64)> {
        fn walk(span: &ProfileSpan, into: &mut std::collections::BTreeMap<String, u64>) {
            for (name, value) in &span.counters {
                *into.entry(name.clone()).or_default() += value;
            }
            for child in &span.children {
                walk(child, into);
            }
        }
        let mut totals = std::collections::BTreeMap::new();
        walk(self, &mut totals);
        totals.into_iter().collect()
    }
}

/// A finished profile: the span tree plus run identification, rendered
/// as `slicing.profile/v1` JSON or folded-stack text.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Workload name (filled in by the caller; e.g. `"grid40"`).
    pub workload: String,
    /// Predicate source text the run detected.
    pub predicate: String,
    /// Detection engine used.
    pub engine: String,
    /// The synthetic root; real top-level spans are its children.
    pub root: ProfileSpan,
    /// Profile-global sample histograms.
    pub samples: Vec<(String, Histogram)>,
}

impl ProfileReport {
    /// Flat counter totals over the whole tree, sorted by name. These
    /// equal what a [`crate::MemoryRecorder`] would report for the same
    /// run — the invariant the regression tests pin.
    pub fn totals(&self) -> Vec<(String, u64)> {
        self.root.counter_totals()
    }

    /// Renders the profile as one `slicing.profile/v1` JSON document.
    pub fn to_json(&self) -> String {
        fn span_json(span: &ProfileSpan) -> String {
            let counters = span
                .counters
                .iter()
                .fold(JsonArray::new(), |arr, (name, value)| {
                    arr.push_raw(
                        &JsonObject::new()
                            .str("name", name)
                            .u64("value", *value)
                            .finish(),
                    )
                })
                .finish();
            let children = span
                .children
                .iter()
                .fold(JsonArray::new(), |arr, child| {
                    arr.push_raw(&span_json(child))
                })
                .finish();
            JsonObject::new()
                .str("name", &span.name)
                .u64("calls", span.calls)
                .u64("wall_nanos", span.wall_nanos)
                .raw("counters", &counters)
                .raw("children", &children)
                .finish()
        }
        let totals = self
            .totals()
            .iter()
            .fold(JsonArray::new(), |arr, (name, value)| {
                arr.push_raw(
                    &JsonObject::new()
                        .str("name", name)
                        .u64("value", *value)
                        .finish(),
                )
            })
            .finish();
        let samples = self
            .samples
            .iter()
            .fold(JsonArray::new(), |arr, (name, h)| {
                let (count, p50, p90, p99, max) = h.summary();
                arr.push_raw(
                    &JsonObject::new()
                        .str("name", name)
                        .u64("count", count)
                        .u64("p50", p50)
                        .u64("p90", p90)
                        .u64("p99", p99)
                        .u64("max", max)
                        .finish(),
                )
            })
            .finish();
        // The synthetic root is flattened away in JSON: its children are
        // the document's top-level spans, and any counters it absorbed
        // appear as an explicit (unattributed) root entry.
        let mut roots = JsonArray::new();
        if !self.root.counters.is_empty() || self.root.calls > 0 {
            let mut orphan = self.root.clone();
            orphan.children = Vec::new();
            roots = roots.push_raw(&span_json(&orphan));
        }
        for child in &self.root.children {
            roots = roots.push_raw(&span_json(child));
        }
        JsonObject::new()
            .str("schema", crate::schema::PROFILE)
            .str("workload", &self.workload)
            .str("predicate", &self.predicate)
            .str("engine", &self.engine)
            .raw("totals", &totals)
            .raw("samples", &samples)
            .raw("roots", &roots.finish())
            .finish()
    }

    /// Renders the profile as folded-stack text, one line per node:
    /// `parent;child;grandchild <wall_nanos>` — the input format of
    /// standard flamegraph tooling. Nodes with zero wall time still
    /// appear (their counters may matter), weighted 0.
    pub fn to_folded(&self) -> String {
        fn walk(span: &ProfileSpan, prefix: &str, out: &mut String) {
            let path = if prefix.is_empty() {
                span.name.clone()
            } else {
                format!("{prefix};{}", span.name)
            };
            // Self time: wall time not covered by children (saturating,
            // since merged child calls can overlap the parent's clock
            // when threads interleave).
            let child_nanos: u64 = span.children.iter().map(|c| c.wall_nanos).sum();
            let self_nanos = span.wall_nanos.saturating_sub(child_nanos);
            out.push_str(&format!("{path} {self_nanos}\n"));
            for child in &span.children {
                walk(child, &path, out);
            }
        }
        let mut out = String::new();
        if !self.root.counters.is_empty() || self.root.calls > 0 {
            out.push_str(&format!("{} 0\n", self.root.name));
        }
        for child in &self.root.children {
            walk(child, "", &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn enter(p: &Profiler, name: &'static str, id: u64) {
        p.record(&Event::SpanEnter { name, id });
    }

    fn exit(p: &Profiler, name: &'static str, id: u64, nanos: u64) {
        p.record(&Event::SpanExit { name, id, nanos });
    }

    fn count(p: &Profiler, name: &'static str, delta: u64) {
        p.record(&Event::Counter { name, delta });
    }

    #[test]
    fn nested_spans_merge_by_path() {
        let p = Profiler::new();
        for round in 0..2u64 {
            enter(&p, "outer", round * 10 + 1);
            enter(&p, "inner", round * 10 + 2);
            count(&p, "work", 5);
            exit(&p, "inner", round * 10 + 2, 100);
            exit(&p, "outer", round * 10 + 1, 300);
        }
        let report = p.report();
        assert_eq!(report.root.children.len(), 1);
        let outer = &report.root.children[0];
        assert_eq!(
            (outer.name.as_str(), outer.calls, outer.wall_nanos),
            ("outer", 2, 600)
        );
        let inner = &outer.children[0];
        assert_eq!(
            (inner.name.as_str(), inner.calls, inner.wall_nanos),
            ("inner", 2, 200)
        );
        assert_eq!(inner.counters, vec![("work".to_owned(), 10)]);
        assert!(outer.counters.is_empty());
    }

    #[test]
    fn counters_attribute_to_innermost_open_span() {
        let p = Profiler::new();
        count(&p, "before", 1);
        enter(&p, "a", 1);
        count(&p, "in_a", 2);
        enter(&p, "b", 2);
        count(&p, "in_b", 3);
        exit(&p, "b", 2, 10);
        count(&p, "in_a", 4);
        exit(&p, "a", 1, 50);
        count(&p, "after", 8);
        let report = p.report();
        assert_eq!(
            report.root.counters,
            vec![("before".to_owned(), 1), ("after".to_owned(), 8)]
        );
        let a = &report.root.children[0];
        assert_eq!(a.counters, vec![("in_a".to_owned(), 6)]);
        assert_eq!(a.children[0].counters, vec![("in_b".to_owned(), 3)]);
        // The tree-wide totals equal the flat sums.
        assert_eq!(
            report.totals(),
            vec![
                ("after".to_owned(), 8),
                ("before".to_owned(), 1),
                ("in_a".to_owned(), 6),
                ("in_b".to_owned(), 3),
            ]
        );
    }

    #[test]
    fn out_of_order_exits_do_not_corrupt_the_tree() {
        let p = Profiler::new();
        enter(&p, "a", 1);
        enter(&p, "b", 2);
        // The outer guard exits first (moved/leaked guard): closing by
        // id discards the still-open child.
        exit(&p, "a", 1, 100);
        // The late child exit has no open entry left; it is ignored.
        exit(&p, "b", 2, 40);
        count(&p, "after", 1);
        let report = p.report();
        let a = &report.root.children[0];
        assert_eq!(a.calls, 1);
        assert_eq!(report.root.counters, vec![("after".to_owned(), 1)]);
        // An exit that was never entered is ignored too.
        exit(&p, "ghost", 99, 5);
    }

    #[test]
    fn threads_keep_independent_stacks() {
        let p = Arc::new(Profiler::new());
        enter(&p, "main_span", 1);
        let p2 = p.clone();
        std::thread::spawn(move || {
            // No span open on this thread: counter lands unattributed.
            count(&p2, "worker.count", 7);
            enter(&p2, "worker_span", 100);
            count(&p2, "worker.in_span", 1);
            exit(&p2, "worker_span", 100, 9);
        })
        .join()
        .unwrap();
        count(&p, "main.count", 1);
        exit(&p, "main_span", 1, 20);
        let report = p.report();
        assert_eq!(report.root.counters, vec![("worker.count".to_owned(), 7)]);
        let names: Vec<&str> = report
            .root
            .children
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert!(
            names.contains(&"main_span") && names.contains(&"worker_span"),
            "{names:?}"
        );
        assert_eq!(report.root.counter_total("main.count"), 1);
        assert_eq!(report.root.counter_total("worker.in_span"), 1);
    }

    #[test]
    fn samples_accumulate_globally() {
        let p = Profiler::new();
        enter(&p, "a", 1);
        p.record(&Event::Sample {
            name: "probe.len",
            value: 4,
        });
        exit(&p, "a", 1, 1);
        p.record(&Event::Sample {
            name: "probe.len",
            value: 90,
        });
        let report = p.report();
        assert_eq!(report.samples.len(), 1);
        assert_eq!(report.samples[0].1.count(), 2);
        assert_eq!(report.samples[0].1.max(), 90);
    }

    #[test]
    fn json_and_folded_render() {
        let p = Profiler::new();
        count(&p, "loose", 2);
        enter(&p, "outer", 1);
        enter(&p, "inner", 2);
        exit(&p, "inner", 2, 100);
        exit(&p, "outer", 1, 300);
        p.record(&Event::Sample {
            name: "s",
            value: 3,
        });
        let mut report = p.report();
        report.workload = "grid40".to_owned();
        report.predicate = "x@0 > 999".to_owned();
        report.engine = "bfs".to_owned();
        let json = report.to_json();
        let doc = crate::json::parse(&json).unwrap();
        assert_eq!(
            crate::schema::validate(&doc).unwrap(),
            crate::schema::PROFILE
        );
        assert_eq!(doc.get("workload").unwrap().as_str(), Some("grid40"));
        // Roots: the unattributed counters plus the real top-level span.
        let roots = doc.get("roots").unwrap().as_array().unwrap();
        assert_eq!(roots.len(), 2);
        assert_eq!(roots[0].get("name").unwrap().as_str(), Some(UNATTRIBUTED));
        let folded = report.to_folded();
        assert!(folded.contains("(unattributed) 0\n"), "{folded}");
        assert!(folded.contains("outer 200\n"), "{folded}");
        assert!(folded.contains("outer;inner 100\n"), "{folded}");
    }

    #[test]
    fn profiler_as_scoped_recorder_end_to_end() {
        let p = Arc::new(Profiler::new());
        {
            let _guard = crate::scoped(p.clone());
            let _outer = crate::span("e2e.outer");
            crate::counter("e2e.count", 3);
            {
                let _inner = crate::span("e2e.inner");
                crate::counter("e2e.count", 4);
                crate::sample("e2e.sample", 11);
            }
        }
        let report = p.report();
        assert_eq!(report.root.counter_total("e2e.count"), 7);
        let outer = report
            .root
            .children
            .iter()
            .find(|c| c.name == "e2e.outer")
            .expect("outer span recorded");
        assert_eq!(outer.calls, 1);
        assert_eq!(outer.children[0].name, "e2e.inner");
        assert_eq!(
            outer.children[0].counters,
            vec![("e2e.count".to_owned(), 4)]
        );
        assert_eq!(report.samples[0].0, "e2e.sample");
    }

    #[test]
    fn panicking_span_still_balances() {
        let p = Arc::new(Profiler::new());
        let p2 = p.clone();
        let result = std::thread::spawn(move || {
            let _guard = crate::scoped(p2);
            let _span = crate::span("panics.outer");
            let _inner = crate::span("panics.inner");
            panic!("unwind through span guards");
        })
        .join();
        assert!(result.is_err());
        let report = p.report();
        let outer = report
            .root
            .children
            .iter()
            .find(|c| c.name == "panics.outer")
            .expect("outer closed during unwind");
        assert_eq!(outer.calls, 1);
        assert_eq!(outer.children[0].calls, 1, "inner closed first");
    }
}
