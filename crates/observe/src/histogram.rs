//! Log-bucketed histograms for deterministic distribution summaries.
//!
//! A [`Histogram`] spreads `u64` samples over 65 buckets: bucket 0 holds
//! the value 0 and bucket `i` (1..=64) holds values whose highest set bit
//! is `i - 1`, i.e. the range `[2^(i-1), 2^i)`. Quantiles are reported as
//! the *upper bound* of the bucket containing the requested rank, so two
//! runs that feed the same samples — on any machine, in any order —
//! report byte-identical percentiles. That determinism is what lets the
//! soak benches gate on p99 figures in CI; the price is that a reported
//! percentile may overshoot the true order statistic by at most 2×.

/// Number of buckets: one for zero plus one per possible highest bit.
const BUCKETS: usize = 65;

/// A fixed-size, allocation-free, power-of-two-bucketed histogram.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Index of the bucket holding `value`.
    fn bucket(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Inclusive upper bound of bucket `i` (the reported quantile value).
    fn bucket_upper(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Adds one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The deterministic `q`-quantile (`q` in `[0, 1]`): the upper bound
    /// of the bucket holding the sample of rank `ceil(q * count)`.
    ///
    /// Exception: the bucket holding the true maximum reports `max`
    /// itself rather than its bound, so `quantile(1.0) == max()` and a
    /// p99 never exceeds the largest value actually observed.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Shorthand for the 50th percentile.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Shorthand for the 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// Shorthand for the 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// `(count, p50, p90, p99, max)` — the standard summary row the
    /// benches print.
    pub fn summary(&self) -> (u64, u64, u64, u64, u64) {
        (self.count, self.p50(), self.p90(), self.p99(), self.max())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.quantile(1.0), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket(0), 0);
        assert_eq!(Histogram::bucket(1), 1);
        assert_eq!(Histogram::bucket(2), 2);
        assert_eq!(Histogram::bucket(3), 2);
        assert_eq!(Histogram::bucket(4), 3);
        assert_eq!(Histogram::bucket(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper(1), 1);
        assert_eq!(Histogram::bucket_upper(2), 3);
        assert_eq!(Histogram::bucket_upper(64), u64::MAX);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        // Rank 50 is value 50 → bucket [32,64) → upper bound 63.
        assert_eq!(h.p50(), 63);
        // Ranks 90/99 land in bucket [64,128), capped at the true max.
        assert_eq!(h.p90(), 100);
        assert_eq!(h.p99(), 100);
        assert_eq!(h.quantile(1.0), 100);
    }

    #[test]
    fn quantiles_are_order_independent() {
        let mut fwd = Histogram::new();
        let mut rev = Histogram::new();
        let samples = [5u64, 0, 9, 200, 3, 3, 77, 1024, 6];
        for &v in &samples {
            fwd.record(v);
        }
        for &v in samples.iter().rev() {
            rev.record(v);
        }
        assert_eq!(fwd.summary(), rev.summary());
    }

    #[test]
    fn merge_matches_recording_everything_into_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [1u64, 2, 3, 1000] {
            a.record(v);
            all.record(v);
        }
        for v in [0u64, 7, 7, 40] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.summary(), all.summary());
        assert_eq!(a.sum(), all.sum());
        assert_eq!(a.min(), all.min());
    }

    #[test]
    fn zero_heavy_distributions() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(0);
        }
        h.record(1_000_000);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p90(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.max(), 1_000_000);
    }
}
