//! Live metric streaming: periodic delta snapshots for long-running
//! monitors.
//!
//! A [`MetricsSnapshotter`] is a [`Recorder`] that accumulates counters,
//! gauges, and samples, and on demand emits a `slicing.metrics/v1` JSONL
//! line describing what changed since the previous snapshot:
//!
//! * `counter_deltas` — per-counter increase since the last snapshot
//!   (zero-delta counters are omitted, so an idle stream emits compact
//!   lines);
//! * `gauges` — the *latest* reading of every gauge seen so far (gauge
//!   semantics per the [`Recorder`] contract: last write wins);
//! * `samples` — cumulative histogram summaries (count/p50/p90/p99/max)
//!   for every sample stream.
//!
//! The emitter is pull-based: the owner decides the cadence (the CLI
//! monitor snapshots every N events) and calls
//! [`write_snapshot`](MetricsSnapshotter::write_snapshot). This keeps
//! the recorder free of clocks and threads, so snapshots are
//! deterministic functions of the event stream and the chosen cut
//! points.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::Mutex;

use crate::histogram::Histogram;
use crate::json::{JsonArray, JsonObject};
use crate::{Event, Level, Recorder};

#[derive(Debug, Default)]
struct State {
    /// Cumulative counter totals.
    counters: BTreeMap<String, u64>,
    /// Counter totals as of the previous snapshot.
    reported: BTreeMap<String, u64>,
    /// Latest gauge readings.
    gauges: BTreeMap<String, u64>,
    /// Cumulative sample histograms.
    samples: BTreeMap<String, Histogram>,
    /// Snapshots emitted so far.
    seq: u64,
}

/// A [`Recorder`] that turns the event stream into periodic
/// `slicing.metrics/v1` delta lines; see the module docs.
#[derive(Debug, Default)]
pub struct MetricsSnapshotter {
    state: Mutex<State>,
}

impl MetricsSnapshotter {
    /// An empty snapshotter.
    pub fn new() -> Self {
        MetricsSnapshotter::default()
    }

    /// The sequence number of the last emitted snapshot (0 before any).
    ///
    /// A checkpointing owner persists this alongside its own state so a
    /// restarted stream can [`resume_from`](MetricsSnapshotter::resume_from)
    /// where the old one stopped.
    pub fn seq(&self) -> u64 {
        self.state.lock().expect("snapshotter lock").seq
    }

    /// Continues a `slicing.metrics/v1` stream across a restart: the next
    /// snapshot gets `seq + 1`, keeping the stream's sequence numbers
    /// monotonic instead of restarting at 1.
    ///
    /// Only the cursor carries over. Counters, gauges, and samples start
    /// empty — the first post-resume snapshot reports deltas of the new
    /// process's activity only, which is the delta-stream contract (the
    /// pre-restart totals live in the earlier lines).
    pub fn resume_from(&self, seq: u64) {
        self.state.lock().expect("snapshotter lock").seq = seq;
    }

    /// Current cumulative total of counter `name`.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.state
            .lock()
            .expect("snapshotter lock")
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Builds the next snapshot line and advances the delta baseline.
    ///
    /// `label` keys the snapshot to the owner's notion of progress
    /// (typically the number of events consumed so far), so consumers
    /// can align snapshots across runs without wall clocks.
    pub fn snapshot(&self, label: u64) -> String {
        let mut guard = self.state.lock().expect("snapshotter lock");
        let state = &mut *guard;
        state.seq += 1;
        let seq = state.seq;
        let mut deltas = JsonArray::new();
        for (name, total) in &state.counters {
            let prev = state.reported.get(name).copied().unwrap_or(0);
            if *total > prev {
                deltas = deltas.push_raw(
                    &JsonObject::new()
                        .str("name", name)
                        .u64("value", total - prev)
                        .finish(),
                );
            }
        }
        state.reported = state.counters.clone();
        let mut gauges = JsonArray::new();
        for (name, value) in &state.gauges {
            gauges = gauges.push_raw(
                &JsonObject::new()
                    .str("name", name)
                    .u64("value", *value)
                    .finish(),
            );
        }
        let mut samples = JsonArray::new();
        for (name, h) in &state.samples {
            let (count, p50, p90, p99, max) = h.summary();
            samples = samples.push_raw(
                &JsonObject::new()
                    .str("name", name)
                    .u64("count", count)
                    .u64("p50", p50)
                    .u64("p90", p90)
                    .u64("p99", p99)
                    .u64("max", max)
                    .finish(),
            );
        }
        JsonObject::new()
            .str("schema", crate::schema::METRICS)
            .u64("seq", seq)
            .u64("at", label)
            .raw("counter_deltas", &deltas.finish())
            .raw("gauges", &gauges.finish())
            .raw("samples", &samples.finish())
            .finish()
    }

    /// Emits the next snapshot line to `out` (JSONL: one object, one
    /// newline). Write failures are reported, not swallowed — a metrics
    /// stream the operator asked for should not silently go dark.
    pub fn write_snapshot<W: Write>(&self, out: &mut W, label: u64) -> std::io::Result<()> {
        writeln!(out, "{}", self.snapshot(label))
    }
}

impl Recorder for MetricsSnapshotter {
    fn level(&self) -> Level {
        Level::Trace
    }

    fn record(&self, event: &Event<'_>) {
        let mut state = self.state.lock().expect("snapshotter lock");
        match event {
            Event::Counter { name, delta } => {
                *state.counters.entry((*name).to_owned()).or_default() += delta;
            }
            Event::Gauge { name, value } => {
                state.gauges.insert((*name).to_owned(), *value);
            }
            Event::Sample { name, value } => {
                state
                    .samples
                    .entry((*name).to_owned())
                    .or_default()
                    .record(*value);
            }
            Event::SpanEnter { .. } | Event::SpanExit { .. } | Event::Message { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::schema;

    fn count(s: &MetricsSnapshotter, name: &'static str, delta: u64) {
        s.record(&Event::Counter { name, delta });
    }

    #[test]
    fn snapshots_carry_deltas_not_totals() {
        let s = MetricsSnapshotter::new();
        count(&s, "m.checks", 10);
        let one = parse(&s.snapshot(100)).unwrap();
        assert_eq!(schema::validate(&one).unwrap(), schema::METRICS);
        assert_eq!(one.get("seq").unwrap().as_u64(), Some(1));
        assert_eq!(one.get("at").unwrap().as_u64(), Some(100));
        let deltas = one.get("counter_deltas").unwrap().as_array().unwrap();
        assert_eq!(deltas[0].get("value").unwrap().as_u64(), Some(10));

        count(&s, "m.checks", 3);
        let two = parse(&s.snapshot(200)).unwrap();
        let deltas = two.get("counter_deltas").unwrap().as_array().unwrap();
        assert_eq!(deltas[0].get("value").unwrap().as_u64(), Some(3));
        assert_eq!(s.counter_total("m.checks"), 13);

        // Nothing changed: the delta list is empty.
        let three = parse(&s.snapshot(300)).unwrap();
        assert!(three
            .get("counter_deltas")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn gauges_report_latest_and_samples_cumulate() {
        let s = MetricsSnapshotter::new();
        s.record(&Event::Gauge {
            name: "g",
            value: 5,
        });
        s.record(&Event::Gauge {
            name: "g",
            value: 2,
        });
        s.record(&Event::Sample {
            name: "cost",
            value: 7,
        });
        let one = parse(&s.snapshot(1)).unwrap();
        let gauges = one.get("gauges").unwrap().as_array().unwrap();
        assert_eq!(
            gauges[0].get("value").unwrap().as_u64(),
            Some(2),
            "last write wins"
        );
        s.record(&Event::Sample {
            name: "cost",
            value: 100,
        });
        let two = parse(&s.snapshot(2)).unwrap();
        let samples = two.get("samples").unwrap().as_array().unwrap();
        assert_eq!(
            samples[0].get("count").unwrap().as_u64(),
            Some(2),
            "cumulative"
        );
        assert_eq!(samples[0].get("max").unwrap().as_u64(), Some(100));
    }

    #[test]
    fn resume_continues_the_sequence_monotonically() {
        let s = MetricsSnapshotter::new();
        count(&s, "c", 4);
        s.snapshot(10);
        s.snapshot(20);
        assert_eq!(s.seq(), 2);

        // A fresh process restores the cursor from a checkpoint.
        let resumed = MetricsSnapshotter::new();
        resumed.resume_from(s.seq());
        count(&resumed, "c", 1);
        let doc = parse(&resumed.snapshot(30)).unwrap();
        assert_eq!(doc.get("seq").unwrap().as_u64(), Some(3));
        // Deltas cover the new process only: counter restarted at 0.
        let deltas = doc.get("counter_deltas").unwrap().as_array().unwrap();
        assert_eq!(deltas[0].get("value").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn jsonl_stream_is_parseable_line_by_line() {
        let s = MetricsSnapshotter::new();
        let mut out = Vec::new();
        count(&s, "c", 1);
        s.write_snapshot(&mut out, 10).unwrap();
        count(&s, "c", 1);
        s.write_snapshot(&mut out, 20).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let doc = parse(line).unwrap();
            assert_eq!(schema::validate(&doc).unwrap(), schema::METRICS);
        }
    }
}
