//! Hand-rolled JSON: string escaping, tiny object/array builders, and a
//! minimal recursive-descent parser. The workspace keeps its dependency
//! closure at zero external crates, so this module is the single place
//! JSON text is produced or consumed — sinks, report types, the schema
//! validator, and the `bench-diff` tool all build on it.

/// Appends `s` to `out` as a JSON string literal, including the
/// surrounding quotes.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `s` as a standalone JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(&mut out, s);
    out
}

/// A finite `f64` rendered as a JSON number. Non-finite values (which
/// JSON cannot represent) become `null`.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // `{:?}` round-trips f64 exactly and always includes a decimal
        // point or exponent, so the output re-parses as a float.
        format!("{v:?}")
    } else {
        "null".to_owned()
    }
}

/// Incremental builder for one JSON object.
#[derive(Debug, Clone)]
pub struct JsonObject {
    buf: String,
    empty: bool,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            empty: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.empty {
            self.buf.push(',');
        }
        self.empty = false;
        escape_into(&mut self.buf, key);
        self.buf.push(':');
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        escape_into(&mut self.buf, value);
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Adds a signed integer field.
    pub fn i64(mut self, key: &str, value: i64) -> Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Adds a floating-point field (`null` if non-finite).
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        self.key(key);
        self.buf.push_str(&number(value));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a field whose value is already-rendered JSON (a nested object
    /// or array).
    pub fn raw(mut self, key: &str, json: &str) -> Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Adds a string field, or `null` when absent.
    pub fn opt_str(self, key: &str, value: Option<&str>) -> Self {
        match value {
            Some(v) => self.str(key, v),
            None => self.raw(key, "null"),
        }
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        JsonObject::new()
    }
}

/// Incremental builder for one JSON array.
#[derive(Debug, Clone)]
pub struct JsonArray {
    buf: String,
    empty: bool,
}

impl JsonArray {
    /// Starts an empty array.
    pub fn new() -> Self {
        JsonArray {
            buf: String::from("["),
            empty: true,
        }
    }

    fn sep(&mut self) {
        if !self.empty {
            self.buf.push(',');
        }
        self.empty = false;
    }

    /// Appends an already-rendered JSON value.
    pub fn push_raw(mut self, json: &str) -> Self {
        self.sep();
        self.buf.push_str(json);
        self
    }

    /// Appends a string element.
    pub fn push_str(mut self, value: &str) -> Self {
        self.sep();
        escape_into(&mut self.buf, value);
        self
    }

    /// Closes the array and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push(']');
        self.buf
    }
}

impl Default for JsonArray {
    fn default() -> Self {
        JsonArray::new()
    }
}

/// A parsed JSON value.
///
/// Object fields keep their document order (the emitters in this module
/// are order-stable, so round-tripping is lossless apart from number
/// formatting). Numbers are stored as `f64`, which represents every
/// counter the workspace emits exactly (they stay far below 2⁵³).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array of values.
    Array(Vec<JsonValue>),
    /// An object: ordered `(key, value)` pairs.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up `key` in an object; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Why [`parse`] rejected a document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the offending input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

/// Maximum container nesting [`parse`] accepts; the workspace's own
/// documents nest four levels deep, so this bounds stack use on garbage
/// input without ever rejecting a real report.
const MAX_DEPTH: usize = 128;

/// Parses one JSON document. Trailing whitespace is allowed; trailing
/// content is an error.
pub fn parse(text: &str) -> Result<JsonValue, JsonParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX for the low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let code =
                                        0x10000 + ((hi - 0xD800) << 10) + lo.wrapping_sub(0xDC00);
                                    char::from_u32(code)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control byte in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries
                    // are valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials_and_controls() {
        assert_eq!(escape("plain"), "\"plain\"");
        assert_eq!(escape("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(
            escape("line\nbreak\ttab\rret"),
            "\"line\\nbreak\\ttab\\rret\""
        );
        assert_eq!(escape("\u{1}\u{1f}"), "\"\\u0001\\u001f\"");
        assert_eq!(escape("unicode: é λ 🦀"), "\"unicode: é λ 🦀\"");
    }

    #[test]
    fn numbers_reparse_as_floats() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(2.0), "2.0");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn objects_and_arrays_compose() {
        let inner = JsonObject::new().u64("id", 7).finish();
        let arr = JsonArray::new().push_raw(&inner).push_str("x\"y").finish();
        let obj = JsonObject::new()
            .str("name", "a\nb")
            .i64("neg", -3)
            .f64("ratio", 0.5)
            .bool("ok", true)
            .opt_str("missing", None)
            .raw("items", &arr)
            .finish();
        assert_eq!(
            obj,
            "{\"name\":\"a\\nb\",\"neg\":-3,\"ratio\":0.5,\"ok\":true,\
             \"missing\":null,\"items\":[{\"id\":7},\"x\\\"y\"]}"
        );
    }

    #[test]
    fn empty_builders() {
        assert_eq!(JsonObject::new().finish(), "{}");
        assert_eq!(JsonArray::new().finish(), "[]");
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("42").unwrap(), JsonValue::Number(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), JsonValue::Number(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), JsonValue::String("hi".to_owned()));
    }

    #[test]
    fn parse_containers_and_accessors() {
        let doc = parse("{\"a\":[1,2,{\"b\":null}],\"c\":\"x\",\"ok\":true}").unwrap();
        let a = doc.get("a").unwrap().as_array().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[2].get("b"), Some(&JsonValue::Null));
        assert_eq!(doc.get("c").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(doc.as_object().unwrap().len(), 3);
    }

    #[test]
    fn parse_string_escapes() {
        let doc = parse(r#""a\"b\\c\n\t\u0041\u00e9""#).unwrap();
        assert_eq!(doc.as_str(), Some("a\"b\\c\n\tAé"));
        let pair = parse(r#""\ud83e\udd80""#).unwrap();
        assert_eq!(pair.as_str(), Some("🦀"));
    }

    #[test]
    fn parse_round_trips_builder_output() {
        let arr = JsonArray::new().push_raw("9").push_str("x\"y\n").finish();
        let text = JsonObject::new()
            .str("name", "unicode: é λ 🦀")
            .i64("neg", -3)
            .f64("ratio", 0.5)
            .bool("ok", true)
            .opt_str("missing", None)
            .raw("items", &arr)
            .finish();
        let doc = parse(&text).unwrap();
        assert_eq!(doc.get("name").unwrap().as_str(), Some("unicode: é λ 🦀"));
        assert_eq!(doc.get("neg").unwrap().as_f64(), Some(-3.0));
        assert_eq!(doc.get("neg").unwrap().as_u64(), None);
        assert_eq!(doc.get("ratio").unwrap().as_f64(), Some(0.5));
        assert_eq!(doc.get("missing"), Some(&JsonValue::Null));
        let items = doc.get("items").unwrap().as_array().unwrap();
        assert_eq!(items[0].as_u64(), Some(9));
        assert_eq!(items[1].as_str(), Some("x\"y\n"));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "tru",
            "\"unterminated",
            "\"bad \\q escape\"",
            "1 2",
            "{} trailing",
            "\"\\ud83e\"",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn parse_errors_carry_offsets() {
        let err = parse("{\"a\": tru}").unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(err.to_string().contains("byte 6"));
    }
}
