//! Hand-rolled JSON emission: string escaping plus tiny object/array
//! builders. The workspace keeps its dependency closure at zero external
//! crates, so this module is the single place JSON text is produced —
//! sinks and report types build on it rather than re-implementing
//! escaping.
//!
//! Only emission is provided; nothing in the workspace needs to *parse*
//! JSON.

/// Appends `s` to `out` as a JSON string literal, including the
/// surrounding quotes.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `s` as a standalone JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(&mut out, s);
    out
}

/// A finite `f64` rendered as a JSON number. Non-finite values (which
/// JSON cannot represent) become `null`.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // `{:?}` round-trips f64 exactly and always includes a decimal
        // point or exponent, so the output re-parses as a float.
        format!("{v:?}")
    } else {
        "null".to_owned()
    }
}

/// Incremental builder for one JSON object.
#[derive(Debug, Clone)]
pub struct JsonObject {
    buf: String,
    empty: bool,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            empty: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.empty {
            self.buf.push(',');
        }
        self.empty = false;
        escape_into(&mut self.buf, key);
        self.buf.push(':');
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        escape_into(&mut self.buf, value);
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Adds a signed integer field.
    pub fn i64(mut self, key: &str, value: i64) -> Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Adds a floating-point field (`null` if non-finite).
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        self.key(key);
        self.buf.push_str(&number(value));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a field whose value is already-rendered JSON (a nested object
    /// or array).
    pub fn raw(mut self, key: &str, json: &str) -> Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Adds a string field, or `null` when absent.
    pub fn opt_str(self, key: &str, value: Option<&str>) -> Self {
        match value {
            Some(v) => self.str(key, v),
            None => self.raw(key, "null"),
        }
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        JsonObject::new()
    }
}

/// Incremental builder for one JSON array.
#[derive(Debug, Clone)]
pub struct JsonArray {
    buf: String,
    empty: bool,
}

impl JsonArray {
    /// Starts an empty array.
    pub fn new() -> Self {
        JsonArray {
            buf: String::from("["),
            empty: true,
        }
    }

    fn sep(&mut self) {
        if !self.empty {
            self.buf.push(',');
        }
        self.empty = false;
    }

    /// Appends an already-rendered JSON value.
    pub fn push_raw(mut self, json: &str) -> Self {
        self.sep();
        self.buf.push_str(json);
        self
    }

    /// Appends a string element.
    pub fn push_str(mut self, value: &str) -> Self {
        self.sep();
        escape_into(&mut self.buf, value);
        self
    }

    /// Closes the array and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push(']');
        self.buf
    }
}

impl Default for JsonArray {
    fn default() -> Self {
        JsonArray::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials_and_controls() {
        assert_eq!(escape("plain"), "\"plain\"");
        assert_eq!(escape("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(
            escape("line\nbreak\ttab\rret"),
            "\"line\\nbreak\\ttab\\rret\""
        );
        assert_eq!(escape("\u{1}\u{1f}"), "\"\\u0001\\u001f\"");
        assert_eq!(escape("unicode: é λ 🦀"), "\"unicode: é λ 🦀\"");
    }

    #[test]
    fn numbers_reparse_as_floats() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(2.0), "2.0");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn objects_and_arrays_compose() {
        let inner = JsonObject::new().u64("id", 7).finish();
        let arr = JsonArray::new().push_raw(&inner).push_str("x\"y").finish();
        let obj = JsonObject::new()
            .str("name", "a\nb")
            .i64("neg", -3)
            .f64("ratio", 0.5)
            .bool("ok", true)
            .opt_str("missing", None)
            .raw("items", &arr)
            .finish();
        assert_eq!(
            obj,
            "{\"name\":\"a\\nb\",\"neg\":-3,\"ratio\":0.5,\"ok\":true,\
             \"missing\":null,\"items\":[{\"id\":7},\"x\\\"y\"]}"
        );
    }

    #[test]
    fn empty_builders() {
        assert_eq!(JsonObject::new().finish(), "{}");
        assert_eq!(JsonArray::new().finish(), "[]");
    }
}
