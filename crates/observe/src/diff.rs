//! Mechanical drift gating between two bench documents.
//!
//! [`diff`] loads a committed baseline and a fresh run of the same bench
//! schema and checks the *deterministic* columns against each other —
//! exact-match fields (detection verdicts, witness sizes) must be equal,
//! drift-gated counters may move at most `threshold` (relative), and
//! wall-clock columns are never compared. The per-schema column rules
//! live in [`rules_for`], one audited code path replacing the ad-hoc
//! Python previously duplicated across the CI bench jobs.
//!
//! The drift metric matches those scripts exactly: `|new - old| / old`,
//! and when the baseline is zero the drift is zero iff the fresh value
//! is also zero and infinite otherwise. Baselines that pin a counter at
//! zero (`heap_allocs`) therefore require the fresh run to stay at zero
//! — no separate rule needed.

use crate::json::{JsonObject, JsonValue};

/// Default relative drift allowed on gated counters (25%, matching the
/// historical CI gates).
pub const DEFAULT_THRESHOLD: f64 = 0.25;

/// Which columns of a bench table are compared, and how.
#[derive(Debug, Clone, Copy)]
pub struct DiffRules {
    /// Entry fields that must match the baseline exactly.
    pub exact: &'static [&'static str],
    /// Numeric entry fields gated by the relative-drift threshold.
    pub gated: &'static [&'static str],
}

/// The comparison rules for a bench schema, or `None` if the schema has
/// no drift gate defined.
pub fn rules_for(schema: &str) -> Option<DiffRules> {
    match schema {
        s if s == crate::schema::BENCH_DETECT => Some(DiffRules {
            // seq_layers (parallel adaptive granularity) and row_joins
            // (slicer J-table work) are exact functions of the workload,
            // like the visited-set counters — deterministic columns gate,
            // wall-clock never does.
            exact: &["detected"],
            gated: &[
                "cuts_explored",
                "probes",
                "hits",
                "inserts",
                "heap_allocs",
                "seq_layers",
                "row_joins",
            ],
        }),
        s if s == crate::schema::BENCH_MEMORY => Some(DiffRules {
            exact: &["detected", "witness_size"],
            gated: &[
                "cuts_explored",
                "peak_live_cuts",
                "visited_inserts",
                "layers",
                "regen_probes",
                "heap_allocs",
            ],
        }),
        s if s == crate::schema::BENCH_ONLINE => Some(DiffRules {
            exact: &[],
            gated: &["cost_per_event_milli", "heap_allocs"],
        }),
        s if s == crate::schema::BENCH_SOAK => Some(DiffRules {
            // The soak workload is seeded, so verdict-like columns must
            // reproduce exactly; bounded-resource counters are gated so a
            // deliberate GC retune doesn't need a synchronized baseline.
            exact: &["events", "messages", "alarms"],
            gated: &[
                "checks",
                "check_cost",
                "delta_cuts",
                "compactions",
                "dropped_events",
                "retained_peak",
                "heap_allocs",
            ],
        }),
        s if s == crate::schema::BENCH_SERVE => Some(DiffRules {
            // The tenant sweep is seeded, so the stream shape and alarm
            // verdicts must reproduce exactly; the sharing-dependent work
            // counters are gated so a deliberate hub retune doesn't need a
            // synchronized baseline. `--quick` shrinks the stream, so the
            // gate compares like against like via the scale-invariant
            // per-event cost, exactly as BENCH_ONLINE does.
            exact: &["tenants", "events", "messages", "alarms"],
            gated: &[
                "groups",
                "slots",
                "check_cost",
                "clause_evals",
                "delta_cuts",
                "cost_per_event_milli",
                "heap_allocs",
            ],
        }),
        s if s == crate::schema::BENCH_PROTOCOLS => Some(DiffRules {
            // Every column is an exact function of the seeded protocol
            // runs; witness sizes are part of the detection semantics and
            // must reproduce bit-for-bit, while the search-effort counters
            // get the usual drift allowance so deliberate engine retunes
            // don't need a synchronized baseline.
            exact: &["detected", "witness_size"],
            gated: &[
                "cuts_explored",
                "probes",
                "hits",
                "inserts",
                "heap_allocs",
                "row_joins",
            ],
        }),
        _ => None,
    }
}

/// How one column was compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckKind {
    /// The field must equal the baseline.
    Exact,
    /// The field may drift at most the threshold.
    Drift,
}

/// One compared column of one entry.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffCheck {
    /// Entry name (the table row key).
    pub entry: String,
    /// Field name within the entry.
    pub field: String,
    /// Comparison mode.
    pub kind: CheckKind,
    /// Baseline value.
    pub old: JsonValue,
    /// Fresh value.
    pub new: JsonValue,
    /// Relative drift, for [`CheckKind::Drift`] checks.
    pub drift: Option<f64>,
    /// Whether this check passed.
    pub pass: bool,
}

/// The outcome of diffing two bench documents.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// The shared bench schema of both inputs.
    pub bench_schema: String,
    /// The relative-drift threshold applied.
    pub threshold: f64,
    /// Every comparison performed, in entry order.
    pub checks: Vec<DiffCheck>,
}

impl DiffReport {
    /// True when every check passed.
    pub fn pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// The failing checks, for reporting.
    pub fn failures(&self) -> Vec<&DiffCheck> {
        self.checks.iter().filter(|c| !c.pass).collect()
    }

    /// Renders the verdict as one `slicing.bench-diff/v1` JSON document.
    pub fn to_json(&self) -> String {
        fn scalar(v: &JsonValue) -> String {
            match v {
                JsonValue::Bool(b) => b.to_string(),
                JsonValue::Number(n) => crate::json::number(*n),
                JsonValue::String(s) => crate::json::escape(s),
                JsonValue::Null => "null".to_owned(),
                _ => "null".to_owned(), // containers never reach checks
            }
        }
        let checks = self
            .checks
            .iter()
            .fold(crate::json::JsonArray::new(), |arr, c| {
                let mut obj = JsonObject::new()
                    .str("entry", &c.entry)
                    .str("field", &c.field)
                    .str(
                        "kind",
                        match c.kind {
                            CheckKind::Exact => "exact",
                            CheckKind::Drift => "drift",
                        },
                    )
                    .raw("old", &scalar(&c.old))
                    .raw("new", &scalar(&c.new));
                if let Some(drift) = c.drift {
                    obj = obj.f64("drift", if drift.is_finite() { drift } else { -1.0 });
                }
                arr.push_raw(&obj.bool("pass", c.pass).finish())
            })
            .finish();
        JsonObject::new()
            .str("schema", crate::schema::BENCH_DIFF)
            .str("bench_schema", &self.bench_schema)
            .f64("threshold", self.threshold)
            .bool("pass", self.pass())
            .raw("checks", &checks)
            .finish()
    }

    /// A human-readable multi-line summary (one line per failure, or a
    /// single OK line).
    pub fn render_text(&self) -> String {
        if self.pass() {
            let entries: std::collections::BTreeSet<&str> =
                self.checks.iter().map(|c| c.entry.as_str()).collect();
            return format!(
                "bench-diff OK: {} checks over {} entries within {:.0}% of baseline\n",
                self.checks.len(),
                entries.len(),
                self.threshold * 100.0
            );
        }
        let mut out = String::new();
        for c in self.failures() {
            let detail = match (c.kind, c.drift) {
                (CheckKind::Exact, _) => format!("{:?} -> {:?} (must match)", c.old, c.new),
                (_, Some(d)) if d.is_finite() => {
                    format!("{:?} -> {:?} (drift {:.0}%)", c.old, c.new, d * 100.0)
                }
                _ => format!("{:?} -> {:?} (baseline is zero)", c.old, c.new),
            };
            out.push_str(&format!("FAIL {}.{}: {}\n", c.entry, c.field, detail));
        }
        out
    }
}

/// The drift of `new` against `old`, per the CI gates' formula.
fn drift_of(old: f64, new: f64) -> f64 {
    if old != 0.0 {
        (new - old).abs() / old.abs()
    } else if new == old {
        0.0
    } else {
        f64::INFINITY
    }
}

fn entry_name(entry: &JsonValue) -> Result<&str, String> {
    entry
        .get("name")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| "entry without a \"name\" field".to_owned())
}

/// Compares `current` against `baseline` (both parsed bench documents of
/// the same schema) under `threshold`.
///
/// Structural problems — mismatched or unknown schemas, differing entry
/// sets, missing gated fields — are errors rather than failing checks:
/// the two documents are not comparable at all, which is a different
/// (and louder) condition than a counter drifting.
pub fn diff(
    baseline: &JsonValue,
    current: &JsonValue,
    threshold: f64,
) -> Result<DiffReport, String> {
    let base_schema = crate::schema::validate(baseline).map_err(|e| format!("baseline: {e}"))?;
    let cur_schema = crate::schema::validate(current).map_err(|e| format!("current: {e}"))?;
    if base_schema != cur_schema {
        return Err(format!(
            "schema mismatch: baseline is {base_schema}, current is {cur_schema}"
        ));
    }
    let rules = rules_for(base_schema)
        .ok_or_else(|| format!("no drift rules defined for schema {base_schema}"))?;
    let base_entries = baseline
        .get("entries")
        .and_then(JsonValue::as_array)
        .ok_or("baseline has no entries array")?;
    let cur_entries = current
        .get("entries")
        .and_then(JsonValue::as_array)
        .ok_or("current has no entries array")?;
    let mut by_name = std::collections::BTreeMap::new();
    for entry in base_entries {
        by_name.insert(entry_name(entry)?, entry);
    }
    let cur_names: std::collections::BTreeSet<&str> = cur_entries
        .iter()
        .map(entry_name)
        .collect::<Result<_, _>>()?;
    let base_names: std::collections::BTreeSet<&str> = by_name.keys().copied().collect();
    if cur_names != base_names {
        return Err(format!(
            "entry sets differ: baseline {base_names:?} vs current {cur_names:?}"
        ));
    }

    let mut checks = Vec::new();
    for entry in cur_entries {
        let name = entry_name(entry)?;
        let base = by_name[name];
        let field_of = |doc: &JsonValue, field: &str| -> Result<JsonValue, String> {
            doc.get(field)
                .cloned()
                .ok_or_else(|| format!("entry {name:?} is missing field {field:?}"))
        };
        for &field in rules.exact {
            let old = field_of(base, field)?;
            let new = field_of(entry, field)?;
            checks.push(DiffCheck {
                entry: name.to_owned(),
                field: field.to_owned(),
                kind: CheckKind::Exact,
                pass: old == new,
                old,
                new,
                drift: None,
            });
        }
        for &field in rules.gated {
            let old = field_of(base, field)?;
            let new = field_of(entry, field)?;
            let old_n = old
                .as_f64()
                .ok_or_else(|| format!("baseline {name}.{field} is not a number"))?;
            let new_n = new
                .as_f64()
                .ok_or_else(|| format!("current {name}.{field} is not a number"))?;
            let drift = drift_of(old_n, new_n);
            checks.push(DiffCheck {
                entry: name.to_owned(),
                field: field.to_owned(),
                kind: CheckKind::Drift,
                pass: drift <= threshold,
                old,
                new,
                drift: Some(drift),
            });
        }
    }
    Ok(DiffReport {
        bench_schema: base_schema.to_owned(),
        threshold,
        checks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn detect_doc(cuts: u64, detected: bool, heap: u64) -> JsonValue {
        parse(&format!(
            "{{\"schema\":\"slicing.bench-detect/v1\",\"binary\":\"table_speedup\",\
             \"entries\":[{{\"name\":\"bfs.grid40\",\"engine\":\"bfs\",\"detected\":{detected},\
             \"wall_us_per_run\":142.5,\"cuts_explored\":{cuts},\"probes\":5644,\"hits\":1600,\
             \"inserts\":1681,\"heap_allocs\":{heap},\"seq_layers\":0,\"row_joins\":0}}]}}"
        ))
        .unwrap()
    }

    #[test]
    fn identical_documents_pass() {
        let doc = detect_doc(1681, false, 0);
        let report = diff(&doc, &doc, DEFAULT_THRESHOLD).unwrap();
        assert!(report.pass());
        assert_eq!(report.checks.len(), 8); // 1 exact + 7 gated
        let json = report.to_json();
        let parsed = parse(&json).unwrap();
        assert_eq!(
            crate::schema::validate(&parsed).unwrap(),
            crate::schema::BENCH_DIFF
        );
        assert_eq!(parsed.get("pass").unwrap().as_bool(), Some(true));
        assert!(report.render_text().starts_with("bench-diff OK"));
    }

    #[test]
    fn small_drift_passes_large_drift_fails() {
        let base = detect_doc(1000, false, 0);
        let ok = detect_doc(1200, false, 0); // 20% < 25%
        assert!(diff(&base, &ok, DEFAULT_THRESHOLD).unwrap().pass());
        let bad = detect_doc(1300, false, 0); // 30% > 25%
        let report = diff(&base, &bad, DEFAULT_THRESHOLD).unwrap();
        assert!(!report.pass());
        let failures = report.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].field, "cuts_explored");
        assert!((failures[0].drift.unwrap() - 0.3).abs() < 1e-9);
        assert!(report
            .render_text()
            .contains("FAIL bfs.grid40.cuts_explored"));
    }

    #[test]
    fn zero_baseline_requires_exact_zero() {
        let base = detect_doc(1681, false, 0);
        let dirty = detect_doc(1681, false, 1);
        let report = diff(&base, &dirty, DEFAULT_THRESHOLD).unwrap();
        let failures = report.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].field, "heap_allocs");
        assert_eq!(failures[0].drift, Some(f64::INFINITY));
        // And zero against zero is fine (exercised by the identity test).
    }

    #[test]
    fn verdict_flips_are_exact_failures() {
        let base = detect_doc(1681, false, 0);
        let flipped = detect_doc(1681, true, 0);
        let report = diff(&base, &flipped, DEFAULT_THRESHOLD).unwrap();
        let failures = report.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].field, "detected");
        assert_eq!(failures[0].kind, CheckKind::Exact);
    }

    #[test]
    fn structural_mismatches_are_errors_not_verdicts() {
        let detect = detect_doc(1681, false, 0);
        let online = parse(
            "{\"schema\":\"slicing.bench-online/v1\",\"binary\":\"table_online\",\
             \"entries\":[{\"name\":\"segment1\",\"events\":10,\"checks\":10,\
             \"check_cost\":5,\"cost_per_event_milli\":500,\"heap_allocs\":0}]}",
        )
        .unwrap();
        assert!(diff(&detect, &online, DEFAULT_THRESHOLD)
            .unwrap_err()
            .contains("schema mismatch"));
        let renamed = parse(
            "{\"schema\":\"slicing.bench-detect/v1\",\"binary\":\"table_speedup\",\
             \"entries\":[{\"name\":\"other\",\"engine\":\"bfs\",\"detected\":false,\
             \"cuts_explored\":1,\"probes\":1,\"hits\":1,\"inserts\":1,\"heap_allocs\":0,\
             \"seq_layers\":0,\"row_joins\":0}]}",
        )
        .unwrap();
        assert!(diff(&detect, &renamed, DEFAULT_THRESHOLD)
            .unwrap_err()
            .contains("entry sets differ"));
    }

    #[test]
    fn online_rules_gate_cost_not_absolute_counters() {
        // Quick mode changes absolute counters (shorter segments); only
        // the scale-invariant per-event cost and heap discipline gate.
        let base = parse(
            "{\"schema\":\"slicing.bench-online/v1\",\"binary\":\"table_online\",\
             \"entries\":[{\"name\":\"segment1\",\"events\":2000,\"checks\":2000,\
             \"check_cost\":11900,\"cost_per_event_milli\":5950,\"heap_allocs\":0}]}",
        )
        .unwrap();
        let quick = parse(
            "{\"schema\":\"slicing.bench-online/v1\",\"binary\":\"table_online\",\
             \"entries\":[{\"name\":\"segment1\",\"events\":500,\"checks\":500,\
             \"check_cost\":3000,\"cost_per_event_milli\":6000,\"heap_allocs\":0}]}",
        )
        .unwrap();
        let report = diff(&base, &quick, DEFAULT_THRESHOLD).unwrap();
        assert!(report.pass(), "{}", report.render_text());
        let fields: Vec<&str> = report.checks.iter().map(|c| c.field.as_str()).collect();
        assert_eq!(fields, ["cost_per_event_milli", "heap_allocs"]);
    }
}
