//! Cross-sink equivalence: the contract documented on [`Recorder`] says
//! every sink must agree on what the same event stream *means* —
//! counters are monotonic sums, gauges are last-write-wins (with a max
//! kept as a secondary), and every sample feeds a histogram. This test
//! pins that promise by feeding one deterministic stream to a
//! [`MemoryRecorder`] and a [`JsonlWriter`] simultaneously, parsing the
//! JSONL back, and checking the reconstructed state matches the
//! in-memory view figure for figure.
//!
//! [`Recorder`]: slicing_observe::Recorder
//! [`MemoryRecorder`]: slicing_observe::MemoryRecorder
//! [`JsonlWriter`]: slicing_observe::JsonlWriter

use std::collections::BTreeMap;
use std::sync::Arc;

use slicing_observe::{self as obs, Histogram, Level};

/// Drive a deterministic stream through whatever recorders are scoped:
/// two counters, two gauges (each written twice so last-write-wins is
/// observable), one sample series spanning several histogram buckets,
/// and a nested span pair so span events coexist with the metrics.
fn emit_stream() {
    let _outer = obs::span("xsink.outer");
    obs::counter("xsink.cuts", 3);
    obs::gauge("xsink.frontier", 7);
    {
        let _inner = obs::span("xsink.inner");
        obs::counter("xsink.cuts", 4);
        obs::counter("xsink.probes", 10);
        obs::gauge("xsink.frontier", 2); // last write wins; max stays 7
        obs::gauge("xsink.depth", 9);
    }
    for value in [1u64, 8, 3, 900, 0, 17] {
        obs::sample("xsink.cost", value);
    }
}

#[test]
fn memory_and_parsed_back_jsonl_agree() {
    let path =
        std::env::temp_dir().join(format!("slicing-cross-sink-{}.jsonl", std::process::id()));
    let mem = Arc::new(obs::MemoryRecorder::new(Level::Trace));
    let jsonl = Arc::new(obs::JsonlWriter::create(&path).expect("temp jsonl"));
    {
        let _g_mem = obs::scoped(mem.clone());
        let _g_jsonl = obs::scoped(jsonl.clone());
        emit_stream();
    }
    drop(jsonl); // flush on drop

    // Rebuild the three kinds of state from the JSONL text, applying the
    // documented semantics and nothing else.
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut gauge_last: BTreeMap<String, u64> = BTreeMap::new();
    let mut gauge_max: BTreeMap<String, u64> = BTreeMap::new();
    let mut histograms: BTreeMap<String, Histogram> = BTreeMap::new();
    let mut span_events = 0u64;
    let text = std::fs::read_to_string(&path).expect("stream written");
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let doc = obs::json::parse(line).expect("every line is one JSON object");
        let kind = doc.get("type").unwrap().as_str().unwrap().to_owned();
        let name = |field: &str| {
            doc.get(field)
                .and_then(|v| v.as_str())
                .map(str::to_owned)
                .unwrap()
        };
        match kind.as_str() {
            "counter" => {
                *counters.entry(name("name")).or_default() +=
                    doc.get("delta").unwrap().as_u64().unwrap();
            }
            "gauge" => {
                let value = doc.get("value").unwrap().as_u64().unwrap();
                let key = name("name");
                let max = gauge_max.entry(key.clone()).or_default();
                *max = (*max).max(value);
                gauge_last.insert(key, value);
            }
            "sample" => {
                histograms
                    .entry(name("name"))
                    .or_default()
                    .record(doc.get("value").unwrap().as_u64().unwrap());
            }
            "span_enter" | "span_exit" => span_events += 1,
            other => panic!("unexpected event type {other:?} in {line}"),
        }
    }
    std::fs::remove_file(&path).ok();

    // Counters: monotonic sums.
    assert_eq!(counters["xsink.cuts"], 7);
    assert_eq!(counters["xsink.probes"], 10);
    for (name, total) in &counters {
        assert_eq!(
            mem.counter_total(name),
            *total,
            "counter {name} diverged between sinks"
        );
    }

    // Gauges: last write wins, max kept as the secondary aggregate.
    assert_eq!(gauge_last["xsink.frontier"], 2);
    assert_eq!(gauge_max["xsink.frontier"], 7);
    for (name, last) in &gauge_last {
        assert_eq!(mem.gauge_last(name), Some(*last), "gauge {name} (last)");
        assert_eq!(
            mem.gauge_max(name),
            Some(gauge_max[name]),
            "gauge {name} (max)"
        );
    }

    // Samples: identical histograms, hence identical summaries.
    assert_eq!(
        histograms["xsink.cost"].summary(),
        mem.sample_histogram("xsink.cost").summary(),
        "sample histogram diverged between sinks"
    );
    assert_eq!(histograms["xsink.cost"].count(), 6);

    // Both sinks saw the same balanced span traffic.
    assert_eq!(span_events, 4, "two enters + two exits");
    assert!(mem.spans_balanced());
    let counts = mem.span_counts();
    assert_eq!(counts["xsink.outer"], (1, 1));
    assert_eq!(counts["xsink.inner"], (1, 1));
}
